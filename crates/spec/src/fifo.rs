//! Queue and stack specifications (Section 5).
//!
//! Queues and stacks are the paper's flagship *1-ordering* objects
//! (Definition 11): per Theorem 17 they have **no** lock-free
//! strongly-linearizable implementation from test&set, swap and
//! fetch&add. Empty-returning `deq`/`pop` answer `Empty` (the paper's
//! ε).

use std::collections::VecDeque;

use crate::{Spec, Value};

/// Operations of a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueOp {
    /// `enq(v)`.
    Enq(Value),
    /// `deq()`.
    Deq,
}

/// Responses of a queue (also used by the relaxed queues).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueResp {
    /// Response of `enq`.
    Ok,
    /// `deq` returned this item.
    Item(Value),
    /// `deq` found the queue empty (ε).
    Empty,
}

/// FIFO queue specification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueSpec;

impl Spec for QueueSpec {
    type State = VecDeque<Value>;
    type Op = QueueOp;
    type Resp = QueueResp;

    fn initial(&self) -> VecDeque<Value> {
        VecDeque::new()
    }

    fn step(&self, s: &VecDeque<Value>, op: &QueueOp) -> Vec<(VecDeque<Value>, QueueResp)> {
        match op {
            QueueOp::Enq(v) => {
                let mut next = s.clone();
                next.push_back(*v);
                vec![(next, QueueResp::Ok)]
            }
            QueueOp::Deq => match s.front().copied() {
                None => vec![(s.clone(), QueueResp::Empty)],
                Some(v) => {
                    let mut next = s.clone();
                    next.pop_front();
                    vec![(next, QueueResp::Item(v))]
                }
            },
        }
    }
}

/// Operations of a stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StackOp {
    /// `push(v)`.
    Push(Value),
    /// `pop()`.
    Pop,
}

/// Responses of a stack (also used by the relaxed stacks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StackResp {
    /// Response of `push`.
    Ok,
    /// `pop` returned this item.
    Item(Value),
    /// `pop` found the stack empty (ε).
    Empty,
}

/// LIFO stack specification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackSpec;

impl Spec for StackSpec {
    type State = Vec<Value>;
    type Op = StackOp;
    type Resp = StackResp;

    fn initial(&self) -> Vec<Value> {
        Vec::new()
    }

    fn step(&self, s: &Vec<Value>, op: &StackOp) -> Vec<(Vec<Value>, StackResp)> {
        match op {
            StackOp::Push(v) => {
                let mut next = s.clone();
                next.push(*v);
                vec![(next, StackResp::Ok)]
            }
            StackOp::Pop => match s.last().copied() {
                None => vec![(s.clone(), StackResp::Empty)],
                Some(v) => {
                    let mut next = s.clone();
                    next.pop();
                    vec![(next, StackResp::Item(v))]
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_legal;

    #[test]
    fn queue_is_fifo() {
        let spec = QueueSpec;
        let mut s = spec.initial();
        spec.apply(&mut s, &QueueOp::Enq(1));
        spec.apply(&mut s, &QueueOp::Enq(2));
        assert_eq!(spec.apply(&mut s, &QueueOp::Deq), QueueResp::Item(1));
        assert_eq!(spec.apply(&mut s, &QueueOp::Deq), QueueResp::Item(2));
        assert_eq!(spec.apply(&mut s, &QueueOp::Deq), QueueResp::Empty);
    }

    #[test]
    fn stack_is_lifo() {
        let spec = StackSpec;
        let mut s = spec.initial();
        spec.apply(&mut s, &StackOp::Push(1));
        spec.apply(&mut s, &StackOp::Push(2));
        assert_eq!(spec.apply(&mut s, &StackOp::Pop), StackResp::Item(2));
        assert_eq!(spec.apply(&mut s, &StackOp::Pop), StackResp::Item(1));
        assert_eq!(spec.apply(&mut s, &StackOp::Pop), StackResp::Empty);
    }

    #[test]
    fn queue_rejects_out_of_order_dequeues() {
        let spec = QueueSpec;
        let bad = vec![
            (QueueOp::Enq(1), QueueResp::Ok),
            (QueueOp::Enq(2), QueueResp::Ok),
            (QueueOp::Deq, QueueResp::Item(2)),
        ];
        assert!(!is_legal(&spec, &bad));
    }

    #[test]
    fn stack_rejects_fifo_order() {
        let spec = StackSpec;
        let bad = vec![
            (StackOp::Push(1), StackResp::Ok),
            (StackOp::Push(2), StackResp::Ok),
            (StackOp::Pop, StackResp::Item(1)),
        ];
        assert!(!is_legal(&spec, &bad));
    }
}
