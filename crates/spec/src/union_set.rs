//! Grow-only ("union") set: a simple type from §3.3.
//!
//! The paper lists "certain set objects" among the simple types
//! implementable via Algorithm 1: a set with `insert` (no removal) and
//! read operations. Inserts commute with each other; inserts overwrite
//! reads; reads commute.

use std::collections::BTreeSet;

use crate::{Spec, Value};

/// Operations of the grow-only set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnionSetOp {
    /// Insert an item (idempotent).
    Insert(Value),
    /// Does the set contain the item?
    Contains(Value),
    /// Read the whole set (sorted).
    ReadAll,
}

/// Responses of the grow-only set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum UnionSetResp {
    /// Response of `Insert`.
    Ok,
    /// Response of `Contains`.
    Bool(bool),
    /// Response of `ReadAll` (sorted ascending).
    Items(Vec<Value>),
}

/// The grow-only set specification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnionSetSpec;

impl Spec for UnionSetSpec {
    type State = BTreeSet<Value>;
    type Op = UnionSetOp;
    type Resp = UnionSetResp;

    fn initial(&self) -> BTreeSet<Value> {
        BTreeSet::new()
    }

    fn step(&self, s: &BTreeSet<Value>, op: &UnionSetOp) -> Vec<(BTreeSet<Value>, UnionSetResp)> {
        match op {
            UnionSetOp::Insert(x) => {
                let mut next = s.clone();
                next.insert(*x);
                vec![(next, UnionSetResp::Ok)]
            }
            UnionSetOp::Contains(x) => {
                vec![(s.clone(), UnionSetResp::Bool(s.contains(x)))]
            }
            UnionSetOp::ReadAll => {
                vec![(s.clone(), UnionSetResp::Items(s.iter().copied().collect()))]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_accumulate() {
        let spec = UnionSetSpec;
        let mut s = spec.initial();
        spec.apply(&mut s, &UnionSetOp::Insert(3));
        spec.apply(&mut s, &UnionSetOp::Insert(1));
        spec.apply(&mut s, &UnionSetOp::Insert(3));
        assert_eq!(
            spec.apply(&mut s, &UnionSetOp::ReadAll),
            UnionSetResp::Items(vec![1, 3])
        );
        assert_eq!(
            spec.apply(&mut s, &UnionSetOp::Contains(1)),
            UnionSetResp::Bool(true)
        );
        assert_eq!(
            spec.apply(&mut s, &UnionSetOp::Contains(2)),
            UnionSetResp::Bool(false)
        );
    }

    #[test]
    fn insert_order_is_immaterial() {
        let spec = UnionSetSpec;
        let mut a = spec.initial();
        spec.apply(&mut a, &UnionSetOp::Insert(1));
        spec.apply(&mut a, &UnionSetOp::Insert(2));
        let mut b = spec.initial();
        spec.apply(&mut b, &UnionSetOp::Insert(2));
        spec.apply(&mut b, &UnionSetOp::Insert(1));
        assert_eq!(a, b);
    }
}
