//! Test&set-family specifications (§4.1).
//!
//! * [`TestAndSetSpec`] — the one-shot primitive: the first `test&set`
//!   returns 0 (the winner), all later ones return 1.
//! * [`ReadableTasSpec`] — adds a `read` returning the current state
//!   (Theorem 5).
//! * [`MultiShotTasSpec`] — adds `reset`, returning the object to state
//!   0 (Theorem 6 / Corollaries 7–8).

use crate::Spec;

/// Operations of a (readable, multi-shot) test&set object. Which subset
/// is legal depends on the concrete spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TasOp {
    /// `test&set()`: sets state to 1, returns the previous state.
    TestAndSet,
    /// `read()`: returns the current state (readable variants only).
    Read,
    /// `reset()`: sets state to 0 (multi-shot variant only).
    Reset,
}

/// Responses of test&set objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TasResp {
    /// A bit value (0 or 1), from `test&set` or `read`.
    Bit(u8),
    /// Response of `reset`.
    Ok,
}

/// One-shot test&set (consensus number 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TestAndSetSpec;

impl Spec for TestAndSetSpec {
    type State = u8;
    type Op = TasOp;
    type Resp = TasResp;

    fn initial(&self) -> u8 {
        0
    }

    fn step(&self, s: &u8, op: &TasOp) -> Vec<(u8, TasResp)> {
        match op {
            TasOp::TestAndSet => vec![(1, TasResp::Bit(*s))],
            TasOp::Read => panic!("plain test&set is not readable"),
            TasOp::Reset => panic!("one-shot test&set has no reset"),
        }
    }
}

/// Readable test&set (Theorem 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadableTasSpec;

impl Spec for ReadableTasSpec {
    type State = u8;
    type Op = TasOp;
    type Resp = TasResp;

    fn initial(&self) -> u8 {
        0
    }

    fn step(&self, s: &u8, op: &TasOp) -> Vec<(u8, TasResp)> {
        match op {
            TasOp::TestAndSet => vec![(1, TasResp::Bit(*s))],
            TasOp::Read => vec![(*s, TasResp::Bit(*s))],
            TasOp::Reset => panic!("readable test&set has no reset"),
        }
    }
}

/// Readable multi-shot test&set (Theorem 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MultiShotTasSpec;

impl Spec for MultiShotTasSpec {
    type State = u8;
    type Op = TasOp;
    type Resp = TasResp;

    fn initial(&self) -> u8 {
        0
    }

    fn step(&self, s: &u8, op: &TasOp) -> Vec<(u8, TasResp)> {
        match op {
            TasOp::TestAndSet => vec![(1, TasResp::Bit(*s))],
            TasOp::Read => vec![(*s, TasResp::Bit(*s))],
            TasOp::Reset => vec![(0, TasResp::Ok)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_first_tas_wins() {
        let spec = TestAndSetSpec;
        let mut s = spec.initial();
        assert_eq!(spec.apply(&mut s, &TasOp::TestAndSet), TasResp::Bit(0));
        assert_eq!(spec.apply(&mut s, &TasOp::TestAndSet), TasResp::Bit(1));
        assert_eq!(spec.apply(&mut s, &TasOp::TestAndSet), TasResp::Bit(1));
    }

    #[test]
    fn readable_read_reflects_state() {
        let spec = ReadableTasSpec;
        let mut s = spec.initial();
        assert_eq!(spec.apply(&mut s, &TasOp::Read), TasResp::Bit(0));
        spec.apply(&mut s, &TasOp::TestAndSet);
        assert_eq!(spec.apply(&mut s, &TasOp::Read), TasResp::Bit(1));
    }

    #[test]
    fn reset_reopens_the_competition() {
        let spec = MultiShotTasSpec;
        let mut s = spec.initial();
        assert_eq!(spec.apply(&mut s, &TasOp::TestAndSet), TasResp::Bit(0));
        assert_eq!(spec.apply(&mut s, &TasOp::TestAndSet), TasResp::Bit(1));
        assert_eq!(spec.apply(&mut s, &TasOp::Reset), TasResp::Ok);
        assert_eq!(spec.apply(&mut s, &TasOp::Read), TasResp::Bit(0));
        assert_eq!(spec.apply(&mut s, &TasOp::TestAndSet), TasResp::Bit(0));
    }

    #[test]
    fn reset_when_zero_is_a_noop() {
        let spec = MultiShotTasSpec;
        let mut s = spec.initial();
        assert_eq!(spec.apply(&mut s, &TasOp::Reset), TasResp::Ok);
        assert_eq!(s, 0);
    }

    #[test]
    #[should_panic(expected = "not readable")]
    fn plain_tas_rejects_read() {
        let spec = TestAndSetSpec;
        let mut s = spec.initial();
        spec.apply(&mut s, &TasOp::Read);
    }
}
