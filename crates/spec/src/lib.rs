//! Sequential specifications for every object appearing in *Strong
//! Linearizability using Primitives with Consensus Number 2* (Attiya,
//! Castañeda, Enea; PODC 2024).
//!
//! A specification is an explicit state machine ([`Spec`]). Relaxed
//! objects from Section 5 (queues/stacks with multiplicity, m-stuttering,
//! k-out-of-order) are *nondeterministic*: one operation may have several
//! legal outcomes, so [`Spec::step`] returns every `(state, response)`
//! pair. Deterministic objects implement the same trait with a singleton
//! outcome and get the convenience method [`Spec::apply`].
//!
//! The commute/overwrite structure of §3.3 ("simple types", after Aspnes
//! & Herlihy) lives in [`simple`], together with a semantic validator
//! used by the property tests.
//!
//! # Example
//!
//! ```
//! use sl2_spec::{Spec, max_register::{MaxRegisterSpec, MaxOp, MaxResp}};
//!
//! let spec = MaxRegisterSpec;
//! let mut s = spec.initial();
//! assert_eq!(spec.apply(&mut s, &MaxOp::Write(5)), MaxResp::Ok);
//! assert_eq!(spec.apply(&mut s, &MaxOp::Write(3)), MaxResp::Ok);
//! assert_eq!(spec.apply(&mut s, &MaxOp::Read), MaxResp::Value(5));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt::Debug;
use std::hash::Hash;

pub mod counters;
pub mod fifo;
pub mod keyed;
pub mod max_register;
pub mod put_take;
pub mod relaxed;
pub mod simple;
pub mod snapshot;
pub mod swap;
pub mod tas;
pub mod union_set;

/// Item / value type used by all specifications.
pub type Value = u64;

/// A sequential specification: a (possibly nondeterministic) state
/// machine over operations and responses.
///
/// Implementations must be cheap to clone; most are zero-sized.
pub trait Spec: Clone + Debug {
    /// Object state. `Eq + Hash` so checkers can memoize on it.
    type State: Clone + Eq + Hash + Debug;
    /// Operation descriptors (invocation + arguments).
    type Op: Clone + Eq + Hash + Debug;
    /// Responses.
    type Resp: Clone + Eq + Hash + Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// All legal outcomes of executing `op` in state `s`. Deterministic
    /// objects return exactly one outcome; nondeterministic relaxations
    /// (Section 5) may return several. Never returns an empty vector:
    /// every operation is total in every state of every object in the
    /// paper.
    fn step(&self, s: &Self::State, op: &Self::Op) -> Vec<(Self::State, Self::Resp)>;

    /// Executes `op` in place, for deterministic specs.
    ///
    /// # Panics
    ///
    /// Panics if the spec is nondeterministic at this state/operation
    /// (more than one outcome) — use [`Spec::step`] then.
    fn apply(&self, s: &mut Self::State, op: &Self::Op) -> Self::Resp {
        let mut outcomes = self.step(s, op);
        assert_eq!(
            outcomes.len(),
            1,
            "apply() on a nondeterministic spec transition: {op:?} in {s:?}"
        );
        let (next, resp) = outcomes.pop().expect("spec transition must be total");
        *s = next;
        resp
    }

    /// Runs a whole sequence of operations from the initial state and
    /// returns the responses (deterministic specs only).
    fn run(&self, ops: &[Self::Op]) -> Vec<Self::Resp> {
        let mut s = self.initial();
        ops.iter().map(|op| self.apply(&mut s, op)).collect()
    }

    /// Whether `(op, resp)` is a legal next step from `s`, and if so the
    /// successor states that realize it.
    fn accept(&self, s: &Self::State, op: &Self::Op, resp: &Self::Resp) -> Vec<Self::State> {
        self.step(s, op)
            .into_iter()
            .filter_map(|(next, r)| (&r == resp).then_some(next))
            .collect()
    }
}

/// Validates that a sequence of `(op, resp)` pairs is a legal sequential
/// execution of `spec`, tracking every nondeterministic branch.
///
/// Returns the set of possible final states (empty iff the sequence is
/// illegal).
pub fn legal_states<S: Spec>(spec: &S, seq: &[(S::Op, S::Resp)]) -> Vec<S::State> {
    let mut states = vec![spec.initial()];
    for (op, resp) in seq {
        let mut next: Vec<S::State> = Vec::new();
        for s in &states {
            for succ in spec.accept(s, op, resp) {
                if !next.contains(&succ) {
                    next.push(succ);
                }
            }
        }
        states = next;
        if states.is_empty() {
            return states;
        }
    }
    states
}

/// Convenience: is the `(op, resp)` sequence a legal sequential
/// execution of `spec`?
pub fn is_legal<S: Spec>(spec: &S, seq: &[(S::Op, S::Resp)]) -> bool {
    !legal_states(spec, seq).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_register::{MaxOp, MaxRegisterSpec, MaxResp};

    #[test]
    fn legal_states_accepts_valid_sequence() {
        let spec = MaxRegisterSpec;
        let seq = vec![
            (MaxOp::Write(4), MaxResp::Ok),
            (MaxOp::Read, MaxResp::Value(4)),
            (MaxOp::Write(2), MaxResp::Ok),
            (MaxOp::Read, MaxResp::Value(4)),
        ];
        assert!(is_legal(&spec, &seq));
    }

    #[test]
    fn legal_states_rejects_stale_read() {
        let spec = MaxRegisterSpec;
        let seq = vec![
            (MaxOp::Write(4), MaxResp::Ok),
            (MaxOp::Read, MaxResp::Value(0)),
        ];
        assert!(!is_legal(&spec, &seq));
    }

    #[test]
    fn run_returns_responses_in_order() {
        let spec = MaxRegisterSpec;
        let resps = spec.run(&[MaxOp::Write(7), MaxOp::Read, MaxOp::Write(1), MaxOp::Read]);
        assert_eq!(
            resps,
            vec![
                MaxResp::Ok,
                MaxResp::Value(7),
                MaxResp::Ok,
                MaxResp::Value(7)
            ]
        );
    }
}
