//! Max register specification (§3.1).
//!
//! `WriteMax(v)` records `v`; `ReadMax` returns the largest value
//! previously written (0 if none). A max register has consensus number 1
//! and — per Theorem 1 — a wait-free strongly-linearizable
//! implementation from fetch&add.

use crate::{Spec, Value};

/// Operations of a max register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaxOp {
    /// `WriteMax(v)`.
    Write(Value),
    /// `ReadMax()`.
    Read,
}

/// Responses of a max register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaxResp {
    /// Response of `WriteMax`.
    Ok,
    /// Response of `ReadMax`: the current maximum.
    Value(Value),
}

/// The max register specification; state is the running maximum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxRegisterSpec;

impl Spec for MaxRegisterSpec {
    type State = Value;
    type Op = MaxOp;
    type Resp = MaxResp;

    fn initial(&self) -> Value {
        0
    }

    fn step(&self, s: &Value, op: &MaxOp) -> Vec<(Value, MaxResp)> {
        match op {
            MaxOp::Write(v) => vec![((*s).max(*v), MaxResp::Ok)],
            MaxOp::Read => vec![(*s, MaxResp::Value(*s))],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_returns_running_maximum() {
        let spec = MaxRegisterSpec;
        let mut s = spec.initial();
        assert_eq!(spec.apply(&mut s, &MaxOp::Read), MaxResp::Value(0));
        spec.apply(&mut s, &MaxOp::Write(9));
        spec.apply(&mut s, &MaxOp::Write(4));
        assert_eq!(spec.apply(&mut s, &MaxOp::Read), MaxResp::Value(9));
        spec.apply(&mut s, &MaxOp::Write(11));
        assert_eq!(spec.apply(&mut s, &MaxOp::Read), MaxResp::Value(11));
    }

    #[test]
    fn writes_are_idempotent_on_smaller_values() {
        let spec = MaxRegisterSpec;
        let mut s = spec.initial();
        spec.apply(&mut s, &MaxOp::Write(5));
        let before = s;
        spec.apply(&mut s, &MaxOp::Write(5));
        spec.apply(&mut s, &MaxOp::Write(1));
        assert_eq!(s, before);
    }

    #[test]
    fn step_is_deterministic() {
        let spec = MaxRegisterSpec;
        assert_eq!(spec.step(&3, &MaxOp::Write(7)).len(), 1);
        assert_eq!(spec.step(&3, &MaxOp::Read).len(), 1);
    }
}
