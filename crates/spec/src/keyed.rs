//! Keyed (multi-object) specifications for the service tier.
//!
//! The `sl2_service` registry serves *many* independent objects behind
//! one handle: a request names a key, and the per-key object is a §3
//! max register (or §4 counter). The composed service is itself a
//! sequential object — a map from keys to object states — and these
//! specs make that composition explicit so the modelled dispatch twin
//! (`sl2_service::machines`) can flow through the same
//! `check_strong_outcome`/corpus machinery as the single-object
//! algorithms.
//!
//! Two polarities, mirroring the single-object pair:
//!
//! * [`KeyedMaxSpec`] — exact: every read returns the current per-key
//!   maximum. The locality of strong linearizability (it is closed
//!   under composition of disjoint objects) says a keyed service whose
//!   per-key path is the Theorem-1 register should certify here; the
//!   checker confirms it *including* the shared dispatch steps
//!   (enqueue ticket, route read) the service threads through every
//!   request.
//! * [`LaggingKeyedMaxSpec`] — the per-key analogue of
//!   [`crate::relaxed::LaggingMaxSpec`]: reads may return the per-key
//!   running maximum as it stood up to `k` *writes to that key* ago.
//!   Cached-read routing (the service answers reads from a per-key
//!   published fold, and writes that lose the publication election
//!   complete unpublished) is refuted against [`KeyedMaxSpec`] and
//!   certified here — the §8 law, resurfacing one layer up.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::max_register::MaxResp;
use crate::{Spec, Value};

/// Operations on a keyed max-register namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyedMaxOp {
    /// `write_max(key, v)`.
    Write {
        /// Key naming the per-key register.
        key: Value,
        /// Value to fold into that register's maximum.
        v: Value,
    },
    /// `read_max(key)`.
    Read {
        /// Key naming the per-key register.
        key: Value,
    },
}

/// Exact keyed max register: a map from keys to running maxima.
/// Untouched keys read 0 (lazy instantiation is invisible to the
/// specification — a fresh register holds 0).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyedMaxSpec;

impl Spec for KeyedMaxSpec {
    type State = BTreeMap<Value, Value>;
    type Op = KeyedMaxOp;
    type Resp = MaxResp;

    fn initial(&self) -> Self::State {
        BTreeMap::new()
    }

    fn step(&self, s: &Self::State, op: &KeyedMaxOp) -> Vec<(Self::State, MaxResp)> {
        match op {
            KeyedMaxOp::Write { key, v } => {
                let cur = s.get(key).copied().unwrap_or(0);
                let mut next = s.clone();
                next.insert(*key, cur.max(*v));
                vec![(next, MaxResp::Ok)]
            }
            KeyedMaxOp::Read { key } => {
                vec![(s.clone(), MaxResp::Value(s.get(key).copied().unwrap_or(0)))]
            }
        }
    }
}

/// k-stale keyed max register: `Write` is exact per key, but `Read`
/// may return the keyed maximum as it stood up to `k` writes *to that
/// key* ago. Writes to other keys do not age a key's window — the
/// relaxation is per object, exactly as composing `k`-stale registers
/// key-wise would give. A 0-stale keyed register is [`KeyedMaxSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaggingKeyedMaxSpec {
    /// Maximum number of same-key writes a `Read` may trail by.
    pub k: usize,
}

/// State of a [`LaggingKeyedMaxSpec`]: per key, the running maximum
/// after each of the last `k` writes plus the current one, oldest
/// first (absent key ⇔ window `[0]`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct LaggingKeyedMaxState {
    /// Per-key windows of recent running maxima; last entry current.
    pub recent: BTreeMap<Value, VecDeque<Value>>,
}

impl Spec for LaggingKeyedMaxSpec {
    type State = LaggingKeyedMaxState;
    type Op = KeyedMaxOp;
    type Resp = MaxResp;

    fn initial(&self) -> LaggingKeyedMaxState {
        LaggingKeyedMaxState::default()
    }

    fn step(
        &self,
        s: &LaggingKeyedMaxState,
        op: &KeyedMaxOp,
    ) -> Vec<(LaggingKeyedMaxState, MaxResp)> {
        match op {
            KeyedMaxOp::Write { key, v } => {
                let mut next = s.clone();
                let window = next.recent.entry(*key).or_insert_with(|| {
                    VecDeque::from([0]) // fresh key: current maximum 0
                });
                let cur = *window.back().expect("window is never empty");
                window.push_back(cur.max(*v));
                while window.len() > self.k + 1 {
                    window.pop_front();
                }
                vec![(next, MaxResp::Ok)]
            }
            KeyedMaxOp::Read { key } => {
                let mut out: Vec<(LaggingKeyedMaxState, MaxResp)> = Vec::new();
                let fresh = VecDeque::from([0]);
                let window = s.recent.get(key).unwrap_or(&fresh);
                for &v in window {
                    if !out.iter().any(|(_, r)| *r == MaxResp::Value(v)) {
                        out.push((s.clone(), MaxResp::Value(v)));
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_legal;

    #[test]
    fn keyed_max_keys_are_independent() {
        let spec = KeyedMaxSpec;
        let seq = vec![
            (KeyedMaxOp::Write { key: 7, v: 5 }, MaxResp::Ok),
            (KeyedMaxOp::Write { key: 9, v: 3 }, MaxResp::Ok),
            (KeyedMaxOp::Read { key: 7 }, MaxResp::Value(5)),
            (KeyedMaxOp::Read { key: 9 }, MaxResp::Value(3)),
            (KeyedMaxOp::Read { key: 11 }, MaxResp::Value(0)),
        ];
        assert!(is_legal(&spec, &seq));
    }

    #[test]
    fn keyed_max_folds_per_key() {
        let spec = KeyedMaxSpec;
        let mut s = spec.initial();
        assert_eq!(
            spec.apply(&mut s, &KeyedMaxOp::Write { key: 1, v: 5 }),
            MaxResp::Ok
        );
        assert_eq!(
            spec.apply(&mut s, &KeyedMaxOp::Write { key: 1, v: 3 }),
            MaxResp::Ok
        );
        assert_eq!(
            spec.apply(&mut s, &KeyedMaxOp::Read { key: 1 }),
            MaxResp::Value(5)
        );
    }

    #[test]
    fn keyed_max_rejects_cross_key_bleed() {
        let spec = KeyedMaxSpec;
        let seq = vec![
            (KeyedMaxOp::Write { key: 1, v: 5 }, MaxResp::Ok),
            (KeyedMaxOp::Read { key: 2 }, MaxResp::Value(5)), // wrong key
        ];
        assert!(!is_legal(&spec, &seq));
    }

    #[test]
    fn lagging_keyed_allows_per_key_stale_reads_only() {
        let spec = LaggingKeyedMaxSpec { k: 1 };
        // One write to key 1; a read may still see the pre-write 0.
        let stale = vec![
            (KeyedMaxOp::Write { key: 1, v: 5 }, MaxResp::Ok),
            (KeyedMaxOp::Read { key: 1 }, MaxResp::Value(0)),
        ];
        assert!(is_legal(&spec, &stale));
        // Two writes to key 1: with k = 1 the pre-both value is gone.
        let too_stale = vec![
            (KeyedMaxOp::Write { key: 1, v: 5 }, MaxResp::Ok),
            (KeyedMaxOp::Write { key: 1, v: 6 }, MaxResp::Ok),
            (KeyedMaxOp::Read { key: 1 }, MaxResp::Value(0)),
        ];
        assert!(!is_legal(&spec, &too_stale));
        // Writes to *other* keys do not age key 1's window.
        let other_keys = vec![
            (KeyedMaxOp::Write { key: 1, v: 5 }, MaxResp::Ok),
            (KeyedMaxOp::Write { key: 2, v: 7 }, MaxResp::Ok),
            (KeyedMaxOp::Write { key: 3, v: 8 }, MaxResp::Ok),
            (KeyedMaxOp::Read { key: 1 }, MaxResp::Value(0)),
        ];
        assert!(is_legal(&spec, &other_keys));
    }

    #[test]
    fn lagging_keyed_never_invents_values() {
        let spec = LaggingKeyedMaxSpec { k: 2 };
        let seq = vec![
            (KeyedMaxOp::Write { key: 1, v: 5 }, MaxResp::Ok),
            (KeyedMaxOp::Read { key: 1 }, MaxResp::Value(4)),
        ];
        assert!(!is_legal(&spec, &seq));
    }
}
