//! Single-writer atomic snapshot specification (§3.2, after Afek et
//! al. \[1\]).
//!
//! The object has `n` components, one per process, each initially 0.
//! `Update(i, v)` sets component `i` (only process `i` issues it);
//! `Scan` returns the whole view. Snapshots have consensus number 1 and
//! — per Theorem 2 — a wait-free strongly-linearizable implementation
//! from fetch&add.

use crate::{Spec, Value};

/// Operations of an `n`-component snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SnapOp {
    /// `update(v)` by process `i` (single-writer: `i` is the component).
    Update {
        /// Component (= writing process) index.
        i: usize,
        /// New value.
        v: Value,
    },
    /// `scan()`.
    Scan,
}

/// Responses of a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SnapResp {
    /// Response of `update`.
    Ok,
    /// Response of `scan`: the view.
    View(Vec<Value>),
}

/// The snapshot specification; state is the current view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotSpec {
    /// Number of components / processes.
    pub n: usize,
}

impl SnapshotSpec {
    /// Creates a spec with `n` components.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "snapshot needs at least one component");
        SnapshotSpec { n }
    }
}

impl Spec for SnapshotSpec {
    type State = Vec<Value>;
    type Op = SnapOp;
    type Resp = SnapResp;

    fn initial(&self) -> Vec<Value> {
        vec![0; self.n]
    }

    fn step(&self, s: &Vec<Value>, op: &SnapOp) -> Vec<(Vec<Value>, SnapResp)> {
        match op {
            SnapOp::Update { i, v } => {
                assert!(*i < self.n, "component {i} out of range");
                let mut next = s.clone();
                next[*i] = *v;
                vec![(next, SnapResp::Ok)]
            }
            SnapOp::Scan => vec![(s.clone(), SnapResp::View(s.clone()))],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_sees_latest_updates() {
        let spec = SnapshotSpec::new(3);
        let mut s = spec.initial();
        spec.apply(&mut s, &SnapOp::Update { i: 0, v: 7 });
        spec.apply(&mut s, &SnapOp::Update { i: 2, v: 9 });
        spec.apply(&mut s, &SnapOp::Update { i: 0, v: 3 });
        assert_eq!(
            spec.apply(&mut s, &SnapOp::Scan),
            SnapResp::View(vec![3, 0, 9])
        );
    }

    #[test]
    fn initial_view_is_zero() {
        let spec = SnapshotSpec::new(2);
        let mut s = spec.initial();
        assert_eq!(
            spec.apply(&mut s, &SnapOp::Scan),
            SnapResp::View(vec![0, 0])
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_rejects_bad_component() {
        let spec = SnapshotSpec::new(2);
        let mut s = spec.initial();
        spec.apply(&mut s, &SnapOp::Update { i: 5, v: 1 });
    }
}
