//! Simple types (§3.3, after Aspnes & Herlihy \[7\], Ovens & Woelfel \[27\]).
//!
//! A *simple type* is an object where any two operations either
//! **commute** (the state after executing both consecutively is
//! order-independent) or one **overwrites** the other (the state after
//! the overwriting operation is unaffected by whether the other executed
//! immediately before it). Algorithm 1 of the paper gives a wait-free
//! implementation of any simple type from atomic snapshots, which is
//! strongly linearizable when the snapshot is (Theorem 3).
//!
//! [`SimpleTypeSpec`] declares the commute/overwrite structure; the
//! *dominance* relation used by Algorithm 1's `lingraph` is derived from
//! it. [`check_simple_type`] validates the declared structure against
//! the spec's semantics and is used by property tests.

use crate::counters::{
    CounterOp, CounterSpec, IntCounterOp, IntCounterSpec, LogicalClockOp, LogicalClockSpec,
};
use crate::max_register::{MaxOp, MaxRegisterSpec};
use crate::union_set::{UnionSetOp, UnionSetSpec};
use crate::Spec;

/// A sequential spec with declared commute/overwrite structure.
///
/// Laws (checked by [`check_simple_type`]):
/// * every ordered pair `(a, b)` satisfies `commutes(a, b)` or
///   `overwrites(a, b)` or `overwrites(b, a)`;
/// * if `commutes(a, b)`, applying `a; b` and `b; a` from any reachable
///   state yields the same state;
/// * if `overwrites(later, earlier)`, applying `earlier; later` from any
///   reachable state yields the same state as applying `later` alone.
pub trait SimpleTypeSpec: Spec {
    /// Does `later` overwrite `earlier`?
    fn overwrites(&self, later: &Self::Op, earlier: &Self::Op) -> bool;

    /// Do `a` and `b` commute (state-wise)?
    fn commutes(&self, a: &Self::Op, b: &Self::Op) -> bool;

    /// The dominance relation of Theorem 3's proof: `o1` (by process
    /// `p1`) is dominated by `o2` (by process `p2`) iff `o2` overwrites
    /// `o1` but not vice versa, or they overwrite each other and `p1 <
    /// p2`.
    fn dominated(&self, o1: (&Self::Op, usize), o2: (&Self::Op, usize)) -> bool {
        let ow21 = self.overwrites(o2.0, o1.0);
        let ow12 = self.overwrites(o1.0, o2.0);
        ow21 && (!ow12 || o1.1 < o2.1)
    }
}

impl SimpleTypeSpec for MaxRegisterSpec {
    fn overwrites(&self, later: &MaxOp, earlier: &MaxOp) -> bool {
        match (later, earlier) {
            // WriteMax(v1) overwrites WriteMax(v2) iff v1 >= v2.
            (MaxOp::Write(v1), MaxOp::Write(v2)) => v1 >= v2,
            // Any write overwrites a read (reads don't change state).
            (MaxOp::Write(_), MaxOp::Read) => true,
            // Reads overwrite reads (both leave the state unchanged).
            (MaxOp::Read, MaxOp::Read) => true,
            (MaxOp::Read, MaxOp::Write(_)) => false,
        }
    }

    fn commutes(&self, a: &MaxOp, b: &MaxOp) -> bool {
        match (a, b) {
            (MaxOp::Read, MaxOp::Read) => true,
            // Writes commute state-wise (max is commutative).
            (MaxOp::Write(_), MaxOp::Write(_)) => true,
            _ => false,
        }
    }
}

impl SimpleTypeSpec for CounterSpec {
    fn overwrites(&self, later: &CounterOp, earlier: &CounterOp) -> bool {
        matches!(
            (later, earlier),
            (CounterOp::Inc, CounterOp::Read) | (CounterOp::Read, CounterOp::Read)
        )
    }

    fn commutes(&self, a: &CounterOp, b: &CounterOp) -> bool {
        matches!(
            (a, b),
            (CounterOp::Inc, CounterOp::Inc) | (CounterOp::Read, CounterOp::Read)
        )
    }
}

impl SimpleTypeSpec for IntCounterSpec {
    fn overwrites(&self, later: &IntCounterOp, earlier: &IntCounterOp) -> bool {
        match (later, earlier) {
            // Mutations overwrite reads; reads overwrite reads.
            (IntCounterOp::Inc | IntCounterOp::Dec, IntCounterOp::Read) => true,
            (IntCounterOp::Read, IntCounterOp::Read) => true,
            _ => false,
        }
    }

    fn commutes(&self, a: &IntCounterOp, b: &IntCounterOp) -> bool {
        match (a, b) {
            // +1 and −1 commute in every combination.
            (IntCounterOp::Inc | IntCounterOp::Dec, IntCounterOp::Inc | IntCounterOp::Dec) => true,
            (IntCounterOp::Read, IntCounterOp::Read) => true,
            _ => false,
        }
    }
}

impl SimpleTypeSpec for UnionSetSpec {
    fn overwrites(&self, later: &UnionSetOp, earlier: &UnionSetOp) -> bool {
        let later_reads = !matches!(later, UnionSetOp::Insert(_));
        let earlier_reads = !matches!(earlier, UnionSetOp::Insert(_));
        match (later_reads, earlier_reads) {
            // Inserts overwrite reads; reads overwrite reads.
            (_, true) => true,
            // Insert(x) overwrites Insert(x) (idempotent).
            (false, false) => later == earlier,
            (true, false) => false,
        }
    }

    fn commutes(&self, a: &UnionSetOp, b: &UnionSetOp) -> bool {
        let a_reads = !matches!(a, UnionSetOp::Insert(_));
        let b_reads = !matches!(b, UnionSetOp::Insert(_));
        (a_reads && b_reads) || (!a_reads && !b_reads)
    }
}

impl SimpleTypeSpec for LogicalClockSpec {
    fn overwrites(&self, later: &LogicalClockOp, earlier: &LogicalClockOp) -> bool {
        match (later, earlier) {
            (LogicalClockOp::Send(v1), LogicalClockOp::Send(v2)) => v1 >= v2,
            (LogicalClockOp::Send(_), LogicalClockOp::Observe) => true,
            (LogicalClockOp::Observe, LogicalClockOp::Observe) => true,
            (LogicalClockOp::Observe, LogicalClockOp::Send(_)) => false,
        }
    }

    fn commutes(&self, a: &LogicalClockOp, b: &LogicalClockOp) -> bool {
        matches!(
            (a, b),
            (LogicalClockOp::Send(_), LogicalClockOp::Send(_))
                | (LogicalClockOp::Observe, LogicalClockOp::Observe)
        )
    }
}

/// A violation of the simple-type laws found by [`check_simple_type`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimpleTypeViolation<S: Spec> {
    /// Neither commutes nor overwrites holds for the pair.
    Unrelated(S::Op, S::Op),
    /// Declared commuting, but states diverge from some reachable state.
    BadCommute(S::Op, S::Op, S::State),
    /// Declared overwriting, but the earlier op leaks into the state.
    BadOverwrite {
        /// The overwriting operation.
        later: S::Op,
        /// The supposedly-overwritten operation.
        earlier: S::Op,
        /// Reachable state exhibiting the violation.
        state: S::State,
    },
}

/// Validates the declared commute/overwrite structure of `spec` against
/// its semantics, over every state reachable from the initial state by
/// executing up to `depth` operations drawn from `ops`.
///
/// Returns every violation found (empty = the declaration is sound on
/// the explored state space). Only meaningful for deterministic specs.
pub fn check_simple_type<S: SimpleTypeSpec>(
    spec: &S,
    ops: &[S::Op],
    depth: usize,
) -> Vec<SimpleTypeViolation<S>> {
    let mut violations = Vec::new();
    let mut states = vec![spec.initial()];
    let mut frontier = states.clone();
    for _ in 0..depth {
        let mut next = Vec::new();
        for s in &frontier {
            for op in ops {
                let mut t = s.clone();
                spec.apply(&mut t, op);
                if !states.contains(&t) {
                    states.push(t.clone());
                    next.push(t);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }

    for a in ops {
        for b in ops {
            let related = spec.commutes(a, b) || spec.overwrites(a, b) || spec.overwrites(b, a);
            if !related {
                violations.push(SimpleTypeViolation::Unrelated(a.clone(), b.clone()));
            }
            for s in &states {
                if spec.commutes(a, b) {
                    let mut ab = s.clone();
                    spec.apply(&mut ab, a);
                    spec.apply(&mut ab, b);
                    let mut ba = s.clone();
                    spec.apply(&mut ba, b);
                    spec.apply(&mut ba, a);
                    if ab != ba {
                        violations.push(SimpleTypeViolation::BadCommute(
                            a.clone(),
                            b.clone(),
                            s.clone(),
                        ));
                    }
                }
                if spec.overwrites(a, b) {
                    // state after (b; a) must equal state after (a)
                    let mut ba = s.clone();
                    spec.apply(&mut ba, b);
                    spec.apply(&mut ba, a);
                    let mut only_a = s.clone();
                    spec.apply(&mut only_a, a);
                    if ba != only_a {
                        violations.push(SimpleTypeViolation::BadOverwrite {
                            later: a.clone(),
                            earlier: b.clone(),
                            state: s.clone(),
                        });
                    }
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_register_structure_is_sound() {
        let ops = vec![
            MaxOp::Read,
            MaxOp::Write(1),
            MaxOp::Write(3),
            MaxOp::Write(3),
        ];
        let violations = check_simple_type(&MaxRegisterSpec, &ops, 3);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn counter_structure_is_sound() {
        let ops = vec![CounterOp::Inc, CounterOp::Read];
        let violations = check_simple_type(&CounterSpec, &ops, 4);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn int_counter_structure_is_sound() {
        let ops = vec![IntCounterOp::Inc, IntCounterOp::Dec, IntCounterOp::Read];
        let violations = check_simple_type(&IntCounterSpec, &ops, 4);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn union_set_structure_is_sound() {
        let ops = vec![
            UnionSetOp::Insert(1),
            UnionSetOp::Insert(2),
            UnionSetOp::Contains(1),
            UnionSetOp::ReadAll,
        ];
        let violations = check_simple_type(&UnionSetSpec, &ops, 3);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn logical_clock_structure_is_sound() {
        let ops = vec![
            LogicalClockOp::Observe,
            LogicalClockOp::Send(1),
            LogicalClockOp::Send(4),
        ];
        let violations = check_simple_type(&LogicalClockSpec, &ops, 3);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn dominance_follows_the_paper() {
        let spec = MaxRegisterSpec;
        // Write(5) overwrites Write(3) but not vice versa: Write(3) dominated.
        assert!(spec.dominated((&MaxOp::Write(3), 0), (&MaxOp::Write(5), 1)));
        assert!(!spec.dominated((&MaxOp::Write(5), 1), (&MaxOp::Write(3), 0)));
        // Equal writes overwrite each other: smaller pid dominated.
        assert!(spec.dominated((&MaxOp::Write(4), 0), (&MaxOp::Write(4), 1)));
        assert!(!spec.dominated((&MaxOp::Write(4), 1), (&MaxOp::Write(4), 0)));
        // Read dominated by writes.
        assert!(spec.dominated((&MaxOp::Read, 2), (&MaxOp::Write(1), 0)));
    }

    #[test]
    fn checker_catches_a_bogus_declaration() {
        // A deliberately wrong simple-type declaration over the counter:
        // claim Read overwrites Inc (it does not).
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        struct BogusCounter;
        impl Spec for BogusCounter {
            type State = u64;
            type Op = CounterOp;
            type Resp = crate::counters::CounterResp;
            fn initial(&self) -> u64 {
                0
            }
            fn step(&self, s: &u64, op: &CounterOp) -> Vec<(u64, Self::Resp)> {
                CounterSpec.step(s, op)
            }
        }
        impl SimpleTypeSpec for BogusCounter {
            fn overwrites(&self, later: &CounterOp, _earlier: &CounterOp) -> bool {
                matches!(later, CounterOp::Read)
            }
            fn commutes(&self, a: &CounterOp, b: &CounterOp) -> bool {
                a == b
            }
        }
        let violations = check_simple_type(&BogusCounter, &[CounterOp::Inc, CounterOp::Read], 2);
        assert!(violations
            .iter()
            .any(|v| matches!(v, SimpleTypeViolation::BadOverwrite { .. })));
    }
}
