//! Swap register specification.
//!
//! `swap(v)` writes `v` and returns the previous value. Swap has
//! consensus number 2; the paper lists it among the "interfering"
//! primitives covered by the Section 5 impossibility (Corollary 15) and
//! cites the Afek–Morrison–Wertheim wait-free swap implementation \[3\] as
//! linearizable but not strongly linearizable.

use crate::{Spec, Value};

/// Operations of a swap register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwapOp {
    /// `swap(v)`: write `v`, return the previous value.
    Swap(Value),
    /// `read()`: return the current value.
    Read,
}

/// Responses of a swap register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwapResp {
    /// The previous (for `swap`) or current (for `read`) value.
    Value(Value),
}

/// The swap register specification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapSpec;

impl Spec for SwapSpec {
    type State = Value;
    type Op = SwapOp;
    type Resp = SwapResp;

    fn initial(&self) -> Value {
        0
    }

    fn step(&self, s: &Value, op: &SwapOp) -> Vec<(Value, SwapResp)> {
        match op {
            SwapOp::Swap(v) => vec![(*v, SwapResp::Value(*s))],
            SwapOp::Read => vec![(*s, SwapResp::Value(*s))],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_returns_previous() {
        let spec = SwapSpec;
        let mut s = spec.initial();
        assert_eq!(spec.apply(&mut s, &SwapOp::Swap(4)), SwapResp::Value(0));
        assert_eq!(spec.apply(&mut s, &SwapOp::Swap(9)), SwapResp::Value(4));
        assert_eq!(spec.apply(&mut s, &SwapOp::Read), SwapResp::Value(9));
    }
}
