//! Put/take set specification (§4.3).
//!
//! A set object provides `put(x)`, adding item `x` and returning `OK`,
//! and `take()`, which returns `EMPTY` if the set is empty and otherwise
//! removes and returns **any** item — the choice is nondeterministic, so
//! [`Spec::step`] returns one outcome per removable item. Per the paper
//! we assume every item is put at most once (callers enforce this; the
//! spec tolerates re-puts by treating the state as a set).

use std::collections::BTreeSet;

use crate::{Spec, Value};

/// Operations of the put/take set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetOp {
    /// `put(x)`.
    Put(Value),
    /// `take()`.
    Take,
}

/// Responses of the put/take set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetResp {
    /// Response of `put`.
    Ok,
    /// `take` removed and returned this item.
    Item(Value),
    /// `take` found the set empty.
    Empty,
}

/// The put/take set specification; state is the set of present items.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PutTakeSetSpec;

impl Spec for PutTakeSetSpec {
    type State = BTreeSet<Value>;
    type Op = SetOp;
    type Resp = SetResp;

    fn initial(&self) -> BTreeSet<Value> {
        BTreeSet::new()
    }

    fn step(&self, s: &BTreeSet<Value>, op: &SetOp) -> Vec<(BTreeSet<Value>, SetResp)> {
        match op {
            SetOp::Put(x) => {
                let mut next = s.clone();
                next.insert(*x);
                vec![(next, SetResp::Ok)]
            }
            SetOp::Take => {
                if s.is_empty() {
                    vec![(s.clone(), SetResp::Empty)]
                } else {
                    s.iter()
                        .map(|&x| {
                            let mut next = s.clone();
                            next.remove(&x);
                            (next, SetResp::Item(x))
                        })
                        .collect()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_legal;

    #[test]
    fn take_on_empty_returns_empty() {
        let spec = PutTakeSetSpec;
        let outcomes = spec.step(&spec.initial(), &SetOp::Take);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].1, SetResp::Empty);
    }

    #[test]
    fn take_is_nondeterministic_over_items() {
        let spec = PutTakeSetSpec;
        let mut s = spec.initial();
        spec.apply(&mut s, &SetOp::Put(1));
        spec.apply(&mut s, &SetOp::Put(2));
        let outcomes = spec.step(&s, &SetOp::Take);
        let resps: Vec<_> = outcomes.iter().map(|(_, r)| *r).collect();
        assert!(resps.contains(&SetResp::Item(1)));
        assert!(resps.contains(&SetResp::Item(2)));
        assert_eq!(outcomes.len(), 2);
    }

    #[test]
    fn each_item_taken_at_most_once() {
        let spec = PutTakeSetSpec;
        // put 1; take→1; take→1 again is illegal
        let bad = vec![
            (SetOp::Put(1), SetResp::Ok),
            (SetOp::Take, SetResp::Item(1)),
            (SetOp::Take, SetResp::Item(1)),
        ];
        assert!(!is_legal(&spec, &bad));
        let good = vec![
            (SetOp::Put(1), SetResp::Ok),
            (SetOp::Take, SetResp::Item(1)),
            (SetOp::Take, SetResp::Empty),
        ];
        assert!(is_legal(&spec, &good));
    }

    #[test]
    fn cannot_take_an_item_never_put() {
        let spec = PutTakeSetSpec;
        let bad = vec![
            (SetOp::Put(1), SetResp::Ok),
            (SetOp::Take, SetResp::Item(2)),
        ];
        assert!(!is_legal(&spec, &bad));
    }
}
