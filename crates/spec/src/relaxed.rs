//! Relaxed queues and stacks from Section 5.
//!
//! These are the relaxations the paper proves are still *k-ordering*
//! (Definition 11) and hence still impossible to implement lock-free and
//! strongly-linearizably from consensus-number-2 primitives:
//!
//! * **multiplicity** \[11\] — consecutive (concurrent) `deq`/`pop`
//!   operations may return the same item;
//! * **m-stuttering** \[19\] — an operation may have no effect, at most
//!   `m` times consecutively per operation type;
//! * **k-out-of-order** \[19\] — `deq` returns one of the `k` oldest
//!   items.
//!
//! All three are genuinely nondeterministic sequential specifications:
//! [`crate::Spec::step`] returns every allowed outcome.

use std::collections::VecDeque;

use crate::counters::{CounterOp, CounterResp};
use crate::fifo::{QueueOp, QueueResp, StackOp, StackResp};
use crate::{Spec, Value};

// ---------------------------------------------------------------------
// Multiplicity
// ---------------------------------------------------------------------

/// State of a multiplicity queue: the queue, plus the item returned by
/// the immediately preceding `deq` (if the preceding operation was a
/// `deq`), which the next `deq` may duplicate.
///
/// This encodes, as a sequential machine, the set-linearizability
/// relaxation of \[11\]: a *block of consecutive* dequeues may return the
/// same item; the item is removed once. Any interleaved `enq` ends the
/// block (footnote 3 of the paper: duplication only among operations
/// linearized consecutively).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct MultiplicityQueueState {
    /// Items currently in the queue.
    pub items: VecDeque<Value>,
    /// Item returned by the immediately preceding `deq`, if any.
    pub last_deq: Option<Value>,
}

/// Queue with multiplicity \[11\].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MultiplicityQueueSpec;

impl Spec for MultiplicityQueueSpec {
    type State = MultiplicityQueueState;
    type Op = QueueOp;
    type Resp = QueueResp;

    fn initial(&self) -> Self::State {
        MultiplicityQueueState::default()
    }

    fn step(&self, s: &Self::State, op: &QueueOp) -> Vec<(Self::State, QueueResp)> {
        match op {
            QueueOp::Enq(v) => {
                let mut next = s.clone();
                next.items.push_back(*v);
                next.last_deq = None;
                vec![(next, QueueResp::Ok)]
            }
            QueueOp::Deq => {
                let mut outcomes = Vec::new();
                match s.items.front().copied() {
                    None => {
                        let mut next = s.clone();
                        next.last_deq = None;
                        outcomes.push((next, QueueResp::Empty));
                    }
                    Some(v) => {
                        let mut next = s.clone();
                        next.items.pop_front();
                        next.last_deq = Some(v);
                        outcomes.push((next, QueueResp::Item(v)));
                    }
                }
                // Duplicate the previous deq's item (concurrent block).
                if let Some(d) = s.last_deq {
                    outcomes.push((s.clone(), QueueResp::Item(d)));
                }
                outcomes
            }
        }
    }
}

/// State of a multiplicity stack (mirror of the queue state).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct MultiplicityStackState {
    /// Items currently in the stack (top is last).
    pub items: Vec<Value>,
    /// Item returned by the immediately preceding `pop`, if any.
    pub last_pop: Option<Value>,
}

/// Stack with multiplicity \[11\].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MultiplicityStackSpec;

impl Spec for MultiplicityStackSpec {
    type State = MultiplicityStackState;
    type Op = StackOp;
    type Resp = StackResp;

    fn initial(&self) -> Self::State {
        MultiplicityStackState::default()
    }

    fn step(&self, s: &Self::State, op: &StackOp) -> Vec<(Self::State, StackResp)> {
        match op {
            StackOp::Push(v) => {
                let mut next = s.clone();
                next.items.push(*v);
                next.last_pop = None;
                vec![(next, StackResp::Ok)]
            }
            StackOp::Pop => {
                let mut outcomes = Vec::new();
                match s.items.last().copied() {
                    None => {
                        let mut next = s.clone();
                        next.last_pop = None;
                        outcomes.push((next, StackResp::Empty));
                    }
                    Some(v) => {
                        let mut next = s.clone();
                        next.items.pop();
                        next.last_pop = Some(v);
                        outcomes.push((next, StackResp::Item(v)));
                    }
                }
                if let Some(d) = s.last_pop {
                    outcomes.push((s.clone(), StackResp::Item(d)));
                }
                outcomes
            }
        }
    }
}

// ---------------------------------------------------------------------
// m-stuttering
// ---------------------------------------------------------------------

/// State of an m-stuttering queue: the queue plus one stutter counter
/// per operation type (the paper's footnote 4: "the state of the object
/// has a counter per operation type, and if the corresponding counter is
/// less than m, the object non-deterministically decides whether the
/// operation has effect or not, and if it takes effect, the counter is
/// set to zero").
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct StutteringQueueState {
    /// Items currently in the queue.
    pub items: VecDeque<Value>,
    /// Consecutive ineffective enqueues.
    pub enq_stutter: u32,
    /// Consecutive ineffective dequeues.
    pub deq_stutter: u32,
}

/// m-stuttering queue \[19\]: an operation may have no effect, at most `m`
/// times consecutively per operation type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StutteringQueueSpec {
    /// Maximum consecutive stutters per operation type.
    pub m: u32,
}

impl Spec for StutteringQueueSpec {
    type State = StutteringQueueState;
    type Op = QueueOp;
    type Resp = QueueResp;

    fn initial(&self) -> Self::State {
        StutteringQueueState::default()
    }

    fn step(&self, s: &Self::State, op: &QueueOp) -> Vec<(Self::State, QueueResp)> {
        match op {
            QueueOp::Enq(v) => {
                let mut effect = s.clone();
                effect.items.push_back(*v);
                effect.enq_stutter = 0;
                let mut outcomes = vec![(effect, QueueResp::Ok)];
                if s.enq_stutter < self.m {
                    let mut stutter = s.clone();
                    stutter.enq_stutter += 1;
                    outcomes.push((stutter, QueueResp::Ok));
                }
                outcomes
            }
            QueueOp::Deq => match s.items.front().copied() {
                None => {
                    // An empty dequeue changes nothing; count it as
                    // effectful (it faithfully reports the state).
                    let mut next = s.clone();
                    next.deq_stutter = 0;
                    vec![(next, QueueResp::Empty)]
                }
                Some(v) => {
                    let mut effect = s.clone();
                    effect.items.pop_front();
                    effect.deq_stutter = 0;
                    let mut outcomes = vec![(effect, QueueResp::Item(v))];
                    if s.deq_stutter < self.m {
                        // Stutter: return the oldest item without removing it.
                        let mut stutter = s.clone();
                        stutter.deq_stutter += 1;
                        outcomes.push((stutter, QueueResp::Item(v)));
                    }
                    outcomes
                }
            },
        }
    }
}

/// State of an m-stuttering stack.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct StutteringStackState {
    /// Items currently in the stack (top is last).
    pub items: Vec<Value>,
    /// Consecutive ineffective pushes.
    pub push_stutter: u32,
    /// Consecutive ineffective pops.
    pub pop_stutter: u32,
}

/// m-stuttering stack \[19\].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StutteringStackSpec {
    /// Maximum consecutive stutters per operation type.
    pub m: u32,
}

impl Spec for StutteringStackSpec {
    type State = StutteringStackState;
    type Op = StackOp;
    type Resp = StackResp;

    fn initial(&self) -> Self::State {
        StutteringStackState::default()
    }

    fn step(&self, s: &Self::State, op: &StackOp) -> Vec<(Self::State, StackResp)> {
        match op {
            StackOp::Push(v) => {
                let mut effect = s.clone();
                effect.items.push(*v);
                effect.push_stutter = 0;
                let mut outcomes = vec![(effect, StackResp::Ok)];
                if s.push_stutter < self.m {
                    let mut stutter = s.clone();
                    stutter.push_stutter += 1;
                    outcomes.push((stutter, StackResp::Ok));
                }
                outcomes
            }
            StackOp::Pop => match s.items.last().copied() {
                None => {
                    let mut next = s.clone();
                    next.pop_stutter = 0;
                    vec![(next, StackResp::Empty)]
                }
                Some(v) => {
                    let mut effect = s.clone();
                    effect.items.pop();
                    effect.pop_stutter = 0;
                    let mut outcomes = vec![(effect, StackResp::Item(v))];
                    if s.pop_stutter < self.m {
                        let mut stutter = s.clone();
                        stutter.pop_stutter += 1;
                        outcomes.push((stutter, StackResp::Item(v)));
                    }
                    outcomes
                }
            },
        }
    }
}

// ---------------------------------------------------------------------
// k-out-of-order
// ---------------------------------------------------------------------

/// k-out-of-order queue \[19\]: `deq` removes and returns one of the `k`
/// oldest items (1-out-of-order is an exact queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfOrderQueueSpec {
    /// Window size: `deq` may return any of the `k` oldest items.
    pub k: usize,
}

impl Spec for OutOfOrderQueueSpec {
    type State = VecDeque<Value>;
    type Op = QueueOp;
    type Resp = QueueResp;

    fn initial(&self) -> VecDeque<Value> {
        VecDeque::new()
    }

    fn step(&self, s: &VecDeque<Value>, op: &QueueOp) -> Vec<(VecDeque<Value>, QueueResp)> {
        match op {
            QueueOp::Enq(v) => {
                let mut next = s.clone();
                next.push_back(*v);
                vec![(next, QueueResp::Ok)]
            }
            QueueOp::Deq => {
                if s.is_empty() {
                    return vec![(s.clone(), QueueResp::Empty)];
                }
                (0..self.k.min(s.len()))
                    .map(|idx| {
                        let mut next = s.clone();
                        let v = next.remove(idx).expect("index in range");
                        (next, QueueResp::Item(v))
                    })
                    .collect()
            }
        }
    }
}

// ---------------------------------------------------------------------
// k-lagging counter
// ---------------------------------------------------------------------

/// k-lagging monotonic counter, the counter-shaped analogue of the
/// k-out-of-order relaxation: `Inc` is exact, but `Read` may return any
/// value in `[count − k, count]` (never below 0). A 0-lagging counter
/// is the exact [`crate::counters::CounterSpec`].
///
/// This is the specification a *sharded* counter with a one-pass
/// sum-read meets **strongly** on bounded scenarios: a read that sweeps
/// the shards once can miss an increment that landed behind its sweep
/// frontier while catching a later one ahead of it, so its value lags
/// the exact count by at most the number of increments concurrent with
/// the sweep. Against the exact counter the sweep stays linearizable
/// per history but loses prefix closure (DESIGN.md §6; the checker
/// exhibits the `Witness` in `tests/non_sl_witnesses.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaggingCounterSpec {
    /// Maximum lag a `Read` may exhibit.
    pub k: Value,
}

impl Spec for LaggingCounterSpec {
    type State = Value;
    type Op = CounterOp;
    type Resp = CounterResp;

    fn initial(&self) -> Value {
        0
    }

    fn step(&self, s: &Value, op: &CounterOp) -> Vec<(Value, CounterResp)> {
        match op {
            CounterOp::Inc => vec![(s + 1, CounterResp::Ok)],
            CounterOp::Read => (s.saturating_sub(self.k)..=*s)
                .map(|v| (*s, CounterResp::Value(v)))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------
// k-stale max register
// ---------------------------------------------------------------------

/// k-stale max register, the max-register analogue of
/// [`LaggingCounterSpec`]: `Write` is exact, but `Read` may return the
/// running maximum as it stood up to `k` writes ago (never a value the
/// register did not previously hold, and never ahead of the current
/// maximum). A 0-stale max register is the exact
/// [`crate::max_register::MaxRegisterSpec`].
///
/// This is the specification a *combining* front-end's cached read
/// meets **strongly**: the combiner publishes whole-object folds to a
/// single cache register once per batch, while operations that lose
/// the combiner election apply directly to the inner object and
/// complete without republishing — so a 1-load cached read returns a
/// previously-published exact fold that may miss up to `k` completed
/// writes (DESIGN.md §8; the checker exhibits the exact-spec `Witness`
/// in `tests/non_sl_witnesses.rs` and certifies this spec on the same
/// scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaggingMaxSpec {
    /// Maximum number of writes a `Read` may trail by.
    pub k: usize,
}

/// State of a [`LaggingMaxSpec`]: the running maximum after each of the
/// last `k` writes plus the current one, oldest first.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LaggingMaxState {
    /// Window of recent running maxima; the last entry is current.
    pub recent: VecDeque<Value>,
}

impl Spec for LaggingMaxSpec {
    type State = LaggingMaxState;
    type Op = crate::max_register::MaxOp;
    type Resp = crate::max_register::MaxResp;

    fn initial(&self) -> LaggingMaxState {
        LaggingMaxState {
            recent: VecDeque::from([0]),
        }
    }

    fn step(
        &self,
        s: &LaggingMaxState,
        op: &crate::max_register::MaxOp,
    ) -> Vec<(LaggingMaxState, crate::max_register::MaxResp)> {
        use crate::max_register::{MaxOp, MaxResp};
        match op {
            MaxOp::Write(v) => {
                let mut next = s.clone();
                let cur = *next.recent.back().expect("window is never empty");
                next.recent.push_back(cur.max(*v));
                while next.recent.len() > self.k + 1 {
                    next.recent.pop_front();
                }
                vec![(next, MaxResp::Ok)]
            }
            MaxOp::Read => {
                let mut out: Vec<(LaggingMaxState, MaxResp)> = Vec::new();
                for &v in &s.recent {
                    if !out.iter().any(|(_, r)| *r == MaxResp::Value(v)) {
                        out.push((s.clone(), MaxResp::Value(v)));
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_legal;

    #[test]
    fn multiplicity_queue_allows_duplicate_in_block() {
        let spec = MultiplicityQueueSpec;
        let seq = vec![
            (QueueOp::Enq(1), QueueResp::Ok),
            (QueueOp::Enq(2), QueueResp::Ok),
            (QueueOp::Deq, QueueResp::Item(1)),
            (QueueOp::Deq, QueueResp::Item(1)), // duplicate of the block
            (QueueOp::Deq, QueueResp::Item(2)),
        ];
        assert!(is_legal(&spec, &seq));
    }

    #[test]
    fn multiplicity_queue_enq_breaks_the_block() {
        let spec = MultiplicityQueueSpec;
        let seq = vec![
            (QueueOp::Enq(1), QueueResp::Ok),
            (QueueOp::Deq, QueueResp::Item(1)),
            (QueueOp::Enq(2), QueueResp::Ok),
            (QueueOp::Deq, QueueResp::Item(1)), // block ended: illegal
        ];
        assert!(!is_legal(&spec, &seq));
    }

    #[test]
    fn multiplicity_queue_never_invents_items() {
        let spec = MultiplicityQueueSpec;
        let seq = vec![
            (QueueOp::Enq(1), QueueResp::Ok),
            (QueueOp::Deq, QueueResp::Item(9)),
        ];
        assert!(!is_legal(&spec, &seq));
    }

    #[test]
    fn multiplicity_stack_allows_duplicate_pop() {
        let spec = MultiplicityStackSpec;
        let seq = vec![
            (StackOp::Push(7), StackResp::Ok),
            (StackOp::Pop, StackResp::Item(7)),
            (StackOp::Pop, StackResp::Item(7)),
            (StackOp::Pop, StackResp::Empty),
        ];
        assert!(is_legal(&spec, &seq));
    }

    #[test]
    fn stuttering_queue_bounded_stutter() {
        let spec = StutteringQueueSpec { m: 1 };
        // Two ineffective enqueues in a row exceed m=1; at least one of
        // the first two must land, so three dequeues of the same item
        // (with one removal + one stutter allowed) cannot all succeed
        // after only one effective enqueue... construct directly:
        let seq = vec![
            (QueueOp::Enq(1), QueueResp::Ok),
            (QueueOp::Deq, QueueResp::Item(1)), // stutter (not removed)
            (QueueOp::Deq, QueueResp::Item(1)), // effect (removed)
            (QueueOp::Deq, QueueResp::Empty),
        ];
        assert!(is_legal(&spec, &seq));
        let too_many = vec![
            (QueueOp::Enq(1), QueueResp::Ok),
            (QueueOp::Deq, QueueResp::Item(1)),
            (QueueOp::Deq, QueueResp::Item(1)),
            (QueueOp::Deq, QueueResp::Item(1)), // needs 2 consecutive stutters
        ];
        assert!(!is_legal(&spec, &too_many));
    }

    #[test]
    fn stuttering_queue_one_of_m_plus_one_enqueues_lands() {
        let spec = StutteringQueueSpec { m: 2 };
        // m+1 = 3 consecutive enqueues: at least one lands, so a deq
        // cannot see empty afterwards.
        let seq = vec![
            (QueueOp::Enq(1), QueueResp::Ok),
            (QueueOp::Enq(2), QueueResp::Ok),
            (QueueOp::Enq(3), QueueResp::Ok),
            (QueueOp::Deq, QueueResp::Empty),
        ];
        assert!(!is_legal(&spec, &seq));
    }

    #[test]
    fn stuttering_stack_mirrors_queue() {
        let spec = StutteringStackSpec { m: 1 };
        let seq = vec![
            (StackOp::Push(1), StackResp::Ok),
            (StackOp::Pop, StackResp::Item(1)),
            (StackOp::Pop, StackResp::Item(1)),
            (StackOp::Pop, StackResp::Empty),
        ];
        assert!(is_legal(&spec, &seq));
    }

    #[test]
    fn out_of_order_queue_window() {
        let spec = OutOfOrderQueueSpec { k: 2 };
        let mut s = spec.initial();
        for v in [1, 2, 3] {
            spec.apply(&mut s, &QueueOp::Enq(v));
        }
        let outcomes = spec.step(&s, &QueueOp::Deq);
        let resps: Vec<_> = outcomes.iter().map(|(_, r)| *r).collect();
        assert!(resps.contains(&QueueResp::Item(1)));
        assert!(resps.contains(&QueueResp::Item(2)));
        assert!(!resps.contains(&QueueResp::Item(3)));
    }

    #[test]
    fn one_out_of_order_is_exact_queue() {
        let spec = OutOfOrderQueueSpec { k: 1 };
        let seq = vec![
            (QueueOp::Enq(1), QueueResp::Ok),
            (QueueOp::Enq(2), QueueResp::Ok),
            (QueueOp::Deq, QueueResp::Item(2)),
        ];
        assert!(!is_legal(&spec, &seq));
    }

    #[test]
    fn out_of_order_empty_is_epsilon() {
        let spec = OutOfOrderQueueSpec { k: 3 };
        let outcomes = spec.step(&spec.initial(), &QueueOp::Deq);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].1, QueueResp::Empty);
    }

    #[test]
    fn lagging_counter_read_window() {
        let spec = LaggingCounterSpec { k: 1 };
        let seq = vec![
            (CounterOp::Inc, CounterResp::Ok),
            (CounterOp::Inc, CounterResp::Ok),
            (CounterOp::Read, CounterResp::Value(1)), // lags by one
            (CounterOp::Read, CounterResp::Value(2)), // exact
        ];
        assert!(is_legal(&spec, &seq));
        let too_stale = vec![
            (CounterOp::Inc, CounterResp::Ok),
            (CounterOp::Inc, CounterResp::Ok),
            (CounterOp::Read, CounterResp::Value(0)), // lag 2 > k
        ];
        assert!(!is_legal(&spec, &too_stale));
        let ahead = vec![(CounterOp::Read, CounterResp::Value(1))];
        assert!(!is_legal(&spec, &ahead), "reads never run ahead");
    }

    #[test]
    fn zero_lagging_counter_is_exact() {
        let spec = LaggingCounterSpec { k: 0 };
        let mut s = spec.initial();
        spec.apply(&mut s, &CounterOp::Inc);
        assert_eq!(
            spec.apply(&mut s, &CounterOp::Read),
            CounterResp::Value(1),
            "k = 0 leaves a single legal read"
        );
    }

    #[test]
    fn lagging_max_read_window() {
        use crate::max_register::{MaxOp, MaxResp};
        let spec = LaggingMaxSpec { k: 1 };
        let seq = vec![
            (MaxOp::Write(4), MaxResp::Ok),
            (MaxOp::Write(9), MaxResp::Ok),
            (MaxOp::Read, MaxResp::Value(4)), // one write stale
            (MaxOp::Read, MaxResp::Value(9)), // current
        ];
        assert!(is_legal(&spec, &seq));
        let too_stale = vec![
            (MaxOp::Write(4), MaxResp::Ok),
            (MaxOp::Write(6), MaxResp::Ok),
            (MaxOp::Write(9), MaxResp::Ok),
            (MaxOp::Read, MaxResp::Value(4)), // two writes stale > k
        ];
        assert!(!is_legal(&spec, &too_stale));
        let invented = vec![
            (MaxOp::Write(4), MaxResp::Ok),
            (MaxOp::Read, MaxResp::Value(3)), // never held
        ];
        assert!(!is_legal(&spec, &invented));
    }

    #[test]
    fn zero_stale_max_is_exact() {
        use crate::max_register::{MaxOp, MaxResp};
        let spec = LaggingMaxSpec { k: 0 };
        let mut s = spec.initial();
        spec.apply(&mut s, &MaxOp::Write(5));
        assert_eq!(
            spec.apply(&mut s, &MaxOp::Read),
            MaxResp::Value(5),
            "k = 0 leaves a single legal read"
        );
        // Smaller writes do not shrink the window's newest entry.
        spec.apply(&mut s, &MaxOp::Write(2));
        assert_eq!(spec.apply(&mut s, &MaxOp::Read), MaxResp::Value(5));
    }

    #[test]
    fn lagging_counter_never_goes_negative() {
        let spec = LaggingCounterSpec { k: 5 };
        let outcomes = spec.step(&spec.initial(), &CounterOp::Read);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].1, CounterResp::Value(0));
    }
}
