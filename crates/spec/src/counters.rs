//! Counter-family specifications: monotonic counter (§3.3 simple type),
//! readable fetch&increment (§4.2) and fetch&add.
//!
//! The paper's readable fetch&increment (Theorem 9) returns, per its
//! test&set-array implementation, the 1-based index of the first
//! test&set object won — so the object's value starts at 1 and
//! `FetchInc` returns the *pre*-increment value.

use crate::{Spec, Value};

/// Operations of a monotonic counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterOp {
    /// Increment by one; returns `Ok`.
    Inc,
    /// Read the current count.
    Read,
}

/// Responses of a monotonic counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterResp {
    /// Response of `Inc`.
    Ok,
    /// Response of `Read`.
    Value(Value),
}

/// Monotonic counter: a simple type (increments commute; increments
/// overwrite reads; reads commute).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSpec;

impl Spec for CounterSpec {
    type State = Value;
    type Op = CounterOp;
    type Resp = CounterResp;

    fn initial(&self) -> Value {
        0
    }

    fn step(&self, s: &Value, op: &CounterOp) -> Vec<(Value, CounterResp)> {
        match op {
            CounterOp::Inc => vec![(s + 1, CounterResp::Ok)],
            CounterOp::Read => vec![(*s, CounterResp::Value(*s))],
        }
    }
}

/// Operations of a readable fetch&increment object (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchIncOp {
    /// `fetch&increment()`: returns the current value, then increments.
    FetchInc,
    /// `read()`: returns the current value.
    Read,
}

/// Responses of a readable fetch&increment object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchIncResp {
    /// The value observed (pre-increment for `FetchInc`).
    Value(Value),
}

/// Readable fetch&increment, initial value 1 (matching the §4.2
/// implementation whose first winner obtains index 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchIncSpec;

impl Spec for FetchIncSpec {
    type State = Value;
    type Op = FetchIncOp;
    type Resp = FetchIncResp;

    fn initial(&self) -> Value {
        1
    }

    fn step(&self, s: &Value, op: &FetchIncOp) -> Vec<(Value, FetchIncResp)> {
        match op {
            FetchIncOp::FetchInc => vec![(s + 1, FetchIncResp::Value(*s))],
            FetchIncOp::Read => vec![(*s, FetchIncResp::Value(*s))],
        }
    }
}

/// Operations of a fetch&add object (the primitive's own sequential
/// spec, used to validate the primitive wrappers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaaOp {
    /// `fetch&add(k)`: returns the previous value.
    Add(Value),
    /// `read()` (= `fetch&add(0)`).
    Read,
}

/// Responses of a fetch&add object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaaResp {
    /// The previous value.
    Value(Value),
}

/// Fetch&add on a `u64`, wrapping on overflow (matching hardware).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaaSpec;

impl Spec for FaaSpec {
    type State = Value;
    type Op = FaaOp;
    type Resp = FaaResp;

    fn initial(&self) -> Value {
        0
    }

    fn step(&self, s: &Value, op: &FaaOp) -> Vec<(Value, FaaResp)> {
        match op {
            FaaOp::Add(k) => vec![(s.wrapping_add(*k), FaaResp::Value(*s))],
            FaaOp::Read => vec![(*s, FaaResp::Value(*s))],
        }
    }
}

/// Operations of a non-monotonic (up/down) counter — the paper's §3.3
/// lists "(monotonic and non-monotonic) counter" among the simple
/// types: increments and decrements commute with each other, and both
/// overwrite reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntCounterOp {
    /// Increment by one; returns `Ok`.
    Inc,
    /// Decrement by one; returns `Ok`.
    Dec,
    /// Read the current count.
    Read,
}

/// Responses of a non-monotonic counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntCounterResp {
    /// Response of `Inc` / `Dec`.
    Ok,
    /// Response of `Read` (may be negative).
    Value(i64),
}

/// Non-monotonic counter (§3.3 simple type).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntCounterSpec;

impl Spec for IntCounterSpec {
    type State = i64;
    type Op = IntCounterOp;
    type Resp = IntCounterResp;

    fn initial(&self) -> i64 {
        0
    }

    fn step(&self, s: &i64, op: &IntCounterOp) -> Vec<(i64, IntCounterResp)> {
        match op {
            IntCounterOp::Inc => vec![(s + 1, IntCounterResp::Ok)],
            IntCounterOp::Dec => vec![(s - 1, IntCounterResp::Ok)],
            IntCounterOp::Read => vec![(*s, IntCounterResp::Value(*s))],
        }
    }
}

/// Operations of a logical clock (a simple type from §3.3: "counters,
/// logical clocks and certain set objects").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicalClockOp {
    /// Merge a remote timestamp: state becomes `max(state, v + 1)`.
    Send(Value),
    /// Read the clock.
    Observe,
}

/// Responses of a logical clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicalClockResp {
    /// Response of `Send`.
    Ok,
    /// Response of `Observe`.
    Time(Value),
}

/// Lamport-style logical clock: `Send(v)` merges a remote timestamp
/// (sends commute — `max` is commutative), `Observe` reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogicalClockSpec;

impl Spec for LogicalClockSpec {
    type State = Value;
    type Op = LogicalClockOp;
    type Resp = LogicalClockResp;

    fn initial(&self) -> Value {
        0
    }

    fn step(&self, s: &Value, op: &LogicalClockOp) -> Vec<(Value, LogicalClockResp)> {
        match op {
            LogicalClockOp::Send(v) => vec![((*s).max(v + 1), LogicalClockResp::Ok)],
            LogicalClockOp::Observe => vec![(*s, LogicalClockResp::Time(*s))],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_clock_merges_monotonically() {
        let spec = LogicalClockSpec;
        let mut s = spec.initial();
        spec.apply(&mut s, &LogicalClockOp::Send(5));
        spec.apply(&mut s, &LogicalClockOp::Send(2));
        assert_eq!(
            spec.apply(&mut s, &LogicalClockOp::Observe),
            LogicalClockResp::Time(6)
        );
    }

    #[test]
    fn counter_counts() {
        let spec = CounterSpec;
        let mut s = spec.initial();
        assert_eq!(spec.apply(&mut s, &CounterOp::Read), CounterResp::Value(0));
        spec.apply(&mut s, &CounterOp::Inc);
        spec.apply(&mut s, &CounterOp::Inc);
        assert_eq!(spec.apply(&mut s, &CounterOp::Read), CounterResp::Value(2));
    }

    #[test]
    fn fetch_inc_starts_at_one_and_returns_pre_value() {
        let spec = FetchIncSpec;
        let mut s = spec.initial();
        assert_eq!(
            spec.apply(&mut s, &FetchIncOp::Read),
            FetchIncResp::Value(1)
        );
        assert_eq!(
            spec.apply(&mut s, &FetchIncOp::FetchInc),
            FetchIncResp::Value(1)
        );
        assert_eq!(
            spec.apply(&mut s, &FetchIncOp::FetchInc),
            FetchIncResp::Value(2)
        );
        assert_eq!(
            spec.apply(&mut s, &FetchIncOp::Read),
            FetchIncResp::Value(3)
        );
    }

    #[test]
    fn faa_returns_previous_and_wraps() {
        let spec = FaaSpec;
        let mut s = spec.initial();
        assert_eq!(spec.apply(&mut s, &FaaOp::Add(5)), FaaResp::Value(0));
        assert_eq!(spec.apply(&mut s, &FaaOp::Add(u64::MAX)), FaaResp::Value(5));
        assert_eq!(spec.apply(&mut s, &FaaOp::Read), FaaResp::Value(4));
    }
}
