//! Property tests for the sequential specifications: refinement
//! between the relaxed (§5) objects and their exact counterparts, and
//! basic sanity laws every spec must satisfy.

use proptest::prelude::*;
use sl2_spec::counters::{CounterOp, CounterSpec};
use sl2_spec::fifo::{QueueOp, QueueResp, QueueSpec, StackOp, StackSpec};
use sl2_spec::max_register::{MaxOp, MaxRegisterSpec};
use sl2_spec::put_take::{PutTakeSetSpec, SetOp};
use sl2_spec::relaxed::{
    MultiplicityQueueSpec, MultiplicityStackSpec, OutOfOrderQueueSpec, StutteringQueueSpec,
    StutteringStackSpec,
};
use sl2_spec::{is_legal, Spec};

fn queue_ops() -> impl Strategy<Value = Vec<QueueOp>> {
    prop::collection::vec(
        prop_oneof![(1u64..6).prop_map(QueueOp::Enq), Just(QueueOp::Deq)],
        0..10,
    )
}

fn stack_ops() -> impl Strategy<Value = Vec<StackOp>> {
    prop::collection::vec(
        prop_oneof![(1u64..6).prop_map(StackOp::Push), Just(StackOp::Pop)],
        0..10,
    )
}

/// Runs `ops` through the exact spec deterministically, returning the
/// (op, resp) trace.
fn exact_trace<S: Spec>(spec: &S, ops: &[S::Op]) -> Vec<(S::Op, S::Resp)> {
    let mut state = spec.initial();
    ops.iter()
        .map(|op| (op.clone(), spec.apply(&mut state, op)))
        .collect()
}

proptest! {
    /// Every exact-queue execution is legal for every relaxation of
    /// the queue (the relaxations only ADD behaviors).
    #[test]
    fn relaxed_queues_refine_exact_queue(ops in queue_ops()) {
        let trace = exact_trace(&QueueSpec, &ops);
        let stutter1 = StutteringQueueSpec { m: 1 };
        let stutter3 = StutteringQueueSpec { m: 3 };
        let ooo1 = OutOfOrderQueueSpec { k: 1 };
        let ooo4 = OutOfOrderQueueSpec { k: 4 };
        prop_assert!(is_legal(&MultiplicityQueueSpec, &trace));
        prop_assert!(is_legal(&stutter1, &trace));
        prop_assert!(is_legal(&stutter3, &trace));
        prop_assert!(is_legal(&ooo1, &trace));
        prop_assert!(is_legal(&ooo4, &trace));
    }

    /// Same for stacks.
    #[test]
    fn relaxed_stacks_refine_exact_stack(ops in stack_ops()) {
        let trace = exact_trace(&StackSpec, &ops);
        let stutter1 = StutteringStackSpec { m: 1 };
        let stutter2 = StutteringStackSpec { m: 2 };
        prop_assert!(is_legal(&MultiplicityStackSpec, &trace));
        prop_assert!(is_legal(&stutter1, &trace));
        prop_assert!(is_legal(&stutter2, &trace));
    }

    /// A wider out-of-order window accepts everything a narrower one
    /// does.
    #[test]
    fn out_of_order_windows_are_monotone(ops in queue_ops(), seed in 0u64..100) {
        // Generate a legal k=2 execution by random choice, then check
        // it against k=3.
        let spec2 = OutOfOrderQueueSpec { k: 2 };
        let mut state = spec2.initial();
        let mut rng = seed;
        let mut trace = Vec::new();
        for op in &ops {
            let outcomes = spec2.step(&state, op);
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pick = (rng >> 33) as usize % outcomes.len();
            let (next, resp) = outcomes[pick].clone();
            state = next;
            trace.push((*op, resp));
        }
        let ooo3 = OutOfOrderQueueSpec { k: 3 };
        prop_assert!(is_legal(&ooo3, &trace));
    }

    /// `step` is total and deterministic specs have singleton
    /// outcomes.
    #[test]
    fn deterministic_specs_have_singleton_outcomes(ops in queue_ops()) {
        let spec = QueueSpec;
        let mut state = spec.initial();
        for op in &ops {
            let outcomes = spec.step(&state, op);
            prop_assert_eq!(outcomes.len(), 1);
            state = outcomes[0].0.clone();
        }
    }

    /// The queue never invents items: every dequeued value was
    /// previously enqueued.
    #[test]
    fn queue_items_come_from_enqueues(ops in queue_ops()) {
        let trace = exact_trace(&QueueSpec, &ops);
        let mut seen = Vec::new();
        for (op, resp) in &trace {
            if let QueueOp::Enq(v) = op {
                seen.push(*v);
            }
            if let QueueResp::Item(v) = resp {
                prop_assert!(seen.contains(v));
            }
        }
    }

    /// Max register responses are monotone in prefix order.
    #[test]
    fn max_register_reads_are_monotone(vals in prop::collection::vec(0u64..50, 0..20)) {
        let spec = MaxRegisterSpec;
        let mut state = spec.initial();
        let mut last = 0;
        for v in vals {
            spec.apply(&mut state, &MaxOp::Write(v));
            let resp = spec.apply(&mut state, &MaxOp::Read);
            if let sl2_spec::max_register::MaxResp::Value(r) = resp {
                prop_assert!(r >= last);
                last = r;
            }
        }
    }

    /// Counter reads equal the number of preceding increments.
    #[test]
    fn counter_counts_increments(flips in prop::collection::vec(any::<bool>(), 0..30)) {
        let spec = CounterSpec;
        let mut state = spec.initial();
        let mut incs = 0u64;
        for inc in flips {
            if inc {
                spec.apply(&mut state, &CounterOp::Inc);
                incs += 1;
            } else {
                let resp = spec.apply(&mut state, &CounterOp::Read);
                prop_assert_eq!(resp, sl2_spec::counters::CounterResp::Value(incs));
            }
        }
    }

    /// Put/take set: the multiset of taken items is always a subset of
    /// the put items, whatever nondeterministic branch is taken.
    #[test]
    fn set_takes_subset_of_puts(
        puts in prop::collection::vec(0u64..20, 0..8),
        takes in 0usize..8,
        seed in 0u64..100,
    ) {
        let spec = PutTakeSetSpec;
        let mut state = spec.initial();
        for &p in &puts {
            spec.apply(&mut state, &SetOp::Put(p));
        }
        let mut rng = seed;
        let mut taken = Vec::new();
        for _ in 0..takes {
            let outcomes = spec.step(&state, &SetOp::Take);
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(99);
            let pick = (rng >> 33) as usize % outcomes.len();
            let (next, resp) = outcomes[pick].clone();
            state = next;
            if let sl2_spec::put_take::SetResp::Item(x) = resp {
                taken.push(x);
            }
        }
        let mut remaining: Vec<u64> = puts.clone();
        remaining.sort_unstable();
        remaining.dedup();
        for t in &taken {
            prop_assert!(remaining.contains(t));
        }
        // no duplicates among taken
        let mut uniq = taken.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), taken.len());
    }
}
