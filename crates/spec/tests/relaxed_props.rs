//! Property tests for the §5 relaxed specifications: multiplicity,
//! m-stuttering and k-out-of-order queues/stacks are nondeterministic
//! state machines, and these laws pin down exactly how much slack each
//! relaxation is allowed — no more.

use proptest::prelude::*;
use sl2_spec::fifo::{QueueOp, QueueResp, StackOp, StackResp};
use sl2_spec::relaxed::{
    MultiplicityQueueSpec, MultiplicityStackSpec, OutOfOrderQueueSpec, StutteringQueueSpec,
    StutteringStackSpec,
};
use sl2_spec::Spec;

fn queue_ops() -> impl Strategy<Value = Vec<QueueOp>> {
    prop::collection::vec(
        prop_oneof![3 => (1u64..9).prop_map(QueueOp::Enq), 2 => Just(QueueOp::Deq)],
        1..24,
    )
}

fn stack_ops() -> impl Strategy<Value = Vec<StackOp>> {
    prop::collection::vec(
        prop_oneof![3 => (1u64..9).prop_map(StackOp::Push), 2 => Just(StackOp::Pop)],
        1..24,
    )
}

/// Resolves nondeterminism with a seeded choice, returning the response
/// trace. `pick` selects which outcome index to take (mod #outcomes).
fn run_chain<S: Spec>(
    spec: &S,
    ops: &[S::Op],
    mut pick: impl FnMut(usize) -> usize,
) -> Vec<S::Resp> {
    let mut state = spec.initial();
    let mut resps = Vec::new();
    for op in ops {
        let outcomes = spec.step(&state, op);
        assert!(!outcomes.is_empty(), "specs are total");
        let (next, resp) = outcomes[pick(outcomes.len()) % outcomes.len()].clone();
        state = next;
        resps.push(resp);
    }
    resps
}

proptest! {
    /// Multiplicity queue: every dequeued item was enqueued earlier in
    /// the sequence, and duplicates only ever repeat the immediately
    /// preceding dequeue's item (a whole consecutive block may return
    /// the same item — the paper's set-linearizability reading).
    #[test]
    fn mult_queue_items_come_from_enqueues(ops in queue_ops(), seed in 0u64..1000) {
        let mut x = seed;
        let mut rnd = move |_n: usize| { x = x.wrapping_mul(6364136223846793005).wrapping_add(1); (x >> 33) as usize };
        let resps = run_chain(&MultiplicityQueueSpec, &ops, &mut rnd);
        let mut enqueued: Vec<u64> = Vec::new();
        let mut last_item: Option<u64> = None;
        let mut removed = 0usize;
        for (op, resp) in ops.iter().zip(&resps) {
            match (op, resp) {
                (QueueOp::Enq(v), QueueResp::Ok) => { enqueued.push(*v); last_item = None; }
                (QueueOp::Deq, QueueResp::Item(v)) => {
                    prop_assert!(enqueued.contains(v), "dequeued {v} never enqueued");
                    if last_item != Some(*v) {
                        removed += 1;
                    }
                    last_item = Some(*v);
                }
                (QueueOp::Deq, QueueResp::Empty) => { last_item = None; }
                other => prop_assert!(false, "impossible pair {other:?}"),
            }
        }
        // Distinct removal blocks never exceed the number of enqueues.
        prop_assert!(removed <= enqueued.len(), "{removed} blocks > {} enqueues", enqueued.len());
    }

    /// Multiplicity queue: the duplication outcome exists exactly when
    /// the previous operation was a successful dequeue.
    #[test]
    fn mult_queue_duplication_window_is_exact(ops in queue_ops()) {
        let spec = MultiplicityQueueSpec;
        let mut state = spec.initial();
        for op in &ops {
            let outcomes = spec.step(&state, op);
            match op {
                QueueOp::Enq(_) => prop_assert_eq!(outcomes.len(), 1),
                QueueOp::Deq => {
                    let expect = if state.last_deq.is_some() { 2 } else { 1 };
                    prop_assert_eq!(outcomes.len(), expect, "state {:?}", state);
                }
            }
            state = outcomes[0].0.clone();
        }
    }

    /// Multiplicity stack mirror of the sourcing law.
    #[test]
    fn mult_stack_items_come_from_pushes(ops in stack_ops(), seed in 0u64..1000) {
        let mut x = seed;
        let mut rnd = move |_n: usize| { x = x.wrapping_mul(6364136223846793005).wrapping_add(1); (x >> 33) as usize };
        let resps = run_chain(&MultiplicityStackSpec, &ops, &mut rnd);
        let mut pushed: Vec<u64> = Vec::new();
        for (op, resp) in ops.iter().zip(&resps) {
            match (op, resp) {
                (StackOp::Push(v), StackResp::Ok) => pushed.push(*v),
                (StackOp::Pop, StackResp::Item(v)) => {
                    prop_assert!(pushed.contains(v), "popped {v} never pushed");
                }
                (StackOp::Pop, StackResp::Empty) => {}
                other => prop_assert!(false, "impossible pair {other:?}"),
            }
        }
    }

    /// m-stuttering queue: m+1 consecutive enqueues add at least one
    /// item, whatever the nondeterministic choices — the paper's "at
    /// least one out of m+1 consecutive operations of the same type is
    /// guaranteed to have effect".
    #[test]
    fn stuttering_queue_progress_law(m in 0u32..4, len_before in 0usize..5, seed in 0u64..1000) {
        let spec = StutteringQueueSpec { m };
        let mut state = spec.initial();
        for i in 0..len_before {
            state = spec.step(&state, &QueueOp::Enq(i as u64)).swap_remove(0).0;
        }
        let baseline = state.items.len();
        // Adversarially stutter as often as allowed.
        let mut x = seed;
        let mut rnd = move || { x = x.wrapping_mul(6364136223846793005).wrapping_add(1); (x >> 33) as usize };
        for round in 0..3u64 {
            let mut s = state.clone();
            for i in 0..=(m as u64) {
                let mut outcomes = spec.step(&s, &QueueOp::Enq(100 + round * 10 + i));
                // Prefer the stuttering outcome when available, else random.
                s = if outcomes.len() > 1 && rnd() % 2 == 0 {
                    outcomes.into_iter().last().unwrap().0
                } else {
                    outcomes.swap_remove(0).0
                };
            }
            prop_assert!(
                s.items.len() > baseline,
                "m+1 = {} enqueues added nothing (m = {m})",
                m + 1
            );
        }
    }

    /// m-stuttering queue: a stuttering dequeue still reports the
    /// oldest item, and never fabricates values.
    #[test]
    fn stuttering_queue_deq_reports_front(m in 1u32..4, ops in queue_ops(), seed in 0u64..1000) {
        let spec = StutteringQueueSpec { m };
        let mut state = spec.initial();
        let mut x = seed;
        let mut rnd = move |_n: usize| { x = x.wrapping_mul(6364136223846793005).wrapping_add(1); (x >> 33) as usize };
        for op in &ops {
            let outcomes = spec.step(&state, op);
            let pick = rnd(outcomes.len()) % outcomes.len();
            let (next, resp) = outcomes[pick].clone();
            if let (QueueOp::Deq, QueueResp::Item(v)) = (op, &resp) {
                prop_assert_eq!(Some(*v), state.items.front().copied(), "deq must report the front");
            }
            state = next;
        }
    }

    /// m-stuttering stack: m+1 consecutive pops from a big stack remove
    /// at least one item.
    #[test]
    fn stuttering_stack_pop_progress_law(m in 0u32..4, seed in 0u64..1000) {
        let spec = StutteringStackSpec { m };
        let mut state = spec.initial();
        for i in 0..10u64 {
            state = spec.step(&state, &StackOp::Push(i)).swap_remove(0).0;
        }
        let mut x = seed;
        let mut rnd = move || { x = x.wrapping_mul(6364136223846793005).wrapping_add(1); (x >> 33) as usize };
        let before = state.items.len();
        for i in 0..=(m as usize) {
            let mut outcomes = spec.step(&state, &StackOp::Pop);
            state = if outcomes.len() > 1 && rnd() % 2 == 0 {
                outcomes.into_iter().last().unwrap().0
            } else {
                outcomes.swap_remove(0).0
            };
            let _ = i;
        }
        prop_assert!(state.items.len() < before, "m+1 pops removed nothing");
    }

    /// k-out-of-order queue: every dequeue returns one of the k oldest
    /// items of the pre-state, and removes exactly that item.
    #[test]
    fn out_of_order_queue_window_law(k in 1usize..5, ops in queue_ops(), seed in 0u64..1000) {
        let spec = OutOfOrderQueueSpec { k };
        let mut state = spec.initial();
        let mut x = seed;
        let mut rnd = move |_n: usize| { x = x.wrapping_mul(6364136223846793005).wrapping_add(1); (x >> 33) as usize };
        for op in &ops {
            let outcomes = spec.step(&state, op);
            if matches!(op, QueueOp::Deq) && !state.is_empty() {
                prop_assert_eq!(outcomes.len(), state.len().min(k), "window size");
            }
            let pick = rnd(outcomes.len()) % outcomes.len();
            let (next, resp) = outcomes[pick].clone();
            if let (QueueOp::Deq, QueueResp::Item(v)) = (op, &resp) {
                let window: Vec<u64> = state.iter().take(k).copied().collect();
                prop_assert!(window.contains(v), "{v} outside the {k}-oldest window {window:?}");
                prop_assert_eq!(next.len() + 1, state.len());
            }
            state = next;
        }
    }

    /// 1-out-of-order is an exact queue: deterministic and FIFO.
    #[test]
    fn one_out_of_order_is_exact(ops in queue_ops()) {
        let spec = OutOfOrderQueueSpec { k: 1 };
        let exact = sl2_spec::fifo::QueueSpec;
        let mut s_relaxed = spec.initial();
        let mut s_exact = exact.initial();
        for op in &ops {
            let mut relaxed = spec.step(&s_relaxed, op);
            prop_assert_eq!(relaxed.len(), 1, "k = 1 must be deterministic");
            let (nr, rr) = relaxed.swap_remove(0);
            let re = exact.apply(&mut s_exact, op);
            prop_assert_eq!(rr, re);
            s_relaxed = nr;
            prop_assert_eq!(&s_relaxed, &s_exact);
        }
    }
}
