//! Step-machine form of the dispatch layer, for the
//! strong-linearizability checker.
//!
//! The production [`crate::Service`](crate::dispatch::Service) threads
//! every request through shared dispatch state — a queue slot is
//! taken, a routing table is consulted — before the per-key object is
//! touched. This twin makes those phases *explicit checker steps*, so
//! `check_strong` adjudicates the service layer itself rather than
//! assuming composition is free:
//!
//! 1. **enqueue** — one `fetch&add` on the shared depth cell (taking a
//!    queue ticket);
//! 2. **route** — one read of the routing register (the worker-table
//!    lookup);
//! 3. **execute** — the per-key Theorem-1 register operation (a write
//!    is the §3 probe-then-add pair; an exact read is one wide read of
//!    the key's register).
//!
//! Two routing modes mirror the production read paths:
//!
//! * [`RouteMode::Exact`] — reads execute on the key's register. Keys
//!   are disjoint objects and strong linearizability is **local**
//!   (closed under disjoint composition), so the composed service
//!   should certify against [`KeyedMaxSpec`] *even though* every
//!   operation also steps the shared dispatch cells — the corpus
//!   confirms exactly this (`tests/corpus.rs`, `service_exact/…`).
//! * [`RouteMode::Cached`] — reads are answered from the key's
//!   published-fold cache register. Only the **batch leader** (the
//!   operation whose enqueue ticket was 0, modelling the PR-5 elected
//!   combiner) re-publishes after executing; later writes complete
//!   *unpublished* — the no-waiters direct path. Cached routing is
//!   therefore refuted against the exact keyed spec and certified
//!   against [`LaggingKeyedMaxSpec`] — the §8 law resurfacing one
//!   layer up, per key (DESIGN.md §12).

use sl2_bignum::{BigNat, Layout};
use sl2_exec::machine::{Algorithm, OpMachine, Step};
use sl2_exec::mem::{Cell, Loc, SimMemory};
use sl2_spec::keyed::{KeyedMaxOp, KeyedMaxSpec, LaggingKeyedMaxSpec};
use sl2_spec::max_register::MaxResp;

/// How the twin's reads are routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteMode {
    /// Reads execute on the key's register (production exact path).
    Exact,
    /// Reads load the key's published-fold cache; only batch leaders
    /// republish (production cached path).
    Cached,
}

/// Shared dispatch state + per-key registers of the modelled service.
///
/// Keys are the scenario's working set, fixed at construction — the
/// registry's lazy materialization is a performance device, invisible
/// to the sequential specification (a fresh register holds 0).
#[derive(Debug, Clone)]
pub struct KeyedDispatchAlg {
    /// Queue-ticket cell (`fetch&add`): the enqueue step.
    depth: Loc,
    /// Routing register: the route step reads it.
    route: Loc,
    /// Per key: `(key, §3 register, published-fold cache)`.
    keys: Vec<(u64, Loc, Loc)>,
    layout: Layout,
    mode: RouteMode,
}

impl KeyedDispatchAlg {
    /// Allocates the dispatch cells and one Theorem-1 register (plus
    /// cache) per key, for `n` processes.
    pub fn new(mem: &mut SimMemory, n: usize, keys: &[u64], mode: RouteMode) -> Self {
        KeyedDispatchAlg {
            depth: mem.alloc(Cell::Faa(0)),
            route: mem.alloc(Cell::Reg(0)),
            keys: keys
                .iter()
                .map(|&k| {
                    (
                        k,
                        mem.alloc(Cell::Wide(BigNat::zero())),
                        mem.alloc(Cell::Reg(0)),
                    )
                })
                .collect(),
            layout: Layout::new(n),
            mode,
        }
    }

    fn key_locs(&self, key: u64) -> (Loc, Loc) {
        self.keys
            .iter()
            .find(|(k, _, _)| *k == key)
            .map(|(_, reg, cache)| (*reg, *cache))
            .expect("scenario uses a key outside the algorithm's working set")
    }
}

impl Algorithm for KeyedDispatchAlg {
    type Spec = KeyedMaxSpec;
    type Machine = KeyedDispatchMachine;

    fn spec(&self) -> KeyedMaxSpec {
        KeyedMaxSpec
    }

    fn machine(&self, process: usize, op: &KeyedMaxOp) -> KeyedDispatchMachine {
        match *op {
            KeyedMaxOp::Write { key, v } => {
                let (reg, cache) = self.key_locs(key);
                KeyedDispatchMachine::Enqueue {
                    depth: self.depth,
                    route: self.route,
                    next: PostRoute::Write {
                        reg,
                        cache,
                        layout: self.layout,
                        process,
                        v,
                        publish: self.mode == RouteMode::Cached,
                    },
                }
            }
            KeyedMaxOp::Read { key } => {
                let (reg, cache) = self.key_locs(key);
                KeyedDispatchMachine::Enqueue {
                    depth: self.depth,
                    route: self.route,
                    next: match self.mode {
                        RouteMode::Exact => PostRoute::ReadExact {
                            reg,
                            layout: self.layout,
                        },
                        RouteMode::Cached => PostRoute::ReadCached { cache },
                    },
                }
            }
        }
    }
}

/// What happens after the shared enqueue + route steps.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PostRoute {
    /// Execute a write on the key's register (§3 probe-then-add).
    Write {
        /// The key's register.
        reg: Loc,
        /// The key's published-fold cache.
        cache: Loc,
        /// Lane layout.
        layout: Layout,
        /// Writing process.
        process: usize,
        /// Value being folded in.
        v: u64,
        /// Whether a batch leader republishes (cached mode).
        publish: bool,
    },
    /// Execute an exact read: one wide read of the key's register.
    ReadExact {
        /// The key's register.
        reg: Loc,
        /// Lane layout.
        layout: Layout,
    },
    /// Execute a cached read: one load of the key's cache register.
    ReadCached {
        /// The key's published-fold cache.
        cache: Loc,
    },
}

/// Step machine for one dispatched request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyedDispatchMachine {
    /// Step 1: take a queue ticket (`fetch&add` on the depth cell).
    Enqueue {
        /// Queue-ticket cell.
        depth: Loc,
        /// Routing register (read next).
        route: Loc,
        /// The execute phase to run after routing.
        next: PostRoute,
    },
    /// Step 2: consult the routing table (one read).
    Route {
        /// Routing register.
        route: Loc,
        /// Queue ticket obtained at enqueue (0 ⇒ batch leader).
        ticket: u64,
        /// The execute phase.
        next: PostRoute,
    },
    /// Write step 3: probe the own lane of the key's register.
    WriteProbe {
        /// The key's register.
        reg: Loc,
        /// The key's cache.
        cache: Loc,
        /// Lane layout.
        layout: Layout,
        /// Writing process.
        process: usize,
        /// Value being folded in.
        v: u64,
        /// Leader flag (publishes after landing, cached mode only).
        leader: bool,
    },
    /// Write step 4: land the unary increment.
    WriteAdd {
        /// The key's register.
        reg: Loc,
        /// The key's cache.
        cache: Loc,
        /// Lane layout.
        layout: Layout,
        /// The unary increment image.
        inc: BigNat,
        /// Leader flag.
        leader: bool,
    },
    /// Leader's publish, step 5: read the key's fold back.
    PublishRead {
        /// The key's register.
        reg: Loc,
        /// The key's cache.
        cache: Loc,
        /// Lane layout.
        layout: Layout,
    },
    /// Leader's publish, step 6: write the fold to the cache.
    PublishWrite {
        /// The key's cache.
        cache: Loc,
        /// The fold to publish.
        fold: u64,
    },
    /// Exact-read execute: one wide read of the key's register.
    ReadExact {
        /// The key's register.
        reg: Loc,
        /// Lane layout.
        layout: Layout,
    },
    /// Cached-read execute: one load of the cache register.
    ReadCached {
        /// The key's cache.
        cache: Loc,
    },
}

fn fold(layout: &Layout, image: &BigNat) -> u64 {
    (0..layout.processes())
        .map(|i| layout.decode_unary(i, image))
        .max()
        .unwrap_or(0)
}

impl OpMachine for KeyedDispatchMachine {
    type Resp = MaxResp;

    fn step(&mut self, mem: &mut SimMemory) -> Step<MaxResp> {
        match self {
            KeyedDispatchMachine::Enqueue { depth, route, next } => {
                let ticket = mem.faa(*depth, 1);
                *self = KeyedDispatchMachine::Route {
                    route: *route,
                    ticket,
                    next: next.clone(),
                };
                Step::Pending
            }
            KeyedDispatchMachine::Route {
                route,
                ticket,
                next,
            } => {
                // The routing-table lookup: its value does not steer
                // the modelled execution (key affinity is static), but
                // it is a real shared-memory step the checker must
                // interleave, exactly like the production lookup.
                let _table = mem.read(*route);
                *self = match next.clone() {
                    PostRoute::Write {
                        reg,
                        cache,
                        layout,
                        process,
                        v,
                        publish,
                    } => KeyedDispatchMachine::WriteProbe {
                        reg,
                        cache,
                        layout,
                        process,
                        v,
                        leader: publish && *ticket == 0,
                    },
                    PostRoute::ReadExact { reg, layout } => {
                        KeyedDispatchMachine::ReadExact { reg, layout }
                    }
                    PostRoute::ReadCached { cache } => KeyedDispatchMachine::ReadCached { cache },
                };
                Step::Pending
            }
            KeyedDispatchMachine::WriteProbe {
                reg,
                cache,
                layout,
                process,
                v,
                leader,
            } => {
                let image = mem.wide_adjust(*reg, &BigNat::zero(), &BigNat::zero());
                let prev = layout.decode_unary(*process, &image);
                if *v <= prev {
                    if *leader {
                        // Nothing to land, but the leader still owes
                        // the batch its publication.
                        *self = KeyedDispatchMachine::PublishRead {
                            reg: *reg,
                            cache: *cache,
                            layout: *layout,
                        };
                        return Step::Pending;
                    }
                    return Step::Ready(MaxResp::Ok);
                }
                let inc = layout.unary_increment(*process, prev, *v);
                *self = KeyedDispatchMachine::WriteAdd {
                    reg: *reg,
                    cache: *cache,
                    layout: *layout,
                    inc,
                    leader: *leader,
                };
                Step::Pending
            }
            KeyedDispatchMachine::WriteAdd {
                reg,
                cache,
                layout,
                inc,
                leader,
            } => {
                mem.wide_adjust(*reg, inc, &BigNat::zero());
                if *leader {
                    *self = KeyedDispatchMachine::PublishRead {
                        reg: *reg,
                        cache: *cache,
                        layout: *layout,
                    };
                    return Step::Pending;
                }
                // The no-waiters direct path: completes unpublished.
                Step::Ready(MaxResp::Ok)
            }
            KeyedDispatchMachine::PublishRead { reg, cache, layout } => {
                let image = mem.wide_adjust(*reg, &BigNat::zero(), &BigNat::zero());
                let f = fold(layout, &image);
                *self = KeyedDispatchMachine::PublishWrite {
                    cache: *cache,
                    fold: f,
                };
                Step::Pending
            }
            KeyedDispatchMachine::PublishWrite { cache, fold } => {
                mem.write(*cache, *fold);
                Step::Ready(MaxResp::Ok)
            }
            KeyedDispatchMachine::ReadExact { reg, layout } => {
                let image = mem.wide_adjust(*reg, &BigNat::zero(), &BigNat::zero());
                Step::Ready(MaxResp::Value(fold(layout, &image)))
            }
            KeyedDispatchMachine::ReadCached { cache } => {
                Step::Ready(MaxResp::Value(mem.read(*cache)))
            }
        }
    }
}

/// The cached twin under the lagging keyed specification: same
/// machines, adjudicated against [`LaggingKeyedMaxSpec`] — the spec
/// pair the corpus certifies/refutes in opposite polarities.
#[derive(Debug, Clone)]
pub struct LaggingKeyedDispatchAlg {
    inner: KeyedDispatchAlg,
    /// Per-key staleness window of the specification.
    pub k: usize,
}

impl LaggingKeyedDispatchAlg {
    /// Wraps the cached-mode twin with window `k`.
    pub fn new(mem: &mut SimMemory, n: usize, keys: &[u64], k: usize) -> Self {
        LaggingKeyedDispatchAlg {
            inner: KeyedDispatchAlg::new(mem, n, keys, RouteMode::Cached),
            k,
        }
    }
}

impl Algorithm for LaggingKeyedDispatchAlg {
    type Spec = LaggingKeyedMaxSpec;
    type Machine = KeyedDispatchMachine;

    fn spec(&self) -> LaggingKeyedMaxSpec {
        LaggingKeyedMaxSpec { k: self.k }
    }

    fn machine(&self, process: usize, op: &KeyedMaxOp) -> KeyedDispatchMachine {
        self.inner.machine(process, op)
    }
}

// ---------------------------------------------------------------------
// Canonical adjudication scenarios
// ---------------------------------------------------------------------

/// Cross-key scenario: two processes write and read *different* keys.
/// Locality says the disjoint composition certifies in exact mode —
/// and it must keep certifying with the shared enqueue/route steps
/// interleaved, which is what this scenario pins.
pub fn cross_key_scenario() -> sl2_exec::sched::Scenario<KeyedMaxSpec> {
    sl2_exec::sched::Scenario::new(vec![
        vec![
            KeyedMaxOp::Write { key: 1, v: 5 },
            KeyedMaxOp::Read { key: 2 },
        ],
        vec![
            KeyedMaxOp::Write { key: 2, v: 7 },
            KeyedMaxOp::Read { key: 1 },
        ],
    ])
}

/// Same-key fan-in: two writers race one independent reader on a
/// single key — the service-layer analogue of the sharded fan-in
/// family. Exact mode certifies (the execute step is one atomic
/// register op); cached mode is refuted (a direct-path write completes
/// unpublished, then the reader's cache load returns the stale fold).
pub fn same_key_fan_in_scenario() -> sl2_exec::sched::Scenario<KeyedMaxSpec> {
    sl2_exec::scenarios::fan_in::<KeyedMaxSpec>(
        vec![
            KeyedMaxOp::Write { key: 1, v: 1 },
            KeyedMaxOp::Write { key: 1, v: 2 },
        ],
        vec![KeyedMaxOp::Read { key: 1 }],
    )
}

/// The same fan-in under the lagging spec (window `k`): the staleness
/// cached routing exhibits is *bounded per key*, so this certifies
/// for `k ≥ 2` — together with the exact-mode refutation this is the
/// §8 law at the service layer.
pub fn same_key_fan_in_lagging_scenario() -> sl2_exec::sched::Scenario<LaggingKeyedMaxSpec> {
    sl2_exec::sched::Scenario::new(vec![
        vec![
            KeyedMaxOp::Write { key: 1, v: 1 },
            KeyedMaxOp::Write { key: 1, v: 2 },
        ],
        vec![KeyedMaxOp::Read { key: 1 }],
    ])
}

/// Cross-key scenario under the lagging spec: staleness on key 1 must
/// not be excused by writes to key 2 (the per-key window law).
pub fn cross_key_lagging_scenario() -> sl2_exec::sched::Scenario<LaggingKeyedMaxSpec> {
    sl2_exec::sched::Scenario::new(vec![
        vec![
            KeyedMaxOp::Write { key: 1, v: 5 },
            KeyedMaxOp::Read { key: 2 },
        ],
        vec![
            KeyedMaxOp::Write { key: 2, v: 7 },
            KeyedMaxOp::Read { key: 1 },
        ],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl2_exec::machine::run_solo;
    use sl2_exec::strong::check_strong;

    #[test]
    fn solo_write_then_read_each_mode() {
        for mode in [RouteMode::Exact, RouteMode::Cached] {
            let mut mem = SimMemory::new();
            let alg = KeyedDispatchAlg::new(&mut mem, 2, &[1, 2], mode);
            let mut w = alg.machine(0, &KeyedMaxOp::Write { key: 1, v: 3 });
            let (resp, steps) = run_solo(&mut w, &mut mem);
            assert_eq!(resp, MaxResp::Ok);
            // enqueue + route + probe + add (+ publish read/write for
            // the cached-mode leader, ticket 0).
            let expected = if mode == RouteMode::Cached { 6 } else { 4 };
            assert_eq!(steps, expected, "{mode:?}");
            let mut r = alg.machine(1, &KeyedMaxOp::Read { key: 1 });
            let (resp, _) = run_solo(&mut r, &mut mem);
            assert_eq!(resp, MaxResp::Value(3), "{mode:?}");
        }
    }

    #[test]
    fn cached_read_of_unpublished_key_is_stale() {
        let mut mem = SimMemory::new();
        let alg = KeyedDispatchAlg::new(&mut mem, 2, &[1], RouteMode::Cached);
        // Leader writes key 1 (publishes fold 1), then a second write
        // lands direct (ticket 1: unpublished).
        let mut w0 = alg.machine(0, &KeyedMaxOp::Write { key: 1, v: 1 });
        run_solo(&mut w0, &mut mem);
        let mut w1 = alg.machine(0, &KeyedMaxOp::Write { key: 1, v: 2 });
        run_solo(&mut w1, &mut mem);
        let mut r = alg.machine(1, &KeyedMaxOp::Read { key: 1 });
        let (resp, _) = run_solo(&mut r, &mut mem);
        assert_eq!(resp, MaxResp::Value(1), "cache misses the direct write");
    }

    #[test]
    fn exact_mode_certifies_both_canonical_scenarios() {
        for scenario in [cross_key_scenario(), same_key_fan_in_scenario()] {
            let mut mem = SimMemory::new();
            let alg = KeyedDispatchAlg::new(&mut mem, 3, &[1, 2], RouteMode::Exact);
            let report = check_strong(&alg, mem, &scenario, 16_000_000);
            assert!(
                report.strongly_linearizable,
                "exact dispatch must certify ({} nodes)",
                report.nodes
            );
        }
    }

    #[test]
    fn cached_mode_is_refuted_on_the_same_key_fan_in() {
        let mut mem = SimMemory::new();
        let alg = KeyedDispatchAlg::new(&mut mem, 3, &[1, 2], RouteMode::Cached);
        let report = check_strong(&alg, mem, &same_key_fan_in_scenario(), 16_000_000);
        assert!(
            !report.strongly_linearizable,
            "cached dispatch must be refuted against the exact keyed spec"
        );
    }

    #[test]
    fn cached_mode_certifies_the_lagging_window() {
        let mut mem = SimMemory::new();
        let alg = LaggingKeyedDispatchAlg::new(&mut mem, 3, &[1, 2], 2);
        let report = check_strong(&alg, mem, &same_key_fan_in_lagging_scenario(), 16_000_000);
        assert!(
            report.strongly_linearizable,
            "cached dispatch must certify against the k=2 lagging keyed spec"
        );
    }
}
