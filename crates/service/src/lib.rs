//! Keyed service tier over the strongly-linearizable objects: the
//! "millions of users" front-end.
//!
//! The production `algos`/`sharded`/`combine` forms are library calls
//! on a single object. This crate turns them into a *service*:
//!
//! * [`Registry`] — a lock-free, insert-only keyed namespace of many
//!   max-registers/counters/snapshots behind one handle, with lazy
//!   per-key materialization and per-key backend selection
//!   ([`Backend::Global`] / [`Backend::Sharded`] /
//!   [`Backend::Combining`]). Scale is in the *key* dimension:
//!   millions of keys, not 16 threads on one register.
//! * [`Service`] — a typed [`Request`]/[`Response`] dispatch layer:
//!   key-affinity routing onto a worker pool, FIFO per key, with the
//!   PR-7/PR-8 chaos points and obs probes (`service.enqueue`,
//!   `service.dispatch`, `service.route`, `service.queue_depth`)
//!   compiled to empty stubs by default.
//! * [`machines`] — the *modelled dispatch twin*: enqueue/route/
//!   execute as explicit checker steps, so `sl2_exec` adjudicates the
//!   service layer itself. Exact routing certifies against the keyed
//!   specs (strong linearizability is local); cached-read routing is
//!   refuted exact and certified `k`-lagging — DESIGN.md §8's law one
//!   layer up, argued in §12.
//!
//! Open-loop load generation (arrival schedules, zipf key popularity)
//! lives in `sl2_bench`; workers stamp scheduled→completion latency
//! into the PR-8 [`sl2_obs::Histogram`], so the percentiles include
//! queueing and coordinated omission does not flatter p999.
//!
//! ```
//! use sl2_service::{Backend, Request, Response, Service, ServiceOp};
//!
//! let mut svc = Service::new(1024, 2, Backend::Sharded { shards: 2 });
//! svc.call(Request { key: 7, op: ServiceOp::WriteMax(41) });
//! assert_eq!(
//!     svc.call(Request { key: 7, op: ServiceOp::ReadMax }),
//!     Response::Value(41),
//! );
//! assert_eq!(
//!     svc.call(Request { key: 8, op: ServiceOp::ReadMax }),
//!     Response::Value(0), // keys are disjoint objects
//! );
//! svc.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dispatch;
pub mod machines;
pub mod registry;

pub use dispatch::{Request, Response, Service, ServiceOp};
pub use registry::{Backend, KeyObject, KeyedCounter, KeyedMax, KeyedSnapshot, Registry};
