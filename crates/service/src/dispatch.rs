//! The request/dispatch layer: typed requests routed worker-pool
//! style onto the [`Registry`].
//!
//! A [`Service`] owns a `u64`-keyed registry and `W` worker threads,
//! each with its own FIFO queue. Requests are routed by **key
//! affinity** — `mix(key) mod W` — so all operations on one key
//! execute on one worker in submission order, and distinct keys spread
//! across the pool. Worker `w` drives the per-key objects as serving
//! lane (process) `w`, which is exactly the single-writer-per-lane
//! discipline the §3 registers require.
//!
//! Latency is measured **open-loop honestly**: a job carries the
//! instant it was *scheduled to arrive* (not the instant the submitter
//! got around to it), and the worker records `scheduled → completion`
//! into its own [`Histogram`] after executing. Queue wait is inside
//! the measurement, so saturation shows up in p999 instead of being
//! coordinated-omitted away (DESIGN.md §12; the generator half lives
//! in `sl2_bench::open_loop`).
//!
//! Instrumentation (PR-7/PR-8/PR-10 pattern — empty inline stubs by
//! default, armed under `chaos`/`obs`/`trace`):
//!
//! * chaos points `service.enqueue` (submitter side, pre-publish) and
//!   `service.dispatch` (worker side, pre-execute) — a crash-stopped
//!   worker parks mid-dispatch and its queue goes dark, which is the
//!   fault `tests/service_stress.rs` checks leaves *other* keys live;
//! * obs probes `service.route` (requests routed), `service.dispatch`
//!   (execution timer), `service.queue_depth` (enqueue-time depth
//!   gauge, i.e. a high-watermark under the gauge's max semantics),
//!   `service.dequeue` / `service.queue_depth.dequeue` (the drain
//!   side of the same queue, so armed runs see both edges), and the
//!   registry's `service.registry.*` counters;
//! * trace spans: every submission mints one span id and marks it
//!   `service.request` Begin (client side, pre-publish) with the
//!   encoded request as payload. The id rides through the FIFO; the
//!   serving worker re-enters it ambiently and emits
//!   `service.enqueue → service.route → service.execute →
//!   service.respond` instants along the way. The End edge is
//!   client-side for [`Service::call`] (the response the caller
//!   observed) and worker-side for fire-and-forget submissions
//!   (worker completion is the only completion there) — the boundary
//!   placement the bridge's soundness argument needs (DESIGN.md §13).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use std::sync::{Condvar, Mutex};

use sl2_obs::Histogram;
use sl2_primitives::labeled::mix;
use sl2_spec::keyed::KeyedMaxOp;
use sl2_spec::max_register::MaxResp;

use crate::registry::{Backend, Registry};

/// Probe labels of the dispatch layer (DESIGN.md §12).
pub(crate) mod probes {
    /// Submitter side: a request is about to be published to a queue.
    pub const ENQUEUE: &str = "service.enqueue";
    /// Worker side: a request is about to execute on the registry.
    pub const DISPATCH: &str = "service.dispatch";
    /// One request routed to a worker queue.
    pub const ROUTE: &str = "service.route";
    /// Queue depth observed at enqueue time (gauge keeps the max).
    pub const QUEUE_DEPTH: &str = "service.queue_depth";
    /// One request dequeued by its serving worker.
    pub const DEQUEUE: &str = "service.dequeue";
    /// Queue depth observed just after a dequeue (gauge keeps the
    /// max) — the drain edge of `QUEUE_DEPTH`, so armed runs see the
    /// queue empty out instead of a ratcheting watermark.
    pub const QUEUE_DEPTH_DEQUEUE: &str = "service.queue_depth.dequeue";
    /// Span label of one request through the service (trace).
    pub const REQUEST: &str = "service.request";
    /// Trace instant: a request starts executing on the registry.
    pub const EXECUTE: &str = "service.execute";
    /// Trace instant: a response was produced by the worker.
    pub const RESPOND: &str = "service.respond";
}

/// One operation on a keyed object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceOp {
    /// `write_max(key, v)`.
    WriteMax(u64),
    /// Exact `read_max(key)`.
    ReadMax,
    /// Cached `read_max(key)` (combining backend; exact elsewhere).
    ReadMaxCached,
    /// `inc(key)`.
    Inc,
    /// Exact `read_count(key)`.
    ReadCount,
    /// Cached `read_count(key)`.
    ReadCountCached,
    /// `update(key, component, v)` on the key's snapshot.
    Update {
        /// Component to set.
        component: usize,
        /// New component value.
        v: u64,
    },
    /// Exact `scan(key)`.
    Scan,
}

/// A request: an operation aimed at a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// Key naming the per-key object.
    pub key: u64,
    /// The operation.
    pub op: ServiceOp,
}

/// A response.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Response {
    /// The operation completed with no value.
    Ok,
    /// A scalar read result.
    Value(u64),
    /// A snapshot view.
    View(Vec<u64>),
}

/// Tag/field layout of the one-word trace encodings: `tag << 56`,
/// then a 28-bit key and a 28-bit operand for requests, or a 56-bit
/// value for responses. Wide keys/values truncate (the payload is
/// evidence, not the data path); the max-register subset — the ops
/// the keyed specs speak — round-trips exactly for test-sized values.
const TAG_SHIFT: u32 = 56;
const KEY_SHIFT: u32 = 28;
const FIELD_MASK: u64 = (1 << 28) - 1;
const VALUE_MASK: u64 = (1 << 56) - 1;

impl Request {
    /// Encodes this request into one trace-payload word.
    pub fn trace_word(&self) -> u64 {
        let (tag, operand) = match self.op {
            ServiceOp::WriteMax(v) => (1u64, v),
            ServiceOp::ReadMax => (2, 0),
            ServiceOp::ReadMaxCached => (3, 0),
            ServiceOp::Inc => (4, 0),
            ServiceOp::ReadCount => (5, 0),
            ServiceOp::ReadCountCached => (6, 0),
            ServiceOp::Update { component, v } => (7, ((component as u64) << 20) | (v & 0xF_FFFF)),
            ServiceOp::Scan => (8, 0),
        };
        (tag << TAG_SHIFT) | ((self.key & FIELD_MASK) << KEY_SHIFT) | (operand & FIELD_MASK)
    }

    /// Decodes a request trace word into the keyed max-register op it
    /// denotes, or `None` for ops outside the keyed-max vocabulary.
    /// Both read flavours (exact and cached) decode to `Read` — the
    /// *spec* chosen at adjudication time decides what a cached read
    /// is allowed to return, not the encoding.
    pub fn keyed_max_op_of(word: u64) -> Option<KeyedMaxOp> {
        let key = (word >> KEY_SHIFT) & FIELD_MASK;
        match word >> TAG_SHIFT {
            1 => Some(KeyedMaxOp::Write {
                key,
                v: word & FIELD_MASK,
            }),
            2 | 3 => Some(KeyedMaxOp::Read { key }),
            _ => None,
        }
    }
}

impl Response {
    /// Encodes this response into one trace-payload word (a `View`
    /// records only its length).
    pub fn trace_word(&self) -> u64 {
        match self {
            Response::Ok => 1 << TAG_SHIFT,
            Response::Value(v) => (2 << TAG_SHIFT) | (v & VALUE_MASK),
            Response::View(view) => (3 << TAG_SHIFT) | (view.len() as u64 & VALUE_MASK),
        }
    }

    /// Decodes a response trace word into a max-register response, or
    /// `None` for views.
    pub fn max_resp_of(word: u64) -> Option<MaxResp> {
        match word >> TAG_SHIFT {
            1 => Some(MaxResp::Ok),
            2 => Some(MaxResp::Value(word & VALUE_MASK)),
            _ => None,
        }
    }
}

/// Completion cell for the blocking [`Service::call`] path.
#[derive(Debug, Default)]
struct Completion {
    slot: Mutex<Option<Response>>,
    cv: Condvar,
}

#[derive(Debug)]
struct Job {
    req: Request,
    /// When this request was scheduled to arrive (open-loop clock).
    scheduled: Instant,
    /// Record scheduled→completion latency into the worker histogram?
    track: bool,
    /// Blocking caller to notify, if any.
    done: Option<Arc<Completion>>,
    /// Trace span the request carries through the FIFO (0 disarmed).
    span: u64,
    /// Emit the span's End edge worker-side after executing?
    /// (Fire-and-forget jobs: yes. Blocking calls: no — the caller
    /// marks End when it observes the response.)
    end_span: bool,
}

#[derive(Debug)]
struct WorkerQueue {
    jobs: Mutex<VecDeque<Job>>,
    cv: Condvar,
}

#[derive(Debug)]
struct Shared {
    registry: Registry<u64>,
    queues: Box<[WorkerQueue]>,
    latency: Box<[Mutex<Histogram>]>,
    closing: AtomicBool,
    submitted: AtomicU64,
    completed: AtomicU64,
}

impl Shared {
    fn execute(&self, worker: usize, req: &Request) -> Response {
        let obj = self.registry.get_or_insert(&req.key);
        match req.op {
            ServiceOp::WriteMax(v) => {
                obj.write_max(worker, v);
                Response::Ok
            }
            ServiceOp::ReadMax => Response::Value(obj.read_max()),
            ServiceOp::ReadMaxCached => Response::Value(obj.read_max_cached()),
            ServiceOp::Inc => {
                obj.inc(worker);
                Response::Ok
            }
            ServiceOp::ReadCount => Response::Value(obj.read_count()),
            ServiceOp::ReadCountCached => Response::Value(obj.read_count_cached()),
            ServiceOp::Update { component, v } => {
                obj.update(component, v);
                Response::Ok
            }
            ServiceOp::Scan => Response::View(obj.scan()),
        }
    }

    fn worker_loop(&self, worker: usize) {
        loop {
            let (job, depth_after) = {
                let q = &self.queues[worker];
                let mut jobs = q.jobs.lock().unwrap();
                loop {
                    if let Some(job) = jobs.pop_front() {
                        break (job, jobs.len());
                    }
                    if self.closing.load(Ordering::Acquire) {
                        return;
                    }
                    jobs = q.cv.wait(jobs).unwrap();
                }
            };
            sl2_obs::count(probes::DEQUEUE);
            sl2_obs::gauge(probes::QUEUE_DEPTH_DEQUEUE, depth_after as u64);
            // The crash-stop seam: a chaos plan targeting this point
            // parks the worker here with the job unexecuted — its
            // queue goes dark while the rest of the pool keeps
            // serving (tests/service_stress.rs). The request's span
            // never sees an End edge: the bridge carries it as
            // pending forever.
            let _span = sl2_trace::enter_span(job.span);
            sl2_chaos::point(probes::DISPATCH);
            sl2_trace::event(probes::EXECUTE, job.req.trace_word());
            let resp = {
                let _dispatch_timer = sl2_obs::time(probes::DISPATCH);
                self.execute(worker, &job.req)
            };
            sl2_trace::event(probes::RESPOND, resp.trace_word());
            if job.end_span {
                sl2_trace::span_end(probes::REQUEST, job.span, resp.trace_word());
            }
            if job.track {
                let ns = job.scheduled.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                self.latency[worker].lock().unwrap().record(ns);
            }
            if let Some(done) = job.done {
                *done.slot.lock().unwrap() = Some(resp);
                done.cv.notify_all();
            }
            self.completed.fetch_add(1, Ordering::AcqRel);
        }
    }
}

/// A running keyed service: registry + worker pool. See module docs.
#[derive(Debug)]
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts a service with `workers` serving lanes over a registry
    /// of up to `capacity` distinct keys, every key on `backend`.
    pub fn new(capacity: usize, workers: usize, backend: Backend) -> Self {
        Self::with_policy(capacity, workers, move |_: &u64| backend)
    }

    /// As [`Service::new`] with a per-key backend policy.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` (the registry panics on
    /// `capacity == 0`).
    pub fn with_policy(
        capacity: usize,
        workers: usize,
        policy: impl Fn(&u64) -> Backend + Send + Sync + 'static,
    ) -> Self {
        assert!(workers > 0, "service needs at least one worker");
        let shared = Arc::new(Shared {
            registry: Registry::with_policy(capacity, workers, policy),
            queues: (0..workers)
                .map(|_| WorkerQueue {
                    jobs: Mutex::new(VecDeque::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            latency: (0..workers).map(|_| Mutex::new(Histogram::new())).collect(),
            closing: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        let workers = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    // One mechanism under chaos + obs: the worker's
                    // logical id is its lane, so fault plans target
                    // and metrics attribute the same thread.
                    sl2_primitives::labeled::enroll(w);
                    #[cfg(feature = "chaos")]
                    {
                        // Absorb a crash-stop unwind: the worker dies
                        // silently (crash-stop semantics), it does not
                        // poison the process with a panic.
                        let _ = sl2_chaos::catch_crash(|| shared.worker_loop(w));
                    }
                    #[cfg(not(feature = "chaos"))]
                    shared.worker_loop(w);
                })
            })
            .collect();
        Service { shared, workers }
    }

    /// The worker (serving-lane) count.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// The underlying registry (direct read access for tests and
    /// post-drain audits; going around the dispatch order is the
    /// caller's responsibility).
    pub fn registry(&self) -> &Registry<u64> {
        &self.shared.registry
    }

    /// Which worker serves `key` (key-affinity routing).
    pub fn route_of(&self, key: u64) -> usize {
        (mix(key) % self.shared.queues.len() as u64) as usize
    }

    /// Marks the request span's Begin edge (client side, before the
    /// job is visible to anyone) and routes the job to its worker.
    /// Begin-before-publish is the soundness half the bridge needs:
    /// the recorded invocation can only be *earlier* than the real
    /// one, which widens the interval and shrinks recorded precedence
    /// (DESIGN.md §13).
    fn push(&self, job: Job) {
        let w = self.route_of(job.req.key);
        sl2_chaos::point(probes::ENQUEUE);
        sl2_obs::count(probes::ROUTE);
        sl2_trace::span_begin(probes::REQUEST, job.span, job.req.trace_word());
        sl2_trace::event_in(probes::ENQUEUE, job.span, job.req.trace_word());
        sl2_trace::event_in(probes::ROUTE, job.span, w as u64);
        let q = &self.shared.queues[w];
        let depth = {
            let mut jobs = q.jobs.lock().unwrap();
            jobs.push_back(job);
            jobs.len()
        };
        sl2_obs::gauge(probes::QUEUE_DEPTH, depth as u64);
        self.shared.submitted.fetch_add(1, Ordering::AcqRel);
        q.cv.notify_one();
    }

    /// Fire-and-forget submission stamped with its scheduled arrival
    /// instant; the serving worker records `scheduled → completion`
    /// (queue wait included) into the service latency histogram.
    pub fn submit_timed(&self, req: Request, scheduled: Instant) {
        self.push(Job {
            req,
            scheduled,
            track: true,
            done: None,
            span: sl2_trace::next_span(),
            end_span: true,
        });
    }

    /// Fire-and-forget submission without latency tracking.
    pub fn submit(&self, req: Request) {
        self.push(Job {
            req,
            scheduled: Instant::now(),
            track: false,
            done: None,
            span: sl2_trace::next_span(),
            end_span: true,
        });
    }

    /// Blocking request: routes like any submission, waits for the
    /// serving worker's response.
    ///
    /// A request routed to a crash-stopped worker never completes;
    /// callers under chaos use keys they know route to live workers
    /// (crash-stop is a *stopping* failure, DESIGN.md §10).
    pub fn call(&self, req: Request) -> Response {
        let done = Arc::new(Completion::default());
        let span = sl2_trace::next_span();
        self.push(Job {
            req,
            scheduled: Instant::now(),
            track: false,
            done: Some(Arc::clone(&done)),
            span,
            // The caller marks End below, *after* it observed the
            // response — a worker-side End would stamp completions
            // earlier than the client saw them, manufacturing
            // precedence the run never exhibited (DESIGN.md §13).
            end_span: false,
        });
        let resp = {
            let mut slot = done.slot.lock().unwrap();
            loop {
                if let Some(resp) = slot.take() {
                    break resp;
                }
                slot = done.cv.wait(slot).unwrap();
            }
        };
        sl2_trace::span_end(probes::REQUEST, span, resp.trace_word());
        resp
    }

    /// Requests submitted so far.
    pub fn submitted(&self) -> u64 {
        self.shared.submitted.load(Ordering::Acquire)
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Acquire)
    }

    /// Waits until every submitted request has completed (spin +
    /// yield; submission is expected to have stopped). Under chaos a
    /// crash-stopped worker strands its queue — callers bound their
    /// own wait instead.
    pub fn drain(&self) {
        while self.completed() < self.submitted() {
            std::thread::yield_now();
        }
    }

    /// Merged scheduled→completion latency histogram across workers.
    pub fn latency_histogram(&self) -> Histogram {
        let mut out = Histogram::new();
        for h in self.shared.latency.iter() {
            out.merge(&h.lock().unwrap());
        }
        out
    }

    /// Stops accepting work, drains the queues' remaining jobs, and
    /// joins the workers. Called by `Drop`; explicit calls make the
    /// join point visible in tests.
    ///
    /// Under chaos: a crash-stopped worker must have been released
    /// (`sl2_chaos::release_crashed`) before shutdown, or the join
    /// blocks forever — the documented stopping-failure trade.
    pub fn shutdown(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.shared.closing.store(true, Ordering::Release);
        for q in self.shared.queues.iter() {
            q.cv.notify_all();
        }
        for h in self.workers.drain(..) {
            // A worker that unwound (absorbed crash-stop) is already
            // accounted for by the chaos layer; join errors are not
            // possible because the unwind is caught inside the thread.
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_round_trips_each_op() {
        let mut svc = Service::new(64, 2, Backend::Sharded { shards: 2 });
        assert_eq!(
            svc.call(Request {
                key: 7,
                op: ServiceOp::WriteMax(41)
            }),
            Response::Ok
        );
        assert_eq!(
            svc.call(Request {
                key: 7,
                op: ServiceOp::ReadMax
            }),
            Response::Value(41)
        );
        assert_eq!(
            svc.call(Request {
                key: 9,
                op: ServiceOp::Inc
            }),
            Response::Ok
        );
        assert_eq!(
            svc.call(Request {
                key: 9,
                op: ServiceOp::ReadCount
            }),
            Response::Value(1)
        );
        assert_eq!(
            svc.call(Request {
                key: 7,
                op: ServiceOp::ReadCount
            }),
            Response::Value(0),
            "no cross-key bleed"
        );
        svc.shutdown();
    }

    #[test]
    fn submit_then_drain_lands_everything() {
        let svc = Service::new(1024, 4, Backend::Combining { shards: 2 });
        for k in 0..100u64 {
            for _ in 0..5 {
                svc.submit(Request {
                    key: k,
                    op: ServiceOp::Inc,
                });
            }
        }
        svc.drain();
        for k in 0..100u64 {
            assert_eq!(svc.registry().get_or_insert(&k).read_count(), 5, "key {k}");
        }
    }

    #[test]
    fn per_key_fifo_order_is_preserved() {
        let svc = Service::new(16, 3, Backend::Global);
        // Monotone writes through the dispatch path: the final max is
        // the largest, and every intermediate state was monotone
        // because one worker serves the key in FIFO order.
        for v in 1..=50u64 {
            svc.submit(Request {
                key: 3,
                op: ServiceOp::WriteMax(v),
            });
        }
        svc.drain();
        assert_eq!(svc.registry().get_or_insert(&3).read_max(), 50);
    }

    #[test]
    fn timed_submissions_record_latency() {
        let svc = Service::new(64, 2, Backend::Global);
        let t0 = Instant::now();
        for k in 0..32u64 {
            svc.submit_timed(
                Request {
                    key: k,
                    op: ServiceOp::Inc,
                },
                t0,
            );
        }
        svc.drain();
        let h = svc.latency_histogram();
        assert_eq!(h.count(), 32);
        assert!(h.p50() > 0, "scheduled→completion is never zero");
    }
}
