//! The keyed object registry: many §3/§4 objects behind one handle.
//!
//! A [`Registry`] is a fixed-capacity, lock-free, insert-only hash
//! table from keys to [`KeyObject`]s. "Millions of users" means
//! millions of *keys*: each key lazily materializes its own
//! strongly-linearizable objects (max register, counter, snapshot) the
//! first time an operation touches it, on the backend the registry's
//! [`BackendPolicy`] picks for that key.
//!
//! Concurrency discipline (and why it is simple):
//!
//! * **Slots are insert-only.** A slot goes `null → Entry` exactly
//!   once, by a single successful compare-exchange, and is never
//!   unlinked. There is no deletion, so there is no ABA problem and no
//!   reclamation protocol: entries are freed when the registry drops.
//! * **Losers defer.** Two threads racing to materialize the same key
//!   allocate two candidate entries; the CAS loser frees its candidate
//!   and adopts the winner's — both return the same `&KeyObject`, so
//!   per-key strong linearizability is inherited from the per-key
//!   object (locality: strong linearizability is closed under disjoint
//!   composition).
//! * **The steady-state hot path allocates nothing.** Looking up an
//!   existing key is a hash, a probe sequence of `Acquire` loads, and
//!   a key compare — `tests/alloc_counter.rs` pins routing + dispatch
//!   of a resident key at zero allocations.
//!
//! Capacity is a constructor contract: the table holds at most the
//! requested number of distinct keys (the probe sequence panics once
//! the table is full) — a service fronting a bounded tenant universe
//! sizes it up front, exactly like `ShardedFetchInc` fixes its process
//! count.

use std::hash::{Hash, Hasher};
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use sl2_combine::{CombiningCounter, CombiningMaxRegister, CombiningSnapshot};
use sl2_core::algos::fetch_inc::WideFetchInc;
use sl2_core::algos::max_register::SlMaxRegister;
use sl2_core::algos::snapshot::SlSnapshot;
use sl2_core::algos::{MaxRegister, Snapshot};
use sl2_sharded::{ShardedFetchInc, ShardedMaxRegister, ShardedSnapshot};

/// Probe labels of the registry layer (see DESIGN.md §12). Static so
/// the disarmed stubs stay zero-cost and the armed registry interns
/// one row per label.
pub(crate) mod probes {
    /// A key was materialized (entry published by CAS).
    pub const INSERT: &str = "service.registry.insert";
    /// A materialization race was lost (candidate freed, winner adopted).
    pub const INSERT_LOST: &str = "service.registry.insert_lost";
}

/// Which backend a key's objects run on.
///
/// The registry composes the repo's three production tiers per key:
/// the global §3 forms, the PR-3 sharded layer, and the PR-5 combining
/// front-end (whose cached reads are the k-lagging face the checker
/// adjudicates in DESIGN.md §8 — and again at the service layer in
/// §12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The single-register §3/§4 forms (`SlMaxRegister`,
    /// `WideFetchInc`, `SlSnapshot`).
    Global,
    /// The value/process-striped sharded layer with stable-collect
    /// exact reads.
    Sharded {
        /// Stripe count per object.
        shards: usize,
    },
    /// The flat-combining front-end over the sharded layer: exact
    /// writes, plus the 1-load cached read path.
    Combining {
        /// Stripe count of the wrapped sharded object.
        shards: usize,
    },
}

/// Per-key backend selection: a pure function of the key.
pub type BackendPolicy<K> = dyn Fn(&K) -> Backend + Send + Sync;

/// A key's lazily-materialized objects, all on the same backend.
///
/// Sub-objects materialize independently (a key used only as a counter
/// never allocates a max register); each goes `null → object` once by
/// CAS, same discipline as the slot table.
#[derive(Debug)]
pub struct KeyObject {
    backend: Backend,
    processes: usize,
    max: AtomicPtr<KeyedMax>,
    counter: AtomicPtr<KeyedCounter>,
    snapshot: AtomicPtr<KeyedSnapshot>,
}

/// A per-key max register on one of the three backends.
// One boxed allocation per key per object kind lives behind an
// AtomicPtr for its whole lifetime, so sizing every box to the
// largest (combining) variant is the cheap, simple choice.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum KeyedMax {
    /// Theorem-1 register.
    Global(SlMaxRegister),
    /// Value-sharded, stable-collect read, binary lanes.
    Sharded(ShardedMaxRegister),
    /// Combining front-end: exact stable read plus cached read.
    Combining(CombiningMaxRegister),
}

/// A per-key counter on one of the three backends.
// One boxed allocation per key per object kind lives behind an
// AtomicPtr for its whole lifetime, so sizing every box to the
// largest (combining) variant is the cheap, simple choice.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum KeyedCounter {
    /// §4.2 wait-free readable fetch&increment (value = tickets − 1).
    Global(WideFetchInc),
    /// Process-striped shards, stable-collect exact read.
    Sharded(ShardedFetchInc),
    /// Combining front-end: exact read plus cached read.
    Combining(CombiningCounter),
}

/// A per-key snapshot on one of the three backends.
// One boxed allocation per key per object kind lives behind an
// AtomicPtr for its whole lifetime, so sizing every box to the
// largest (combining) variant is the cheap, simple choice.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum KeyedSnapshot {
    /// Theorem-2 snapshot.
    Global(SlSnapshot),
    /// Group-sharded snapshot, stable whole scans.
    Sharded(ShardedSnapshot),
    /// Combining front-end with the published-view cached scan.
    Combining(CombiningSnapshot),
}

impl KeyObject {
    fn new(backend: Backend, processes: usize) -> Self {
        KeyObject {
            backend,
            processes,
            max: AtomicPtr::new(ptr::null_mut()),
            counter: AtomicPtr::new(ptr::null_mut()),
            snapshot: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// The backend this key's objects run on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Lock-free lazy materialization: CAS-publish `make()`'s result
    /// unless another thread already did (then free ours, use theirs).
    fn lazy<T>(slot: &AtomicPtr<T>, make: impl FnOnce() -> T) -> &T {
        let p = slot.load(Ordering::Acquire);
        if !p.is_null() {
            // Steady state: one Acquire load, no allocation.
            return unsafe { &*p };
        }
        let fresh = Box::into_raw(Box::new(make()));
        match slot.compare_exchange(ptr::null_mut(), fresh, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => unsafe { &*fresh },
            Err(winner) => {
                // Lost the materialization race: adopt the winner.
                drop(unsafe { Box::from_raw(fresh) });
                unsafe { &*winner }
            }
        }
    }

    /// The key's max register, materializing it on first touch.
    pub fn max(&self) -> &KeyedMax {
        Self::lazy(&self.max, || match self.backend {
            Backend::Global => KeyedMax::Global(SlMaxRegister::new(self.processes)),
            Backend::Sharded { shards } => {
                KeyedMax::Sharded(ShardedMaxRegister::new_binary(self.processes, shards))
            }
            Backend::Combining { shards } => KeyedMax::Combining(CombiningMaxRegister::new(
                ShardedMaxRegister::new_binary(self.processes, shards),
            )),
        })
    }

    /// The key's counter, materializing it on first touch.
    pub fn counter(&self) -> &KeyedCounter {
        Self::lazy(&self.counter, || match self.backend {
            Backend::Global => KeyedCounter::Global(WideFetchInc::new(self.processes)),
            Backend::Sharded { shards } => {
                KeyedCounter::Sharded(ShardedFetchInc::new(self.processes, shards))
            }
            Backend::Combining { shards } => KeyedCounter::Combining(CombiningCounter::new(
                ShardedFetchInc::new(self.processes, shards),
            )),
        })
    }

    /// The key's snapshot, materializing it on first touch. Component
    /// count is the registry's process count (one component per
    /// serving lane, the Theorem-2 shape).
    pub fn snapshot(&self) -> &KeyedSnapshot {
        Self::lazy(&self.snapshot, || match self.backend {
            Backend::Global => KeyedSnapshot::Global(SlSnapshot::new(self.processes)),
            Backend::Sharded { shards } => KeyedSnapshot::Sharded(ShardedSnapshot::new(
                self.processes,
                self.processes.div_ceil(shards).max(1),
            )),
            Backend::Combining { shards } => KeyedSnapshot::Combining(CombiningSnapshot::new(
                ShardedSnapshot::new(self.processes, self.processes.div_ceil(shards).max(1)),
            )),
        })
    }

    /// `write_max(key, v)` on behalf of `process`.
    pub fn write_max(&self, process: usize, v: u64) {
        match self.max() {
            KeyedMax::Global(m) => m.write_max(process, v),
            KeyedMax::Sharded(m) => m.write_max(process, v),
            KeyedMax::Combining(m) => m.write_max(process, v),
        }
    }

    /// Exact `read_max(key)` (stable collect on the layered backends).
    pub fn read_max(&self) -> u64 {
        match self.max() {
            KeyedMax::Global(m) => m.read_max(),
            KeyedMax::Sharded(m) => m.read_max(),
            KeyedMax::Combining(m) => m.read_max(),
        }
    }

    /// Cached `read_max(key)`: the 1-load published fold on the
    /// combining backend (k-lagging, DESIGN.md §8); falls back to the
    /// exact read on backends with no cache.
    pub fn read_max_cached(&self) -> u64 {
        match self.max() {
            KeyedMax::Global(m) => m.read_max(),
            KeyedMax::Sharded(m) => m.read_max(),
            KeyedMax::Combining(m) => m.read_cached(),
        }
    }

    /// `inc(key)` on behalf of `process`.
    pub fn inc(&self, process: usize) {
        match self.counter() {
            KeyedCounter::Global(c) => {
                c.fetch_inc(process);
            }
            KeyedCounter::Sharded(c) => {
                c.inc(process);
            }
            KeyedCounter::Combining(c) => c.inc(process),
        }
    }

    /// Exact `read_count(key)`.
    pub fn read_count(&self) -> u64 {
        match self.counter() {
            // WideFetchInc is 1-based (a ticket dispenser); the
            // counter value is tickets handed out so far.
            KeyedCounter::Global(c) => c.read() - 1,
            KeyedCounter::Sharded(c) => c.read(),
            KeyedCounter::Combining(c) => c.read_exact(),
        }
    }

    /// Cached `read_count(key)` (combining backend; exact elsewhere).
    pub fn read_count_cached(&self) -> u64 {
        match self.counter() {
            KeyedCounter::Global(c) => c.read() - 1,
            KeyedCounter::Sharded(c) => c.read_relaxed(),
            KeyedCounter::Combining(c) => c.read_cached(),
        }
    }

    /// `update(key, component, v)` on the key's snapshot.
    pub fn update(&self, component: usize, v: u64) {
        match self.snapshot() {
            KeyedSnapshot::Global(s) => s.update(component, v),
            KeyedSnapshot::Sharded(s) => s.update(component, v),
            KeyedSnapshot::Combining(s) => s.update(component, v),
        }
    }

    /// Exact `scan(key)`.
    pub fn scan(&self) -> Vec<u64> {
        match self.snapshot() {
            KeyedSnapshot::Global(s) => s.scan(),
            KeyedSnapshot::Sharded(s) => s.scan(),
            KeyedSnapshot::Combining(s) => s.scan(),
        }
    }
}

impl Drop for KeyObject {
    fn drop(&mut self) {
        let m = self.max.load(Ordering::Acquire);
        if !m.is_null() {
            drop(unsafe { Box::from_raw(m) });
        }
        let c = self.counter.load(Ordering::Acquire);
        if !c.is_null() {
            drop(unsafe { Box::from_raw(c) });
        }
        let s = self.snapshot.load(Ordering::Acquire);
        if !s.is_null() {
            drop(unsafe { Box::from_raw(s) });
        }
    }
}

struct Entry<K> {
    key: K,
    object: KeyObject,
}

/// Lock-free keyed namespace of strongly-linearizable objects.
///
/// See the module docs for the concurrency discipline. `K` is any
/// hashable key type; the service tier uses `u64` tenant ids.
pub struct Registry<K> {
    slots: Box<[AtomicPtr<Entry<K>>]>,
    mask: usize,
    len: AtomicUsize,
    processes: usize,
    policy: Box<BackendPolicy<K>>,
}

impl<K> std::fmt::Debug for Registry<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("processes", &self.processes)
            .finish_non_exhaustive()
    }
}

impl<K> Registry<K> {
    /// Number of distinct keys materialized so far.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether no key has been materialized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of distinct keys (the constructor contract).
    pub fn capacity(&self) -> usize {
        self.mask.div_ceil(2)
    }

    /// Serving-lane (process) count shared by every per-key object.
    pub fn processes(&self) -> usize {
        self.processes
    }
}

impl<K: Hash + Eq + Clone> Registry<K> {
    /// Creates a registry holding up to `capacity` distinct keys,
    /// shared by `processes` serving lanes, every key on `backend`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `processes == 0`.
    pub fn new(capacity: usize, processes: usize, backend: Backend) -> Self {
        Self::with_policy(capacity, processes, move |_| backend)
    }

    /// As [`Registry::new`] with a per-key backend policy — e.g. hot
    /// tenants on `Combining`, the long tail on `Global`.
    pub fn with_policy(
        capacity: usize,
        processes: usize,
        policy: impl Fn(&K) -> Backend + Send + Sync + 'static,
    ) -> Self {
        assert!(capacity > 0, "registry capacity must be positive");
        assert!(processes > 0, "registry needs at least one serving lane");
        // 2× headroom keeps linear-probe chains short at full load.
        let table = (capacity * 2).next_power_of_two();
        Registry {
            slots: (0..table)
                .map(|_| AtomicPtr::new(ptr::null_mut()))
                .collect(),
            mask: table - 1,
            len: AtomicUsize::new(0),
            processes,
            policy: Box::new(policy),
        }
    }

    fn hash(&self, key: &K) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        h.finish() as usize
    }

    /// The key's objects, if the key has been materialized. Read-only:
    /// never allocates, never inserts — readers of untouched keys see
    /// the objects' initial values without materializing them.
    pub fn get(&self, key: &K) -> Option<&KeyObject> {
        let mut i = self.hash(key);
        for _ in 0..=self.mask {
            let slot = &self.slots[i & self.mask];
            let p = slot.load(Ordering::Acquire);
            if p.is_null() {
                return None;
            }
            let entry = unsafe { &*p };
            if entry.key == *key {
                return Some(&entry.object);
            }
            i = i.wrapping_add(1);
        }
        None
    }

    /// The key's objects, materializing the key on first touch
    /// (lock-free: a CAS race frees the loser's candidate and both
    /// callers adopt the winner's entry).
    ///
    /// # Panics
    ///
    /// Panics when the table already holds `capacity` keys and `key`
    /// is new — capacity is a constructor contract, not a resize
    /// trigger.
    pub fn get_or_insert(&self, key: &K) -> &KeyObject {
        let mut i = self.hash(key);
        let mut candidate: *mut Entry<K> = ptr::null_mut();
        let mut probes = 0usize;
        loop {
            assert!(
                probes <= self.mask,
                "registry capacity exhausted ({} keys): size the registry for its key universe",
                self.capacity()
            );
            let slot = &self.slots[i & self.mask];
            let mut p = slot.load(Ordering::Acquire);
            if p.is_null() {
                if self.len.load(Ordering::Acquire) >= self.capacity() {
                    // Over the contract even though a slot is free —
                    // keep probe chains bounded by refusing to fill
                    // the headroom half of the table.
                    if !candidate.is_null() {
                        drop(unsafe { Box::from_raw(candidate) });
                    }
                    panic!(
                        "registry capacity exhausted ({} keys): size the registry for its key universe",
                        self.capacity()
                    );
                }
                if candidate.is_null() {
                    let backend = (self.policy)(key);
                    candidate = Box::into_raw(Box::new(Entry {
                        key: key.clone(),
                        object: KeyObject::new(backend, self.processes),
                    }));
                }
                sl2_chaos::point(probes::INSERT);
                match slot.compare_exchange(
                    ptr::null_mut(),
                    candidate,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.len.fetch_add(1, Ordering::AcqRel);
                        sl2_obs::count(probes::INSERT);
                        return &unsafe { &*candidate }.object;
                    }
                    Err(winner) => {
                        // Someone landed in this slot first; inspect it
                        // like any occupied slot (it may be our key).
                        sl2_obs::count(probes::INSERT_LOST);
                        p = winner;
                    }
                }
            }
            let entry = unsafe { &*p };
            if entry.key == *key {
                if !candidate.is_null() {
                    drop(unsafe { Box::from_raw(candidate) });
                }
                return &entry.object;
            }
            i = i.wrapping_add(1);
            probes += 1;
        }
    }
}

impl<K> Drop for Registry<K> {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            let p = slot.load(Ordering::Acquire);
            if !p.is_null() {
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

// The registry is shared across worker threads by reference; entries
// are immutable after publication and all interior mutability is in
// the per-key objects, which are themselves Sync.
unsafe impl<K: Send + Sync> Send for Registry<K> {}
unsafe impl<K: Send + Sync> Sync for Registry<K> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lazy_materialization_counts_keys_once() {
        let r: Registry<u64> = Registry::new(64, 2, Backend::Global);
        assert_eq!(r.len(), 0);
        r.get_or_insert(&7).write_max(0, 5);
        r.get_or_insert(&7).write_max(1, 3);
        r.get_or_insert(&9).inc(0);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get_or_insert(&7).read_max(), 5);
        assert_eq!(r.get_or_insert(&9).read_count(), 1);
        assert!(r.get(&11).is_none(), "reads must not materialize");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn keys_are_disjoint_objects() {
        let r: Registry<u64> = Registry::new(64, 2, Backend::Sharded { shards: 2 });
        r.get_or_insert(&1).write_max(0, 100);
        r.get_or_insert(&2).write_max(1, 7);
        assert_eq!(r.get_or_insert(&1).read_max(), 100);
        assert_eq!(r.get_or_insert(&2).read_max(), 7);
        r.get_or_insert(&1).inc(0);
        assert_eq!(r.get_or_insert(&1).read_count(), 1);
        assert_eq!(r.get_or_insert(&2).read_count(), 0);
    }

    #[test]
    fn policy_selects_backends_per_key() {
        let r: Registry<u64> = Registry::with_policy(64, 2, |k| {
            if *k < 10 {
                Backend::Combining { shards: 2 }
            } else {
                Backend::Global
            }
        });
        assert_eq!(
            r.get_or_insert(&3).backend(),
            Backend::Combining { shards: 2 }
        );
        assert_eq!(r.get_or_insert(&30).backend(), Backend::Global);
    }

    #[test]
    fn snapshot_objects_work_per_key() {
        let r: Registry<u64> = Registry::new(16, 3, Backend::Global);
        r.get_or_insert(&5).update(1, 9);
        assert_eq!(r.get_or_insert(&5).scan(), vec![0, 9, 0]);
        assert_eq!(r.get_or_insert(&6).scan(), vec![0, 0, 0]);
    }

    #[test]
    fn concurrent_materialization_of_one_key_is_safe() {
        let r: Arc<Registry<u64>> = Arc::new(Registry::new(256, 8, Backend::Global));
        std::thread::scope(|s| {
            for p in 0..8 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for k in 0..64u64 {
                        r.get_or_insert(&k).inc(p);
                    }
                });
            }
        });
        assert_eq!(r.len(), 64);
        for k in 0..64u64 {
            assert_eq!(r.get_or_insert(&k).read_count(), 8, "key {k}");
        }
    }

    #[test]
    #[should_panic(expected = "registry capacity exhausted")]
    fn capacity_is_a_contract() {
        let r: Registry<u64> = Registry::new(4, 1, Backend::Global);
        for k in 0..64u64 {
            r.get_or_insert(&k);
        }
    }
}
