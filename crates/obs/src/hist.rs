//! The mergeable log₂-bucketed histogram underlying `obs::record` /
//! `obs::time` and the bench harness's latency percentiles.
//!
//! Always compiled (no feature gate): the bench harness records
//! per-sample latencies into [`Histogram`]s whether or not the probe
//! layer is armed, and tests compare percentile extraction against
//! sorted-vector references.

/// Number of log₂ buckets: bucket `k` holds values in
/// `[2^k, 2^(k+1))`, with 0 folded into bucket 0, so 64 buckets cover
/// the whole `u64` range.
pub const BUCKETS: usize = 64;

/// Bucket index of a value: `floor(log₂(max(v, 1)))`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// A log₂-bucketed histogram with an exact maximum: fixed size,
/// allocation-free, mergeable.
///
/// Percentiles are resolved to bucket granularity (a factor-of-2
/// bound) and clamped by the exact max, which is the right fidelity
/// for latency reporting: the interesting question is "did p999 move a
/// bucket", not its third significant digit.
///
/// # Examples
///
/// ```
/// use sl2_obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.max(), 1000);
/// assert!(h.p50() >= 500 && h.p50() < 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            max: 0,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        if v > self.max {
            self.max = v;
        }
    }

    /// Folds `other` into `self` (bucket-wise sum, max of maxes) —
    /// the per-thread-shard merge.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Reconstructs a histogram from raw bucket counts and an exact
    /// max (the armed registry's atomic-shard snapshot path).
    pub fn from_parts(buckets: [u64; BUCKETS], max: u64) -> Self {
        let count = buckets.iter().sum();
        Histogram {
            buckets,
            count,
            max,
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The exact largest observation (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `num/den` (e.g. `99/100` for p99):
    /// the inclusive upper bound of the bucket holding the
    /// ceil(count·num/den)-th smallest observation, clamped by the
    /// exact max. Returns 0 on an empty histogram.
    pub fn value_at_quantile(&self, num: u64, den: u64) -> u64 {
        assert!(den > 0 && num <= den, "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        // Ceiling rank, at least 1: p0 is the smallest observation.
        // Widen to u128 so count × num cannot overflow.
        let rank = ((self.count as u128 * num as u128).div_ceil(den as u128)).max(1) as u64;
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let hi = if k == BUCKETS - 1 {
                    u64::MAX
                } else {
                    (1u64 << (k + 1)) - 1
                };
                return hi.min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket-resolution; see [`Histogram::value_at_quantile`]).
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(1, 2)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(99, 100)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.value_at_quantile(999, 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_ranges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn max_is_exact_and_caps_every_percentile() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.value_at_quantile(1, 1), 1000);
        assert!(h.p999() <= 1000);
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 2, 2, 700] {
            a.record(v);
        }
        for v in [3u64, 900, 100_000] {
            b.record(v);
        }
        let mut whole = Histogram::new();
        for v in [1u64, 2, 2, 700, 3, 900, 100_000] {
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }
}
