//! Zero-cost-when-off metrics & event tracing for the sl2 runtime
//! crates.
//!
//! The production objects — `WideFaa`, the sharded registers, the
//! combining front-end — make step-count and contention claims (DWCAS
//! retries, probe widths, combiner batch sizes) that the benches can
//! only see as makespan medians. This crate is the seam that makes
//! them observable, on the same terms as `sl2_chaos` (PR 7):
//!
//! * **Probes.** Hot paths are annotated with labeled hooks:
//!   [`count`]`("faa.dwcas_retry")`, [`record`]`("combine.batch_size",
//!   n)`, [`time`]`("combine.fold_batch")`, [`gauge`]`("depth", d)`.
//!   With the `obs` feature off (the default everywhere), every probe
//!   is an empty `#[inline(always)]` stub and [`Timer`] is a ZST: the
//!   production build is bit-for-bit unaffected (pinned by
//!   `tests/alloc_counter.rs`).
//! * **Armed registry.** With `obs` on, probes intern their label in a
//!   fixed lock-free table and update relaxed `AtomicU64` cells in
//!   cache-padded per-thread shards — no locks, no allocation, no
//!   synchronization edges added to the object under test (probe
//!   soundness: DESIGN.md §11).
//! * **Snapshots.** [`snapshot`] merges the shards into a
//!   [`MetricsSnapshot`] (counters summed, gauges max-folded,
//!   histograms bucket-merged with p50/p99/p999/max extraction), which
//!   serializes to JSON lines and exports via `SL2_METRICS_JSON`.
//!
//! The [`Histogram`] type itself is *not* feature-gated: the bench
//! harness (`sl2_bench`) records per-sample latencies into it directly
//! so every bench group can report percentiles alongside medians.
//!
//! # Example
//!
//! ```
//! use sl2_obs as obs;
//!
//! // Disarmed by default: stubs compile to nothing, snapshots are
//! // empty. Armed under `--features obs`, these populate the registry.
//! obs::count("doc.example.hits");
//! obs::record("doc.example.size", 17);
//! let t = obs::time("doc.example.span");
//! drop(t);
//! assert_eq!(obs::snapshot().is_empty(), !obs::armed());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod hist;
mod report;

pub use hist::{bucket_of, Histogram, BUCKETS};
pub use report::MetricsSnapshot;

#[cfg(feature = "obs")]
mod armed;

#[cfg(feature = "obs")]
pub use armed::{add, armed, count, gauge, record, reset, snapshot, time, Timer, SHARDS};

/// Number of cache-padded shards each metric is striped over when the
/// probe layer is armed (mirrored here so shard-aware callers compile
/// in both configurations).
#[cfg(not(feature = "obs"))]
pub const SHARDS: usize = 16;

/// Increments the counter under `label` by 1. Disarmed: empty stub.
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub fn count(_label: &'static str) {}

/// Adds `n` to the counter under `label`. Disarmed: empty stub.
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub fn add(_label: &'static str, _n: u64) {}

/// Raises the high-watermark gauge under `label` to at least `v`.
/// Disarmed: empty stub.
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub fn gauge(_label: &'static str, _v: u64) {}

/// Records observation `v` into the histogram under `label`.
/// Disarmed: empty stub.
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub fn record(_label: &'static str, _v: u64) {}

/// Drop guard recording elapsed nanoseconds into its label's
/// histogram. Disarmed: a ZST with no `Drop` glue.
#[cfg(not(feature = "obs"))]
#[derive(Debug)]
pub struct Timer(());

/// Starts a [`Timer`] over the histogram under `label`. Disarmed:
/// returns the ZST.
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub fn time(_label: &'static str) -> Timer {
    Timer(())
}

/// False: the probe layer is compiled out of this build.
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub fn armed() -> bool {
    false
}

/// Zeroes the registry. Disarmed: no-op.
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub fn reset() {}

/// Merged view of the registry. Disarmed: always empty, so
/// report-emitting call sites need no feature gate.
#[cfg(not(feature = "obs"))]
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot::default()
}
