//! Structured metric snapshots and their JSON-lines export
//! (`SL2_METRICS_JSON`), following the same shape discipline as the
//! corpus and recorder reports.

use crate::hist::Histogram;

/// A merged, point-in-time view of every registered metric: counters
/// summed across thread shards, gauges folded by max (high-watermark
/// semantics), histograms bucket-wise merged. Entries are sorted by
/// label so serialized reports diff cleanly.
///
/// With the `obs` feature off, `sl2_obs::snapshot()` returns an empty
/// snapshot, so report-emitting call sites need no feature gate of
/// their own.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(label, total)` for each registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(label, high-watermark)` for each registered gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(label, merged histogram)` for each registered distribution.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// True if no metric carries any data.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The value of a counter, if registered.
    pub fn counter(&self, label: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, v)| v)
    }

    /// The merged histogram under `label`, if registered.
    pub fn histogram(&self, label: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, h)| h)
    }

    /// Serializes the snapshot as JSON lines: one object per metric.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (label, v) in &self.counters {
            out.push_str(&format!(
                "{{\"metric\":\"{}\",\"kind\":\"counter\",\"value\":{v}}}\n",
                json_escape(label),
            ));
        }
        for (label, v) in &self.gauges {
            out.push_str(&format!(
                "{{\"metric\":\"{}\",\"kind\":\"gauge\",\"value\":{v}}}\n",
                json_escape(label),
            ));
        }
        for (label, h) in &self.histograms {
            out.push_str(&format!(
                "{{\"metric\":\"{}\",\"kind\":\"histogram\",\"count\":{},\
                 \"p50\":{},\"p99\":{},\"p999\":{},\"max\":{}}}\n",
                json_escape(label),
                h.count(),
                h.p50(),
                h.p99(),
                h.p999(),
                h.max(),
            ));
        }
        out
    }

    /// Writes the JSON-lines report to the path named by the
    /// `SL2_METRICS_JSON` environment variable, if set (the CI
    /// artifact hook, mirroring `SL2_CORPUS_JSON` /
    /// `SL2_RECORDER_JSON`).
    pub fn write_env(&self) {
        if let Ok(path) = std::env::var("SL2_METRICS_JSON") {
            std::fs::write(&path, self.to_json_lines())
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        }
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_one_object_per_metric() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(2000);
        let snap = MetricsSnapshot {
            counters: vec![("a.ctr".into(), 7)],
            gauges: vec![("b.gauge".into(), 9)],
            histograms: vec![("c.hist".into(), h)],
        };
        let text = snap.to_json_lines();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"metric\":\"a.ctr\",\"kind\":\"counter\",\"value\":7}"
        );
        assert!(lines[1].contains("\"kind\":\"gauge\""));
        assert!(lines[2].contains("\"count\":2") && lines[2].contains("\"max\":2000"));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn lookup_helpers_find_labels() {
        let snap = MetricsSnapshot {
            counters: vec![("x".into(), 3)],
            gauges: vec![],
            histograms: vec![("y".into(), Histogram::new())],
        };
        assert_eq!(snap.counter("x"), Some(3));
        assert_eq!(snap.counter("missing"), None);
        assert!(snap.histogram("y").is_some());
        assert!(!snap.is_empty());
        assert!(MetricsSnapshot::default().is_empty());
    }
}
