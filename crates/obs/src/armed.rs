//! The armed probe implementation (`--features obs`): a fixed-capacity
//! lock-free label registry over cache-padded per-thread shards of
//! relaxed atomics.
//!
//! Design constraints, in order:
//!
//! * **Never perturb what it measures.** Probes take no locks and
//!   issue only `Relaxed` operations on cells private to the metrics
//!   layer — they cannot introduce synchronization edges between the
//!   threads of the object under test (DESIGN.md §11).
//! * **Scale with the workload.** Each metric is striped over
//!   [`SHARDS`] cache-padded shards indexed by the calling thread's
//!   [`labeled::slot`], so armed probes contend on instrumentation
//!   lines only when more threads than shards collide.
//! * **Allocation-free.** Labels are `&'static str` interned into
//!   fixed open-addressed tables of `OnceLock` slots (FNV-1a probe
//!   order, content-verified); all storage is static.
//!
//! Totals only exist at snapshot time: [`snapshot`] folds the shards
//! into a [`MetricsSnapshot`] (counters summed, gauges max-folded,
//! histograms bucket-wise merged).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use sl2_primitives::labeled::{self, label_hash};
use sl2_primitives::CachePadded;

use crate::hist::{bucket_of, Histogram, BUCKETS};
use crate::report::MetricsSnapshot;

/// Number of cache-padded shards each metric is striped over.
pub const SHARDS: usize = 16;

const COUNTER_SLOTS: usize = 128;
const GAUGE_SLOTS: usize = 32;
const HIST_SLOTS: usize = 32;

/// Fixed-capacity open-addressed label interning table: FNV-1a hash
/// picks the start slot, linear probing resolves collisions, each slot
/// is a `OnceLock` so registration is a lock-free race with
/// content-verified winners.
struct LabelTable<const N: usize> {
    slots: [OnceLock<&'static str>; N],
}

impl<const N: usize> LabelTable<N> {
    const fn new() -> Self {
        LabelTable {
            slots: [const { OnceLock::new() }; N],
        }
    }

    /// Index of `label`, interning it on first use.
    fn index_of(&self, label: &'static str) -> usize {
        debug_assert!(N.is_power_of_two());
        let h = label_hash(label) as usize;
        for i in 0..N {
            let idx = (h + i) & (N - 1);
            let slot = &self.slots[idx];
            match slot.get() {
                Some(&l) => {
                    if l == label {
                        return idx;
                    }
                    // Collision: probe onward.
                }
                None => {
                    // Claim the empty slot; on a lost race, accept the
                    // slot iff the winner registered the same label.
                    if slot.set(label).is_ok() || *slot.get().expect("slot was set") == label {
                        return idx;
                    }
                }
            }
        }
        panic!("obs: label table full ({N} slots) — raise the capacity in sl2_obs");
    }

    fn labels(&self) -> impl Iterator<Item = (usize, &'static str)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.get().map(|&l| (i, l)))
    }
}

struct CounterShard {
    cells: [AtomicU64; COUNTER_SLOTS],
}

struct GaugeShard {
    cells: [AtomicU64; GAUGE_SLOTS],
}

struct HistShard {
    buckets: [[AtomicU64; BUCKETS]; HIST_SLOTS],
    max: [AtomicU64; HIST_SLOTS],
}

static COUNTER_LABELS: LabelTable<COUNTER_SLOTS> = LabelTable::new();
static GAUGE_LABELS: LabelTable<GAUGE_SLOTS> = LabelTable::new();
static HIST_LABELS: LabelTable<HIST_SLOTS> = LabelTable::new();

static COUNTERS: [CachePadded<CounterShard>; SHARDS] = [const {
    CachePadded::new(CounterShard {
        cells: [const { AtomicU64::new(0) }; COUNTER_SLOTS],
    })
}; SHARDS];

static GAUGES: [CachePadded<GaugeShard>; SHARDS] = [const {
    CachePadded::new(GaugeShard {
        cells: [const { AtomicU64::new(0) }; GAUGE_SLOTS],
    })
}; SHARDS];

static HISTS: [CachePadded<HistShard>; SHARDS] = [const {
    CachePadded::new(HistShard {
        buckets: [const { [const { AtomicU64::new(0) }; BUCKETS] }; HIST_SLOTS],
        max: [const { AtomicU64::new(0) }; HIST_SLOTS],
    })
}; SHARDS];

#[inline]
fn shard() -> usize {
    labeled::slot() % SHARDS
}

/// Increments the counter under `label` by 1.
#[inline]
pub fn count(label: &'static str) {
    add(label, 1);
}

/// Adds `n` to the counter under `label`.
#[inline]
pub fn add(label: &'static str, n: u64) {
    let idx = COUNTER_LABELS.index_of(label);
    COUNTERS[shard()].cells[idx].fetch_add(n, Ordering::Relaxed);
}

/// Raises the high-watermark gauge under `label` to at least `v`
/// (gauges fold by max across shards at snapshot time).
#[inline]
pub fn gauge(label: &'static str, v: u64) {
    let idx = GAUGE_LABELS.index_of(label);
    GAUGES[shard()].cells[idx].fetch_max(v, Ordering::Relaxed);
}

/// Records observation `v` into the histogram under `label`.
#[inline]
pub fn record(label: &'static str, v: u64) {
    let idx = HIST_LABELS.index_of(label);
    let s = &HISTS[shard()];
    s.buckets[idx][bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    s.max[idx].fetch_max(v, Ordering::Relaxed);
}

/// Drop guard recording elapsed wall-clock nanoseconds into the
/// histogram under its label.
#[derive(Debug)]
#[must_use = "the timer records on drop — bind it for the timed span"]
pub struct Timer {
    label: &'static str,
    start: Instant,
}

impl Drop for Timer {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        record(self.label, ns);
    }
}

/// Starts a [`Timer`] over the histogram under `label`.
#[inline]
pub fn time(label: &'static str) -> Timer {
    Timer {
        label,
        start: Instant::now(),
    }
}

/// True: the probe layer is armed in this build.
#[inline]
pub fn armed() -> bool {
    true
}

/// Zeroes every shard cell. Labels stay registered (the interning
/// tables are append-only); their totals restart from 0.
pub fn reset() {
    for s in &COUNTERS {
        for c in &s.cells {
            c.store(0, Ordering::Relaxed);
        }
    }
    for s in &GAUGES {
        for c in &s.cells {
            c.store(0, Ordering::Relaxed);
        }
    }
    for s in &HISTS {
        for row in &s.buckets {
            for c in row {
                c.store(0, Ordering::Relaxed);
            }
        }
        for c in &s.max {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// Folds every shard into a [`MetricsSnapshot`]: counters summed,
/// gauges max-folded, histograms bucket-wise merged, entries sorted by
/// label. Concurrent updates may or may not be included (relaxed
/// merge-at-snapshot semantics, DESIGN.md §11); quiesce writers first
/// for exact totals.
pub fn snapshot() -> MetricsSnapshot {
    let mut counters: Vec<(String, u64)> = COUNTER_LABELS
        .labels()
        .map(|(i, l)| {
            let total = COUNTERS
                .iter()
                .map(|s| s.cells[i].load(Ordering::Relaxed))
                .sum();
            (l.to_string(), total)
        })
        .collect();
    counters.sort();

    let mut gauges: Vec<(String, u64)> = GAUGE_LABELS
        .labels()
        .map(|(i, l)| {
            let hi = GAUGES
                .iter()
                .map(|s| s.cells[i].load(Ordering::Relaxed))
                .max()
                .unwrap_or(0);
            (l.to_string(), hi)
        })
        .collect();
    gauges.sort();

    let mut histograms: Vec<(String, Histogram)> = HIST_LABELS
        .labels()
        .map(|(i, l)| {
            let mut buckets = [0u64; BUCKETS];
            let mut max = 0u64;
            for s in &HISTS {
                for (b, cell) in buckets.iter_mut().zip(s.buckets[i].iter()) {
                    *b += cell.load(Ordering::Relaxed);
                }
                max = max.max(s.max[i].load(Ordering::Relaxed));
            }
            (l.to_string(), Histogram::from_parts(buckets, max))
        })
        .collect();
    histograms.sort_by(|a, b| a.0.cmp(&b.0));

    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}
