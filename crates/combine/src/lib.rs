//! Flat-combining front-end over the §3 objects, from
//! consensus-number-2 primitives — the read-heavy counterpart of
//! `sl2_sharded`.
//!
//! PR 3's sharding wins contended writes but loses read-heavy mixes:
//! a whole-object read folds `S` shards per collect pass and retries
//! under churn. This crate adds the layer the ROADMAP names for that
//! regime: operations are *announced* in per-process
//! [`PublicationArray`] slots (swap), one announcer wins a
//! [`CombinerLock`] election (swap), applies the batch to the inner
//! sharded object, and publishes a whole-object fold to a single cache
//! register — so read-heavy callers take a **1-load fast path**
//! instead of the S-probe fold. Khanchandani & Wattenhofer's point
//! ("Is Compare-and-Swap Really Necessary?") holds throughout: slots,
//! lock, cache and epoch are swap/fetch&add, compare&swap appears
//! nowhere ([`Combiner::consensus_ceiling`] asserts it).
//!
//! Two deliberate departures from textbook flat combining, both with
//! semantic teeth:
//!
//! * **no waiters** — an announcer that loses the election applies its
//!   operation *directly* (the plain wait-free sharded path) and
//!   withdraws, instead of parking on its slot. Announced operations
//!   must therefore be ensure-style idempotent ([`Combinable`]), since
//!   owner and helper may both apply one announcement. The system has
//!   no blocked states — and neither do the checker twins in
//!   [`machines`].
//! * **the cached read is honest about what it is** — exact as of its
//!   publication, monotone, never ahead, but stale against direct-path
//!   completions. Combining is a *helping* pattern, exactly the
//!   structure the "Difficulty of Consistent Refereeing" impossibility
//!   line warns can break strong linearizability — so the cached read
//!   is adjudicated, not assumed: `check_strong` refutes it against
//!   the exact specifications (replayable witnesses) and certifies it
//!   against the `sl2_spec::relaxed` window specifications, while the
//!   stable read keeps the PR-3 frontier boundary (DESIGN.md §8).
//!
//! | read path | cost | meets strongly |
//! |---|---|---|
//! | [`Combiner::read_cached`] | 1 load | `LaggingMaxSpec` / `LaggingCounterSpec` windows |
//! | [`Combiner::read_stable`] | stable S-probe collect | exact spec on frontier-safe scenarios (PR-3 boundary) |
//!
//! # Quick start
//!
//! ```
//! use sl2_combine::CombiningMaxRegister;
//! use sl2_sharded::ShardedMaxRegister;
//! use sl2_core::algos::MaxRegister;
//!
//! // 4 threads over 4 shards, behind the combining front-end.
//! let max = CombiningMaxRegister::new(ShardedMaxRegister::new(4, 4));
//! std::thread::scope(|s| {
//!     for p in 0..4 {
//!         let max = &max;
//!         s.spawn(move || max.write_max(p, 10 * (p as u64 + 1)));
//!     }
//! });
//! // Exact read (stable collect) vs the 1-load cached fold.
//! assert_eq!(max.read_max(), 40);
//! max.refresh();
//! assert_eq!(max.read_cached(), 40);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod combiner;
pub mod machines;
pub mod objects;
pub mod slots;

pub use combiner::{ApplyPath, Combinable, Combiner};
pub use machines::{
    abandoned_counter_fan_in_scenario, abandoned_counter_lagging_scenario,
    cached_fan_in_lagging_scenario, cached_fan_in_max_scenario, combining_frontier_safe_scenario,
    CombiningCounterAlg, CombiningCounterMachine, CombiningMaxRegAlg, CombiningMaxRegMachine,
    ReadMode, DEAD_LEASE, LEASE_BASE,
};
pub use objects::{CombiningCounter, CombiningMaxRegister, CombiningSnapshot};
pub use slots::{CombinerLock, Lease, PubSlot, PublicationArray, SeqCache};
