//! [`Combiner`]: the generic flat-combining front-end.
//!
//! Khanchandani & Wattenhofer ("Is Compare-and-Swap Really
//! Necessary?") observe that combining — one process applying many
//! processes' operations in a batch — needs nothing above consensus
//! number 2. This module is that observation as a production object:
//! announcement slots ([`crate::PublicationArray`], swap), a combiner
//! election ([`crate::CombinerLock`], swap), a fetch&add epoch
//! counter, and a single-word published fold — no compare&swap
//! anywhere, which [`Combiner::consensus_ceiling`] asserts through the
//! [`BaseObject`] constants.
//!
//! # The protocol, and why it never blocks
//!
//! An operation is *announced* (one swap), then its owner runs the
//! combiner election (one swap):
//!
//! * **won** — the owner sweeps every slot, claims the announced
//!   operations (its own usually among them), applies each to the
//!   inner §3 object, publishes a fresh whole-object fold to the cache
//!   register, bumps the epoch, and releases;
//! * **lost** — the owner applies its operation to the inner object
//!   *directly* (the plain sharded path) and withdraws its
//!   announcement. **No waiting, ever**: classic flat combining parks
//!   losers on their slots until the combiner serves them, which turns
//!   a stalled combiner into a stalled system (and turns the checker's
//!   execution tree into a cycle). Here the slow path is the ordinary
//!   wait-free sharded write.
//!
//! The price of not waiting is that claim ([`PublicationArray::take`])
//! and withdraw can race, so an operation may be applied by both its
//! owner and a helper. [`Combinable`] makes that harmless by
//! *re-attribution*: the helper runs the announced operation through
//! its **own** lanes (the §3 single-writer-per-lane discipline is what
//! makes a probing `fetch&add` regression-free, so a helper must never
//! touch the announcer's lane), and only operations whose meaning is
//! lane-independent — max-register writes — qualify. Owner and helper
//! then write different lanes with the same monotone intent, and the
//! fold absorbs the duplicate.
//!
//! # The cached read, honestly
//!
//! [`Combiner::read_cached`] is one load of the published fold: the
//! fast path the read-heavy regime wants (E26). The fold is exact *as
//! of its publication* and monotone across publications, but direct-
//! path operations complete without republishing — so a cached read
//! may trail completed operations. Against the exact specification the
//! checker **refutes** the cached read (a replayable [`Witness`]);
//! what it meets strongly is the `sl2_spec::relaxed` window
//! specification, exactly the `LaggingCounterSpec` pattern — DESIGN.md
//! §8 walks the adjudication, [`crate::machines`] pins it.
//!
//! [`Witness`]: sl2_exec::Witness
//! [`PublicationArray::take`]: crate::PublicationArray::take

use std::fmt::Debug;
use std::sync::atomic::{AtomicU64, Ordering};

use sl2_primitives::{BaseObject, CachePadded, ConsensusNumber, FetchAdd, Swap};

use crate::slots::{CombinerLock, Lease, PublicationArray};

/// Consecutive identical `(lease, epoch)` observations a lost-election
/// process must make before it may reclaim the combiner lock. Two is
/// enough under crash-stop (a dead holder's lease is frozen forever,
/// and every live tenure carries a *fresh* unique lease, so two spaced
/// sightings of one lease with no publication in between never happen
/// while the holder makes progress); it is deliberately small so
/// recovery is prompt — a merely *stalled* holder suspected wrongly is
/// survived by the release validation and the monotone publication
/// repair (DESIGN.md §10).
pub(crate) const RECLAIM_STRIKES: u64 = 2;

/// Per-process abandonment evidence: the last `(lease, epoch)` pair
/// this process observed while losing an election, and how many
/// consecutive times it has seen exactly that pair. Plain registers
/// (consensus number 1) — each cell is written only by its owning
/// process.
#[derive(Debug, Default)]
pub(crate) struct Suspicion {
    lease: AtomicU64,
    epoch: AtomicU64,
    pub(crate) strikes: AtomicU64,
}

/// One lost-election observation of the holder's `(lease, epoch)`:
/// updates `cell`'s strike counter and attempts the reclaim once the
/// pair has stayed frozen for [`RECLAIM_STRIKES`] consecutive
/// observations. Unique leases make the evidence sound under
/// crash-stop: a live tenure either releases (lease changes or
/// clears) or publishes (epoch advances), and a new tenure always
/// mints a fresh lease — only a dead holder freezes the pair.
pub(crate) fn observe_or_reclaim(
    lock: &CombinerLock,
    epoch: &FetchAdd,
    cell: &Suspicion,
) -> Option<Lease> {
    let lease = lock.holder();
    if lease == 0 {
        cell.strikes.store(0, Ordering::Relaxed);
        return None;
    }
    let epoch = epoch.read();
    if cell.lease.load(Ordering::Relaxed) == lease && cell.epoch.load(Ordering::Relaxed) == epoch {
        let strikes = cell.strikes.load(Ordering::Relaxed) + 1;
        cell.strikes.store(strikes, Ordering::Relaxed);
        sl2_obs::count("combine.lease_strike");
        if strikes >= RECLAIM_STRIKES {
            cell.strikes.store(0, Ordering::Relaxed);
            let reclaimed = lock.reclaim(lease);
            if reclaimed.is_some() {
                sl2_obs::count("combine.lease_reclaim");
            }
            return reclaimed;
        }
    } else {
        cell.lease.store(lease, Ordering::Relaxed);
        cell.epoch.store(epoch, Ordering::Relaxed);
        cell.strikes.store(0, Ordering::Relaxed);
    }
    None
}

/// A held combiner tenure that releases on drop, so a panic inside
/// the sweep (or anywhere else in the critical section) unwinds
/// through the release instead of abandoning the lock. A crash-stop
/// never unwinds, so abandonment — the case the lease/reclaim
/// machinery exists for — is exactly the non-drop path.
pub(crate) struct Tenure<'a> {
    pub(crate) lock: &'a CombinerLock,
    pub(crate) lease: Option<Lease>,
}

impl Drop for Tenure<'_> {
    fn drop(&mut self) {
        if let Some(lease) = self.lease.take() {
            // A `false` return means the tenure was reclaimed by a
            // survivor that suspected this combiner dead; the
            // publication that already happened is monotone-safe, so
            // forfeiting silently is correct (see `publish_fold`).
            let _ = self.lock.release(lease);
        }
    }
}

/// An inner object the combining front-end can drive.
///
/// Implementations must satisfy two laws the protocol leans on:
///
/// * **applier-attributed operations** — `apply(applier, op)` runs the
///   operation through `applier`'s *own* lanes, whoever originally
///   announced it. The §3 constructions are only sound under their
///   single-writer-per-lane discipline (a probing `fetch&add` is
///   regression-free only because the probed lane cannot move under
///   its one writer), so a helper must never write the announcer's
///   lane — it re-attributes the operation to itself. That demands
///   operations whose *meaning* is lane-independent: a max-register
///   write is (the fold takes the maximum over all lanes, so any lane
///   can carry the value), a counter increment is **not** (units are
///   owner-attributed; a helper landing "owner's unit" in its own lane
///   double-counts when the owner also applies). This is why the
///   counter front-end combines only publication, never application —
///   DESIGN.md §8 states the taxonomy.
/// * **sound folds** — [`Combinable::fold_relaxed`] must never exceed
///   the landed whole-object value and must be monotone across calls
///   (the published cache inherits both), while
///   [`Combinable::fold_exact`] is the stable exact read.
///
/// Applier attribution also makes re-application harmless: owner and
/// helper racing on one announcement write *different* lanes with the
/// same monotone intent, and the fold absorbs the duplicate.
pub trait Combinable {
    /// The announced operation.
    type Op: Copy + Debug;

    /// Number of processes sharing the object (= announcement slots).
    fn processes(&self) -> usize;

    /// Injective encoding of an operation into a word below
    /// `u64::MAX` (the slot reserves one encoding).
    fn encode(op: Self::Op) -> u64;

    /// Inverse of [`Combinable::encode`].
    fn decode(word: u64) -> Self::Op;

    /// Applies `op` through `applier`'s own lanes (see the trait docs:
    /// `applier` is the process *executing* the application, not
    /// necessarily the announcer).
    fn apply(&self, applier: usize, op: Self::Op);

    /// Merges one applied operation into a published fold value — the
    /// arithmetic the combiner uses to advance the cache *without*
    /// probing the inner shards (`max(prev, v)` for the max register).
    /// Must be **idempotent** (an operation already covered by `prev`
    /// leaves it unchanged — that is what lets batch publication
    /// compose with the fold-based [`Combiner::refresh`]; a sum has no
    /// such merge, which is one more reason the counter front-end
    /// combines publication only) and must keep the two fold laws:
    /// `fold_batch(prev, op) ≥ prev`, and `≤` the landed fold whenever
    /// `prev` is and `op` has been applied.
    fn fold_batch(prev: u64, op: Self::Op) -> u64;

    /// One-pass whole-object fold: wait-free, monotone, never ahead of
    /// the landed value. This is what [`Combiner::refresh`] publishes.
    fn fold_relaxed(&self) -> u64;

    /// Exact whole-object fold (stable collect; lock-free).
    fn fold_exact(&self) -> u64;
}

/// Which route an operation took through the front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyPath {
    /// The caller won the election and combined; `applied` counts the
    /// announcements its sweep claimed and applied (usually including
    /// its own — unless an earlier combiner already helped it).
    Combined {
        /// Announcements applied in this sweep.
        applied: usize,
    },
    /// The caller lost the election and applied directly (the plain
    /// sharded path); its announcement was withdrawn (or claimed by
    /// the combiner, harmlessly, per idempotence).
    Direct,
    /// The caller lost the election, applied directly — and then
    /// found the holder's lease frozen across `RECLAIM_STRIKES`
    /// observations, reclaimed the abandoned lock, and resumed
    /// combining: it swept `applied` leftover announcements and
    /// republished a fresh fold. This is the recovery path a
    /// crash-stopped combiner forces (DESIGN.md §10).
    Reclaimed {
        /// Abandoned announcements applied during the recovery sweep.
        applied: usize,
    },
}

/// Flat-combining front-end over a [`Combinable`] inner object.
///
/// # Examples
///
/// ```
/// use sl2_combine::{Combinable, CombiningMaxRegister};
/// use sl2_sharded::ShardedMaxRegister;
/// use sl2_core::algos::MaxRegister;
///
/// let m = CombiningMaxRegister::new(ShardedMaxRegister::new(2, 4));
/// m.write_max(0, 9);
/// assert_eq!(m.read_cached(), 9, "the write combined and published");
/// assert_eq!(m.read_max(), 9);
/// ```
#[derive(Debug)]
pub struct Combiner<O> {
    inner: O,
    slots: PublicationArray,
    lock: CombinerLock,
    /// Published whole-object fold. A swap register written only by
    /// the election winner, so publications are totally ordered by the
    /// lock and the register needs no read-modify-write semantics —
    /// except across a wrongful reclaim, where two publishers can
    /// overlap and the monotone repair in `publish_fold` keeps the
    /// register from regressing.
    cache: CachePadded<Swap>,
    /// Publication count (combiner batches completed so far).
    epoch: CachePadded<FetchAdd>,
    /// Per-process abandonment evidence (see [`Suspicion`]).
    suspicion: Box<[CachePadded<Suspicion>]>,
}

impl<O: Combinable> Combiner<O> {
    /// Wraps `inner`, allocating one announcement slot per process.
    pub fn new(inner: O) -> Self {
        let n = inner.processes();
        Combiner {
            inner,
            slots: PublicationArray::new(n),
            lock: CombinerLock::new(),
            cache: CachePadded::new(Swap::new(0)),
            epoch: CachePadded::new(FetchAdd::new(0)),
            suspicion: (0..n)
                .map(|_| CachePadded::new(Suspicion::default()))
                .collect(),
        }
    }

    /// The wrapped inner object (for stable reads beyond the fold,
    /// e.g. snapshot scans).
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Number of processes (= announcement slots).
    pub fn processes(&self) -> usize {
        self.slots.len()
    }

    /// Combiner batches published so far.
    pub fn epoch(&self) -> u64 {
        self.epoch.read()
    }

    /// Applies `op` on behalf of `process` through the front-end:
    /// announce, run the election, then combine or go direct (see the
    /// module docs). Wait-free either way. A loser additionally
    /// watches the holder's lease for abandonment and — after
    /// `RECLAIM_STRIKES` frozen observations — reclaims the lock
    /// and resumes combining ([`ApplyPath::Reclaimed`]).
    pub fn apply(&self, process: usize, op: O::Op) -> ApplyPath {
        self.slots.publish(process, O::encode(op));
        sl2_chaos::point("combine.announced");
        // Trace instants attribute to the ambient request span (the
        // serving worker re-entered it), so a traced service run can
        // say *which request's* election this was: payload 0 = lost,
        // 1 = won, 2 = reclaimed a dead holder's lock.
        sl2_trace::event("combine.announce", process as u64);
        let Some(lease) = self.lock.try_acquire() else {
            // Lost the election: the plain wait-free path, then retire
            // the announcement (a combiner that already claimed it
            // re-applies harmlessly — `apply` is idempotent).
            sl2_obs::count("combine.election_lost");
            sl2_trace::event("combine.elect", 0);
            self.inner.apply(process, op);
            self.slots.withdraw(process);
            if let Some(lease) = self.suspect_then_reclaim(process) {
                // The holder was dead (its lease froze): recover.
                // Publish from a fresh one-pass fold rather than a
                // cache merge — the dead combiner may have applied
                // claimed operations without reaching its
                // publication, and the fold re-covers them.
                sl2_trace::event("combine.elect", 2);
                let applied = self.combine(process, lease, Some(self.inner.fold_relaxed()));
                return ApplyPath::Reclaimed { applied };
            }
            sl2_obs::count("combine.direct_path");
            return ApplyPath::Direct;
        };
        self.clear_suspicion(process);
        sl2_chaos::point("combine.won");
        sl2_obs::count("combine.election_won");
        sl2_trace::event("combine.elect", 1);
        // Won: read the published fold, sweep (each claim applied
        // through this process's own lanes — see the Combinable docs)
        // while merging every applied operation into the fold, then
        // publish and release. Publication is a merge, not an inner
        // fold: every merged operation has landed (applies precede the
        // publication), the previous published value never regresses
        // (fold_batch only grows its accumulator), and — because
        // fold_batch is idempotent — an operation the cache already
        // covers changes nothing. The shard probes a one-pass fold
        // would cost are exactly the contended lines the read-heavy
        // regime is trying to avoid (E26).
        let applied = self.combine(process, lease, None);
        ApplyPath::Combined { applied }
    }

    /// One combiner tenure: sweep every slot, apply the claims through
    /// `applier`'s lanes, publish, release. `base` is the fold to
    /// start from — `None` merges onto the published cache (the normal
    /// tenure, which skips publication when the sweep came up empty);
    /// `Some(fold)` publishes unconditionally from that fold (the
    /// recovery tenure). The lease is held by a `Tenure` guard, so
    /// a panic anywhere in here releases on unwind; only a crash-stop
    /// abandons the lock.
    fn combine(&self, applier: usize, lease: Lease, base: Option<u64>) -> usize {
        let tenure = Tenure {
            lock: &self.lock,
            lease: Some(lease),
        };
        // Times the whole tenure (sweep + publish + release).
        let _tenure_timer = sl2_obs::time("combine.fold_batch");
        let publish_always = base.is_some();
        let mut fold = base.unwrap_or_else(|| self.cache.read());
        let mut applied = 0;
        for i in 0..self.slots.len() {
            sl2_chaos::point("combine.mid_sweep");
            if let Some(word) = self.slots.take(i) {
                let op = O::decode(word);
                self.inner.apply(applier, op);
                fold = O::fold_batch(fold, op);
                applied += 1;
            }
        }
        sl2_obs::record("combine.batch_size", applied as u64);
        sl2_trace::event("combine.fold", applied as u64);
        if publish_always || applied > 0 {
            sl2_chaos::point("combine.pre_publish");
            self.publish_fold(fold);
            sl2_trace::event("combine.publish", fold);
        }
        sl2_chaos::point("combine.pre_release");
        drop(tenure);
        applied
    }

    /// Publishes `fold` with the monotone repair: folds only grow, so
    /// if the swap displaces a *larger* value, a concurrent publisher
    /// (possible only across a wrongful reclaim of a stalled-but-live
    /// combiner) got there with fresher data — put it back. The cache
    /// never regresses either way, which is the soundness law the
    /// cached-read specs rest on.
    fn publish_fold(&self, fold: u64) {
        let prev = self.cache.swap(fold);
        if prev > fold {
            self.cache.swap(prev);
        }
        self.epoch.fetch_add(1);
    }

    /// One lost-election observation of the holder (see
    /// [`observe_or_reclaim`]): returns a fresh lease iff `process`'s
    /// accumulated evidence proved the holder dead and the reclaim
    /// landed.
    fn suspect_then_reclaim(&self, process: usize) -> Option<Lease> {
        observe_or_reclaim(&self.lock, &self.epoch, &self.suspicion[process])
    }

    /// Resets `process`'s abandonment evidence (after winning an
    /// election: whatever it was watching is moot).
    fn clear_suspicion(&self, process: usize) {
        self.suspicion[process].strikes.store(0, Ordering::Relaxed);
    }

    /// The 1-load fast path: the last published whole-object fold.
    /// Wait-free, one shared read; monotone across calls and never
    /// ahead of the exact value — but it may trail operations that
    /// completed on the direct path since the last publication
    /// (DESIGN.md §8 has the strong-linearizability adjudication).
    pub fn read_cached(&self) -> u64 {
        sl2_obs::count("combine.read_cached");
        self.cache.read()
    }

    /// The exact read: the inner object's stable fold (lock-free).
    pub fn read_stable(&self) -> u64 {
        sl2_obs::count("combine.read_stable");
        self.inner.fold_exact()
    }

    /// Opportunistically republishes a fresh fold (one election
    /// attempt; a held lock means a combiner is about to publish
    /// anyway). Read-heavy callers can use this to bound cache lag at
    /// quiescence. Returns whether a publication happened.
    ///
    /// No sweep: announcements never *need* service (owners always
    /// apply their own operations — the protocol has no waiters), so a
    /// refresher only folds and publishes.
    pub fn refresh(&self) -> bool {
        let Some(lease) = self.lock.try_acquire() else {
            return false;
        };
        let tenure = Tenure {
            lock: &self.lock,
            lease: Some(lease),
        };
        self.publish_fold(self.inner.fold_relaxed());
        drop(tenure);
        true
    }

    /// The election lock — exposed for fault-injection tests and
    /// diagnostics (e.g. abandoning a tenure on purpose to exercise
    /// the reclaim path). Production callers never need this.
    pub fn lock(&self) -> &CombinerLock {
        &self.lock
    }

    /// The announcement slots — exposed for fault-injection tests and
    /// diagnostics (e.g. planting an abandoned announcement).
    /// Production callers never need this.
    pub fn slots(&self) -> &PublicationArray {
        &self.slots
    }

    /// The highest consensus number among the front-end's own base
    /// objects — [`ConsensusNumber::Two`], by construction: slots and
    /// lock are swap, the epoch is fetch&add, the cache is a
    /// single-writer swap register. The test suite asserts this stays
    /// put (the paper's budget; cf. Khanchandani & Wattenhofer).
    pub fn consensus_ceiling(&self) -> ConsensusNumber {
        use crate::slots::{PubSlot, SeqCache};
        let parts = [
            PubSlot::CONSENSUS_NUMBER,
            CombinerLock::CONSENSUS_NUMBER,
            SeqCache::CONSENSUS_NUMBER,
            Swap::CONSENSUS_NUMBER,
            FetchAdd::CONSENSUS_NUMBER,
            sl2_bignum::WideFaa::CONSENSUS_NUMBER,
        ];
        parts.into_iter().max().expect("the part list is non-empty")
    }
}
