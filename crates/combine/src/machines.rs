//! Step-machine forms of the combining front-end, for the
//! strong-linearizability checker.
//!
//! These are the referee's copy of [`crate::Combiner`] and
//! [`crate::CombiningCounter`]: the same announce → elect →
//! (combine | direct) protocol, with every base object a [`SimMemory`]
//! cell (`Swap` slots, `Swap` lock, `Swap` cache, `Wide` inner shards)
//! and every protocol action one [`OpMachine::step`]. The whole point
//! of the front-end — a 1-load cached read — is also its semantic
//! risk: combining is a *helping* pattern, exactly the structure the
//! "Difficulty of Consistent Refereeing" line warns can break strong
//! linearizability, so the read paths come in both granularities of
//! honesty ([`ReadMode::Cached`] vs [`ReadMode::Stable`]) and every
//! claim below is a `check_strong` verdict (DESIGN.md §8):
//!
//! * **cached reads** are refuted against the exact specifications at
//!   *every* shard count — staleness, not sharding, is the culprit: an
//!   operation that loses the election completes without republishing,
//!   and a later 1-load read returns the pre-election fold after that
//!   operation completed;
//! * the same cached scenarios are **certified** against the honest
//!   `sl2_spec::relaxed` window specifications
//!   ([`LaggingCounterSpec`], [`LaggingMaxSpec`]) — the DESIGN.md §6
//!   pattern, one layer up;
//! * **stable reads** bypass the cache and keep (at most) the PR-3
//!   collect-frontier boundary — the tests bracket which combining
//!   scenarios certify and which inherit the sharded fan-in
//!   refutation.
//!
//! The machines deliberately skip the production epoch counter (it is
//! observability, not semantics — no read path consults it) to keep
//! the checker's state space tight.
//!
//! [`LaggingCounterSpec`]: sl2_spec::relaxed::LaggingCounterSpec
//! [`LaggingMaxSpec`]: sl2_spec::relaxed::LaggingMaxSpec

use sl2_bignum::{BigNat, Layout};
use sl2_exec::machine::{Algorithm, OpMachine, Step};
use sl2_exec::mem::{Cell, Loc, SimMemory};
use sl2_primitives::Sharding;
use sl2_spec::counters::{CounterOp, CounterResp, CounterSpec};
use sl2_spec::max_register::{MaxOp, MaxRegisterSpec, MaxResp};
use sl2_spec::relaxed::{LaggingCounterSpec, LaggingMaxSpec};
use sl2_spec::Spec;

/// Which route a whole-object read takes through the front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadMode {
    /// One load of the published cache register (wait-free; exact as
    /// of the last publication, stale against unpublished
    /// completions).
    Cached,
    /// The inner object's stable collect (lock-free, exact; bypasses
    /// the cache entirely).
    Stable,
}

/// Shared stable-collect bookkeeping (the sharded machines'
/// discipline): returns the finished pass once two consecutive passes
/// agree, else rewinds for another pass.
fn stable_pass(
    done: Vec<u64>,
    previous: &mut Option<Vec<u64>>,
    idx: &mut usize,
) -> Option<Vec<u64>> {
    if previous.as_ref() == Some(&done) {
        Some(done)
    } else {
        *previous = Some(done);
        *idx = 0;
        None
    }
}

/// The common base-object block of a combining algorithm: slots, lock,
/// cache, inner shards. Opaque — it appears in machine states so the
/// checker can clone/hash them, but its cells are only reachable
/// through the protocol steps.
#[derive(Debug, Clone)]
pub struct FrontCells {
    slots: Vec<Loc>,
    lock: Loc,
    cache: Loc,
    shards: Vec<Loc>,
    layout: Layout,
    sharding: Sharding,
}

impl FrontCells {
    fn alloc(mem: &mut SimMemory, n: usize, shards: usize) -> Self {
        FrontCells {
            slots: (0..n).map(|_| mem.alloc(Cell::Swap(0))).collect(),
            lock: mem.alloc(Cell::Swap(0)),
            cache: mem.alloc(Cell::Swap(0)),
            shards: (0..shards)
                .map(|_| mem.alloc(Cell::Wide(BigNat::zero())))
                .collect(),
            layout: Layout::new(n),
            sharding: Sharding::new(shards),
        }
    }

    /// Home shard and quotient count of a max-register value.
    fn ensure_of(&self, value: u64) -> (Loc, u64) {
        let shard = self.shards[self.sharding.of_value(value)];
        let count = value / self.sharding.shards() as u64 + 1;
        (shard, count)
    }
}

impl PartialEq for FrontCells {
    fn eq(&self, other: &Self) -> bool {
        self.slots == other.slots
            && self.lock == other.lock
            && self.cache == other.cache
            && self.shards == other.shards
    }
}

impl Eq for FrontCells {}

impl std::hash::Hash for FrontCells {
    fn hash<H: std::hash::Hasher>(&self, h: &mut H) {
        self.slots.hash(h);
        self.lock.hash(h);
        self.cache.hash(h);
        self.shards.hash(h);
    }
}

// ---------------------------------------------------------------------
// Canonical adjudication scenarios
// ---------------------------------------------------------------------

/// The cached-read refutation scenario: two announced writes race one
/// independent 1-load reader. On the refuting branch one writer loses
/// the election, completes on the direct path, and the reader then
/// loads the pre-election fold — refuted against the exact spec at
/// every shard count (the staleness needs no collect frontier),
/// certified against [`sl2_spec::relaxed::LaggingMaxSpec`] with
/// `k = 2`.
pub fn cached_fan_in_max_scenario() -> sl2_exec::sched::Scenario<MaxRegisterSpec> {
    sl2_exec::scenarios::fan_in::<MaxRegisterSpec>(
        vec![MaxOp::Write(1), MaxOp::Write(2)],
        vec![MaxOp::Read],
    )
}

/// The same fan-in shape typed against the k-stale window spec, for
/// the certification half of the cached-read adjudication.
pub fn cached_fan_in_lagging_scenario() -> sl2_exec::sched::Scenario<LaggingMaxSpec> {
    sl2_exec::scenarios::fan_in::<LaggingMaxSpec>(
        vec![MaxOp::Write(1), MaxOp::Write(2)],
        vec![MaxOp::Read],
    )
}

/// The stable-read scenario at `shards` shards: both writes land in
/// shard 0 and the reader is fused with the first writer — the PR-3
/// frontier-safe shape, routed through the combining front-end.
pub fn combining_frontier_safe_scenario(
    shards: usize,
) -> sl2_exec::sched::Scenario<MaxRegisterSpec> {
    let s = shards as u64;
    sl2_exec::sched::Scenario::new(vec![
        vec![MaxOp::Write(s), MaxOp::Read],
        vec![MaxOp::Write(2 * s)],
    ])
}

/// The crash-recovery adjudication scenario (exact-spec half): two
/// increments race one cached reader against a counter front-end whose
/// election lock was abandoned by a crashed combiner
/// ([`CombiningCounterAlg::abandon_lock`]). Refuted with or without
/// recovery — recovery restores publication, not exactness.
pub fn abandoned_counter_fan_in_scenario() -> sl2_exec::sched::Scenario<CounterSpec> {
    sl2_exec::scenarios::fan_in::<CounterSpec>(
        vec![CounterOp::Inc, CounterOp::Inc],
        vec![CounterOp::Read],
    )
}

/// The same abandoned-lock fan-in typed against the k-lagging window
/// spec: the certification half — recovery
/// ([`CombiningCounterAlg::with_recovery`]) must land survivors on the
/// lagging contract, strongly.
pub fn abandoned_counter_lagging_scenario() -> sl2_exec::sched::Scenario<LaggingCounterSpec> {
    sl2_exec::scenarios::fan_in::<LaggingCounterSpec>(
        vec![CounterOp::Inc, CounterOp::Inc],
        vec![CounterOp::Read],
    )
}

// ---------------------------------------------------------------------
// Combining max register
// ---------------------------------------------------------------------

/// Factory for the combining max register
/// ([`crate::CombiningMaxRegister`]'s checkable twin), generic over
/// the specification it is judged against — the exact
/// [`MaxRegisterSpec`] for the refutations,
/// [`sl2_spec::relaxed::LaggingMaxSpec`] for what the cached read
/// honestly meets.
#[derive(Debug, Clone)]
pub struct CombiningMaxRegAlg<S = MaxRegisterSpec> {
    cells: FrontCells,
    mode: ReadMode,
    spec: S,
}

impl CombiningMaxRegAlg<MaxRegisterSpec> {
    /// Allocates the front-end (slots, lock, cache) plus `shards`
    /// inner wide registers for `n` processes, judged against the
    /// exact max-register specification.
    pub fn new(mem: &mut SimMemory, n: usize, shards: usize, mode: ReadMode) -> Self {
        CombiningMaxRegAlg {
            cells: FrontCells::alloc(mem, n, shards),
            mode,
            spec: MaxRegisterSpec,
        }
    }
}

impl CombiningMaxRegAlg<LaggingMaxSpec> {
    /// As [`CombiningMaxRegAlg::new`], judged against the k-stale
    /// window specification (the cached read's honest contract).
    pub fn relaxed(mem: &mut SimMemory, n: usize, shards: usize, mode: ReadMode, k: usize) -> Self {
        CombiningMaxRegAlg {
            cells: FrontCells::alloc(mem, n, shards),
            mode,
            spec: LaggingMaxSpec { k },
        }
    }
}

impl<S> Algorithm for CombiningMaxRegAlg<S>
where
    S: Spec<Op = MaxOp, Resp = MaxResp>,
{
    type Spec = S;
    type Machine = CombiningMaxRegMachine;

    fn spec(&self) -> S {
        self.spec.clone()
    }

    fn machine(&self, process: usize, op: &MaxOp) -> CombiningMaxRegMachine {
        match *op {
            MaxOp::Write(v) => CombiningMaxRegMachine::Write(WriteState {
                cells: self.cells.clone(),
                process,
                payload: v,
                fold: 0,
                applied: false,
                stage: WriteStage::Publish,
            }),
            MaxOp::Read => match self.mode {
                ReadMode::Cached => CombiningMaxRegMachine::CachedLoad {
                    cache: self.cells.cache,
                },
                ReadMode::Stable => CombiningMaxRegMachine::Collect {
                    cells: self.cells.clone(),
                    idx: 0,
                    current: Vec::new(),
                    previous: None,
                },
            },
        }
    }
}

/// Where a combining max-register write currently is in the protocol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum WriteStage {
    /// Announce: swap `payload + 1` into the own slot.
    Publish,
    /// Run the election: swap 1 into the lock.
    TryLock,
    /// Combiner sweep, peeking slot `i` (a read).
    SweepPeek {
        /// Slot under the sweep cursor.
        i: usize,
    },
    /// Combiner sweep, claiming occupied slot `i` (a swap-out).
    SweepTake {
        /// Slot under the sweep cursor.
        i: usize,
    },
    /// Combiner applying a claimed value through its **own** lane (the
    /// re-attribution that keeps helping single-writer — see
    /// [`crate::Combinable`]): the ensure probe.
    ApplyProbe {
        /// Sweep cursor (for the continuation).
        i: usize,
        /// The claimed value.
        value: u64,
    },
    /// Combiner applying a claimed value: the fetch&add setting the
    /// missing own-lane bits.
    ApplyAdd {
        /// Sweep cursor (for the continuation).
        i: usize,
        /// The claimed value (merged into the fold once landed).
        value: u64,
        /// Home shard of the claimed value.
        shard: Loc,
        /// The unary increment image.
        inc: BigNat,
    },
    /// Combiner reading the published fold before the sweep (the merge
    /// base; production reads it under the lock for the same reason —
    /// publication must never regress the cache).
    ReadCache,
    /// Combiner publishing the merged fold into the cache register.
    PublishCache,
    /// Combiner releasing the election lock.
    Unlock,
    /// Election lost: the ensure probe of the direct path.
    DirectProbe,
    /// Election lost: the direct fetch&add.
    DirectAdd {
        /// Home shard of the own value.
        shard: Loc,
        /// The unary increment image.
        inc: BigNat,
    },
    /// Election lost: retiring the own announcement.
    Withdraw,
}

/// One combining max-register write in flight.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WriteState {
    /// The front-end's base objects.
    cells: FrontCells,
    /// Announcing process.
    process: usize,
    /// Announced value.
    payload: u64,
    /// Published fold read at [`WriteStage::ReadCache`], merged with
    /// every value this sweep applies (max-merge — the production
    /// `Combinable::fold_batch`).
    fold: u64,
    /// Whether the sweep claimed at least one announcement (an empty
    /// sweep publishes nothing, exactly as production skips the swap).
    applied: bool,
    /// Protocol position.
    stage: WriteStage,
}

impl WriteState {
    /// Sweep continuation after finishing slot `i`: the next slot, or
    /// publication once the sweep is done.
    fn after_slot(&self, i: usize) -> WriteStage {
        if i + 1 < self.cells.slots.len() {
            WriteStage::SweepPeek { i: i + 1 }
        } else if self.applied {
            WriteStage::PublishCache
        } else {
            // Empty sweep (a previous combiner already claimed this
            // op): nothing to publish.
            WriteStage::Unlock
        }
    }

    /// Advances the protocol by one memory operation.
    fn step(&mut self, mem: &mut SimMemory) -> Step<MaxResp> {
        let cells = self.cells.clone();
        match self.stage.clone() {
            WriteStage::Publish => {
                mem.swap(cells.slots[self.process], self.payload + 1);
                self.stage = WriteStage::TryLock;
                Step::Pending
            }
            WriteStage::TryLock => {
                if mem.swap(cells.lock, 1) == 0 {
                    self.stage = WriteStage::ReadCache;
                } else {
                    self.stage = WriteStage::DirectProbe;
                }
                Step::Pending
            }
            WriteStage::ReadCache => {
                self.fold = mem.read(cells.cache);
                self.stage = WriteStage::SweepPeek { i: 0 };
                Step::Pending
            }
            WriteStage::SweepPeek { i } => {
                if mem.read(cells.slots[i]) == 0 {
                    self.stage = self.after_slot(i);
                } else {
                    self.stage = WriteStage::SweepTake { i };
                }
                Step::Pending
            }
            WriteStage::SweepTake { i } => {
                match mem.swap(cells.slots[i], 0) {
                    0 => self.stage = self.after_slot(i), // withdraw raced the claim
                    stored => {
                        self.stage = WriteStage::ApplyProbe {
                            i,
                            value: stored - 1,
                        }
                    }
                }
                Step::Pending
            }
            WriteStage::ApplyProbe { i, value } => {
                let (shard, count) = cells.ensure_of(value);
                let image = mem.wide_adjust(shard, &BigNat::zero(), &BigNat::zero());
                let prev = cells.layout.decode_unary(self.process, &image);
                if count <= prev {
                    // Already landed (this lane covers it): merged into
                    // the fold all the same — it is a landed value.
                    self.fold = self.fold.max(value);
                    self.applied = true;
                    self.stage = self.after_slot(i);
                } else {
                    let inc = cells.layout.unary_increment(self.process, prev, count);
                    self.stage = WriteStage::ApplyAdd {
                        i,
                        value,
                        shard,
                        inc,
                    };
                }
                Step::Pending
            }
            WriteStage::ApplyAdd {
                i,
                value,
                shard,
                inc,
            } => {
                mem.wide_adjust(shard, &inc, &BigNat::zero());
                self.fold = self.fold.max(value);
                self.applied = true;
                self.stage = self.after_slot(i);
                Step::Pending
            }
            WriteStage::PublishCache => {
                mem.swap(cells.cache, self.fold);
                self.stage = WriteStage::Unlock;
                Step::Pending
            }
            WriteStage::Unlock => {
                mem.swap(cells.lock, 0);
                Step::Ready(MaxResp::Ok)
            }
            WriteStage::DirectProbe => {
                let (shard, count) = cells.ensure_of(self.payload);
                let image = mem.wide_adjust(shard, &BigNat::zero(), &BigNat::zero());
                let prev = cells.layout.decode_unary(self.process, &image);
                if count <= prev {
                    self.stage = WriteStage::Withdraw;
                } else {
                    let inc = cells.layout.unary_increment(self.process, prev, count);
                    self.stage = WriteStage::DirectAdd { shard, inc };
                }
                Step::Pending
            }
            WriteStage::DirectAdd { shard, inc } => {
                mem.wide_adjust(shard, &inc, &BigNat::zero());
                self.stage = WriteStage::Withdraw;
                Step::Pending
            }
            WriteStage::Withdraw => {
                mem.swap(cells.slots[self.process], 0);
                Step::Ready(MaxResp::Ok)
            }
        }
    }
}

/// Step machine for the combining max register.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CombiningMaxRegMachine {
    /// `writeMax` through the front-end.
    Write(WriteState),
    /// `readMax`, cached mode: one load of the cache register.
    CachedLoad {
        /// The cache register.
        cache: Loc,
    },
    /// `readMax`, stable mode: the sharded stable collect (quotient
    /// decode), bypassing the cache.
    Collect {
        /// The front-end's base objects.
        cells: FrontCells,
        /// Next shard to probe.
        idx: usize,
        /// Folds collected so far in this pass.
        current: Vec<u64>,
        /// The previous complete pass.
        previous: Option<Vec<u64>>,
    },
}

impl OpMachine for CombiningMaxRegMachine {
    type Resp = MaxResp;

    fn step(&mut self, mem: &mut SimMemory) -> Step<MaxResp> {
        match self {
            CombiningMaxRegMachine::Write(w) => w.step(mem),
            CombiningMaxRegMachine::CachedLoad { cache } => {
                Step::Ready(MaxResp::Value(mem.read(*cache)))
            }
            CombiningMaxRegMachine::Collect {
                cells,
                idx,
                current,
                previous,
            } => {
                let image = mem.wide_adjust(cells.shards[*idx], &BigNat::zero(), &BigNat::zero());
                let fold = (0..cells.layout.processes())
                    .map(|i| cells.layout.decode_unary(i, &image))
                    .max()
                    .unwrap_or(0);
                current.push(fold);
                *idx += 1;
                if *idx < cells.shards.len() {
                    return Step::Pending;
                }
                let done = std::mem::take(current);
                let s_count = cells.sharding.shards() as u64;
                match stable_pass(done, previous, idx) {
                    Some(done) => {
                        let max = done
                            .iter()
                            .enumerate()
                            .filter(|(_, &c)| c > 0)
                            .map(|(s, &c)| (c - 1) * s_count + s as u64)
                            .max()
                            .unwrap_or(0);
                        Step::Ready(MaxResp::Value(max))
                    }
                    None => Step::Pending,
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Combining counter (publication-combining: see crate::CombiningCounter)
// ---------------------------------------------------------------------

/// The frozen lock word a crash-stopped combiner leaves behind. It
/// equals the plain election's own lock word (1), so to the
/// non-recovery machine a dead combiner is indistinguishable from a
/// live one — exactly the production failure mode the lease protocol
/// exists to break ([`crate::CombinerLock::reclaim`]).
pub const DEAD_LEASE: u64 = 1;

/// First live lease id of the recovery election: process `p` swaps in
/// `LEASE_BASE + p`, distinct from free (0) and [`DEAD_LEASE`].
pub const LEASE_BASE: u64 = 2;

/// Factory for the publication-combining counter
/// ([`crate::CombiningCounter`]'s checkable twin), generic over the
/// specification it is judged against — the exact
/// [`sl2_spec::counters::CounterSpec`] for the refutations,
/// [`sl2_spec::relaxed::LaggingCounterSpec`] for what the cached read
/// honestly meets. [`Self::abandon_lock`] + [`Self::with_recovery`]
/// stage the crash-aftermath variants for the recovery adjudication.
#[derive(Debug, Clone)]
pub struct CombiningCounterAlg<S> {
    cells: FrontCells,
    mode: ReadMode,
    recovery: bool,
    spec: S,
}

impl<S> CombiningCounterAlg<S>
where
    S: Spec<Op = CounterOp, Resp = CounterResp>,
{
    /// Allocates the front-end (lock, cache) plus `shards` inner
    /// stripes for `n` processes; reads use `mode`, claims are judged
    /// against `spec`. (The counter announces nothing — its slots are
    /// unused; see [`crate::CombiningCounter`].)
    pub fn with_spec(
        mem: &mut SimMemory,
        n: usize,
        shards: usize,
        mode: ReadMode,
        spec: S,
    ) -> Self {
        CombiningCounterAlg {
            cells: FrontCells::alloc(mem, n, shards),
            mode,
            recovery: false,
            spec,
        }
    }

    /// Starts the front-end in the crash aftermath: the election lock
    /// already holds [`DEAD_LEASE`], as if a combiner crash-stopped
    /// between winning and releasing. The crash itself is the
    /// adversary's prefix, not a step in the tree — `check_strong`
    /// cannot explore an operation that never returns, so the dead
    /// tenure is initial state and every in-tree operation still
    /// terminates (the wait-freedom claim survives the fault).
    pub fn abandon_lock(self, mem: &mut SimMemory) -> Self {
        mem.swap(self.cells.lock, DEAD_LEASE);
        self
    }

    /// Arms the lease-reclaim election (the
    /// [`crate::CombinerLock::reclaim`] model): `TryLock` swaps the
    /// process's unique lease instead of the anonymous 1, treats a
    /// [`DEAD_LEASE`] answer as a takeover, and restores a live
    /// holder's lease before completing lost.
    pub fn with_recovery(mut self) -> Self {
        self.recovery = true;
        self
    }
}

impl CombiningCounterAlg<sl2_spec::counters::CounterSpec> {
    /// Cached 1-load reads judged against the exact counter — the
    /// refutation target.
    pub fn cached(mem: &mut SimMemory, n: usize, shards: usize) -> Self {
        Self::with_spec(
            mem,
            n,
            shards,
            ReadMode::Cached,
            sl2_spec::counters::CounterSpec,
        )
    }

    /// Stable collect reads judged against the exact counter.
    pub fn stable(mem: &mut SimMemory, n: usize, shards: usize) -> Self {
        Self::with_spec(
            mem,
            n,
            shards,
            ReadMode::Stable,
            sl2_spec::counters::CounterSpec,
        )
    }
}

impl CombiningCounterAlg<sl2_spec::relaxed::LaggingCounterSpec> {
    /// Cached reads judged against the honest k-lagging specification.
    pub fn relaxed(mem: &mut SimMemory, n: usize, shards: usize, k: u64) -> Self {
        Self::with_spec(
            mem,
            n,
            shards,
            ReadMode::Cached,
            sl2_spec::relaxed::LaggingCounterSpec { k },
        )
    }
}

impl<S> Algorithm for CombiningCounterAlg<S>
where
    S: Spec<Op = CounterOp, Resp = CounterResp>,
{
    type Spec = S;
    type Machine = CombiningCounterMachine;

    fn spec(&self) -> S {
        self.spec.clone()
    }

    fn machine(&self, process: usize, op: &CounterOp) -> CombiningCounterMachine {
        match op {
            CounterOp::Inc => CombiningCounterMachine::IncProbe {
                cells: self.cells.clone(),
                process,
                recovery: self.recovery,
            },
            CounterOp::Read => match self.mode {
                ReadMode::Cached => CombiningCounterMachine::CachedLoad {
                    cache: self.cells.cache,
                },
                ReadMode::Stable => CombiningCounterMachine::Sum {
                    cells: self.cells.clone(),
                    idx: 0,
                    current: Vec::new(),
                    previous: None,
                },
            },
        }
    }
}

/// Step machine for the publication-combining counter: the plain
/// striped increment, then one election attempt to republish the fold.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CombiningCounterMachine {
    /// `inc` step 1: probe the own lane on the home shard.
    IncProbe {
        /// The front-end's base objects.
        cells: FrontCells,
        /// Incrementing process.
        process: usize,
        /// Whether the election runs the lease-reclaim protocol.
        recovery: bool,
    },
    /// `inc` step 2: one fetch&add setting the next own-lane bit.
    IncAdd {
        /// The front-end's base objects.
        cells: FrontCells,
        /// Incrementing process (names the recovery lease).
        process: usize,
        /// Whether the election runs the lease-reclaim protocol.
        recovery: bool,
        /// Home shard of the process.
        shard: Loc,
        /// The unary increment image.
        delta: BigNat,
    },
    /// `inc` step 3: the election — lost completes the operation,
    /// won proceeds to publish. Under recovery the process swaps its
    /// unique lease ([`LEASE_BASE`]` + process`); a [`DEAD_LEASE`]
    /// answer is a takeover of the crashed tenure.
    TryLock {
        /// The front-end's base objects.
        cells: FrontCells,
        /// Incrementing process (names the recovery lease).
        process: usize,
        /// Whether the election runs the lease-reclaim protocol.
        recovery: bool,
    },
    /// Recovery election lost against a *live* lease: put the holder's
    /// lease back (the model's restore-on-clobber — production's
    /// read-first acquire shrinks but cannot close this window), then
    /// complete unpublished.
    RestoreLock {
        /// The front-end's base objects.
        cells: FrontCells,
        /// The clobbered holder's lease, to restore.
        prev: u64,
    },
    /// Election won: one-pass fold over the stripes, shard `s` next.
    Fold {
        /// The front-end's base objects.
        cells: FrontCells,
        /// Shard under the fold cursor.
        s: usize,
        /// Sum accumulated so far.
        acc: u64,
    },
    /// Election won: publishing the fold into the cache register.
    PublishCache {
        /// The front-end's base objects.
        cells: FrontCells,
        /// The fold to publish.
        fold: u64,
    },
    /// Election won: releasing the lock (completes the operation).
    Unlock {
        /// The front-end's base objects.
        cells: FrontCells,
    },
    /// `read`, cached mode: one load of the cache register.
    CachedLoad {
        /// The cache register.
        cache: Loc,
    },
    /// `read`, stable mode: the sharded stable-collect sum.
    Sum {
        /// The front-end's base objects.
        cells: FrontCells,
        /// Next shard to probe.
        idx: usize,
        /// Counts collected so far in this pass.
        current: Vec<u64>,
        /// The previous complete pass.
        previous: Option<Vec<u64>>,
    },
}

impl OpMachine for CombiningCounterMachine {
    type Resp = CounterResp;

    fn step(&mut self, mem: &mut SimMemory) -> Step<CounterResp> {
        match self {
            CombiningCounterMachine::IncProbe {
                cells,
                process,
                recovery,
            } => {
                let shard = cells.shards[cells.sharding.of_process(*process)];
                let image = mem.wide_adjust(shard, &BigNat::zero(), &BigNat::zero());
                let mine = cells.layout.decode_unary(*process, &image);
                let delta = BigNat::pow2(cells.layout.bit(*process, mine as usize));
                *self = CombiningCounterMachine::IncAdd {
                    cells: cells.clone(),
                    process: *process,
                    recovery: *recovery,
                    shard,
                    delta,
                };
                Step::Pending
            }
            CombiningCounterMachine::IncAdd {
                cells,
                process,
                recovery,
                shard,
                delta,
            } => {
                mem.wide_adjust(*shard, delta, &BigNat::zero());
                *self = CombiningCounterMachine::TryLock {
                    cells: cells.clone(),
                    process: *process,
                    recovery: *recovery,
                };
                Step::Pending
            }
            CombiningCounterMachine::TryLock {
                cells,
                process,
                recovery,
            } => {
                if !*recovery {
                    if mem.swap(cells.lock, 1) == 0 {
                        *self = CombiningCounterMachine::Fold {
                            cells: cells.clone(),
                            s: 0,
                            acc: 0,
                        };
                        Step::Pending
                    } else {
                        // Lost: the increment has already landed —
                        // complete unpublished (the staleness the
                        // cached read pays).
                        Step::Ready(CounterResp::Ok)
                    }
                } else {
                    let lease = LEASE_BASE + *process as u64;
                    match mem.swap(cells.lock, lease) {
                        // Free, or the frozen tenure of a crashed
                        // combiner: this process's lease is now in the
                        // cell, the tenure is its own.
                        0 | DEAD_LEASE => {
                            *self = CombiningCounterMachine::Fold {
                                cells: cells.clone(),
                                s: 0,
                                acc: 0,
                            };
                            Step::Pending
                        }
                        prev => {
                            *self = CombiningCounterMachine::RestoreLock {
                                cells: cells.clone(),
                                prev,
                            };
                            Step::Pending
                        }
                    }
                }
            }
            CombiningCounterMachine::RestoreLock { cells, prev } => {
                mem.swap(cells.lock, *prev);
                Step::Ready(CounterResp::Ok)
            }
            CombiningCounterMachine::Fold { cells, s, acc } => {
                let image = mem.wide_adjust(cells.shards[*s], &BigNat::zero(), &BigNat::zero());
                let acc = *acc + image.count_ones() as u64;
                if *s + 1 < cells.shards.len() {
                    *self = CombiningCounterMachine::Fold {
                        cells: cells.clone(),
                        s: *s + 1,
                        acc,
                    };
                } else {
                    *self = CombiningCounterMachine::PublishCache {
                        cells: cells.clone(),
                        fold: acc,
                    };
                }
                Step::Pending
            }
            CombiningCounterMachine::PublishCache { cells, fold } => {
                mem.swap(cells.cache, *fold);
                *self = CombiningCounterMachine::Unlock {
                    cells: cells.clone(),
                };
                Step::Pending
            }
            CombiningCounterMachine::Unlock { cells } => {
                mem.swap(cells.lock, 0);
                Step::Ready(CounterResp::Ok)
            }
            CombiningCounterMachine::CachedLoad { cache } => {
                Step::Ready(CounterResp::Value(mem.read(*cache)))
            }
            CombiningCounterMachine::Sum {
                cells,
                idx,
                current,
                previous,
            } => {
                let image = mem.wide_adjust(cells.shards[*idx], &BigNat::zero(), &BigNat::zero());
                current.push(image.count_ones() as u64);
                *idx += 1;
                if *idx < cells.shards.len() {
                    return Step::Pending;
                }
                let done = std::mem::take(current);
                match stable_pass(done, previous, idx) {
                    Some(done) => Step::Ready(CounterResp::Value(done.iter().sum())),
                    None => Step::Pending,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl2_exec::machine::run_solo;
    use sl2_exec::scenarios::fan_in;
    use sl2_exec::sched::Scenario;
    use sl2_exec::strong::check_strong;
    use sl2_exec::{for_each_history, is_linearizable, validate_witness};
    use sl2_spec::counters::CounterSpec;
    use sl2_spec::relaxed::LaggingCounterSpec;

    // -- solo semantics ------------------------------------------------

    #[test]
    fn max_register_solo_semantics_and_publication() {
        let mut mem = SimMemory::new();
        let alg = CombiningMaxRegAlg::new(&mut mem, 2, 2, ReadMode::Cached);
        // Solo, the writer always wins the election: publish, lock,
        // read the cache, sweep 2 slots (peek+take+apply on its own),
        // publish the merged fold, unlock.
        let (r, steps) = run_solo(&mut alg.machine(0, &MaxOp::Write(4)), &mut mem);
        assert_eq!(r, MaxResp::Ok);
        assert_eq!(
            steps, 10,
            "publish + lock + read-cache + (peek,take,probe,add) + peek + publish + unlock"
        );
        let (r, steps) = run_solo(&mut alg.machine(1, &MaxOp::Read), &mut mem);
        assert_eq!(r, MaxResp::Value(4), "the cache was published");
        assert_eq!(steps, 1, "cached read is one load");
    }

    #[test]
    fn max_register_stable_read_bypasses_the_cache() {
        let mut mem = SimMemory::new();
        let alg = CombiningMaxRegAlg::new(&mut mem, 2, 2, ReadMode::Stable);
        run_solo(&mut alg.machine(0, &MaxOp::Write(5)), &mut mem);
        let (r, steps) = run_solo(&mut alg.machine(1, &MaxOp::Read), &mut mem);
        assert_eq!(r, MaxResp::Value(5));
        assert_eq!(steps, 4, "two stable 2-shard collect passes");
    }

    #[test]
    fn counter_solo_semantics_and_publication() {
        let mut mem = SimMemory::new();
        let alg = CombiningCounterAlg::cached(&mut mem, 2, 2);
        // Solo inc: probe + add + trylock(won) + 2 folds + publish +
        // unlock = 7 steps.
        let (r, steps) = run_solo(&mut alg.machine(0, &CounterOp::Inc), &mut mem);
        assert_eq!(r, CounterResp::Ok);
        assert_eq!(steps, 7);
        let (r, steps) = run_solo(&mut alg.machine(1, &CounterOp::Read), &mut mem);
        assert_eq!(r, CounterResp::Value(1));
        assert_eq!(steps, 1, "cached read is one load");
    }

    // -- checker verdicts (the DESIGN.md §8 table) ---------------------

    #[test]
    fn cached_max_read_is_refuted_at_every_shard_count() {
        // Staleness needs no collect frontier: the refutation holds at
        // S = 1, where the PR-3 sharded fan-in control *certified* —
        // the cache, not sharding, is the culprit.
        for shards in [1usize, 2] {
            let mut mem = SimMemory::new();
            let alg = CombiningMaxRegAlg::new(&mut mem, 3, shards, ReadMode::Cached);
            let scenario = cached_fan_in_max_scenario();
            let report = check_strong(&alg, mem.clone(), &scenario, 8_000_000);
            assert!(!report.strongly_linearizable, "S={shards}");
            let witness = report.witness.expect("refutation carries a witness");
            validate_witness(&alg, mem, &scenario, &witness)
                .unwrap_or_else(|e| panic!("S={shards}: {e}"));
        }
    }

    #[test]
    fn cached_max_read_meets_the_stale_window_spec() {
        // Same machine, same scenario, judged against the k-stale
        // window (k = 2 writers): certified.
        let mut mem = SimMemory::new();
        let alg = CombiningMaxRegAlg::relaxed(&mut mem, 3, 1, ReadMode::Cached, 2);
        let report = check_strong(&alg, mem, &cached_fan_in_lagging_scenario(), 8_000_000);
        assert!(report.strongly_linearizable, "{:?}", report.witness);
    }

    #[test]
    fn stable_max_read_keeps_the_frontier_safe_certificates() {
        for shards in [1usize, 2] {
            let mut mem = SimMemory::new();
            let alg = CombiningMaxRegAlg::new(&mut mem, 2, shards, ReadMode::Stable);
            let report = check_strong(
                &alg,
                mem,
                &combining_frontier_safe_scenario(shards),
                8_000_000,
            );
            assert!(
                report.strongly_linearizable,
                "frontier-safe S={shards}: {:?}",
                report.witness
            );
        }
    }

    #[test]
    fn stable_max_read_fan_in_certifies_only_the_single_shard_control() {
        // The PR-3 boundary survives the front-end: the combining
        // write path neither heals nor worsens the collect frontier.
        let mut mem = SimMemory::new();
        let alg = CombiningMaxRegAlg::new(&mut mem, 3, 1, ReadMode::Stable);
        let report = check_strong(&alg, mem, &cached_fan_in_max_scenario(), 16_000_000);
        assert!(report.strongly_linearizable, "{:?}", report.witness);

        let mut mem = SimMemory::new();
        let alg = CombiningMaxRegAlg::new(&mut mem, 3, 2, ReadMode::Stable);
        let scenario = cached_fan_in_max_scenario();
        let report = check_strong(&alg, mem.clone(), &scenario, 16_000_000);
        assert!(!report.strongly_linearizable);
        let witness = report.witness.expect("refutation carries a witness");
        validate_witness(&alg, mem, &scenario, &witness).expect("fan-in witness must replay");
    }

    #[test]
    fn cached_counter_read_is_refuted_even_reader_fused() {
        // The staleness is sharper than the sharded frontier race: the
        // refutation does not need an independent reader — an inc that
        // loses the election completes unpublished, and the *same
        // process's* later read... stays honest only via the stable
        // path. (The fused pair certified for the stable sharded
        // counter in PR 3.)
        let mut mem = SimMemory::new();
        let alg = CombiningCounterAlg::cached(&mut mem, 2, 1);
        let scenario = Scenario::new(vec![
            vec![CounterOp::Inc, CounterOp::Read],
            vec![CounterOp::Inc],
        ]);
        let report = check_strong(&alg, mem.clone(), &scenario, 8_000_000);
        assert!(!report.strongly_linearizable);
        let witness = report.witness.expect("refutation carries a witness");
        validate_witness(&alg, mem, &scenario, &witness).expect("witness must replay");
    }

    #[test]
    fn cached_counter_fan_in_is_linearizable_per_mixed_reads_but_refuted() {
        let mut mem = SimMemory::new();
        let alg = CombiningCounterAlg::cached(&mut mem, 3, 1);
        let scenario =
            fan_in::<CounterSpec>(vec![CounterOp::Inc, CounterOp::Inc], vec![CounterOp::Read]);
        let report = check_strong(&alg, mem, &scenario, 8_000_000);
        assert!(!report.strongly_linearizable);
        assert!(report.witness.is_some());
    }

    #[test]
    fn cached_counter_read_meets_the_lagging_spec() {
        // Judged against the honest k-lagging window (k = 2 incs in
        // flight), the same scenarios certify.
        let mut mem = SimMemory::new();
        let alg = CombiningCounterAlg::relaxed(&mut mem, 3, 1, 2);
        let scenario = fan_in::<LaggingCounterSpec>(
            vec![CounterOp::Inc, CounterOp::Inc],
            vec![CounterOp::Read],
        );
        let report = check_strong(&alg, mem, &scenario, 8_000_000);
        assert!(report.strongly_linearizable, "{:?}", report.witness);
    }

    #[test]
    fn stable_counter_reads_certify_fused_and_fan_in() {
        // The publication-combining counter's stable read is the plain
        // sharded collect; with the increments untouched by helping,
        // the certificates cover both the fused pair and (at one
        // stripe) the independent-reader fan-in.
        let mut mem = SimMemory::new();
        let alg = CombiningCounterAlg::stable(&mut mem, 2, 2);
        let scenario = Scenario::new(vec![
            vec![CounterOp::Inc, CounterOp::Read],
            vec![CounterOp::Inc],
        ]);
        let report = check_strong(&alg, mem, &scenario, 8_000_000);
        assert!(report.strongly_linearizable, "{:?}", report.witness);

        let mut mem = SimMemory::new();
        let alg = CombiningCounterAlg::stable(&mut mem, 3, 1);
        let scenario =
            fan_in::<CounterSpec>(vec![CounterOp::Inc, CounterOp::Inc], vec![CounterOp::Read]);
        let report = check_strong(&alg, mem, &scenario, 8_000_000);
        assert!(report.strongly_linearizable, "{:?}", report.witness);
    }

    #[test]
    fn every_cached_history_stays_within_the_window_specs() {
        // for_each_history differential: cached reads may lag but each
        // history is linearizable against the window specification.
        let mut mem = SimMemory::new();
        let alg = CombiningCounterAlg::relaxed(&mut mem, 3, 1, 2);
        let scenario = fan_in::<LaggingCounterSpec>(
            vec![CounterOp::Inc, CounterOp::Inc],
            vec![CounterOp::Read],
        );
        let mut histories = 0usize;
        for_each_history(&alg, mem, &scenario, 4_000_000, &mut |h| {
            histories += 1;
            assert!(
                is_linearizable(&LaggingCounterSpec { k: 2 }, h),
                "history: {h:?}"
            );
        });
        assert!(histories > 50, "the scenario has real interleaving depth");
    }

    // -- crash aftermath: abandoned lock, lease recovery ---------------

    #[test]
    fn dead_lease_starves_publication_without_recovery_solo() {
        // The plain election cannot tell a dead combiner from a live
        // one: every inc loses, the cache is never published again.
        let mut mem = SimMemory::new();
        let alg = CombiningCounterAlg::cached(&mut mem, 2, 1).abandon_lock(&mut mem);
        let (r, steps) = run_solo(&mut alg.machine(0, &CounterOp::Inc), &mut mem);
        assert_eq!(r, CounterResp::Ok);
        assert_eq!(steps, 3, "probe + add + lost election");
        let (r, _) = run_solo(&mut alg.machine(1, &CounterOp::Read), &mut mem);
        assert_eq!(r, CounterResp::Value(0), "cache frozen by the dead tenure");
        assert_eq!(mem.read(alg.cells.lock), DEAD_LEASE, "lock frozen forever");
    }

    #[test]
    fn recovery_takes_over_the_dead_lease_solo() {
        // The lease election reclaims the frozen tenure: the same inc
        // that starved above wins via takeover, folds, republishes,
        // and releases — the lock is free again afterwards.
        let mut mem = SimMemory::new();
        let alg = CombiningCounterAlg::cached(&mut mem, 2, 1)
            .abandon_lock(&mut mem)
            .with_recovery();
        let (r, steps) = run_solo(&mut alg.machine(0, &CounterOp::Inc), &mut mem);
        assert_eq!(r, CounterResp::Ok);
        assert_eq!(steps, 6, "probe + add + takeover + fold + publish + unlock");
        let (r, _) = run_solo(&mut alg.machine(1, &CounterOp::Read), &mut mem);
        assert_eq!(r, CounterResp::Value(1), "publication resumed");
        assert_eq!(mem.read(alg.cells.lock), 0, "reclaimed tenure released");
    }

    #[test]
    fn abandoned_lock_without_recovery_is_lagging_but_never_publishes() {
        // Bounded degradation, adjudicated: with the lock dead and no
        // reclaim, every cached read returns the pre-crash fold (0) —
        // still strongly linearizable against the k-lagging window
        // (all staleness is in-window for k = in-flight incs), refuted
        // against the exact spec.
        let mut mem = SimMemory::new();
        let alg = CombiningCounterAlg::relaxed(&mut mem, 3, 1, 2).abandon_lock(&mut mem);
        let scenario = abandoned_counter_lagging_scenario();
        let report = check_strong(&alg, mem.clone(), &scenario, 8_000_000);
        assert!(report.strongly_linearizable, "{:?}", report.witness);
        for_each_history(&alg, mem, &scenario, 4_000_000, &mut |h| {
            for rec in h.complete_ops() {
                if rec.op == CounterOp::Read {
                    let (resp, _) = rec.returned.expect("complete");
                    assert_eq!(resp, CounterResp::Value(0), "no publication may happen");
                }
            }
        });

        let mut mem = SimMemory::new();
        let alg = CombiningCounterAlg::cached(&mut mem, 3, 1).abandon_lock(&mut mem);
        let scenario = abandoned_counter_fan_in_scenario();
        let report = check_strong(&alg, mem.clone(), &scenario, 8_000_000);
        assert!(!report.strongly_linearizable);
        let witness = report.witness.expect("refutation carries a witness");
        validate_witness(&alg, mem, &scenario, &witness).expect("witness must replay");
    }

    #[test]
    fn recovery_resumes_combining_and_certifies_the_lagging_window() {
        // The tentpole adjudication: with lease reclaim armed, some
        // interleavings republish the full fold (a read sees 2), and
        // the whole tree — takeovers, clobber-restores, post-recovery
        // reads — is certified strongly linearizable against the
        // lagging window. Recovery restores publication, not
        // exactness: the exact spec still refutes.
        let mut mem = SimMemory::new();
        let alg = CombiningCounterAlg::relaxed(&mut mem, 3, 1, 2)
            .abandon_lock(&mut mem)
            .with_recovery();
        let scenario = abandoned_counter_lagging_scenario();
        let report = check_strong(&alg, mem.clone(), &scenario, 8_000_000);
        assert!(report.strongly_linearizable, "{:?}", report.witness);
        let mut best = 0u64;
        for_each_history(&alg, mem, &scenario, 4_000_000, &mut |h| {
            for rec in h.complete_ops() {
                if let (CounterOp::Read, Some((CounterResp::Value(v), _))) =
                    (&rec.op, &rec.returned)
                {
                    best = best.max(*v);
                }
            }
        });
        assert_eq!(best, 2, "some interleaving republishes the full fold");

        let mut mem = SimMemory::new();
        let alg = CombiningCounterAlg::cached(&mut mem, 3, 1)
            .abandon_lock(&mut mem)
            .with_recovery();
        let scenario = abandoned_counter_fan_in_scenario();
        let report = check_strong(&alg, mem.clone(), &scenario, 8_000_000);
        assert!(
            !report.strongly_linearizable,
            "recovery does not buy exactness"
        );
        let witness = report.witness.expect("refutation carries a witness");
        validate_witness(&alg, mem, &scenario, &witness).expect("witness must replay");
    }
}
