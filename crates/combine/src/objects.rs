//! The combining front-end instantiated over the §3 sharded objects,
//! one rung of delegation each — the taxonomy DESIGN.md §8 derives:
//!
//! | object | what combines | why not more |
//! |---|---|---|
//! | [`CombiningMaxRegister`] | application **and** publication | writes are lane-independent: a helper re-attributes the value to its own lane |
//! | [`CombiningCounter`] | publication only | increments are owner-attributed units; non-blocking delegation cannot be exactly-once at consensus number 2 |
//! | [`CombiningSnapshot`] | the read cache only | updates overwrite — not even monotone, so stale help could regress a component |
//!
//! All three share the 1-load (or optimistic multi-word) cached read
//! and the exact stable path as fallback; the cached read's
//! strong-linearizability verdicts are in [`crate::machines`].

use sl2_primitives::{CachePadded, FetchAdd, Swap};
use sl2_sharded::{ShardedFetchInc, ShardedMaxRegister, ShardedSnapshot};

use crate::combiner::{observe_or_reclaim, ApplyPath, Combinable, Combiner, Suspicion, Tenure};
use crate::slots::{CombinerLock, SeqCache};

// ---------------------------------------------------------------------
// Max register
// ---------------------------------------------------------------------

impl Combinable for ShardedMaxRegister {
    type Op = u64;

    fn processes(&self) -> usize {
        ShardedMaxRegister::processes(self)
    }

    fn encode(op: u64) -> u64 {
        op
    }

    fn decode(word: u64) -> u64 {
        word
    }

    fn apply(&self, applier: usize, op: u64) {
        // §3.1 write_max through the *applier's* lane: the fold takes
        // the maximum over all lanes, so any lane can carry the value —
        // the re-attribution that keeps helping inside the
        // single-writer-per-lane discipline.
        use sl2_core::algos::MaxRegister;
        self.write_max(applier, op);
    }

    fn fold_batch(prev: u64, op: u64) -> u64 {
        // Max-merge: idempotent (a value the cache already covers is
        // absorbed), monotone, never ahead of the landed fold when its
        // inputs are not.
        prev.max(op)
    }

    fn fold_relaxed(&self) -> u64 {
        self.read_max_relaxed()
    }

    fn fold_exact(&self) -> u64 {
        use sl2_core::algos::MaxRegister;
        self.read_max()
    }
}

/// A [`ShardedMaxRegister`] behind the combining front-end: writes are
/// announced and batched (or applied directly on a lost election),
/// reads choose between the 1-load cached fold and the exact stable
/// fold.
///
/// # Examples
///
/// ```
/// use sl2_combine::CombiningMaxRegister;
/// use sl2_sharded::ShardedMaxRegister;
/// use sl2_core::algos::MaxRegister;
///
/// let m = CombiningMaxRegister::new(ShardedMaxRegister::new(4, 4));
/// m.write_max(2, 17);
/// assert_eq!(m.read_cached(), 17);
/// assert_eq!(m.read_max(), 17);
/// ```
#[derive(Debug)]
pub struct CombiningMaxRegister {
    front: Combiner<ShardedMaxRegister>,
}

impl CombiningMaxRegister {
    /// Wraps a sharded max register.
    pub fn new(inner: ShardedMaxRegister) -> Self {
        CombiningMaxRegister {
            front: Combiner::new(inner),
        }
    }

    /// The front-end (election, epochs, consensus ceiling).
    pub fn front(&self) -> &Combiner<ShardedMaxRegister> {
        &self.front
    }

    /// The 1-load cached read: the last published fold. Monotone and
    /// never ahead of the exact maximum; may trail direct-path writes
    /// (strongly meets `sl2_spec::relaxed::LaggingMaxSpec`, refuted
    /// against the exact spec — DESIGN.md §8).
    pub fn read_cached(&self) -> u64 {
        self.front.read_cached()
    }

    /// Combiner batches published so far.
    pub fn epoch(&self) -> u64 {
        self.front.epoch()
    }

    /// Opportunistically republishes the fold (see
    /// [`Combiner::refresh`]).
    pub fn refresh(&self) -> bool {
        self.front.refresh()
    }

    /// Writes through the front-end, reporting the route taken.
    pub fn write_max_traced(&self, process: usize, v: u64) -> ApplyPath {
        self.front.apply(process, v)
    }
}

impl sl2_core::algos::MaxRegister for CombiningMaxRegister {
    fn write_max(&self, process: usize, v: u64) {
        self.front.apply(process, v);
    }

    /// The exact (stable-collect) read — the trait's contract is the
    /// exact specification, so the cached fold is a separate entry
    /// point.
    fn read_max(&self) -> u64 {
        self.front.read_stable()
    }
}

// ---------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------

/// A [`ShardedFetchInc`] behind a *publication-combining* front-end.
///
/// Increments always land on the plain wait-free striped path — a
/// counter unit is attributed to its owner's lane, and within the
/// consensus-number-2 budget a non-blocking helper cannot take over
/// an owner-attributed unit exactly-once (the owner would have to
/// wait on the helper, which is the blocking flat combining this crate
/// refuses). What the election combines is the *publication*: the
/// incrementing process that wins the lock performs one relaxed fold
/// and publishes it, so read-heavy callers still get the 1-load cached
/// read; losers complete unpublished, which is precisely the staleness
/// the checker adjudicates (refuted against the exact counter,
/// certified against `LaggingCounterSpec` — DESIGN.md §8).
///
/// [`LaggingCounterSpec`]: sl2_spec::relaxed::LaggingCounterSpec
///
/// # Examples
///
/// ```
/// use sl2_combine::CombiningCounter;
/// use sl2_sharded::ShardedFetchInc;
///
/// let c = CombiningCounter::new(ShardedFetchInc::new(2, 2));
/// c.inc(0);
/// c.inc(1);
/// assert_eq!(c.read_exact(), 2);
/// assert!(c.read_cached() <= 2, "cache never runs ahead");
/// ```
#[derive(Debug)]
pub struct CombiningCounter {
    inner: ShardedFetchInc,
    lock: CombinerLock,
    cache: CachePadded<Swap>,
    epoch: CachePadded<FetchAdd>,
    /// Per-process abandonment evidence for the publication lock —
    /// the same lease/strike reclaim protocol as [`Combiner`]
    /// (DESIGN.md §10): a crash-stopped publisher must not disable
    /// the cached read path forever.
    suspicion: Box<[CachePadded<Suspicion>]>,
}

impl CombiningCounter {
    /// Wraps a sharded counter.
    pub fn new(inner: ShardedFetchInc) -> Self {
        let n = inner.processes();
        CombiningCounter {
            inner,
            lock: CombinerLock::new(),
            cache: CachePadded::new(Swap::new(0)),
            epoch: CachePadded::new(FetchAdd::new(0)),
            suspicion: (0..n)
                .map(|_| CachePadded::new(Suspicion::default()))
                .collect(),
        }
    }

    /// The wrapped sharded counter.
    pub fn inner(&self) -> &ShardedFetchInc {
        &self.inner
    }

    /// The publication lock — exposed for fault-injection tests and
    /// diagnostics (e.g. abandoning a tenure on purpose to exercise
    /// the reclaim path). Production callers never need this.
    pub fn lock(&self) -> &CombinerLock {
        &self.lock
    }

    /// Increments by one on behalf of `process` (always the wait-free
    /// striped path), then tries the election to republish the fold.
    /// Returns whether this increment published.
    pub fn inc_traced(&self, process: usize) -> bool {
        self.inner.inc(process);
        self.refresh_from(Some(process))
    }

    /// Increments by one on behalf of `process`.
    pub fn inc(&self, process: usize) {
        self.inc_traced(process);
    }

    /// The 1-load cached read: the last published count. Monotone and
    /// never ahead of the exact count; may lag increments whose
    /// election lost (strongly meets
    /// `sl2_spec::relaxed::LaggingCounterSpec`, refuted against the
    /// exact spec — DESIGN.md §8).
    pub fn read_cached(&self) -> u64 {
        self.cache.read()
    }

    /// The exact (stable-collect) read.
    pub fn read_exact(&self) -> u64 {
        self.inner.read()
    }

    /// Publications so far.
    pub fn epoch(&self) -> u64 {
        self.epoch.read()
    }

    /// Opportunistically republishes the relaxed fold (one election
    /// attempt). The fold is one pass over monotone stripes: never
    /// ahead of the landed count, monotone across publications.
    /// Anonymous callers (no process identity) never reclaim; the
    /// per-process path behind [`CombiningCounter::inc_traced`] does.
    pub fn refresh(&self) -> bool {
        self.refresh_from(None)
    }

    /// One publication attempt, with abandonment recovery when the
    /// caller has a process identity to accumulate suspicion under.
    /// The lease rides a `Tenure` guard (release-on-unwind), the
    /// publication carries the monotone repair (folds only grow, so a
    /// displaced larger value — possible only across a wrongful
    /// reclaim of a stalled publisher — is put back).
    fn refresh_from(&self, process: Option<usize>) -> bool {
        let lease = match self.lock.try_acquire() {
            Some(lease) => {
                if let Some(p) = process {
                    self.suspicion[p]
                        .strikes
                        .store(0, std::sync::atomic::Ordering::Relaxed);
                }
                lease
            }
            None => {
                let Some(p) = process else { return false };
                match observe_or_reclaim(&self.lock, &self.epoch, &self.suspicion[p]) {
                    Some(lease) => lease,
                    None => return false,
                }
            }
        };
        let tenure = Tenure {
            lock: &self.lock,
            lease: Some(lease),
        };
        sl2_chaos::point("counter.pre_publish");
        let fold = self.inner.read_relaxed();
        let prev = self.cache.swap(fold);
        if prev > fold {
            self.cache.swap(prev);
        }
        self.epoch.fetch_add(1);
        sl2_chaos::point("counter.pre_release");
        drop(tenure);
        true
    }
}

// ---------------------------------------------------------------------
// Snapshot (read-cached only — updates are not ensure-style)
// ---------------------------------------------------------------------

/// A [`ShardedSnapshot`] with a combining *read* cache.
///
/// Updates overwrite, so helping could regress a component — they take
/// the plain sharded path untouched. What combines is the expensive
/// whole-object scan: a reader that wins the election performs one
/// stable scan and publishes it to a [`SeqCache`]; every cached reader
/// thereafter pays an optimistic multi-word copy instead of the
/// `G`-probe stable collect. A torn or never-published cache is a
/// *miss*, and the miss path is the ordinary stable scan.
///
/// # Examples
///
/// ```
/// use sl2_combine::CombiningSnapshot;
/// use sl2_sharded::ShardedSnapshot;
/// use sl2_core::algos::Snapshot;
///
/// let s = CombiningSnapshot::new(ShardedSnapshot::new(4, 2));
/// s.update(1, 9);
/// s.refresh();
/// assert_eq!(s.scan_cached(), vec![0, 9, 0, 0]);
/// ```
#[derive(Debug)]
pub struct CombiningSnapshot {
    inner: ShardedSnapshot,
    lock: CombinerLock,
    cache: SeqCache,
}

impl CombiningSnapshot {
    /// Wraps a sharded snapshot.
    pub fn new(inner: ShardedSnapshot) -> Self {
        use sl2_core::algos::Snapshot;
        let width = inner.components();
        CombiningSnapshot {
            inner,
            lock: CombinerLock::new(),
            cache: SeqCache::new(width),
        }
    }

    /// The wrapped sharded snapshot.
    pub fn inner(&self) -> &ShardedSnapshot {
        &self.inner
    }

    /// Publications so far.
    pub fn epoch(&self) -> u64 {
        self.cache.epoch()
    }

    /// Performs one stable scan and publishes it, if the election is
    /// won (one try; a held lock means a publication is in flight).
    /// Returns whether a publication happened.
    ///
    /// The lease rides a `Tenure` guard, so a panic mid-scan
    /// releases on unwind. There is deliberately **no** reclaim here:
    /// the [`SeqCache`] odd/even protocol is only sound under writer
    /// exclusivity, and a wrongful reclaim of a stalled publisher
    /// could overlap two publications into a torn-but-version-stable
    /// view. A crash-stopped snapshot publisher therefore degrades
    /// every later cached scan to the miss path (the exact stable
    /// scan) — safe, and the documented §10 trade.
    pub fn refresh(&self) -> bool {
        use sl2_core::algos::Snapshot;
        let Some(lease) = self.lock.try_acquire() else {
            return false;
        };
        let tenure = Tenure {
            lock: &self.lock,
            lease: Some(lease),
        };
        let view = self.inner.scan();
        sl2_chaos::point("snapshot.pre_publish");
        self.cache.publish(&view);
        drop(tenure);
        true
    }

    /// Optimistic cached scan into a caller buffer (allocation-free):
    /// `true` on a hit (an untorn previously-published view), `false`
    /// on a miss — the caller then falls back to
    /// [`sl2_core::algos::Snapshot::scan`] or [`CombiningSnapshot::refresh`].
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the component count.
    pub fn scan_cached_into(&self, out: &mut [u64]) -> bool {
        self.cache.read_into(out)
    }

    /// Cached scan with the documented miss path: a hit returns the
    /// published view; a miss performs (and returns) a stable scan.
    pub fn scan_cached(&self) -> Vec<u64> {
        use sl2_core::algos::Snapshot;
        let mut out = vec![0u64; self.inner.components()];
        if self.scan_cached_into(&mut out) {
            return out;
        }
        self.inner.scan()
    }
}

impl sl2_core::algos::Snapshot for CombiningSnapshot {
    fn components(&self) -> usize {
        self.inner.components()
    }

    /// The plain sharded update — deliberately uncombined (see the
    /// type docs).
    fn update(&self, i: usize, v: u64) {
        self.inner.update(i, v);
    }

    /// The exact stable scan (the miss path of the cached read).
    fn scan(&self) -> Vec<u64> {
        self.inner.scan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiner::ApplyPath;
    use sl2_core::algos::{MaxRegister, Snapshot};
    use sl2_primitives::ConsensusNumber;
    use std::sync::Arc;

    #[test]
    fn solo_writes_combine_and_publish() {
        let m = CombiningMaxRegister::new(ShardedMaxRegister::new(2, 2));
        assert_eq!(m.read_cached(), 0);
        assert_eq!(m.epoch(), 0);
        let path = m.write_max_traced(0, 9);
        assert_eq!(path, ApplyPath::Combined { applied: 1 });
        assert_eq!(m.epoch(), 1);
        assert_eq!(m.read_cached(), 9, "uncontended writes publish");
        m.write_max(1, 4);
        assert_eq!(m.read_cached(), 9, "smaller write keeps the fold");
        assert_eq!(m.read_max(), 9);
    }

    #[test]
    fn counter_solo_counts_exactly_through_both_read_paths() {
        let c = CombiningCounter::new(ShardedFetchInc::new(3, 2));
        for i in 0..9 {
            c.inc(i % 3);
        }
        assert_eq!(c.read_exact(), 9);
        assert_eq!(
            c.read_cached(),
            9,
            "solo incs always combine, so the cache is exact at quiescence"
        );
        assert_eq!(c.epoch(), 9);
    }

    #[test]
    fn cached_reads_are_monotone_and_never_ahead_under_contention() {
        let n = 4;
        let c = Arc::new(CombiningCounter::new(ShardedFetchInc::new(n, 2)));
        let issued = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for p in 0..n {
                let c = Arc::clone(&c);
                let issued = Arc::clone(&issued);
                s.spawn(move || {
                    for _ in 0..300 {
                        issued.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        c.inc(p);
                    }
                });
            }
            let c2 = Arc::clone(&c);
            let issued2 = Arc::clone(&issued);
            s.spawn(move || {
                let mut last = 0;
                for _ in 0..400 {
                    let v = c2.read_cached();
                    assert!(v >= last, "cached read regressed {last} -> {v}");
                    assert!(
                        v <= issued2.load(std::sync::atomic::Ordering::SeqCst),
                        "cached read ran ahead"
                    );
                    last = v;
                }
            });
        });
        assert_eq!(c.read_exact(), (n as u64) * 300, "no increment lost");
        c.refresh();
        assert_eq!(c.read_cached(), (n as u64) * 300, "refresh catches up");
    }

    #[test]
    fn max_register_mirrors_the_plain_sharded_form() {
        let combined = CombiningMaxRegister::new(ShardedMaxRegister::new(2, 4));
        let plain = ShardedMaxRegister::new(2, 4);
        for (p, v) in [(0usize, 5u64), (1, 11), (0, 3), (1, 11), (0, 20)] {
            combined.write_max(p, v);
            plain.write_max(p, v);
            assert_eq!(combined.read_max(), plain.read_max());
        }
        assert_eq!(combined.read_cached(), 20);
    }

    #[test]
    fn binary_encoded_inner_register_combines_past_the_unary_ceiling() {
        // PR 6: the front-end is encoding-agnostic — a binary-lane
        // sharded register behind the combiner folds values far past
        // the old 64·S inline ceiling, and the shards stay inline.
        let m = CombiningMaxRegister::new(ShardedMaxRegister::new_binary(2, 4));
        for (p, v) in [(0usize, 5u64), (1, 300_000), (0, 123_456)] {
            m.write_max(p, v);
        }
        assert_eq!(m.read_max(), 300_000);
        assert_eq!(m.read_cached(), 300_000);
        assert!(
            m.front().inner().shards_inline(),
            "binary lanes keep 300 000 inline at S = 4"
        );
    }

    #[test]
    fn contended_writes_keep_the_exact_fold_and_a_lagging_cache() {
        let n = 4;
        let m = Arc::new(CombiningMaxRegister::new(ShardedMaxRegister::new(n, 4)));
        let high = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for p in 0..n {
                let m = Arc::clone(&m);
                let high = Arc::clone(&high);
                s.spawn(move || {
                    for k in 1..=200u64 {
                        let v = k * (p as u64 + 1);
                        high.fetch_max(v, std::sync::atomic::Ordering::SeqCst);
                        m.write_max(p, v);
                    }
                });
            }
            let m2 = Arc::clone(&m);
            let high2 = Arc::clone(&high);
            s.spawn(move || {
                let mut last = 0;
                for _ in 0..400 {
                    let v = m2.read_cached();
                    assert!(v >= last, "cached fold regressed {last} -> {v}");
                    assert!(
                        v <= high2.load(std::sync::atomic::Ordering::SeqCst),
                        "cached fold invented a value"
                    );
                    last = v;
                }
            });
        });
        assert_eq!(m.read_max(), 200 * n as u64);
        m.refresh();
        assert_eq!(m.read_cached(), 200 * n as u64);
    }

    #[test]
    fn snapshot_cache_hits_after_refresh_and_misses_before() {
        let s = CombiningSnapshot::new(ShardedSnapshot::new(4, 2));
        let mut buf = [0u64; 4];
        assert!(!s.scan_cached_into(&mut buf), "never published: miss");
        s.update(0, 3);
        s.update(3, 8);
        assert_eq!(s.scan_cached(), vec![3, 0, 0, 8], "miss path = stable scan");
        assert!(s.refresh());
        assert!(s.scan_cached_into(&mut buf), "published: hit");
        assert_eq!(buf, [3, 0, 0, 8]);
        s.update(1, 5);
        assert_eq!(
            s.scan_cached(),
            vec![3, 0, 0, 8],
            "cache lags the direct update until the next refresh"
        );
        s.refresh();
        assert_eq!(s.scan_cached(), vec![3, 5, 0, 8]);
        assert_eq!(s.epoch(), 2);
    }

    #[test]
    fn snapshot_cached_views_are_never_torn_under_churn() {
        // Writers keep their group's pair equal (mod one in-flight
        // update); cached views must be untorn publications of stable
        // scans, so the pair invariant carries into every hit.
        let s = Arc::new(CombiningSnapshot::new(ShardedSnapshot::new(4, 2)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for g in 0..2usize {
                let s = Arc::clone(&s);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    for v in 1..=300u64 {
                        s.update(2 * g, v);
                        s.update(2 * g + 1, v);
                    }
                    stop.store(true, std::sync::atomic::Ordering::SeqCst);
                });
            }
            let s2 = Arc::clone(&s);
            let stop2 = Arc::clone(&stop);
            scope.spawn(move || {
                let mut buf = [0u64; 4];
                while !stop2.load(std::sync::atomic::Ordering::SeqCst) {
                    s2.refresh();
                    if s2.scan_cached_into(&mut buf) {
                        for g in 0..2 {
                            let (a, b) = (buf[2 * g], buf[2 * g + 1]);
                            assert!(a == b || a == b + 1, "cached view tore group {g}: {buf:?}");
                        }
                    }
                }
            });
        });
    }

    #[test]
    fn the_whole_front_end_stays_at_consensus_number_two() {
        use sl2_primitives::BaseObject;
        let m = CombiningMaxRegister::new(ShardedMaxRegister::new(2, 2));
        assert_eq!(m.front().consensus_ceiling(), ConsensusNumber::Two);
        // The counter front is the same parts minus the slots: lock
        // (swap), cache (swap), epoch (fetch&add), striped WideFaa.
        let c = CombiningCounter::new(ShardedFetchInc::new(2, 2));
        assert_eq!(c.lock.consensus_number(), ConsensusNumber::Two);
        assert!(sl2_primitives::Swap::CONSENSUS_NUMBER <= ConsensusNumber::Two);
        assert!(sl2_primitives::FetchAdd::CONSENSUS_NUMBER <= ConsensusNumber::Two);
        assert!(sl2_bignum::WideFaa::CONSENSUS_NUMBER <= ConsensusNumber::Two);
    }
}
