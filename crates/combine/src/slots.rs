//! The publication substrate of the combining layer: per-process
//! announcement slots, the combiner election lock, and the versioned
//! multi-word cache — all built from consensus-number-2 primitives
//! (swap and fetch&add; no compare&swap anywhere, which
//! [`crate::Combiner::consensus_ceiling`] asserts through the
//! [`BaseObject`] wiring).
//!
//! A [`PubSlot`] is one cache-line-padded [`Swap`] register holding at
//! most one announced operation, encoded as a non-zero word. The three
//! verbs are all single swaps, so each is one atomic step in the
//! paper's model:
//!
//! * [`PublicationArray::publish`] — the owner announces an operation;
//! * [`PublicationArray::take`] — the combiner claims it (a read
//!   followed by a swap, so sweeping an *empty* slot costs a shared
//!   load, not an exclusive cache-line transfer);
//! * [`PublicationArray::withdraw`] — the owner retires its
//!   announcement after applying the operation directly.
//!
//! Claim and withdraw race by design: the swap's atomicity means the
//! operation word is handed to exactly one of them, and the combining
//! protocol only ever announces *ensure-style idempotent* operations
//! (see [`crate::Combinable`]), so the loser applying a stale copy is
//! harmless. That idempotence is what lets the front-end stay
//! non-blocking — an announcer that loses the combiner election never
//! waits for help; it applies directly and withdraws.

use std::sync::atomic::{AtomicU64, Ordering};

use sl2_primitives::{BaseObject, CachePadded, ConsensusNumber, FetchAdd, Swap};

/// Slot word meaning "no operation announced".
const EMPTY: u64 = 0;

/// One process's announcement slot: a cache-line-padded swap register.
#[derive(Debug, Default)]
pub struct PubSlot {
    cell: Swap,
}

impl PubSlot {
    /// An empty slot.
    pub fn new() -> Self {
        PubSlot::default()
    }

    /// Whether an operation is currently announced (one read).
    pub fn is_occupied(&self) -> bool {
        self.cell.read() != EMPTY
    }
}

impl BaseObject for PubSlot {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::Two;
}

/// The announcement slots of all `n` processes, one padded cache line
/// each.
///
/// Operation words are offset by one internally so the all-zeros
/// initial state reads as "nothing announced" — callers publish any
/// encoding below `u64::MAX` and get it back verbatim from
/// [`PublicationArray::take`].
///
/// # Examples
///
/// ```
/// use sl2_combine::PublicationArray;
///
/// let slots = PublicationArray::new(2);
/// slots.publish(0, 7);
/// assert_eq!(slots.take(0), Some(7));
/// assert_eq!(slots.take(0), None, "claimed exactly once");
/// ```
#[derive(Debug)]
pub struct PublicationArray {
    slots: Box<[CachePadded<PubSlot>]>,
}

impl PublicationArray {
    /// Allocates `n` empty slots.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a publication array needs at least one slot");
        PublicationArray {
            slots: (0..n).map(|_| CachePadded::new(PubSlot::new())).collect(),
        }
    }

    /// Number of slots (= processes).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the array has no slots (never true — see
    /// [`PublicationArray::new`]).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Announces `word` in `process`'s slot (one swap). Overwrites any
    /// stale announcement — the protocol invariant is that a process
    /// has at most one operation in flight, and an overwritten word
    /// means the previous operation already completed via the direct
    /// path with its withdraw lost to a concurrent [`take`].
    ///
    /// # Panics
    ///
    /// Panics if `word == u64::MAX` (the one encoding the offset cannot
    /// represent).
    ///
    /// [`take`]: PublicationArray::take
    pub fn publish(&self, process: usize, word: u64) {
        let stored = word
            .checked_add(1)
            .expect("operation encoding must stay below u64::MAX");
        self.slots[process].cell.swap(stored);
    }

    /// Claims the announcement in slot `i`, if any: a read (cheap for
    /// the common empty slot) followed by a swap-out. Returns the word
    /// exactly once per announcement — a racing [`withdraw`] gets
    /// nothing.
    ///
    /// [`withdraw`]: PublicationArray::withdraw
    pub fn take(&self, i: usize) -> Option<u64> {
        if !self.slots[i].is_occupied() {
            return None;
        }
        match self.slots[i].cell.swap(EMPTY) {
            EMPTY => None,
            stored => Some(stored - 1),
        }
    }

    /// Retires `process`'s own announcement after a direct application
    /// (one swap). Returns whether the announcement was still there —
    /// `false` means a combiner claimed it and will (re-)apply it,
    /// which idempotent operations absorb.
    pub fn withdraw(&self, process: usize) -> bool {
        self.slots[process].cell.swap(EMPTY) != EMPTY
    }
}

/// The combiner election: a swap-based try-lock (consensus number 2 —
/// `swap` decides the two-process race the election is).
///
/// Strictly a *try*-lock: there is no blocking acquire, because the
/// combining protocol has no waiters — losers take the direct path.
///
/// # Examples
///
/// ```
/// use sl2_combine::CombinerLock;
///
/// let lock = CombinerLock::new();
/// assert!(lock.try_acquire());
/// assert!(!lock.try_acquire(), "election decides exactly one winner");
/// lock.release();
/// assert!(lock.try_acquire());
/// ```
#[derive(Debug, Default)]
pub struct CombinerLock {
    cell: CachePadded<Swap>,
}

impl CombinerLock {
    /// A free lock.
    pub fn new() -> Self {
        CombinerLock::default()
    }

    /// One swap: returns whether the caller won the election.
    pub fn try_acquire(&self) -> bool {
        self.cell.swap(1) == 0
    }

    /// Releases the lock (one swap). Only the winner may call this.
    pub fn release(&self) {
        self.cell.swap(0);
    }

    /// Whether some combiner currently holds the lock (one read).
    pub fn is_held(&self) -> bool {
        self.cell.read() != 0
    }
}

impl BaseObject for CombinerLock {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::Two;
}

/// A versioned multi-word read cache (for folds wider than one word,
/// e.g. snapshot views): a fetch&add version counter — odd while a
/// publication is in flight — over plain per-word atomic registers.
/// Consensus number 2 overall (the registers alone are level 1).
///
/// Readers are optimistic: [`SeqCache::read_into`] returns `false` on
/// a torn or in-flight view, and the caller falls back to the inner
/// object's stable scan — the "cache miss" path of the combining
/// snapshot. Only the combiner (under [`CombinerLock`]) publishes, so
/// writers never race each other.
#[derive(Debug)]
pub struct SeqCache {
    version: CachePadded<FetchAdd>,
    words: Box<[AtomicU64]>,
}

impl SeqCache {
    /// A cache of `width` words, version 0 (published never).
    pub fn new(width: usize) -> Self {
        SeqCache {
            version: CachePadded::new(FetchAdd::new(0)),
            words: (0..width).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of cached words.
    pub fn width(&self) -> usize {
        self.words.len()
    }

    /// Publication count so far.
    pub fn epoch(&self) -> u64 {
        self.version.read() / 2
    }

    /// Whether the cache has ever been published.
    pub fn is_published(&self) -> bool {
        self.version.read() >= 2
    }

    /// Publishes `view` (combiner-only, under the election lock):
    /// version goes odd, words are written, version goes even.
    ///
    /// # Panics
    ///
    /// Panics if `view.len()` differs from the cache width.
    pub fn publish(&self, view: &[u64]) {
        assert_eq!(view.len(), self.words.len(), "cache width mismatch");
        self.version.fetch_add(1); // odd: publication in flight
        for (w, &v) in self.words.iter().zip(view) {
            w.store(v, Ordering::SeqCst);
        }
        self.version.fetch_add(1); // even: stable
    }

    /// Optimistic read into `out`: `true` iff a published, untorn view
    /// was copied (version even, unchanged across the copy, and at
    /// least one publication has happened).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the cache width.
    pub fn read_into(&self, out: &mut [u64]) -> bool {
        assert_eq!(out.len(), self.words.len(), "cache width mismatch");
        let v1 = self.version.read();
        if v1 < 2 || v1 % 2 == 1 {
            return false;
        }
        for (o, w) in out.iter_mut().zip(self.words.iter()) {
            *o = w.load(Ordering::SeqCst);
        }
        self.version.read() == v1
    }
}

impl BaseObject for SeqCache {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::Two;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn publish_take_withdraw_hand_the_word_to_exactly_one_party() {
        let slots = PublicationArray::new(3);
        assert_eq!(slots.len(), 3);
        assert!(!slots.is_empty());
        assert_eq!(slots.take(1), None, "initially empty");
        slots.publish(1, 0); // word 0 is a legal encoding
        assert!(slots.slots[1].is_occupied());
        assert_eq!(slots.take(1), Some(0));
        assert!(!slots.withdraw(1), "take already claimed it");
        slots.publish(1, 41);
        assert!(slots.withdraw(1), "owner got it back");
        assert_eq!(slots.take(1), None);
    }

    #[test]
    #[should_panic(expected = "below u64::MAX")]
    fn publish_rejects_the_unencodable_word() {
        PublicationArray::new(1).publish(0, u64::MAX);
    }

    #[test]
    fn concurrent_take_and_withdraw_claim_exactly_once() {
        for _ in 0..200 {
            let slots = Arc::new(PublicationArray::new(1));
            slots.publish(0, 9);
            let taker = Arc::clone(&slots);
            let owner = Arc::clone(&slots);
            let (a, b) = std::thread::scope(|s| {
                let t = s.spawn(move || taker.take(0).is_some());
                let w = s.spawn(move || owner.withdraw(0));
                (t.join().expect("taker"), w.join().expect("owner"))
            });
            assert!(a ^ b, "exactly one side must claim the word: {a} {b}");
        }
    }

    #[test]
    fn lock_elects_one_winner_under_contention() {
        let lock = Arc::new(CombinerLock::new());
        let mut wins = 0;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let lock = Arc::clone(&lock);
                    s.spawn(move || lock.try_acquire())
                })
                .collect();
            for h in handles {
                if h.join().expect("no panics") {
                    wins += 1;
                }
            }
        });
        assert_eq!(wins, 1);
        assert!(lock.is_held());
        lock.release();
        assert!(!lock.is_held());
    }

    #[test]
    fn seq_cache_round_trips_and_reports_unpublished() {
        let cache = SeqCache::new(3);
        assert_eq!(cache.width(), 3);
        let mut out = [0u64; 3];
        assert!(!cache.read_into(&mut out), "nothing published yet");
        assert!(!cache.is_published());
        cache.publish(&[4, 5, 6]);
        assert!(cache.is_published());
        assert_eq!(cache.epoch(), 1);
        assert!(cache.read_into(&mut out));
        assert_eq!(out, [4, 5, 6]);
    }

    #[test]
    fn seq_cache_never_returns_a_torn_view() {
        // Writers keep both words equal; an optimistic read that
        // succeeds must never observe a mixed pair.
        let cache = Arc::new(SeqCache::new(2));
        std::thread::scope(|s| {
            let w = Arc::clone(&cache);
            s.spawn(move || {
                for v in 1..=2000u64 {
                    w.publish(&[v, v]);
                }
            });
            let r = Arc::clone(&cache);
            s.spawn(move || {
                let mut out = [0u64; 2];
                let mut hits = 0;
                for _ in 0..4000 {
                    if r.read_into(&mut out) {
                        assert_eq!(out[0], out[1], "torn view {out:?}");
                        hits += 1;
                    }
                }
                assert!(hits > 0, "optimistic reads never once succeeded");
            });
        });
    }

    #[test]
    fn every_piece_sits_at_consensus_number_two() {
        assert_eq!(PubSlot::new().consensus_number(), ConsensusNumber::Two);
        assert_eq!(CombinerLock::new().consensus_number(), ConsensusNumber::Two);
        assert_eq!(SeqCache::new(1).consensus_number(), ConsensusNumber::Two);
    }
}
