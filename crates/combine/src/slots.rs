//! The publication substrate of the combining layer: per-process
//! announcement slots, the combiner election lock, and the versioned
//! multi-word cache — all built from consensus-number-2 primitives
//! (swap and fetch&add; no compare&swap anywhere, which
//! [`crate::Combiner::consensus_ceiling`] asserts through the
//! [`BaseObject`] wiring).
//!
//! A [`PubSlot`] is one cache-line-padded [`Swap`] register holding at
//! most one announced operation, encoded as a non-zero word. The three
//! verbs are all single swaps, so each is one atomic step in the
//! paper's model:
//!
//! * [`PublicationArray::publish`] — the owner announces an operation;
//! * [`PublicationArray::take`] — the combiner claims it (a read
//!   followed by a swap, so sweeping an *empty* slot costs a shared
//!   load, not an exclusive cache-line transfer);
//! * [`PublicationArray::withdraw`] — the owner retires its
//!   announcement after applying the operation directly.
//!
//! Claim and withdraw race by design: the swap's atomicity means the
//! operation word is handed to exactly one of them, and the combining
//! protocol only ever announces *ensure-style idempotent* operations
//! (see [`crate::Combinable`]), so the loser applying a stale copy is
//! harmless. That idempotence is what lets the front-end stay
//! non-blocking — an announcer that loses the combiner election never
//! waits for help; it applies directly and withdraws.

use std::sync::atomic::{AtomicU64, Ordering};

use sl2_primitives::{BaseObject, CachePadded, ConsensusNumber, FetchAdd, Swap};

/// Slot word meaning "no operation announced".
const EMPTY: u64 = 0;

/// One process's announcement slot: a cache-line-padded swap register.
#[derive(Debug, Default)]
pub struct PubSlot {
    cell: Swap,
}

impl PubSlot {
    /// An empty slot.
    pub fn new() -> Self {
        PubSlot::default()
    }

    /// Whether an operation is currently announced (one read).
    pub fn is_occupied(&self) -> bool {
        self.cell.read() != EMPTY
    }
}

impl BaseObject for PubSlot {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::Two;
}

/// The announcement slots of all `n` processes, one padded cache line
/// each.
///
/// Operation words are offset by one internally so the all-zeros
/// initial state reads as "nothing announced" — callers publish any
/// encoding below `u64::MAX` and get it back verbatim from
/// [`PublicationArray::take`].
///
/// # Examples
///
/// ```
/// use sl2_combine::PublicationArray;
///
/// let slots = PublicationArray::new(2);
/// slots.publish(0, 7);
/// assert_eq!(slots.take(0), Some(7));
/// assert_eq!(slots.take(0), None, "claimed exactly once");
/// ```
#[derive(Debug)]
pub struct PublicationArray {
    slots: Box<[CachePadded<PubSlot>]>,
}

impl PublicationArray {
    /// Allocates `n` empty slots.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a publication array needs at least one slot");
        PublicationArray {
            slots: (0..n).map(|_| CachePadded::new(PubSlot::new())).collect(),
        }
    }

    /// Number of slots (= processes).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the array has no slots (never true — see
    /// [`PublicationArray::new`]).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Announces `word` in `process`'s slot (one swap). Overwrites any
    /// stale announcement — the protocol invariant is that a process
    /// has at most one operation in flight, and an overwritten word
    /// means the previous operation already completed via the direct
    /// path with its withdraw lost to a concurrent [`take`].
    ///
    /// # Panics
    ///
    /// Panics if `word == u64::MAX` (the one encoding the offset cannot
    /// represent).
    ///
    /// [`take`]: PublicationArray::take
    pub fn publish(&self, process: usize, word: u64) {
        let stored = word
            .checked_add(1)
            .expect("operation encoding must stay below u64::MAX");
        self.slots[process].cell.swap(stored);
    }

    /// Claims the announcement in slot `i`, if any: a read (cheap for
    /// the common empty slot) followed by a swap-out. Returns the word
    /// exactly once per announcement — a racing [`withdraw`] gets
    /// nothing.
    ///
    /// [`withdraw`]: PublicationArray::withdraw
    pub fn take(&self, i: usize) -> Option<u64> {
        if !self.slots[i].is_occupied() {
            return None;
        }
        match self.slots[i].cell.swap(EMPTY) {
            EMPTY => None,
            stored => Some(stored - 1),
        }
    }

    /// Retires `process`'s own announcement after a direct application
    /// (one swap). Returns whether the announcement was still there —
    /// `false` means a combiner claimed it and will (re-)apply it,
    /// which idempotent operations absorb.
    pub fn withdraw(&self, process: usize) -> bool {
        self.slots[process].cell.swap(EMPTY) != EMPTY
    }
}

/// A granted combiner election: proof that the holder won
/// [`CombinerLock::try_acquire`] (or [`CombinerLock::reclaim`]), to be
/// surrendered via [`CombinerLock::release`].
///
/// The wrapped id is the *lease word* the lock cell holds for the
/// duration of the tenure — globally unique (a fetch&add generation
/// counter mints it), never zero. Uniqueness is what makes abandonment
/// detectable: a crashed combiner's lease stays frozen in the cell
/// forever, while any live tenure eventually ends or advances the
/// epoch, so "same lease, same epoch, observed twice" is evidence of
/// a dead holder (see [`CombinerLock::reclaim`]).
#[derive(Debug, PartialEq, Eq)]
#[must_use = "an unreleased lease abandons the combiner lock"]
pub struct Lease {
    id: u64,
}

impl Lease {
    /// The lease word this tenure holds in the lock cell.
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// The combiner election: a swap-based try-lock (consensus number 2 —
/// `swap` decides the two-process race the election is) whose holder
/// is identified by a unique, non-zero *lease* word, so a lock
/// abandoned by a crash-stopped combiner can be detected and
/// reclaimed by the survivors.
///
/// Strictly a *try*-lock: there is no blocking acquire, because the
/// combining protocol has no waiters — losers take the direct path.
///
/// # Protocol (swap + fetch&add only — no compare&swap)
///
/// * **Acquire** reads the cell first and fails fast while it is
///   non-zero, then swaps a freshly minted lease in. A non-zero swap
///   result means another acquirer won the same race; the loser hands
///   the winner's lease straight back (restore-on-clobber) and
///   reports failure.
/// * **Release** swaps zero in and checks it got its own lease back.
///   Getting someone else's lease back means the tenure was reclaimed
///   while this combiner was (wrongly) suspected dead; the foreign
///   lease is restored and `release` reports the anomaly.
/// * **Reclaim** takes over a lease the caller has independently
///   observed frozen (same lease *and* no epoch progress across
///   repeated observations): one swap, validated against the
///   suspected lease, restored if the cell moved meanwhile.
///
/// Under crash-stop faults the suspicion evidence is conclusive once
/// the suspect is really dead, so reclaim never steals from a live
/// combiner. A merely *stalled* combiner can be suspected wrongly —
/// the release validation plus the monotone publication repair in
/// [`crate::Combiner`] keep that safe (DESIGN.md §10 spells out the
/// model boundary).
///
/// # Examples
///
/// ```
/// use sl2_combine::CombinerLock;
///
/// let lock = CombinerLock::new();
/// let lease = lock.try_acquire().expect("free lock");
/// assert!(lock.try_acquire().is_none(), "election decides exactly one winner");
/// assert!(lock.release(lease), "clean handback");
/// let relock = lock.try_acquire().expect("free again");
/// # assert!(lock.release(relock));
/// ```
///
/// Reclaiming an abandoned tenure:
///
/// ```
/// use sl2_combine::CombinerLock;
///
/// let lock = CombinerLock::new();
/// let dead = lock.try_acquire().expect("free lock");
/// let frozen = dead.id();
/// drop(dead); // crash-stop: release is explicit, so dropping abandons the lease
/// let rescued = lock.reclaim(frozen).expect("frozen lease is reclaimable");
/// assert!(lock.release(rescued));
/// ```
#[derive(Debug, Default)]
pub struct CombinerLock {
    cell: CachePadded<Swap>,
    gen: CachePadded<FetchAdd>,
}

impl CombinerLock {
    /// A free lock.
    pub fn new() -> Self {
        CombinerLock::default()
    }

    /// Mints a globally unique, non-zero lease word.
    fn fresh_id(&self) -> u64 {
        // fetch&add returns the previous value; +1 keeps ids non-zero.
        self.gen.fetch_add(1) + 1
    }

    /// Tries to win the election: `Some(lease)` iff the caller now
    /// holds the lock. Read-first so losing costs one shared load on
    /// the common held-lock path; the swap race among simultaneous
    /// acquirers is resolved by restore-on-clobber.
    pub fn try_acquire(&self) -> Option<Lease> {
        if self.cell.read() != 0 {
            return None;
        }
        let id = self.fresh_id();
        match self.cell.swap(id) {
            0 => Some(Lease { id }),
            prev => {
                // Lost a same-instant race: hand the winner's lease
                // back and fail.
                self.cell.swap(prev);
                None
            }
        }
    }

    /// Releases the lock. Returns `true` on a clean handback (the
    /// cell still held this lease); `false` means the tenure had been
    /// reclaimed by a survivor that suspected this combiner dead — the
    /// reclaimer's lease is restored and the caller must treat its
    /// tenure as forfeited (its publication already happened and is
    /// monotone-safe; see [`crate::Combiner`]).
    pub fn release(&self, lease: Lease) -> bool {
        match self.cell.swap(0) {
            id if id == lease.id => true,
            0 => false, // reclaimed *and* released again meanwhile
            foreign => {
                self.cell.swap(foreign);
                false
            }
        }
    }

    /// Takes over a tenure whose lease the caller has observed frozen
    /// (same `suspected` lease word with no epoch progress across
    /// repeated, spaced observations — the caller supplies the
    /// evidence, e.g. [`crate::Combiner`]'s per-process strike
    /// counters). Returns the new lease iff the takeover landed on
    /// exactly the suspected tenure (or on a lock that had just been
    /// freed); any other interleaving restores the cell and fails.
    pub fn reclaim(&self, suspected: u64) -> Option<Lease> {
        if suspected == 0 || self.cell.read() != suspected {
            return None;
        }
        let id = self.fresh_id();
        match self.cell.swap(id) {
            prev if prev == suspected => Some(Lease { id }),
            // Freed between the read and the swap: we hold a
            // legitimately acquired free lock.
            0 => Some(Lease { id }),
            live => {
                self.cell.swap(live);
                None
            }
        }
    }

    /// The lease word currently in the cell (0 = free). One read —
    /// this is the observation suspicion evidence is built from.
    pub fn holder(&self) -> u64 {
        self.cell.read()
    }

    /// Whether some combiner currently holds the lock (one read).
    pub fn is_held(&self) -> bool {
        self.holder() != 0
    }
}

impl BaseObject for CombinerLock {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::Two;
}

/// A versioned multi-word read cache (for folds wider than one word,
/// e.g. snapshot views): a fetch&add version counter — odd while a
/// publication is in flight — over plain per-word atomic registers.
/// Consensus number 2 overall (the registers alone are level 1).
///
/// Readers are optimistic: [`SeqCache::read_into`] returns `false` on
/// a torn or in-flight view, and the caller falls back to the inner
/// object's stable scan — the "cache miss" path of the combining
/// snapshot. Only the combiner (under [`CombinerLock`]) publishes, so
/// writers never race each other.
#[derive(Debug)]
pub struct SeqCache {
    version: CachePadded<FetchAdd>,
    words: Box<[AtomicU64]>,
}

impl SeqCache {
    /// A cache of `width` words, version 0 (published never).
    pub fn new(width: usize) -> Self {
        SeqCache {
            version: CachePadded::new(FetchAdd::new(0)),
            words: (0..width).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of cached words.
    pub fn width(&self) -> usize {
        self.words.len()
    }

    /// Publication count so far.
    pub fn epoch(&self) -> u64 {
        self.version.read() / 2
    }

    /// Whether the cache has ever been published.
    pub fn is_published(&self) -> bool {
        self.version.read() >= 2
    }

    /// Publishes `view` (combiner-only, under the election lock):
    /// version goes odd, words are written, version goes even.
    ///
    /// # Panics
    ///
    /// Panics if `view.len()` differs from the cache width.
    pub fn publish(&self, view: &[u64]) {
        assert_eq!(view.len(), self.words.len(), "cache width mismatch");
        self.version.fetch_add(1); // odd: publication in flight
        for (w, &v) in self.words.iter().zip(view) {
            w.store(v, Ordering::SeqCst);
        }
        self.version.fetch_add(1); // even: stable
    }

    /// Optimistic read into `out`: `true` iff a published, untorn view
    /// was copied (version even, unchanged across the copy, and at
    /// least one publication has happened).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the cache width.
    pub fn read_into(&self, out: &mut [u64]) -> bool {
        assert_eq!(out.len(), self.words.len(), "cache width mismatch");
        let v1 = self.version.read();
        if v1 < 2 || v1 % 2 == 1 {
            return false;
        }
        for (o, w) in out.iter_mut().zip(self.words.iter()) {
            *o = w.load(Ordering::SeqCst);
        }
        self.version.read() == v1
    }
}

impl BaseObject for SeqCache {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::Two;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn publish_take_withdraw_hand_the_word_to_exactly_one_party() {
        let slots = PublicationArray::new(3);
        assert_eq!(slots.len(), 3);
        assert!(!slots.is_empty());
        assert_eq!(slots.take(1), None, "initially empty");
        slots.publish(1, 0); // word 0 is a legal encoding
        assert!(slots.slots[1].is_occupied());
        assert_eq!(slots.take(1), Some(0));
        assert!(!slots.withdraw(1), "take already claimed it");
        slots.publish(1, 41);
        assert!(slots.withdraw(1), "owner got it back");
        assert_eq!(slots.take(1), None);
    }

    #[test]
    #[should_panic(expected = "below u64::MAX")]
    fn publish_rejects_the_unencodable_word() {
        PublicationArray::new(1).publish(0, u64::MAX);
    }

    #[test]
    fn concurrent_take_and_withdraw_claim_exactly_once() {
        for _ in 0..200 {
            let slots = Arc::new(PublicationArray::new(1));
            slots.publish(0, 9);
            let taker = Arc::clone(&slots);
            let owner = Arc::clone(&slots);
            let (a, b) = std::thread::scope(|s| {
                let t = s.spawn(move || taker.take(0).is_some());
                let w = s.spawn(move || owner.withdraw(0));
                (t.join().expect("taker"), w.join().expect("owner"))
            });
            assert!(a ^ b, "exactly one side must claim the word: {a} {b}");
        }
    }

    #[test]
    fn lock_elects_one_winner_under_contention() {
        let lock = Arc::new(CombinerLock::new());
        let mut wins = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let lock = Arc::clone(&lock);
                    s.spawn(move || lock.try_acquire())
                })
                .collect();
            for h in handles {
                if let Some(lease) = h.join().expect("no panics") {
                    wins.push(lease);
                }
            }
        });
        assert_eq!(wins.len(), 1, "election decides exactly one winner");
        assert!(lock.is_held());
        assert_eq!(lock.holder(), wins[0].id());
        assert!(lock.release(wins.pop().expect("the winner")));
        assert!(!lock.is_held());
    }

    #[test]
    fn abandoned_lease_is_reclaimable_and_forfeits_the_late_release() {
        let lock = CombinerLock::new();
        let dead = lock.try_acquire().expect("free lock");
        let frozen = dead.id();

        // A reclaim of the wrong lease (or of a free lock) fails and
        // leaves the cell untouched.
        assert!(lock.reclaim(frozen + 17).is_none());
        assert_eq!(lock.holder(), frozen);
        assert!(lock.reclaim(0).is_none());

        // Takeover of the frozen lease succeeds; the cell now holds
        // the rescuer's (distinct) lease.
        let rescued = lock.reclaim(frozen).expect("frozen lease");
        assert_ne!(rescued.id(), frozen);
        assert_eq!(lock.holder(), rescued.id());

        // The suspect was merely stalled after all: its late release
        // must report forfeiture and leave the rescuer's tenure held.
        assert!(!lock.release(dead), "forfeited tenure");
        assert_eq!(lock.holder(), rescued.id());

        assert!(lock.release(rescued));
        assert!(!lock.is_held());
    }

    #[test]
    fn reclaim_of_a_released_lease_acquires_the_free_lock() {
        let lock = CombinerLock::new();
        let a = lock.try_acquire().expect("free lock");
        let stale = a.id();
        assert!(lock.release(a));
        // The observation is stale (the holder released between the
        // caller's read and the reclaim): the cell no longer matches,
        // so reclaim fails fast without disturbing anything.
        assert!(lock.reclaim(stale).is_none());
        assert!(!lock.is_held());
    }

    #[test]
    fn contended_reclaim_of_a_dead_lease_elects_exactly_one_rescuer() {
        for _ in 0..200 {
            let lock = Arc::new(CombinerLock::new());
            let dead = lock.try_acquire().expect("free lock");
            let frozen = dead.id();
            drop(dead);
            let mut rescues = Vec::new();
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let lock = Arc::clone(&lock);
                        s.spawn(move || lock.reclaim(frozen))
                    })
                    .collect();
                for h in handles {
                    if let Some(lease) = h.join().expect("no panics") {
                        rescues.push(lease);
                    }
                }
            });
            assert_eq!(rescues.len(), 1, "exactly one rescuer");
            let lease = rescues.pop().expect("the rescuer");
            assert_eq!(lock.holder(), lease.id());
            assert!(lock.release(lease));
        }
    }

    #[test]
    fn seq_cache_round_trips_and_reports_unpublished() {
        let cache = SeqCache::new(3);
        assert_eq!(cache.width(), 3);
        let mut out = [0u64; 3];
        assert!(!cache.read_into(&mut out), "nothing published yet");
        assert!(!cache.is_published());
        cache.publish(&[4, 5, 6]);
        assert!(cache.is_published());
        assert_eq!(cache.epoch(), 1);
        assert!(cache.read_into(&mut out));
        assert_eq!(out, [4, 5, 6]);
    }

    #[test]
    fn seq_cache_never_returns_a_torn_view() {
        // Writers keep both words equal; an optimistic read that
        // succeeds must never observe a mixed pair. The reader keeps
        // trying until the writer is done — once it is, the version is
        // even and stable, so the final attempt must hit (a fixed
        // attempt budget was flaky on one CPU, where the reader could
        // exhaust it before the writer was ever scheduled).
        let cache = Arc::new(SeqCache::new(2));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let w = Arc::clone(&cache);
            let d = Arc::clone(&done);
            s.spawn(move || {
                for v in 1..=2000u64 {
                    w.publish(&[v, v]);
                }
                d.store(true, std::sync::atomic::Ordering::SeqCst);
            });
            let r = Arc::clone(&cache);
            let d = Arc::clone(&done);
            s.spawn(move || {
                let mut out = [0u64; 2];
                let mut hits = 0u64;
                loop {
                    let finished = d.load(std::sync::atomic::Ordering::SeqCst);
                    if r.read_into(&mut out) {
                        assert_eq!(out[0], out[1], "torn view {out:?}");
                        hits += 1;
                    }
                    if finished && hits > 0 {
                        break;
                    }
                    if finished {
                        // Quiescent: the next attempt cannot miss.
                        assert!(r.read_into(&mut out), "quiescent read missed");
                        assert_eq!(out, [2000, 2000]);
                        break;
                    }
                }
            });
        });
    }

    #[test]
    fn every_piece_sits_at_consensus_number_two() {
        assert_eq!(PubSlot::new().consensus_number(), ConsensusNumber::Two);
        assert_eq!(CombinerLock::new().consensus_number(), ConsensusNumber::Two);
        assert_eq!(SeqCache::new(1).consensus_number(), ConsensusNumber::Two);
    }
}
