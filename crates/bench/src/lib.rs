//! Shared harness code for the benchmark suite (see EXPERIMENTS.md for
//! the experiment ↔ bench mapping).
//!
//! The benches compare the paper's strongly-linearizable constructions
//! against (a) weaker baselines that are merely linearizable and (b)
//! the compare&swap route that needs consensus number ∞. Criterion
//! drives single-thread measurements; [`parallel_duration`] measures
//! multi-thread throughput under a start barrier for the scaling
//! series.

use std::sync::Barrier;
use std::time::{Duration, Instant};

pub mod compare;
pub mod open_loop;

pub use compare::{baseline_floors, current_medians, gate, Floor, GateReport, GateVerdict};
pub use open_loop::{run_open_loop, Arrival, OpenLoopPlan, OpenLoopStats};
pub use sl2_obs::Histogram;

/// Runs `f(thread_id)` on `threads` OS threads after a common barrier
/// and returns the wall-clock duration of the slowest thread — i.e.
/// the makespan of the contended workload.
pub fn parallel_duration<F>(threads: usize, f: F) -> Duration
where
    F: Fn(usize) + Sync,
{
    let barrier = Barrier::new(threads);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let barrier = &barrier;
            let f = &f;
            s.spawn(move || {
                barrier.wait();
                f(t);
            });
        }
    });
    start.elapsed()
}

/// Deterministic pseudo-random value stream for workloads (xorshift*;
/// no external RNG needed on the hot path).
#[derive(Debug, Clone)]
pub struct ValueStream {
    state: u64,
}

impl ValueStream {
    /// Creates a stream from a non-zero seed.
    pub fn new(seed: u64) -> Self {
        ValueStream { state: seed.max(1) }
    }

    /// Next pseudo-random value.
    pub fn next_value(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Next value reduced into `0..bound`.
    pub fn next_in(&mut self, bound: u64) -> u64 {
        self.next_value() % bound
    }
}

/// Zipf-skewed value stream over `0..bound` (exponent ≈ 1): rank `k`
/// appears with probability ∝ 1/(k+1), approximated by the inverse-CDF
/// `rank = bound^u − 1` for uniform `u`. Used by the contention benches
/// to model the hot-key skew real traffic exhibits — under skew most
/// operations hash to few shards, which is exactly the regime where
/// sharding's win shrinks (experiment E19).
#[derive(Debug, Clone)]
pub struct ZipfStream {
    uniform: ValueStream,
    bound: u64,
}

impl ZipfStream {
    /// Creates a skewed stream over `0..bound` from a non-zero seed.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn new(seed: u64, bound: u64) -> Self {
        assert!(bound > 0, "zipf stream needs a non-empty range");
        ZipfStream {
            uniform: ValueStream::new(seed),
            bound,
        }
    }

    /// Next skewed value in `0..bound` (0 is the hottest).
    pub fn next_value(&mut self) -> u64 {
        // u ∈ [0, 1) with 53-bit resolution.
        let u = (self.uniform.next_value() >> 11) as f64 / (1u64 << 53) as f64;
        let rank = (self.bound as f64).powf(u) - 1.0;
        (rank as u64).min(self.bound - 1)
    }
}

/// One read-heavy participant's operation stream: `writes` writes then
/// `reads` reads per cycle, out to `ops` total operations. The shared
/// write:read ratio driver of the E19 `sharded_mixed` sweep and the
/// E26 `combining_mixed` sweep — one definition, so the two series the
/// docs compare cannot drift apart. `value` supplies each write's
/// operand (uniform or zipf stream, caller's choice).
pub fn ratio_mix<V, W, R>(
    ops: u64,
    writes: u64,
    reads: u64,
    mut value: V,
    mut write: W,
    mut read: R,
) where
    V: FnMut() -> u64,
    W: FnMut(u64),
    R: FnMut(),
{
    let cycle = writes + reads;
    for k in 0..ops {
        if k % cycle < writes {
            write(value());
        } else {
            read();
        }
    }
}

/// Runs `f(threads, thread_id)` under [`parallel_duration`] for every
/// thread count in `counts`, returning `(threads, makespan)` pairs —
/// the scaling series shape used by E19's sweeps.
///
/// **Closed-loop caveat (coordinated omission):** every worker here
/// issues its next operation only after the previous one returns, so
/// a stall slows the *load* down along with the system — the queue of
/// requests that *would* have piled up behind the stall is never
/// issued, and throughput/latency derived from these rows
/// systematically flatters tail behavior. Rows derived from this
/// driver are tagged `"loop":"closed"` in `SL2_BENCH_JSON`; compare
/// them only against other closed-loop rows, and use the
/// [`open_loop`] generator (experiment E42) when tail latency under a
/// fixed offered rate is the question.
///
/// Threads are barrier-released but not CPU-pinned: affinity syscalls
/// need `libc`, which the offline vendor set does not include. On the
/// multi-socket machines where pinning matters, re-pointing the vendor
/// shims at crates.io (see ROADMAP) is the intended path.
pub fn sweep_threads<F>(counts: &[usize], f: F) -> Vec<(usize, Duration)>
where
    F: Fn(usize, usize) + Sync,
{
    counts
        .iter()
        .map(|&threads| (threads, parallel_duration(threads, |t| f(threads, t))))
        .collect()
}

/// Per-operation latency distribution of a contended workload: after a
/// common barrier every one of `threads` workers runs `ops` calls of
/// `op(thread_id, k)`, timing **each call individually** into its own
/// [`Histogram`] (nanoseconds); the per-thread histograms are merged
/// into one. This is the tail-latency complement of
/// [`parallel_duration`]'s makespan: the makespan hides the p99/p999
/// outliers a lease takeover or DWCAS retry storm causes, which is
/// exactly what the percentile series (E38) is after.
///
/// Each sample pays one `Instant::now()` pair (~tens of ns), so
/// medians here run *above* criterion's batched medians — compare
/// percentile series against each other, not against `median_ns`.
///
/// This is still a **closed-loop** measurement (each worker waits for
/// its own previous call): per-op service time under contention, not
/// latency under a fixed offered rate. See [`sweep_threads`]'s
/// coordinated-omission caveat and the [`open_loop`] generator for
/// the open-loop complement.
pub fn parallel_latency<F>(threads: usize, ops: u64, f: F) -> Histogram
where
    F: Fn(usize, u64) + Sync,
{
    let barrier = Barrier::new(threads);
    let mut merged = Histogram::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let barrier = &barrier;
                let f = &f;
                s.spawn(move || {
                    let mut h = Histogram::new();
                    barrier.wait();
                    for k in 0..ops {
                        let start = Instant::now();
                        f(t, k);
                        h.record(duration_ns(start.elapsed()));
                    }
                    h
                })
            })
            .collect();
        for h in handles {
            merged.merge(&h.join().expect("latency workers do not panic"));
        }
    });
    merged
}

/// Saturates a duration to whole nanoseconds in `u64` (584 years of
/// headroom — any real sample fits).
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// How the load that produced a measurement was generated — every
/// `SL2_BENCH_JSON` row carries this as `"loop":"open"|"closed"` so
/// downstream comparisons never mix the two regimes: closed-loop rows
/// under-report tails (coordinated omission, see [`sweep_threads`]),
/// open-loop rows do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// Arrivals were scheduled in advance at a fixed offered rate
    /// ([`open_loop`]); latency includes queue wait behind stalls.
    Open,
    /// Each issuer waited for its previous operation to return
    /// (criterion batches, [`parallel_latency`], [`sweep_threads`]).
    Closed,
}

impl LoopKind {
    /// The JSON tag value.
    pub fn as_str(self) -> &'static str {
        match self {
            LoopKind::Open => "open",
            LoopKind::Closed => "closed",
        }
    }
}

/// Appends one JSON line of percentile data for `id` to the file named
/// by `SL2_BENCH_JSON` (the same sink the criterion shim's medians go
/// to), shaped
/// `{"id":…,"kind":"latency","loop":…,"samples":…,"p50_ns":…,"p99_ns":…,"p999_ns":…,"max_ns":…}`.
/// The `kind` key keeps percentile rows distinguishable from the
/// shim's median rows in one mixed stream; the `loop` key records the
/// load-generation regime ([`LoopKind`]). No-op when the variable is
/// unset or empty; empty histograms report all-zero percentiles.
pub fn record_percentiles_json_as(id: &str, h: &Histogram, lk: LoopKind) {
    let Ok(path) = std::env::var("SL2_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(
            f,
            "{{\"id\":\"{}\",\"kind\":\"latency\",\"loop\":\"{}\",\"samples\":{},\
             \"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}}}",
            id.escape_default(),
            lk.as_str(),
            h.count(),
            h.p50(),
            h.p99(),
            h.p999(),
            h.max()
        );
    }
}

/// [`record_percentiles_json_as`] with `"loop":"closed"` — the tag for
/// the [`parallel_latency`]-driven percentile series (E38), which are
/// closed-loop by construction.
pub fn record_percentiles_json(id: &str, h: &Histogram) {
    record_percentiles_json_as(id, h, LoopKind::Closed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn parallel_duration_runs_every_thread() {
        let hits = AtomicU64::new(0);
        let d = parallel_duration(4, |_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn value_stream_is_deterministic_and_bounded() {
        let mut a = ValueStream::new(7);
        let mut b = ValueStream::new(7);
        for _ in 0..100 {
            let x = a.next_in(50);
            assert_eq!(x, b.next_in(50));
            assert!(x < 50);
        }
    }

    #[test]
    fn zipf_stream_is_bounded_and_skewed() {
        let mut z = ZipfStream::new(11, 64);
        let mut hits = [0u32; 64];
        for _ in 0..4000 {
            hits[z.next_value() as usize] += 1;
        }
        let head: u32 = hits[..8].iter().sum();
        let tail: u32 = hits[56..].iter().sum();
        assert!(
            head > 4 * tail,
            "zipf head {head} should dominate tail {tail}"
        );
        assert!(hits.iter().sum::<u32>() == 4000);
    }

    #[test]
    fn ratio_mix_honors_the_cycle() {
        let ops = std::cell::RefCell::new(Vec::new());
        ratio_mix(
            10,
            1,
            4,
            || 7,
            |v| ops.borrow_mut().push(format!("w{v}")),
            || ops.borrow_mut().push("r".into()),
        );
        assert_eq!(
            ops.into_inner(),
            vec!["w7", "r", "r", "r", "r", "w7", "r", "r", "r", "r"]
        );
    }

    #[test]
    fn sweep_threads_reports_each_count() {
        let points = sweep_threads(&[1, 2, 4], |_, _| {});
        let counts: Vec<usize> = points.iter().map(|(t, _)| *t).collect();
        assert_eq!(counts, vec![1, 2, 4]);
    }

    #[test]
    fn parallel_latency_samples_every_op() {
        let hits = AtomicU64::new(0);
        let h = parallel_latency(3, 50, |_, _| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 150);
        assert_eq!(h.count(), 150, "one sample per op across all threads");
        assert!(h.p50() <= h.p99() && h.p99() <= h.p999());
        assert!(h.p999() <= h.max());
    }

    #[test]
    fn percentile_json_lines_carry_the_latency_kind_and_loop_tag() {
        let path = std::env::temp_dir().join(format!("sl2_lat_json_{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("SL2_BENCH_JSON", &path);
        let mut h = Histogram::new();
        for v in [10, 20, 4000] {
            h.record(v);
        }
        record_percentiles_json("harness/percentiles", &h);
        record_percentiles_json_as("harness/open", &h, LoopKind::Open);
        std::env::remove_var("SL2_BENCH_JSON");
        let body = std::fs::read_to_string(&path).expect("json file written");
        let _ = std::fs::remove_file(&path);
        let closed: Vec<&str> = body
            .lines()
            .filter(|l| l.starts_with("{\"id\":\"harness/percentiles\""))
            .collect();
        assert_eq!(closed.len(), 1);
        assert!(closed[0].contains("\"kind\":\"latency\""));
        assert!(closed[0].contains("\"loop\":\"closed\""));
        assert!(closed[0].contains("\"samples\":3"));
        assert!(closed[0].contains("\"max_ns\":4000"));
        assert!(closed[0].ends_with('}'));
        let open: Vec<&str> = body
            .lines()
            .filter(|l| l.starts_with("{\"id\":\"harness/open\""))
            .collect();
        assert_eq!(open.len(), 1);
        assert!(open[0].contains("\"loop\":\"open\""));
    }
}
