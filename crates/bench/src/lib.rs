//! Shared harness code for the benchmark suite (see EXPERIMENTS.md for
//! the experiment ↔ bench mapping).
//!
//! The benches compare the paper's strongly-linearizable constructions
//! against (a) weaker baselines that are merely linearizable and (b)
//! the compare&swap route that needs consensus number ∞. Criterion
//! drives single-thread measurements; [`parallel_duration`] measures
//! multi-thread throughput under a start barrier for the scaling
//! series.

use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Runs `f(thread_id)` on `threads` OS threads after a common barrier
/// and returns the wall-clock duration of the slowest thread — i.e.
/// the makespan of the contended workload.
pub fn parallel_duration<F>(threads: usize, f: F) -> Duration
where
    F: Fn(usize) + Sync,
{
    let barrier = Barrier::new(threads);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let barrier = &barrier;
            let f = &f;
            s.spawn(move || {
                barrier.wait();
                f(t);
            });
        }
    });
    start.elapsed()
}

/// Deterministic pseudo-random value stream for workloads (xorshift*;
/// no external RNG needed on the hot path).
#[derive(Debug, Clone)]
pub struct ValueStream {
    state: u64,
}

impl ValueStream {
    /// Creates a stream from a non-zero seed.
    pub fn new(seed: u64) -> Self {
        ValueStream { state: seed.max(1) }
    }

    /// Next pseudo-random value.
    pub fn next_value(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Next value reduced into `0..bound`.
    pub fn next_in(&mut self, bound: u64) -> u64 {
        self.next_value() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn parallel_duration_runs_every_thread() {
        let hits = AtomicU64::new(0);
        let d = parallel_duration(4, |_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn value_stream_is_deterministic_and_bounded() {
        let mut a = ValueStream::new(7);
        let mut b = ValueStream::new(7);
        for _ in 0..100 {
            let x = a.next_in(50);
            assert_eq!(x, b.next_in(50));
            assert!(x < 50);
        }
    }
}
