//! Open-loop load generation: deterministic arrival schedules at a
//! fixed target rate, decoupled from service completion.
//!
//! A closed-loop driver ([`crate::parallel_latency`],
//! [`crate::sweep_threads`]) only issues the next operation after the
//! previous one returns, so a slow response *delays the load* — the
//! stall that should have produced a queue of late requests instead
//! produces one slow sample, and p999 flatters the system
//! (coordinated omission). An open-loop driver fixes the arrival
//! times **in advance**: request `k` is due at `start + offset_k`
//! whether or not the service kept up, and its latency is measured
//! from the *scheduled* arrival, so queue wait lands inside the
//! sample (DESIGN.md §12, experiment E42).
//!
//! The schedule is deterministic: a seeded [`ValueStream`] drives
//! exponential (Poisson) interarrivals via the inverse CDF and a
//! seeded [`ZipfStream`] picks keys, so one `(seed, rate, ops,
//! keyspace)` tuple replays the identical arrival sequence — the same
//! reproducibility discipline as the rest of the harness.

use std::time::{Duration, Instant};

use crate::{ValueStream, ZipfStream};

/// One planned arrival: the `k`-th request targets `key` at
/// `start + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival index (0-based, schedule order).
    pub k: u64,
    /// Zipf-popular key in `0..keyspace` (0 is the hottest).
    pub key: u64,
    /// Scheduled offset from the run's start instant.
    pub offset: Duration,
}

/// A deterministic open-loop arrival plan: `ops` Poisson arrivals at
/// `rate_per_sec` over a zipf-skewed `keyspace`.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopPlan {
    /// Target mean arrival rate (requests per second).
    pub rate_per_sec: u64,
    /// Total arrivals in the schedule.
    pub ops: u64,
    /// Keys are drawn zipf-skewed from `0..keyspace`.
    pub keyspace: u64,
    /// Seed for both the interarrival and the key stream.
    pub seed: u64,
}

impl OpenLoopPlan {
    /// The schedule as an iterator — same plan, same arrivals, every
    /// time. Offsets are non-decreasing; keys lie in `0..keyspace`.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec == 0` or `keyspace == 0`.
    pub fn arrivals(&self) -> impl Iterator<Item = Arrival> {
        assert!(self.rate_per_sec > 0, "open loop needs a positive rate");
        let mut gaps = ValueStream::new(self.seed);
        let mut keys =
            ZipfStream::new(self.seed.wrapping_add(0x9e37_79b9_7f4a_7c15), self.keyspace);
        let mean_ns = 1_000_000_000.0 / self.rate_per_sec as f64;
        let mut clock_ns = 0.0f64;
        (0..self.ops).map(move |k| {
            // Exponential interarrival by inverse CDF: gap = −ln(u)·mean
            // for u ∈ (0, 1]. 53-bit mantissa resolution; u is nudged
            // off zero so ln is finite.
            let u = ((gaps.next_value() >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
            clock_ns += -u.ln() * mean_ns;
            Arrival {
                k,
                key: keys.next_value(),
                offset: Duration::from_nanos(clock_ns as u64),
            }
        })
    }

    /// Mean interarrival gap the schedule targets.
    pub fn mean_gap(&self) -> Duration {
        Duration::from_nanos(1_000_000_000 / self.rate_per_sec.max(1))
    }
}

/// What [`run_open_loop`] observed while pacing the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoopStats {
    /// Arrivals submitted (always the plan's `ops`).
    pub submitted: u64,
    /// Arrivals that fired *late* — the generator reached them after
    /// their scheduled instant (the service, or the generator itself,
    /// fell behind the target rate). Latencies stay honest either way
    /// because they are measured from the scheduled instant, but a
    /// large `late` count means the requested rate exceeds what this
    /// machine can even *offer*, so the percentiles describe a lower
    /// effective rate.
    pub late: u64,
    /// Wall-clock duration of the generating loop.
    pub elapsed: Duration,
}

/// Paces `plan`'s schedule in real time: waits (spin + yield) until
/// each arrival's scheduled instant, then calls
/// `submit(key, scheduled)`. When the loop is behind schedule it does
/// **not** wait — it fires immediately but still hands `submit` the
/// *scheduled* instant, so a latency measured from that instant
/// includes the backlog. This is the anti-coordinated-omission
/// contract: the load does not slow down because the service did.
pub fn run_open_loop<F>(plan: &OpenLoopPlan, mut submit: F) -> OpenLoopStats
where
    F: FnMut(u64, Instant),
{
    let start = Instant::now();
    let mut late = 0u64;
    let mut submitted = 0u64;
    for a in plan.arrivals() {
        let scheduled = start + a.offset;
        loop {
            let now = Instant::now();
            if now >= scheduled {
                if now.duration_since(scheduled) > plan.mean_gap() {
                    late += 1;
                }
                break;
            }
            // Yield on coarse waits, spin the final stretch: the
            // schedule's gaps at high rates are shorter than a
            // sleep()'s resolution.
            if scheduled - now > Duration::from_micros(50) {
                std::thread::yield_now();
            }
        }
        submit(a.key, scheduled);
        submitted += 1;
    }
    OpenLoopStats {
        submitted,
        late,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_replay_deterministically() {
        let plan = OpenLoopPlan {
            rate_per_sec: 100_000,
            ops: 200,
            keyspace: 1 << 20,
            seed: 42,
        };
        let a: Vec<Arrival> = plan.arrivals().collect();
        let b: Vec<Arrival> = plan.arrivals().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn offsets_are_nondecreasing_and_keys_bounded() {
        let plan = OpenLoopPlan {
            rate_per_sec: 1_000_000,
            ops: 500,
            keyspace: 64,
            seed: 7,
        };
        let mut prev = Duration::ZERO;
        for a in plan.arrivals() {
            assert!(a.offset >= prev, "arrival {} went backwards", a.k);
            assert!(a.key < 64);
            prev = a.offset;
        }
    }

    #[test]
    fn mean_gap_tracks_the_target_rate() {
        let plan = OpenLoopPlan {
            rate_per_sec: 50_000,
            ops: 4_000,
            keyspace: 8,
            seed: 3,
        };
        let last = plan.arrivals().last().expect("nonempty").offset;
        let mean_ns = last.as_nanos() as f64 / plan.ops as f64;
        let target_ns = 1e9 / plan.rate_per_sec as f64;
        // Poisson sample mean over 4k gaps sits well within ±20%.
        assert!(
            (mean_ns - target_ns).abs() < 0.2 * target_ns,
            "mean gap {mean_ns}ns vs target {target_ns}ns"
        );
    }

    #[test]
    fn run_open_loop_submits_everything_with_scheduled_stamps() {
        let plan = OpenLoopPlan {
            rate_per_sec: 2_000_000,
            ops: 100,
            keyspace: 16,
            seed: 9,
        };
        let mut stamps = Vec::new();
        let stats = run_open_loop(&plan, |key, scheduled| {
            assert!(key < 16);
            stamps.push(scheduled);
        });
        assert_eq!(stats.submitted, 100);
        assert_eq!(stamps.len(), 100);
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
    }
}
