//! The bench regression gate: committed floors vs a live run.
//!
//! Every PR commits a `BENCH_PRn.json` snapshot whose
//! `uncontended_floors_ns_default` object records the default-build
//! single-thread floors (criterion-shim medians, nanoseconds). This
//! module diffs the floors of the *committed* snapshot against the
//! `SL2_BENCH_JSON` lines of a *current* run, so drift is caught by
//! machinery instead of by a human eyeballing two JSON files.
//!
//! ## Drift threshold
//!
//! The gate is **advisory** (CI runs it `continue-on-error`): these
//! are medians from a shared 1-CPU container, and the session drift
//! documented since BENCH_PR6 has reached ~17% on the fold-heavy rows
//! (`sharded_s16_fold` 1713 → 1998 ns between PR 8 and PR 9) without
//! any code on those paths changing. The ceiling is therefore
//!
//! ```text
//! ceiling = baseline + max(baseline * DRIFT_PERCENT / 100, ABS_SLACK_NS)
//! ```
//!
//! * [`DRIFT_PERCENT`] = 25 — above every observed same-code excursion,
//!   far below the 2–10× a real regression (a heap spill, a lost
//!   inline path, an accidental fold in a read) produces.
//! * [`ABS_SLACK_NS`] = 8 — tiny floors quantize: the 2 ns cached
//!   read's next representable median is 3 ns (+50%), which percentage
//!   alone would flag.
//!
//! A floor missing from the current run is reported but is **not** a
//! regression: partial bench runs (one `--bench` target) are normal.

/// Maximum tolerated drift, percent of the committed floor.
pub const DRIFT_PERCENT: u64 = 25;

/// Absolute slack floor in nanoseconds, so single-digit floors are not
/// flagged by one-bucket quantization.
pub const ABS_SLACK_NS: u64 = 8;

/// One floor: a bench row id and its committed median.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Floor {
    /// Criterion-shim row id, e.g. `"faa_at_width/64"`.
    pub id: String,
    /// Median nanoseconds committed in the snapshot.
    pub ns: u64,
}

/// Highest ceiling the gate accepts for a committed floor.
pub fn allowed_ceiling(baseline_ns: u64) -> u64 {
    baseline_ns + (baseline_ns * DRIFT_PERCENT / 100).max(ABS_SLACK_NS)
}

/// Length of the object body that starts right *after* an opening
/// brace: index of the matching `}`. Tracks strings so braces inside
/// them do not count. `None` when unbalanced.
fn matched_object_len(s: &str) -> Option<usize> {
    let mut depth = 1usize;
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in s.char_indices() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '{' if !in_str => depth += 1,
            '}' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// The newest `"prN": value` pair inside one floor entry — snapshots
/// carry `{"pr9": 20, "pr10": 21}` style before/after pairs, and the
/// newest PR is the one the snapshot pins.
fn newest_pr_value(entry: &str) -> Option<u64> {
    let mut best: Option<(u64, u64)> = None;
    let mut rest = entry;
    while let Some(at) = rest.find("\"pr") {
        let tail = &rest[at + 3..];
        let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
        let after = &tail[digits.len()..];
        if let (Ok(pr), Some(stripped)) = (digits.parse::<u64>(), after.strip_prefix('"')) {
            if let Some(colon) = stripped.find(':') {
                let num: String = stripped[colon + 1..]
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect();
                if let Ok(ns) = num.parse::<u64>() {
                    if best.is_none_or(|(bpr, _)| pr > bpr) {
                        best = Some((pr, ns));
                    }
                }
            }
        }
        rest = &rest[at + 3..];
    }
    best.map(|(_, ns)| ns)
}

/// Extracts the committed floors from a full `BENCH_PRn.json`
/// snapshot: every entry of `uncontended_floors_ns_default` except the
/// free-text `note`, each at its newest `"prN"` value. Returns empty
/// when the section is absent — the gate then has nothing to assert,
/// which callers should treat as a configuration error, not a pass.
pub fn baseline_floors(snapshot: &str) -> Vec<Floor> {
    let mut out = Vec::new();
    let Some(key) = snapshot.find("\"uncontended_floors_ns_default\"") else {
        return out;
    };
    let Some(rel) = snapshot[key..].find('{') else {
        return out;
    };
    let body_start = key + rel + 1;
    let Some(body_len) = matched_object_len(&snapshot[body_start..]) else {
        return out;
    };
    let mut rest = &snapshot[body_start..body_start + body_len];
    while let Some(qs) = rest.find('"') {
        let after = &rest[qs + 1..];
        let Some(qe) = after.find('"') else { break };
        let id = &after[..qe];
        let after_key = &after[qe + 1..];
        let Some(colon) = after_key.find(':') else {
            break;
        };
        let value = after_key[colon + 1..].trim_start();
        if let Some(v) = value.strip_prefix('{') {
            let Some(vl) = matched_object_len(v) else {
                break;
            };
            if let Some(ns) = newest_pr_value(&v[..vl]) {
                out.push(Floor {
                    id: id.to_string(),
                    ns,
                });
            }
            rest = &v[vl + 1..];
        } else if let Some(v) = value.strip_prefix('"') {
            // String-valued entry (the "note"): skip past it.
            let Some(vl) = v.find('"') else { break };
            rest = &v[vl + 1..];
        } else {
            rest = value;
        }
    }
    out
}

/// One `"key":N` numeric field from a JSON line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let num: String = line[at..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    num.parse().ok()
}

/// One `"key":"value"` string field from a JSON line.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let end = line[at..].find('"')?;
    Some(line[at..at + end].to_string())
}

/// Extracts `(id, median_ns)` rows from an `SL2_BENCH_JSON` stream.
/// Percentile rows (`"kind":"latency"`) have no `median_ns` and are
/// skipped; repeated ids keep the **last** row (a rerun supersedes).
pub fn current_medians(jsonl: &str) -> Vec<Floor> {
    let mut out: Vec<Floor> = Vec::new();
    for line in jsonl.lines() {
        let (Some(id), Some(ns)) = (field_str(line, "id"), field_u64(line, "median_ns")) else {
            continue;
        };
        if let Some(existing) = out.iter_mut().find(|f| f.id == id) {
            existing.ns = ns;
        } else {
            out.push(Floor { id, ns });
        }
    }
    out
}

/// Verdict for one gated floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateVerdict {
    /// Current median is at or under the drift ceiling.
    Ok,
    /// Current median exceeds the ceiling — a real candidate
    /// regression (or a very bad scheduling day; the gate is advisory).
    Regressed,
    /// The floor's bench did not run — reported, never failing.
    Missing,
}

/// One gated floor with both sides and the verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateRow {
    /// Bench row id.
    pub id: String,
    /// Committed floor (ns).
    pub baseline_ns: u64,
    /// Ceiling the gate allows (ns).
    pub ceiling_ns: u64,
    /// Median of the current run (ns), when the bench ran.
    pub current_ns: Option<u64>,
    /// The verdict.
    pub verdict: GateVerdict,
}

/// The full diff of a current run against a committed snapshot.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// One row per committed floor, snapshot order.
    pub rows: Vec<GateRow>,
}

impl GateReport {
    /// True when no gated floor regressed (missing floors pass).
    pub fn is_pass(&self) -> bool {
        self.regressions().is_empty()
    }

    /// The regressed rows.
    pub fn regressions(&self) -> Vec<&GateRow> {
        self.rows
            .iter()
            .filter(|r| r.verdict == GateVerdict::Regressed)
            .collect()
    }

    /// JSON lines: one row per floor plus a trailing summary — the
    /// shape CI uploads next to the raw bench stream.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            let verdict = match r.verdict {
                GateVerdict::Ok => "ok",
                GateVerdict::Regressed => "regressed",
                GateVerdict::Missing => "missing",
            };
            let current = r.current_ns.map_or("null".to_string(), |ns| ns.to_string());
            out.push_str(&format!(
                "{{\"gate\":\"floor\",\"id\":\"{}\",\"baseline_ns\":{},\
                 \"ceiling_ns\":{},\"current_ns\":{},\"verdict\":\"{}\"}}\n",
                r.id, r.baseline_ns, r.ceiling_ns, current, verdict
            ));
        }
        out.push_str(&format!(
            "{{\"gate\":\"summary\",\"floors\":{},\"regressed\":{},\
             \"drift_percent\":{},\"abs_slack_ns\":{},\"pass\":{}}}\n",
            self.rows.len(),
            self.regressions().len(),
            DRIFT_PERCENT,
            ABS_SLACK_NS,
            self.is_pass()
        ));
        out
    }
}

/// Diffs a current `SL2_BENCH_JSON` stream against the committed
/// floors of a `BENCH_PRn.json` snapshot.
pub fn gate(snapshot: &str, current_jsonl: &str) -> GateReport {
    let current = current_medians(current_jsonl);
    let rows = baseline_floors(snapshot)
        .into_iter()
        .map(|f| {
            let ceiling_ns = allowed_ceiling(f.ns);
            let current_ns = current.iter().find(|c| c.id == f.id).map(|c| c.ns);
            let verdict = match current_ns {
                None => GateVerdict::Missing,
                Some(ns) if ns <= ceiling_ns => GateVerdict::Ok,
                Some(_) => GateVerdict::Regressed,
            };
            GateRow {
                id: f.id,
                baseline_ns: f.ns,
                ceiling_ns,
                current_ns,
                verdict,
            }
        })
        .collect();
    GateReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAPSHOT: &str = r#"{
      "gate": {
        "uncontended_floors_ns_default": {
          "faa_at_width/64": { "pr8": 20, "pr9": 21 },
          "combining_read/combined_cached": { "pr9": 2 },
          "note": "free text with a } brace and \"quotes\""
        }
      }
    }"#;

    #[test]
    fn baseline_parser_takes_the_newest_pr_and_skips_the_note() {
        let floors = baseline_floors(SNAPSHOT);
        assert_eq!(
            floors,
            vec![
                Floor {
                    id: "faa_at_width/64".into(),
                    ns: 21
                },
                Floor {
                    id: "combining_read/combined_cached".into(),
                    ns: 2
                },
            ]
        );
        assert!(baseline_floors("{}").is_empty());
    }

    #[test]
    fn median_parser_skips_latency_rows_and_keeps_the_last_rerun() {
        let jsonl = "\
            {\"id\":\"faa_at_width/64\",\"median_ns\":20,\"min_ns\":19,\"max_ns\":30}\n\
            {\"id\":\"svc/open\",\"kind\":\"latency\",\"loop\":\"open\",\"p50_ns\":4095}\n\
            {\"id\":\"faa_at_width/64\",\"median_ns\":22,\"min_ns\":20,\"max_ns\":31}\n";
        let medians = current_medians(jsonl);
        assert_eq!(
            medians,
            vec![Floor {
                id: "faa_at_width/64".into(),
                ns: 22
            }]
        );
    }

    #[test]
    fn ceiling_is_percentage_with_an_absolute_slack_floor() {
        assert_eq!(allowed_ceiling(100), 125); // 25%
        assert_eq!(allowed_ceiling(2), 10); // quantized floor: +8 abs
        assert_eq!(allowed_ceiling(0), 8);
    }

    #[test]
    fn gate_flags_only_true_excursions() {
        let current = "\
            {\"id\":\"faa_at_width/64\",\"median_ns\":26}\n\
            {\"id\":\"combining_read/combined_cached\",\"median_ns\":40}\n";
        let report = gate(SNAPSHOT, current);
        assert!(!report.is_pass());
        // 26 ≤ 21 + max(5, 8) = 29: within slack. 40 > 2 + 8: regressed.
        assert_eq!(report.rows[0].verdict, GateVerdict::Ok);
        assert_eq!(report.rows[1].verdict, GateVerdict::Regressed);
        let lines = report.to_json_lines();
        assert!(lines.contains("\"verdict\":\"regressed\""));
        assert!(lines.contains("\"pass\":false"));
    }

    #[test]
    fn missing_floors_report_but_do_not_fail() {
        let report = gate(SNAPSHOT, "");
        assert!(report.is_pass(), "an empty run asserts nothing");
        assert!(report
            .rows
            .iter()
            .all(|r| r.verdict == GateVerdict::Missing));
        assert!(report.to_json_lines().contains("\"verdict\":\"missing\""));
    }
}
