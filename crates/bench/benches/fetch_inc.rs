//! Experiment E7 — fetch&increment: the Theorem 9 lock-free
//! construction vs hardware fetch&add vs a mutex.
//!
//! Theorem 9 scans the test&set array from index 1 on every operation,
//! so the cost of the k-th increment is Θ(k): `value_growth` exposes
//! that series (the structural reason the paper's Discussion asks for
//! a *wait-free* fetch&inc from test&set — finding one is open).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use parking_lot::Mutex;
use sl2_core::algos::fetch_inc::SlFetchInc;
use sl2_primitives::FetchAdd;
use std::hint::black_box;

fn bench_small(c: &mut Criterion) {
    let mut group = c.benchmark_group("fetch_inc_64_ops");
    group.sample_size(20);
    group.bench_function("thm9_test_and_set_array", |b| {
        b.iter_batched(
            SlFetchInc::new,
            |f| {
                for _ in 0..64 {
                    black_box(f.fetch_inc());
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("hardware_faa", |b| {
        b.iter_batched(
            || FetchAdd::new(0),
            |f| {
                for _ in 0..64 {
                    black_box(f.fetch_add(1));
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("mutex", |b| {
        b.iter_batched(
            || Mutex::new(0u64),
            |f| {
                for _ in 0..64 {
                    let mut g = f.lock();
                    let v = *g;
                    *g = v + 1;
                    black_box(v);
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_value_growth(c: &mut Criterion) {
    // Cost of one fetch&inc when the object's value is already k.
    let mut group = c.benchmark_group("value_growth");
    group.sample_size(10);
    for k in [1u64, 64, 512, 2048] {
        group.bench_with_input(BenchmarkId::new("inc_at_value", k), &k, |b, &k| {
            b.iter_batched(
                || {
                    let f = SlFetchInc::new();
                    for _ in 0..k {
                        f.fetch_inc();
                    }
                    f
                },
                |f| black_box(f.fetch_inc()),
                BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("read_at_value", k), &k, |b, &k| {
            b.iter_batched(
                || {
                    let f = SlFetchInc::new();
                    for _ in 0..k {
                        f.fetch_inc();
                    }
                    f
                },
                |f| black_box(f.read()),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_small, bench_value_growth);
criterion_main!(benches);
