//! Experiments E5 / E6 — test&set constructions.
//!
//! * `readable_ts/*` — the Theorem 5 wrapper vs the raw primitive: the
//!   price of readability is one extra store.
//! * `multishot/*` — the Corollary 7 (wait-free, fetch&add max
//!   register) vs Corollary 8 (lock-free, read/write max register)
//!   ablation on a test&set+read+periodic-reset cycle.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sl2_core::algos::multishot_ts::SlMultiShotTas;
use sl2_core::algos::readable_ts::SlReadableTas;
use sl2_primitives::ReadableTestAndSet;
use std::hint::black_box;

fn bench_readable(c: &mut Criterion) {
    let mut group = c.benchmark_group("readable_ts");
    group.bench_function("thm5_test_and_set", |b| {
        b.iter_batched(
            SlReadableTas::new,
            |ts| black_box(ts.test_and_set()),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("primitive_test_and_set", |b| {
        b.iter_batched(
            ReadableTestAndSet::new,
            |ts| black_box(ts.test_and_set()),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("thm5_read", |b| {
        let ts = SlReadableTas::new();
        ts.test_and_set();
        b.iter(|| black_box(ts.read()));
    });
    group.bench_function("primitive_read", |b| {
        let ts = ReadableTestAndSet::new();
        ts.test_and_set();
        b.iter(|| black_box(ts.read()));
    });
    group.finish();
}

fn bench_multishot(c: &mut Criterion) {
    let mut group = c.benchmark_group("multishot");
    group.sample_size(20);
    // One "round" = test&set, read, reset: exercises every operation
    // and advances the epoch, so the TS array grows — included in the
    // measured cost, as in real use.
    group.bench_function("cor7_wait_free_round", |b| {
        b.iter_batched(
            || SlMultiShotTas::new_wait_free(4),
            |ts| {
                for _ in 0..50 {
                    black_box(ts.test_and_set());
                    black_box(ts.read());
                    ts.reset_as(0);
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("cor8_lock_free_round", |b| {
        b.iter_batched(
            || SlMultiShotTas::new_lock_free(4),
            |ts| {
                for _ in 0..50 {
                    black_box(ts.test_and_set());
                    black_box(ts.read());
                    ts.reset_as(0);
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_multishot_contended(c: &mut Criterion) {
    use sl2_bench::parallel_duration;
    let mut group = c.benchmark_group("multishot_contended");
    group.sample_size(10);
    for threads in [2usize, 4] {
        group.bench_function(format!("cor7_wait_free/{threads}"), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let ts = SlMultiShotTas::new_wait_free(threads);
                    total += parallel_duration(threads, |t| {
                        for _ in 0..200 {
                            black_box(ts.test_and_set());
                            black_box(ts.read());
                            ts.reset_as(t);
                        }
                    });
                }
                total
            });
        });
        group.bench_function(format!("cor8_lock_free/{threads}"), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let ts = SlMultiShotTas::new_lock_free(threads);
                    total += parallel_duration(threads, |t| {
                        for _ in 0..200 {
                            black_box(ts.test_and_set());
                            black_box(ts.read());
                            ts.reset_as(t);
                        }
                    });
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_readable,
    bench_multishot,
    bench_multishot_contended
);
criterion_main!(benches);
