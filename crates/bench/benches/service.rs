//! Experiment E42 — the keyed service tier under open-loop load.
//!
//! The single-object benches (`sharded`, `combining`, `wide_faa`)
//! measure 16 threads contending on *one* register, closed-loop. This
//! bench measures the other production axis: a [`Registry`]-backed
//! [`Service`] over a ≥1M-key namespace, driven by the `sl2_bench`
//! open-loop generator — Poisson arrivals at a fixed offered rate,
//! zipf key popularity, latency stamped from the **scheduled** arrival
//! so queue wait is inside every sample (no coordinated omission;
//! DESIGN.md §12).
//!
//! Series (all land in `SL2_BENCH_JSON` as `"kind":"latency"` rows
//! tagged `"loop":"open"`):
//!
//! * `service_open_loop/<backend>/<rate>` — scheduled→completion
//!   percentiles for a keyed `inc` workload at three offered rates
//!   per backend. As the rate approaches what the worker pool can
//!   absorb, p999 inflates with queueing **before** p50 moves — the
//!   signature closed-loop medians cannot show.
//! * `service_registry/solo_get` — criterion median of the steady-state
//!   registry hit path (hash + probe + lane read), closed-loop: the
//!   routing overhead a request pays before touching the object.

use criterion::{criterion_group, criterion_main, Criterion};
use sl2_bench::{record_percentiles_json_as, run_open_loop, LoopKind, OpenLoopPlan};
use sl2_service::{Backend, Registry, Request, Service, ServiceOp};
use std::hint::black_box;

/// ≥1M keys: scale lives in the key dimension (ISSUE 9's acceptance
/// floor). Only arrived-at keys materialize, so memory stays
/// proportional to the zipf head actually touched.
const KEYSPACE: u64 = 1 << 20;

/// Arrivals per (backend, rate) cell — enough for stable p99 with a
/// p999 that is at least resolved to its bucket.
const OPS: u64 = 20_000;

/// Serving lanes. Modest on purpose: the interesting regime is the
/// offered rate crossing the pool's absorption rate, and a small pool
/// crosses it within deterministic, CI-friendly rates.
const WORKERS: usize = 4;

fn bench_service_open_loop(_c: &mut Criterion) {
    eprintln!("\nE42 open-loop service latency ({KEYSPACE}-key registry, {WORKERS} workers):");
    let backends: [(&str, Backend); 2] = [
        ("sharded2", Backend::Sharded { shards: 2 }),
        ("combining2", Backend::Combining { shards: 2 }),
    ];
    for (tag, backend) in backends {
        for rate in [50_000u64, 200_000, 800_000] {
            let svc = Service::new(KEYSPACE as usize, WORKERS, backend);
            let plan = OpenLoopPlan {
                rate_per_sec: rate,
                ops: OPS,
                keyspace: KEYSPACE,
                seed: 0xE42,
            };
            let stats = run_open_loop(&plan, |key, scheduled| {
                svc.submit_timed(
                    Request {
                        key,
                        op: ServiceOp::Inc,
                    },
                    scheduled,
                );
            });
            svc.drain();
            let h = svc.latency_histogram();
            assert_eq!(h.count(), OPS, "every arrival must be measured");
            let id = format!("service_open_loop/{tag}/{rate}");
            eprintln!(
                "{id:<44} p50 {:>9} ns   p99 {:>9} ns   p999 {:>9} ns   max {:>10} ns   late {:>5}",
                h.p50(),
                h.p99(),
                h.p999(),
                h.max(),
                stats.late
            );
            record_percentiles_json_as(&id, &h, LoopKind::Open);
        }
    }
    eprintln!();
}

/// Closed-loop criterion median of the registry's steady-state hit
/// path: the routing cost in front of every dispatched op.
fn bench_registry_get(c: &mut Criterion) {
    let reg: Registry<u64> = Registry::new(1 << 16, 1, Backend::Global);
    for k in 0..1024u64 {
        reg.get_or_insert(&k).inc(0);
    }
    c.bench_function("service_registry/solo_get", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) & 1023;
            black_box(reg.get(&k).expect("materialized above").read_count())
        })
    });
}

criterion_group!(benches, bench_service_open_loop, bench_registry_get);
criterion_main!(benches);
