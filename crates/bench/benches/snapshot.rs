//! Experiment E3 — atomic snapshot implementations: the Theorem 2
//! fetch&add construction vs the read/write double-collect baseline.
//!
//! Expected shape: the fetch&add snapshot pays bignum arithmetic per
//! operation but both `update` and `scan` are a constant number of
//! RMWs; the double-collect baseline has cheap updates and scans whose
//! cost degrades under write contention (collect retries) — the
//! crossover the paper's wait-freedom claim is about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sl2_bench::parallel_duration;
use sl2_core::algos::snapshot::{DoubleCollectSnapshot, SlSnapshot};
use sl2_core::algos::Snapshot;
use std::hint::black_box;

fn bench_single_thread(c: &mut Criterion) {
    for n in [2usize, 4, 8] {
        let mut group = c.benchmark_group(format!("snapshot_n{n}"));
        group.bench_function("update/faa_thm2", |b| {
            let s = SlSnapshot::new(n);
            let mut v = 0u64;
            b.iter(|| {
                v = (v + 1) % 1024;
                s.update(0, black_box(v));
            });
        });
        group.bench_function("update/double_collect", |b| {
            let s = DoubleCollectSnapshot::new(n);
            let mut v = 0u64;
            b.iter(|| {
                v = (v + 1) % 1024;
                s.update(0, black_box(v));
            });
        });
        group.bench_function("scan/faa_thm2", |b| {
            let s = SlSnapshot::new(n);
            for i in 0..n {
                s.update(i, i as u64 + 1);
            }
            b.iter(|| black_box(s.scan()));
        });
        group.bench_function("scan/double_collect", |b| {
            let s = DoubleCollectSnapshot::new(n);
            for i in 0..n {
                s.update(i, i as u64 + 1);
            }
            b.iter(|| black_box(s.scan()));
        });
        group.finish();
    }
}

fn bench_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_contended");
    group.sample_size(10);
    const OPS: u64 = 1_000;
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("faa_thm2", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        let s = SlSnapshot::new(threads);
                        total += parallel_duration(threads, |t| {
                            for k in 0..OPS {
                                if k % 2 == 0 {
                                    s.update(t, k);
                                } else {
                                    black_box(s.scan());
                                }
                            }
                        });
                    }
                    total
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("double_collect", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        let s = DoubleCollectSnapshot::new(threads);
                        total += parallel_duration(threads, |t| {
                            for k in 0..OPS {
                                if k % 2 == 0 {
                                    s.update(t, k);
                                } else {
                                    black_box(s.scan());
                                }
                            }
                        });
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_single_thread, bench_contended);
criterion_main!(benches);
