//! Experiment E12 — the Discussion's "extremely large values": cost
//! and growth of the wide fetch&add register.
//!
//! Series:
//! * `faa_at_width/*` — one fetch&add against a register already `w`
//!   bits wide (the per-operation cost of the unary/interleaved
//!   encodings as history accumulates). The small widths (8–64 bits)
//!   sit entirely on the inline-`u128` fast path;
//! * `read_at_width/*` — the `fetch&add(R, 0)` probe at the same
//!   widths;
//! * `inline_vs_heap/*` — the representation ablation: the same
//!   operation just below and just above the 128-bit spill boundary,
//!   plus the fixed-width `FetchAdd128` as the bounded reference point;
//! * `borrowed_probe/*` — the borrowed probe (`read_with`) against the
//!   snapshot-then-decode route it replaced;
//! * `lockfree_vs_spin/*` — the PR-6 contention sweep: the DWCAS
//!   inline path vs the spinlocked twin at widths 64/96/128/256 across
//!   1..=16 threads (E30);
//! * `stall_recovery/*` — E30's stall-adversarial half: fast threads'
//!   makespan while one client stalls at its linearization point,
//!   lock-free vs spinlocked (the series that measures what the
//!   progress guarantee buys — see `bench_stall_recovery`);
//! * `register_growth` (printed table) — register width after k
//!   max-register writes, the quantity the Discussion proposes to
//!   shrink to O(log n) bits in future work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sl2_bench::{parallel_duration, parallel_latency, record_percentiles_json};
use sl2_bignum::FetchAdd128;
use sl2_bignum::{BigNat, Layout, WideFaa};
use sl2_core::algos::max_register::SlMaxRegister;
use sl2_core::algos::MaxRegister;
use std::hint::black_box;
use std::time::Duration;

fn bench_faa_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("faa_at_width");
    for bits in [8usize, 16, 32, 64, 1_024, 16_384, 262_144] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            let reg = WideFaa::with_value(BigNat::pow2(bits - 1));
            let delta = BigNat::one();
            b.iter(|| black_box(reg.fetch_add(&delta)));
        });
    }
    group.finish();
}

fn bench_read_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_at_width");
    for bits in [8usize, 16, 32, 64, 1_024, 16_384, 262_144] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            let reg = WideFaa::with_value(BigNat::pow2(bits - 1));
            b.iter(|| black_box(reg.load()));
        });
    }
    group.finish();
}

/// The inline/heap representation ablation. `inline_120` and
/// `heap_192` run the *same* `fetch_add` against values on either side
/// of the 128-bit boundary; the gap is the cost of heap cloning (the
/// returned snapshot) that the inline form never pays. `add_heap_192`
/// shows the write-only form recovering most of that gap (in-place
/// carry, no snapshot), and `fetch_add128_fixed` is the fixed-width
/// register (since PR 6, the same `Atomic128` cell) for calibration.
fn bench_inline_vs_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("inline_vs_heap");
    group.bench_function("inline_120", |b| {
        let reg = WideFaa::with_value(BigNat::pow2(119));
        let delta = BigNat::one();
        b.iter(|| black_box(reg.fetch_add(&delta)));
    });
    group.bench_function("heap_192", |b| {
        let reg = WideFaa::with_value(BigNat::pow2(191));
        let delta = BigNat::one();
        b.iter(|| black_box(reg.fetch_add(&delta)));
    });
    group.bench_function("add_inline_120", |b| {
        let reg = WideFaa::with_value(BigNat::pow2(119));
        let delta = BigNat::one();
        b.iter(|| reg.add(&delta));
    });
    group.bench_function("add_heap_192", |b| {
        let reg = WideFaa::with_value(BigNat::pow2(191));
        let delta = BigNat::one();
        b.iter(|| reg.add(&delta));
    });
    group.bench_function("fetch_add128_fixed", |b| {
        let reg = FetchAdd128::new(1 << 119);
        b.iter(|| black_box(reg.fetch_add(1)));
    });
    group.finish();
}

/// Decode-under-lock against snapshot-then-decode, at a width where
/// the snapshot is heap-backed (n = 4 processes, 1024-bit register):
/// the §3.1 `readMax` probe as the production algorithms now issue it
/// (`read_with` + `decode_unary`) vs the old `load()` + decode route.
fn bench_borrowed_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("borrowed_probe");
    let layout = Layout::new(4);
    let reg = WideFaa::new();
    for p in 0..4 {
        reg.add(&layout.unary_increment(p, 0, 256)); // 1024 bits total
    }
    group.bench_function("read_with_decode", |b| {
        b.iter(|| black_box(reg.probe_unary(&layout, 2)));
    });
    group.bench_function("snapshot_then_decode", |b| {
        b.iter(|| {
            let image = reg.load();
            black_box(layout.decode_unary(2, &image))
        });
    });
    group.finish();
}

/// The PR-6 contention sweep (E30): the DWCAS retry loop against the
/// spinlock critical section it replaced, on the *same* binary, via
/// [`WideFaa::with_value_spinlocked`]. Registers start at `2^(w-1)`:
/// widths 64 and 96 sit squarely in the lock-free inline regime, 128
/// is the honest boundary point (the tag bit consumes bit 127, so a
/// 128-bit value is already migrated and both variants serialize on
/// the lock), and 256 is heap territory where the two coincide by
/// construction.
///
/// Read next to `stall_recovery` below: on a single-core runner each
/// thread's whole workload fits inside one scheduling quantum, so this
/// sweep degenerates to serialized per-op cost (where the spinlock's
/// cheaper critical section wins by the instruction floor) — the
/// stall series is the half that measures what lock-freedom buys.
fn bench_lockfree_vs_spin(c: &mut Criterion) {
    let mut group = c.benchmark_group("lockfree_vs_spin");
    group.sample_size(10);
    const OPS: u64 = 2_000;
    for width in [64usize, 96, 128, 256] {
        for threads in [1usize, 2, 4, 8, 16] {
            for spin in [false, true] {
                let tag = if spin { "spin" } else { "lockfree" };
                group.bench_with_input(
                    BenchmarkId::new(format!("{tag}_w{width}"), threads),
                    &threads,
                    |b, &threads| {
                        b.iter_custom(|iters| {
                            let mut total = Duration::ZERO;
                            for _ in 0..iters {
                                let init = BigNat::pow2(width - 1);
                                let reg = if spin {
                                    WideFaa::with_value_spinlocked(init)
                                } else {
                                    WideFaa::with_value(init)
                                };
                                let delta = BigNat::one();
                                total += parallel_duration(threads, |_| {
                                    for _ in 0..OPS {
                                        reg.add(&delta);
                                    }
                                });
                            }
                            total
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

/// The stall-adversarial half of E30: one register client stalls at
/// its linearization point — `std::thread::sleep` inside the
/// `fetch_add_with` decode closure, modeling a page fault, I/O, or
/// preemption at exactly the wrong instant — while the measured
/// threads run the plain contended add workload. On the spinlocked
/// twin the closure runs *inside* the critical section, so every
/// stall blocks the whole register; on the lock-free path the closure
/// runs on a stack copy of the snapshot with no lock held, so only
/// the stalling thread waits. This is the regime the progress
/// guarantee is *for*, and (unlike raw throughput) it is measurable
/// even on a single-core runner: the fast threads can use the CPU the
/// sleeper gives up only if the register is not locked under them.
///
/// The stall thread performs a fixed 10 stalls of 500 µs and then
/// exits; the reported duration is the fast threads' makespan only
/// (the stall thread is joined outside the timed window).
fn bench_stall_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("stall_recovery");
    group.sample_size(10);
    const OPS: u64 = 2_000;
    const STALLS: u32 = 10;
    const STALL: Duration = Duration::from_micros(500);
    for threads in [2usize, 4, 8, 16] {
        for spin in [false, true] {
            let tag = if spin { "spin" } else { "lockfree" };
            group.bench_with_input(
                BenchmarkId::new(format!("{tag}_w64"), threads),
                &threads,
                |b, &threads| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let init = BigNat::pow2(63);
                            let reg = if spin {
                                WideFaa::with_value_spinlocked(init)
                            } else {
                                WideFaa::with_value(init)
                            };
                            let delta = BigNat::one();
                            std::thread::scope(|s| {
                                s.spawn(|| {
                                    for _ in 0..STALLS {
                                        reg.fetch_add_with(&delta, |_| std::thread::sleep(STALL));
                                    }
                                });
                                total += parallel_duration(threads, |_| {
                                    for _ in 0..OPS {
                                        reg.add(&delta);
                                    }
                                });
                            });
                        }
                        total
                    });
                },
            );
        }
    }
    group.finish();
}

/// E38's contended-add percentile series: per-op latency of the w=64
/// DWCAS add under 8 and 16 threads, lock-free vs spinlocked. The
/// `lockfree_vs_spin` makespans above report only the mean regime;
/// the retry loop's cost lives in the tail (a losing DWCAS pays a
/// whole re-decode), which only p99/p999 can show. Rows land in
/// `SL2_BENCH_JSON` with `"kind":"latency"`.
fn bench_faa_percentiles(_c: &mut Criterion) {
    const OPS: u64 = 2_000;
    eprintln!("\nE38 per-op latency percentiles (w=64 contended add):");
    for threads in [8usize, 16] {
        for spin in [false, true] {
            let tag = if spin { "spin" } else { "lockfree" };
            let init = BigNat::pow2(63);
            let reg = if spin {
                WideFaa::with_value_spinlocked(init)
            } else {
                WideFaa::with_value(init)
            };
            let delta = BigNat::one();
            let h = parallel_latency(threads, OPS, |_, _| {
                reg.add(&delta);
            });
            let id = format!("faa_percentiles/{tag}_w64/{threads}");
            eprintln!(
                "{id:<60} p50 {:>8} ns   p99 {:>8} ns   p999 {:>8} ns   max {:>8} ns",
                h.p50(),
                h.p99(),
                h.p999(),
                h.max()
            );
            record_percentiles_json(&id, &h);
        }
    }
    eprintln!();
}

/// Not a timing benchmark: prints the E12 growth table
/// (writes → register bits) for the Theorem 1 max register, plus the
/// representation each size lands in.
fn report_register_growth(_c: &mut Criterion) {
    eprintln!("\nE12 register growth (Theorem 1 max register, n = 4 processes):");
    eprintln!("  max value written | register bits | representation");
    eprintln!("  ------------------+---------------+---------------");
    for target in [16u64, 64, 256, 1024, 4096] {
        let m = SlMaxRegister::new(4);
        for p in 0..4 {
            m.write_max(p, target);
        }
        let bits = m.register_bits();
        let repr = if bits <= 128 { "inline" } else { "heap" };
        eprintln!("  {:>17} | {:>13} | {}", target, bits, repr);
    }
    eprintln!("  (unary encoding: bits = n × max value — the Discussion's concern)\n");
}

criterion_group!(
    benches,
    bench_faa_width,
    bench_read_width,
    bench_inline_vs_heap,
    bench_borrowed_probe,
    bench_lockfree_vs_spin,
    bench_stall_recovery,
    bench_faa_percentiles,
    report_register_growth
);
criterion_main!(benches);
