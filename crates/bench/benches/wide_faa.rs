//! Experiment E12 — the Discussion's "extremely large values": cost
//! and growth of the wide fetch&add register.
//!
//! Series:
//! * `faa_at_width/*` — one fetch&add against a register already `w`
//!   bits wide (the per-operation cost of the unary/interleaved
//!   encodings as history accumulates). The small widths (8–64 bits)
//!   sit entirely on the inline-`u128` fast path;
//! * `read_at_width/*` — the `fetch&add(R, 0)` probe at the same
//!   widths;
//! * `inline_vs_heap/*` — the representation ablation: the same
//!   operation just below and just above the 128-bit spill boundary,
//!   plus the mutex-based fixed-width `FetchAdd128` as the bounded
//!   reference point;
//! * `borrowed_probe/*` — decode-under-lock (`read_with`) against the
//!   snapshot-then-decode route it replaced;
//! * `register_growth` (printed table) — register width after k
//!   max-register writes, the quantity the Discussion proposes to
//!   shrink to O(log n) bits in future work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sl2_bignum::{BigNat, Layout, WideFaa};
use sl2_core::algos::max_register::SlMaxRegister;
use sl2_core::algos::MaxRegister;
use sl2_primitives::FetchAdd128;
use std::hint::black_box;

fn bench_faa_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("faa_at_width");
    for bits in [8usize, 16, 32, 64, 1_024, 16_384, 262_144] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            let reg = WideFaa::with_value(BigNat::pow2(bits - 1));
            let delta = BigNat::one();
            b.iter(|| black_box(reg.fetch_add(&delta)));
        });
    }
    group.finish();
}

fn bench_read_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_at_width");
    for bits in [8usize, 16, 32, 64, 1_024, 16_384, 262_144] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            let reg = WideFaa::with_value(BigNat::pow2(bits - 1));
            b.iter(|| black_box(reg.load()));
        });
    }
    group.finish();
}

/// The inline/heap representation ablation. `inline_120` and
/// `heap_192` run the *same* `fetch_add` against values on either side
/// of the 128-bit boundary; the gap is the cost of heap cloning (the
/// returned snapshot) that the inline form never pays. `add_heap_192`
/// shows the write-only form recovering most of that gap (in-place
/// carry, no snapshot), and `fetch_add128_mutex` is the fixed-width
/// mutex register for calibration.
fn bench_inline_vs_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("inline_vs_heap");
    group.bench_function("inline_120", |b| {
        let reg = WideFaa::with_value(BigNat::pow2(119));
        let delta = BigNat::one();
        b.iter(|| black_box(reg.fetch_add(&delta)));
    });
    group.bench_function("heap_192", |b| {
        let reg = WideFaa::with_value(BigNat::pow2(191));
        let delta = BigNat::one();
        b.iter(|| black_box(reg.fetch_add(&delta)));
    });
    group.bench_function("add_inline_120", |b| {
        let reg = WideFaa::with_value(BigNat::pow2(119));
        let delta = BigNat::one();
        b.iter(|| reg.add(&delta));
    });
    group.bench_function("add_heap_192", |b| {
        let reg = WideFaa::with_value(BigNat::pow2(191));
        let delta = BigNat::one();
        b.iter(|| reg.add(&delta));
    });
    group.bench_function("fetch_add128_mutex", |b| {
        let reg = FetchAdd128::new(1 << 119);
        b.iter(|| black_box(reg.fetch_add(1)));
    });
    group.finish();
}

/// Decode-under-lock against snapshot-then-decode, at a width where
/// the snapshot is heap-backed (n = 4 processes, 1024-bit register):
/// the §3.1 `readMax` probe as the production algorithms now issue it
/// (`read_with` + `decode_unary`) vs the old `load()` + decode route.
fn bench_borrowed_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("borrowed_probe");
    let layout = Layout::new(4);
    let reg = WideFaa::new();
    for p in 0..4 {
        reg.add(&layout.unary_increment(p, 0, 256)); // 1024 bits total
    }
    group.bench_function("read_with_decode", |b| {
        b.iter(|| black_box(reg.probe_unary(&layout, 2)));
    });
    group.bench_function("snapshot_then_decode", |b| {
        b.iter(|| {
            let image = reg.load();
            black_box(layout.decode_unary(2, &image))
        });
    });
    group.finish();
}

/// Not a timing benchmark: prints the E12 growth table
/// (writes → register bits) for the Theorem 1 max register, plus the
/// representation each size lands in.
fn report_register_growth(_c: &mut Criterion) {
    eprintln!("\nE12 register growth (Theorem 1 max register, n = 4 processes):");
    eprintln!("  max value written | register bits | representation");
    eprintln!("  ------------------+---------------+---------------");
    for target in [16u64, 64, 256, 1024, 4096] {
        let m = SlMaxRegister::new(4);
        for p in 0..4 {
            m.write_max(p, target);
        }
        let bits = m.register_bits();
        let repr = if bits <= 128 { "inline" } else { "heap" };
        eprintln!("  {:>17} | {:>13} | {}", target, bits, repr);
    }
    eprintln!("  (unary encoding: bits = n × max value — the Discussion's concern)\n");
}

criterion_group!(
    benches,
    bench_faa_width,
    bench_read_width,
    bench_inline_vs_heap,
    bench_borrowed_probe,
    report_register_growth
);
criterion_main!(benches);
