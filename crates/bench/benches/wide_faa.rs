//! Experiment E12 — the Discussion's "extremely large values": cost
//! and growth of the wide fetch&add register.
//!
//! Series:
//! * `faa_at_width/*` — one fetch&add against a register already `w`
//!   bits wide (the per-operation cost of the unary/interleaved
//!   encodings as history accumulates);
//! * `register_growth` (printed table) — register width after k
//!   max-register writes, the quantity the Discussion proposes to
//!   shrink to O(log n) bits in future work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sl2_bignum::{BigNat, WideFaa};
use sl2_core::algos::max_register::SlMaxRegister;
use sl2_core::algos::MaxRegister;
use std::hint::black_box;

fn bench_faa_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("faa_at_width");
    for bits in [64usize, 1_024, 16_384, 262_144] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            let reg = WideFaa::with_value(BigNat::pow2(bits - 1));
            let delta = BigNat::one();
            b.iter(|| black_box(reg.fetch_add(&delta)));
        });
    }
    group.finish();
}

fn bench_read_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_at_width");
    for bits in [64usize, 1_024, 16_384, 262_144] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            let reg = WideFaa::with_value(BigNat::pow2(bits - 1));
            b.iter(|| black_box(reg.load()));
        });
    }
    group.finish();
}

/// Not a timing benchmark: prints the E12 growth table
/// (writes → register bits) for the Theorem 1 max register.
fn report_register_growth(_c: &mut Criterion) {
    eprintln!("\nE12 register growth (Theorem 1 max register, n = 4 processes):");
    eprintln!("  max value written | register bits");
    eprintln!("  ------------------+--------------");
    for target in [16u64, 64, 256, 1024, 4096] {
        let m = SlMaxRegister::new(4);
        for p in 0..4 {
            m.write_max(p, target);
        }
        eprintln!("  {:>17} | {}", target, m.register_bits());
    }
    eprintln!("  (unary encoding: bits = n × max value — the Discussion's concern)\n");
}

criterion_group!(
    benches,
    bench_faa_width,
    bench_read_width,
    report_register_growth
);
criterion_main!(benches);
