//! Experiments E26 and E29 — the combining front-end in the
//! read-heavy regime (see EXPERIMENTS.md).
//!
//! Series reported:
//! * `combining_read/*` — single-thread whole-object read latency at a
//!   fixed population: the global Theorem-1 register, the S=16 sharded
//!   fold (stable and relaxed), and the combined cached read (one
//!   load) with its stable fallback — the per-op costs the mixed sweep
//!   composes;
//! * `combining_mixed/*` — the E26 acceptance series: 1:9 and 1:3
//!   write:read mixes across 1..=16 threads for global vs S=16 fold vs
//!   combined cached read (writes through the front-end), uniform
//!   values — the ISSUE-5 bar is the combined column beating both
//!   others on the 1:9 mix at ≥ 8 threads;
//! * `combining_mixed_zipf/*` — the same sweep under zipf-skewed
//!   values (hot keys re-concentrate shards, but the cached read never
//!   touches them);
//! * `combining_counter/*` — the counter-shaped analogue: striped incs
//!   with exact, relaxed, and cached reads under a 1:9 mix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sl2_bench::{
    parallel_duration, parallel_latency, ratio_mix, record_percentiles_json, Histogram,
    ValueStream, ZipfStream,
};
use sl2_combine::{CombiningCounter, CombiningMaxRegister};
use sl2_core::algos::max_register::SlMaxRegister;
use sl2_core::algos::MaxRegister;
use sl2_sharded::{ShardedFetchInc, ShardedMaxRegister};
use std::hint::black_box;
use std::time::Duration;

/// Same value bound as the sharded and max-register benches.
const VALUE_BOUND: u64 = 64;

/// Per-thread operations per measured makespan.
const OPS: u64 = 2_000;

/// Thread counts for the scaling sweeps (matching `sharded`).
const THREADS: [usize; 5] = [1, 2, 4, 8, 16];

/// Shard count under the front-end (the PR-3 contended-write winner).
const SHARDS: usize = 16;

/// One read-heavy participant over the shared [`ratio_mix`] cycle
/// driver, with `write` and `read` supplied per register flavor.
fn mix<W: Fn(u64), R: Fn()>(t: usize, writes: u64, reads: u64, zipf: bool, write: W, read: R) {
    let mut uniform = ValueStream::new(t as u64 + 1);
    let mut skewed = ZipfStream::new(t as u64 + 1, VALUE_BOUND);
    ratio_mix(
        OPS,
        writes,
        reads,
        || {
            if zipf {
                skewed.next_value()
            } else {
                uniform.next_in(VALUE_BOUND)
            }
        },
        write,
        || {
            read();
        },
    );
}

fn bench_read_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("combining_read");
    group.sample_size(10);

    let global = SlMaxRegister::new(4);
    let sharded = ShardedMaxRegister::new(4, SHARDS);
    let combined = CombiningMaxRegister::new(ShardedMaxRegister::new(4, SHARDS));
    for p in 0..4 {
        for v in 0..VALUE_BOUND {
            global.write_max(p, v);
            sharded.write_max(p, v);
            combined.write_max(p, v);
        }
    }
    combined.refresh();

    group.bench_function("global", |b| b.iter(|| black_box(global.read_max())));
    group.bench_function("sharded_s16_fold", |b| {
        b.iter(|| black_box(sharded.read_max()))
    });
    group.bench_function("sharded_s16_relaxed", |b| {
        b.iter(|| black_box(sharded.read_max_relaxed()))
    });
    group.bench_function("combined_cached", |b| {
        b.iter(|| black_box(combined.read_cached()))
    });
    group.bench_function("combined_stable", |b| {
        b.iter(|| black_box(combined.read_max()))
    });
    group.finish();
}

fn bench_mixed(c: &mut Criterion) {
    for (group_name, zipf) in [("combining_mixed", false), ("combining_mixed_zipf", true)] {
        let mut group = c.benchmark_group(group_name);
        group.sample_size(10);
        for (writes, reads) in [(1u64, 9u64), (1, 3)] {
            for threads in THREADS {
                group.bench_with_input(
                    BenchmarkId::new(format!("global_w{writes}r{reads}"), threads),
                    &threads,
                    |b, &threads| {
                        b.iter_custom(|iters| {
                            let mut total = Duration::ZERO;
                            for _ in 0..iters {
                                let m = SlMaxRegister::new(threads);
                                total += parallel_duration(threads, |t| {
                                    mix(
                                        t,
                                        writes,
                                        reads,
                                        zipf,
                                        |v| m.write_max(t, v),
                                        || {
                                            black_box(m.read_max());
                                        },
                                    )
                                });
                            }
                            total
                        });
                    },
                );
                group.bench_with_input(
                    BenchmarkId::new(format!("sharded_s16_w{writes}r{reads}"), threads),
                    &threads,
                    |b, &threads| {
                        b.iter_custom(|iters| {
                            let mut total = Duration::ZERO;
                            for _ in 0..iters {
                                let m = ShardedMaxRegister::new(threads, SHARDS);
                                total += parallel_duration(threads, |t| {
                                    mix(
                                        t,
                                        writes,
                                        reads,
                                        zipf,
                                        |v| m.write_max(t, v),
                                        || {
                                            black_box(m.read_max());
                                        },
                                    )
                                });
                            }
                            total
                        });
                    },
                );
                group.bench_with_input(
                    BenchmarkId::new(format!("combined_w{writes}r{reads}"), threads),
                    &threads,
                    |b, &threads| {
                        b.iter_custom(|iters| {
                            let mut total = Duration::ZERO;
                            for _ in 0..iters {
                                let m = CombiningMaxRegister::new(ShardedMaxRegister::new(
                                    threads, SHARDS,
                                ));
                                total += parallel_duration(threads, |t| {
                                    mix(
                                        t,
                                        writes,
                                        reads,
                                        zipf,
                                        |v| m.write_max(t, v),
                                        || {
                                            black_box(m.read_cached());
                                        },
                                    )
                                });
                            }
                            total
                        });
                    },
                );
            }
        }
        group.finish();
    }
}

fn bench_counter(c: &mut Criterion) {
    let mut group = c.benchmark_group("combining_counter");
    group.sample_size(10);

    // Read-path latencies at a fixed population.
    let plain = ShardedFetchInc::new(4, SHARDS);
    let combined = CombiningCounter::new(ShardedFetchInc::new(4, SHARDS));
    for i in 0..64 {
        plain.inc(i % 4);
        combined.inc(i % 4);
    }
    combined.refresh();
    group.bench_function("read_exact_s16", |b| b.iter(|| black_box(plain.read())));
    group.bench_function("read_relaxed_s16", |b| {
        b.iter(|| black_box(plain.read_relaxed()))
    });
    group.bench_function("read_cached", |b| {
        b.iter(|| black_box(combined.read_cached()))
    });

    // 1:9 inc:read mix across the thread sweep.
    for threads in [4usize, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("mixed_sharded_w1r9", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let m = ShardedFetchInc::new(threads, SHARDS);
                        total += parallel_duration(threads, |t| {
                            mix(
                                t,
                                1,
                                9,
                                false,
                                |_| {
                                    m.inc(t);
                                },
                                || {
                                    black_box(m.read());
                                },
                            )
                        });
                    }
                    total
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mixed_combined_w1r9", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let m = CombiningCounter::new(ShardedFetchInc::new(threads, SHARDS));
                        total += parallel_duration(threads, |t| {
                            mix(
                                t,
                                1,
                                9,
                                false,
                                |_| {
                                    m.inc(t);
                                },
                                || {
                                    black_box(m.read_cached());
                                },
                            )
                        });
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

/// Prints and records one percentile series row.
fn report_percentiles(id: &str, h: &Histogram) {
    eprintln!(
        "{id:<60} p50 {:>8} ns   p99 {:>8} ns   p999 {:>8} ns   max {:>8} ns",
        h.p50(),
        h.p99(),
        h.p999(),
        h.max()
    );
    record_percentiles_json(id, h);
}

/// One deterministic write operand for thread `t`'s `k`-th operation
/// (stateless, so the per-op latency closure can stay `Fn`).
fn mix_value(t: usize, k: u64) -> u64 {
    ValueStream::new(t as u64 * OPS + k + 1).next_value() % VALUE_BOUND
}

/// Experiment E38 — the tail-latency complement of `combining_mixed`:
/// the makespan series above averages away exactly the p99/p999
/// outliers that combiner elections, lease takeovers, and stable-fold
/// retries cause, so this series times **every operation** of the 1:9
/// mix individually ([`parallel_latency`]) and emits
/// p50/p99/p999/max rows (`"kind":"latency"`) into `SL2_BENCH_JSON`
/// next to the shim's medians. Not a criterion timing group: the
/// histogram is the measurement.
fn bench_mixed_percentiles(_c: &mut Criterion) {
    eprintln!("\nE38 per-op latency percentiles (1:9 write:read mix):");
    for threads in [8usize, 16] {
        let global = SlMaxRegister::new(threads);
        let h = parallel_latency(threads, OPS, |t, k| {
            if k % 10 == 0 {
                global.write_max(t, mix_value(t, k));
            } else {
                black_box(global.read_max());
            }
        });
        report_percentiles(&format!("combining_percentiles/global_w1r9/{threads}"), &h);

        let sharded = ShardedMaxRegister::new(threads, SHARDS);
        let h = parallel_latency(threads, OPS, |t, k| {
            if k % 10 == 0 {
                sharded.write_max(t, mix_value(t, k));
            } else {
                black_box(sharded.read_max());
            }
        });
        report_percentiles(
            &format!("combining_percentiles/sharded_s16_w1r9/{threads}"),
            &h,
        );

        let combined = CombiningMaxRegister::new(ShardedMaxRegister::new(threads, SHARDS));
        let h = parallel_latency(threads, OPS, |t, k| {
            if k % 10 == 0 {
                combined.write_max(t, mix_value(t, k));
            } else {
                black_box(combined.read_cached());
            }
        });
        report_percentiles(
            &format!("combining_percentiles/combined_w1r9/{threads}"),
            &h,
        );
    }
    eprintln!();
}

criterion_group!(
    benches,
    bench_read_latency,
    bench_mixed,
    bench_counter,
    bench_mixed_percentiles
);
criterion_main!(benches);
