//! E14 — the read/write queue with multiplicity (\[11\] style) against
//! a mutex-protected exact queue.
//!
//! The paper's §5 relaxations exist to buy implementability: a queue
//! with multiplicity needs no read-modify-write primitive at all. The
//! series here show what that costs and buys operationally:
//!
//! * `enq`/`deq` per-op cost grows with the process count (collects are
//!   O(n) + O(published)) while the mutex queue is O(1) per op —
//!   uncontended, the exact queue wins;
//! * under contention the register queue never blocks (wait-free) and
//!   admits duplicate dequeues; `duplication_rate` measures how often
//!   the relaxation fires. It fires exactly when dequeue windows
//!   overlap: lockstep churn keeps every window overlapped, so the
//!   rate approaches one duplicate per concurrent pair (~35-40%); a
//!   staggered workload drives it toward zero. The relaxation is
//!   workload-proportional, not constant slack.

use std::collections::VecDeque;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parking_lot::Mutex;
use sl2_bench::parallel_duration;
use sl2_core::algos::mult_queue::MultQueue;
use std::hint::black_box;

fn bench_single_thread_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("relaxed_queue_solo");
    for &n in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("mult_enq_deq", n), &n, |b, &n| {
            b.iter_batched(
                || MultQueue::new(n, 4096),
                |q| {
                    for i in 0..256 {
                        q.enq(0, i % 1000);
                        black_box(q.deq(0));
                    }
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.bench_function("mutex_enq_deq", |b| {
        let q = Mutex::new(VecDeque::new());
        b.iter(|| {
            for i in 0..256u64 {
                q.lock().push_back(i % 1000);
                black_box(q.lock().pop_front());
            }
        });
    });
    group.finish();
}

fn bench_contended_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("relaxed_queue_contended");
    group.sample_size(10);
    const PER: usize = 512;
    for &threads in &[2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("mult", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        let q = MultQueue::new(threads, PER * threads + 8);
                        total += parallel_duration(threads, |t| {
                            for i in 0..PER {
                                q.enq(t, (i % 1000) as u64);
                                black_box(q.deq(t));
                            }
                        });
                    }
                    total
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mutex", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        let q: Mutex<VecDeque<u64>> = Mutex::new(VecDeque::new());
                        total += parallel_duration(threads, |_| {
                            for i in 0..PER {
                                q.lock().push_back((i % 1000) as u64);
                                black_box(q.lock().pop_front());
                            }
                        });
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

/// Not a timing series: measures how often the multiplicity relaxation
/// fires (two dequeues returning the same item) as contention grows.
fn report_duplication_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("relaxed_queue_duplication");
    group.sample_size(10);
    for &threads in &[2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("churn", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    let mut dup_total = 0u64;
                    let mut ops_total = 0u64;
                    for _ in 0..iters {
                        const PER: usize = 256;
                        let q = MultQueue::new(threads, PER * threads + 8);
                        let seen: Vec<Mutex<Vec<u64>>> =
                            (0..threads).map(|_| Mutex::new(Vec::new())).collect();
                        total += parallel_duration(threads, |t| {
                            for i in 0..PER {
                                q.enq(t, ((t * PER + i) % 60000) as u64);
                                if let Some(v) = q.deq(t) {
                                    seen[t].lock().push(v);
                                }
                            }
                        });
                        let mut all: Vec<u64> =
                            seen.iter().flat_map(|s| s.lock().clone()).collect();
                        ops_total += all.len() as u64;
                        all.sort_unstable();
                        dup_total += all.windows(2).filter(|w| w[0] == w[1]).count() as u64;
                    }
                    if ops_total > 0 {
                        println!(
                            "duplication rate at {threads} threads: {dup_total}/{ops_total} \
                             ({:.4}%)",
                            100.0 * dup_total as f64 / ops_total as f64
                        );
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_thread_ops,
    bench_contended_throughput,
    report_duplication_rate
);
criterion_main!(benches);
