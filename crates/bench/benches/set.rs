//! Experiment E8 — the Algorithm 2 set vs a mutex-protected set.
//!
//! Workloads: producer/consumer churn (put+take pairs) and drain
//! (put everything, take everything), single-threaded and contended.
//! The Algorithm 2 take scans the whole active region, so drain cost
//! grows with the high-water mark — visible in `drain` vs `churn`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use parking_lot::Mutex;
use sl2_bench::parallel_duration;
use sl2_core::algos::sl_set::SlSet;
use std::collections::VecDeque;
use std::hint::black_box;

fn bench_single_thread(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_churn_64");
    group.sample_size(20);
    group.bench_function("thm10_sl_set", |b| {
        let mut next = 0u64;
        b.iter_batched(
            SlSet::new,
            |set| {
                for _ in 0..64 {
                    next += 1;
                    set.put(next);
                    black_box(set.take());
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("mutex_deque", |b| {
        let mut next = 0u64;
        b.iter_batched(
            || Mutex::new(VecDeque::<u64>::new()),
            |set| {
                for _ in 0..64 {
                    next += 1;
                    set.lock().push_back(next);
                    black_box(set.lock().pop_front());
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();

    let mut group = c.benchmark_group("set_drain_64");
    group.sample_size(20);
    group.bench_function("thm10_sl_set", |b| {
        b.iter_batched(
            SlSet::new,
            |set| {
                for v in 0..64 {
                    set.put(v);
                }
                while black_box(set.take()).is_some() {}
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("mutex_deque", |b| {
        b.iter_batched(
            || Mutex::new(VecDeque::<u64>::new()),
            |set| {
                for v in 0..64 {
                    set.lock().push_back(v);
                }
                while black_box(set.lock().pop_front()).is_some() {}
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_contended");
    group.sample_size(10);
    const OPS: u64 = 500;
    for threads in [2usize, 4] {
        group.bench_function(format!("thm10_sl_set/{threads}"), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let set = SlSet::new();
                    total += parallel_duration(threads, |t| {
                        for k in 0..OPS {
                            set.put(t as u64 * OPS + k);
                            black_box(set.take());
                        }
                    });
                }
                total
            });
        });
        group.bench_function(format!("mutex_deque/{threads}"), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let set = Mutex::new(VecDeque::<u64>::new());
                    total += parallel_duration(threads, |t| {
                        for k in 0..OPS {
                            set.lock().push_back(t as u64 * OPS + k);
                            black_box(set.lock().pop_front());
                        }
                    });
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_thread, bench_contended);
criterion_main!(benches);
