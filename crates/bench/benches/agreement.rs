//! Experiment E9/E17 benchmark — the cost of agreement.
//!
//! Measures one full Algorithm B consensus (Lemma 12) over the
//! strongly-linearizable CAS queue, in simulated steps and wall time,
//! for n ∈ {2, 3, 4}; one full k-set agreement over the atomic
//! k-out-of-order queue (E17); and the 2-process test&set consensus
//! (Theorem 19's building block) on real atomics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sl2_agreement::{
    run_agreement, AlgoB, AtomicOooQueueAlg, OutOfOrderQueueOrdering, QueueOrdering,
    TasConsensusShared,
};
use sl2_core::baselines::cas_queue::CasQueueAlg;
use sl2_exec::sched::RoundRobin;
use sl2_exec::SimMemory;
use std::hint::black_box;

fn bench_algo_b(c: &mut Criterion) {
    let mut group = c.benchmark_group("algo_b_consensus");
    for n in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::new("cas_queue", n), &n, |b, &n| {
            let inputs: Vec<u64> = (0..n as u64).collect();
            b.iter(|| {
                let mut mem = SimMemory::new();
                let alg = CasQueueAlg::new(&mut mem);
                let bb = AlgoB::new(&mut mem, alg, QueueOrdering, n);
                let run = run_agreement(
                    &bb,
                    &mut mem,
                    &inputs,
                    &mut RoundRobin::default(),
                    &vec![None; n],
                    1_000_000,
                );
                black_box(run)
            });
        });
    }
    group.finish();
}

fn bench_k_set_agreement(c: &mut Criterion) {
    let mut group = c.benchmark_group("algo_b_k_set");
    for (n, k) in [(4usize, 1usize), (4, 2), (6, 3)] {
        group.bench_with_input(
            BenchmarkId::new(format!("ooo_queue_k{k}"), n),
            &(n, k),
            |b, &(n, k)| {
                let inputs: Vec<u64> = (0..n as u64).collect();
                b.iter(|| {
                    let mut mem = SimMemory::new();
                    let alg = AtomicOooQueueAlg::new(&mut mem, k);
                    let bb = AlgoB::new(&mut mem, alg, OutOfOrderQueueOrdering { k }, n);
                    let run = run_agreement(
                        &bb,
                        &mut mem,
                        &inputs,
                        &mut RoundRobin::default(),
                        &vec![None; n],
                        1_000_000,
                    );
                    black_box(run)
                });
            },
        );
    }
    group.finish();
}

fn bench_tas_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("tas_consensus_2proc");
    group.bench_function("threads", |b| {
        b.iter(|| {
            let obj = std::sync::Arc::new(TasConsensusShared::new());
            let o2 = std::sync::Arc::clone(&obj);
            std::thread::scope(|s| {
                let h0 = s.spawn(move || obj.propose(0, 11));
                let h1 = s.spawn(move || o2.propose(1, 22));
                black_box((h0.join().unwrap_or(0), h1.join().unwrap_or(0)))
            })
        });
    });
    group.bench_function("solo", |b| {
        b.iter(|| {
            let obj = TasConsensusShared::new();
            black_box(obj.propose(0, 11))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_algo_b,
    bench_k_set_agreement,
    bench_tas_consensus
);
criterion_main!(benches);
