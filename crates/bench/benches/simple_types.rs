//! Experiment E4 — Algorithm 1 simple types: the price of generality.
//!
//! Algorithm 1 keeps the full operation graph and re-linearizes it on
//! every invocation, so the cost of operation #k grows with k. The
//! `history_growth` series makes that cost visible (the honest
//! trade-off for a generic strongly-linearizable construction), and
//! the `counter` group compares a fixed-size history against the
//! hardware fetch&add and a mutex — the non-strongly-linearizable
//! routes a practitioner would otherwise reach for.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use parking_lot::Mutex;
use sl2_core::algos::simple::SlCounter;
use sl2_primitives::FetchAdd;
use sl2_spec::counters::CounterOp;
use std::hint::black_box;

fn bench_counter_small_history(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_100_incs");
    group.sample_size(20);
    group.bench_function("algorithm1_thm4", |b| {
        b.iter_batched(
            || SlCounter::new_from_faa(2),
            |counter| {
                for _ in 0..100 {
                    counter.invoke(0, &CounterOp::Inc);
                }
                black_box(counter.invoke(0, &CounterOp::Read));
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("hardware_faa", |b| {
        b.iter_batched(
            || FetchAdd::new(0),
            |counter| {
                for _ in 0..100 {
                    counter.fetch_add(1);
                }
                black_box(counter.read());
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("mutex", |b| {
        b.iter_batched(
            || Mutex::new(0u64),
            |counter| {
                for _ in 0..100 {
                    *counter.lock() += 1;
                }
                black_box(*counter.lock());
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_history_growth(c: &mut Criterion) {
    // Cost of ONE increment after k prior operations: Algorithm 1
    // re-linearizes the whole graph, so expect superlinear growth.
    let mut group = c.benchmark_group("history_growth");
    group.sample_size(10);
    for k in [8u64, 32, 128, 256] {
        group.bench_with_input(BenchmarkId::new("inc_after", k), &k, |b, &k| {
            b.iter_batched(
                || {
                    let counter = SlCounter::new_from_faa(2);
                    for _ in 0..k {
                        counter.invoke(0, &CounterOp::Inc);
                    }
                    counter
                },
                |counter| {
                    counter.invoke(1, &CounterOp::Inc);
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_counter_small_history, bench_history_growth);
criterion_main!(benches);
