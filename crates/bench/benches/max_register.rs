//! Experiment E2 — max register implementations (Theorem 1 vs the
//! read/write route vs compare&swap vs the Algorithm 1 route).
//!
//! Series reported:
//! * `write_max/*` — single-thread write cost;
//! * `read_max/*` — single-thread read cost;
//! * `scaling/*` — contended throughput at 1/2/4 threads.
//!
//! Expected shape: the fetch&add register (Theorem 1) does one wide
//! RMW per operation and scales flatly; the read/write register pays a
//! double collect per read; compare&swap is the cheap-but-universal
//! baseline; the Algorithm-1 max register pays the operation-graph
//! traversal (cost grows with history) — which is why the paper gives
//! the direct unary construction at all.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sl2_bench::parallel_duration;
use sl2_core::algos::max_register::{CasMaxRegister, SlMaxRegister};
use sl2_core::algos::rw_max_register::RwMaxRegister;
use sl2_core::algos::simple::SnapshotMaxRegister;
use sl2_core::algos::MaxRegister;
use sl2_spec::max_register::MaxOp;
use std::hint::black_box;

/// Bounded values keep the unary encoding small and the comparison
/// fair.
const VALUE_BOUND: u64 = 64;

fn bench_single_thread(c: &mut Criterion) {
    let mut group = c.benchmark_group("write_max");
    group.bench_function("faa_thm1", |b| {
        let m = SlMaxRegister::new(2);
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 7) % VALUE_BOUND;
            m.write_max(0, black_box(v));
        });
    });
    group.bench_function("rw_lockfree", |b| {
        let m = RwMaxRegister::new(2);
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 7) % VALUE_BOUND;
            m.write_max(0, black_box(v));
        });
    });
    group.bench_function("cas_universal", |b| {
        let m = CasMaxRegister::new();
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 7) % VALUE_BOUND;
            m.write_max(0, black_box(v));
        });
    });
    group.finish();

    let mut group = c.benchmark_group("read_max");
    group.bench_function("faa_thm1", |b| {
        let m = SlMaxRegister::new(2);
        m.write_max(0, VALUE_BOUND - 1);
        b.iter(|| black_box(m.read_max()));
    });
    group.bench_function("rw_lockfree", |b| {
        let m = RwMaxRegister::new(2);
        m.write_max(0, VALUE_BOUND - 1);
        b.iter(|| black_box(m.read_max()));
    });
    group.bench_function("cas_universal", |b| {
        let m = CasMaxRegister::new();
        m.write_max(0, VALUE_BOUND - 1);
        b.iter(|| black_box(m.read_max()));
    });
    group.bench_function("algorithm1_snapshot", |b| {
        let m = SnapshotMaxRegister::new_from_faa(2);
        m.invoke(0, &MaxOp::Write(VALUE_BOUND - 1));
        b.iter(|| black_box(m.invoke(0, &MaxOp::Read)));
    });
    group.finish();
}

fn scaling_workload<M: MaxRegister>(m: &M, t: usize, ops: u64) {
    for k in 0..ops {
        if k % 4 == 0 {
            m.write_max(t, k % VALUE_BOUND);
        } else {
            black_box(m.read_max());
        }
    }
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    const OPS: u64 = 2_000;
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("faa_thm1", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        let m = SlMaxRegister::new(threads);
                        total += parallel_duration(threads, |t| scaling_workload(&m, t, OPS));
                    }
                    total
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rw_lockfree", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        let m = RwMaxRegister::new(threads);
                        total += parallel_duration(threads, |t| scaling_workload(&m, t, OPS));
                    }
                    total
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cas_universal", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        let m = CasMaxRegister::new();
                        total += parallel_duration(threads, |t| scaling_workload(&m, t, OPS));
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_single_thread, bench_scaling);
criterion_main!(benches);
