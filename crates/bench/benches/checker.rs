//! Tooling benchmark — throughput of the verification substrate
//! itself: the strong-linearizability checker on the canonical
//! positive (Theorem 5) and negative (AGM stack) scenarios, the
//! memoization ablation on the PR-4 canonical keys (E24: sound
//! equality-checked DAG vs tree), the batch corpus driver (E25), and
//! the plain linearizability checker on generated histories.

use criterion::{criterion_group, criterion_main, Criterion};
use sl2_core::baselines::agm_stack::AgmStackAlg;
use sl2_core::machines::max_register::MaxRegAlg;
use sl2_core::machines::readable_ts::ReadableTasAlg;
use sl2_exec::corpus::{CorpusOptions, ScenarioCorpus};
use sl2_exec::sched::{run, CrashPlan, RandomSched, Scenario};
use sl2_exec::strong::{check_strong, check_strong_with, StrongOptions};
use sl2_exec::{is_linearizable, SimMemory};
use sl2_sharded::{fan_in_max_scenario, frontier_safe_max_scenario, ShardedMaxRegAlg};
use sl2_spec::fifo::{StackOp, StackSpec};
use sl2_spec::max_register::{MaxOp, MaxRegisterSpec};
use sl2_spec::tas::{ReadableTasSpec, TasOp};
use std::hint::black_box;

fn bench_strong_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("strong_checker");
    group.sample_size(10);
    group.bench_function("thm5_verify", |b| {
        let scenario = Scenario::new(vec![
            vec![TasOp::TestAndSet],
            vec![TasOp::TestAndSet],
            vec![TasOp::Read, TasOp::Read],
        ]);
        b.iter(|| {
            let mut mem = SimMemory::new();
            let alg = ReadableTasAlg::new(&mut mem);
            black_box(check_strong(&alg, mem, &scenario, 8_000_000))
        });
    });
    group.bench_function("agm_refute", |b| {
        let scenario = Scenario::new(vec![
            vec![StackOp::Push(1)],
            vec![StackOp::Push(2)],
            vec![StackOp::Pop, StackOp::Pop],
        ]);
        b.iter(|| {
            let mut mem = SimMemory::new();
            let alg = AgmStackAlg::new(&mut mem);
            black_box(check_strong(&alg, mem, &scenario, 16_000_000))
        });
    });
    group.finish();
}

/// Ablation of the checker's state-hashing DAG (DESIGN.md §5): the
/// same verification with memoization disabled re-explores every
/// execution-tree join. The separation grows with scenario size; the
/// printed `nodes` counts quantify it (wall time follows).
fn bench_memoization_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("strong_checker_ablation");
    group.sample_size(10);
    let scenarios: Vec<(&str, Scenario<ReadableTasSpec>)> = vec![
        (
            "4ops",
            Scenario::new(vec![
                vec![TasOp::TestAndSet],
                vec![TasOp::TestAndSet],
                vec![TasOp::Read, TasOp::Read],
            ]),
        ),
        (
            "5ops",
            Scenario::new(vec![
                vec![TasOp::TestAndSet, TasOp::Read],
                vec![TasOp::TestAndSet],
                vec![TasOp::Read, TasOp::Read],
            ]),
        ),
        (
            "6ops",
            Scenario::new(vec![
                vec![TasOp::TestAndSet, TasOp::Read],
                vec![TasOp::TestAndSet, TasOp::Read],
                vec![TasOp::TestAndSet, TasOp::Read],
            ]),
        ),
    ];
    for (name, scenario) in &scenarios {
        for memoize in [true, false] {
            let id = format!("{name}_{}", if memoize { "dag" } else { "tree" });
            group.bench_function(&id, |b| {
                b.iter(|| {
                    let mut mem = SimMemory::new();
                    let alg = ReadableTasAlg::new(&mut mem);
                    black_box(check_strong_with(
                        &alg,
                        mem,
                        scenario,
                        StrongOptions::with_limit(64_000_000).memoize(memoize),
                    ))
                });
            });
        }
        // Report the deterministic state counts once per scenario.
        let mut mem = SimMemory::new();
        let alg = ReadableTasAlg::new(&mut mem);
        let opts = |memoize| StrongOptions::with_limit(64_000_000).memoize(memoize);
        let dag = check_strong_with(&alg, mem.clone(), scenario, opts(true));
        let tree = check_strong_with(&alg, mem, scenario, opts(false));
        println!(
            "memoization ablation ({name}): dag={} states, tree={} states ({}x)",
            dag.nodes,
            tree.nodes,
            tree.nodes / dag.nodes.max(1)
        );
    }
    group.finish();
}

/// E25: checker throughput at corpus scale — the whole E23-shaped
/// batch (family enumeration, dedup, budget accounting, one
/// `check_strong` per member) measured end to end, plus the S = 4
/// sharded adjudication pair on its own. This is the number that says
/// how fast the repo can re-certify itself.
fn bench_corpus_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_throughput");
    group.sample_size(10);

    group.bench_function("thm1_families", |b| {
        b.iter(|| {
            let alphabet = [MaxOp::Write(1), MaxOp::Write(3), MaxOp::Read];
            let mut corpus = ScenarioCorpus::<MaxRegisterSpec>::new();
            corpus.symmetric_family("thm1", &[2], &alphabet, 2);
            corpus.fan_in_family("thm1", &alphabet, 2, &[MaxOp::Read]);
            black_box(corpus.run(
                |mem| MaxRegAlg::new(mem, 3),
                &CorpusOptions::default(),
                16_000_000,
            ))
        });
    });

    group.bench_function("sharded_s4_adjudication", |b| {
        b.iter(|| {
            let mut corpus = ScenarioCorpus::<MaxRegisterSpec>::new();
            corpus.push("frontier_safe", frontier_safe_max_scenario(4));
            corpus.push("fan_in", fan_in_max_scenario(4));
            black_box(corpus.run(
                |mem| ShardedMaxRegAlg::new(mem, 3, 4),
                &CorpusOptions::default(),
                16_000_000,
            ))
        });
    });

    group.finish();
}

fn bench_lin_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("lin_checker");
    // Pre-generate histories once; measure pure checking cost.
    let scenario = Scenario::new(vec![
        vec![StackOp::Push(1), StackOp::Pop],
        vec![StackOp::Push(2), StackOp::Pop],
        vec![StackOp::Pop, StackOp::Push(3)],
    ]);
    let mut histories = Vec::new();
    for seed in 0..50 {
        let mut mem = SimMemory::new();
        let alg = AgmStackAlg::new(&mut mem);
        let exec = run(
            &alg,
            mem,
            &scenario,
            &mut RandomSched::seeded(seed),
            &CrashPlan::none(3),
        );
        histories.push(exec.history);
    }
    group.bench_function("stack_6ops_x50", |b| {
        b.iter(|| {
            for h in &histories {
                black_box(is_linearizable(&StackSpec, h));
            }
        });
    });
    let scenario = Scenario::new(vec![
        vec![TasOp::TestAndSet, TasOp::Read],
        vec![TasOp::Read, TasOp::TestAndSet],
    ]);
    let mut histories = Vec::new();
    for seed in 0..50 {
        let mut mem = SimMemory::new();
        let alg = ReadableTasAlg::new(&mut mem);
        let exec = run(
            &alg,
            mem,
            &scenario,
            &mut RandomSched::seeded(seed),
            &CrashPlan::none(2),
        );
        histories.push(exec.history);
    }
    group.bench_function("tas_4ops_x50", |b| {
        b.iter(|| {
            for h in &histories {
                black_box(is_linearizable(&ReadableTasSpec, h));
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_strong_checker,
    bench_memoization_ablation,
    bench_corpus_throughput,
    bench_lin_checker
);
criterion_main!(benches);
