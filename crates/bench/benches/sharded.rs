//! Experiments E19–E21 — the sharded runtime layer under contention
//! (see EXPERIMENTS.md).
//!
//! Series reported:
//! * `sharded_write_max/*` — contended write_max makespan for the
//!   global Theorem-1 register vs `ShardedMaxRegister` at S ∈ {1, 4, 16}
//!   across 1..=16 threads (E19's scaling sweep; the ISSUE-3
//!   acceptance bar is S=16 beating global at ≥ 8 threads);
//! * `sharded_write_max_zipf/*` — the same sweep under zipf-skewed
//!   values, the regime where hot keys re-concentrate shards;
//! * `sharded_mixed/*` — write:read ratio sweep (3:1, 1:3, 1:9) so the
//!   fold-read cost side is measurable across the whole mix spectrum
//!   (the `combining` bench target answers it on the read-heavy end);
//! * `sharded_counter/*` — striped increments (E21) for the global
//!   `WideFetchInc` vs `ShardedFetchInc` at S ∈ {4, 16}, plus the
//!   exact vs relaxed read cost at a fixed shard count;
//! * `sharded_snapshot/*` — update makespan for the global Theorem-2
//!   snapshot vs lane groups of width 2, and the three scan
//!   granularities (E20's cost side);
//! * `binary_vs_unary/*` — the PR-6 lane-encoding width series (E32):
//!   write/read latency of the unary vs binary `ShardedMaxRegister` as
//!   the value bound grows past the 64·S inline ceiling, plus a
//!   contended 8-thread makespan at the widest bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sl2_bench::{parallel_duration, ratio_mix, ValueStream, ZipfStream};
use sl2_core::algos::fetch_inc::WideFetchInc;
use sl2_core::algos::max_register::SlMaxRegister;
use sl2_core::algos::snapshot::SlSnapshot;
use sl2_core::algos::{MaxRegister, Snapshot};
use sl2_sharded::{RelaxedShardedCounter, ShardedFetchInc, ShardedMaxRegister, ShardedSnapshot};
use std::hint::black_box;
use std::time::Duration;

/// Bounded values keep the unary lanes short and the comparison fair
/// (same bound as the E2 max-register bench).
const VALUE_BOUND: u64 = 64;

/// Per-thread operations per measured makespan.
const OPS: u64 = 2_000;

/// Thread counts for the scaling sweeps. 16 deliberately oversubscribes
/// small CI machines — that is the contended regime the sharding
/// exists for.
const THREADS: [usize; 5] = [1, 2, 4, 8, 16];

fn write_workload<M: MaxRegister>(m: &M, t: usize, zipf: bool) {
    let mut uniform = ValueStream::new(t as u64 + 1);
    let mut skewed = ZipfStream::new(t as u64 + 1, VALUE_BOUND);
    for _ in 0..OPS {
        let v = if zipf {
            skewed.next_value()
        } else {
            uniform.next_in(VALUE_BOUND)
        };
        m.write_max(t, v);
    }
}

/// The write:read ratio sweep the mixed group reports, over the
/// shared [`ratio_mix`] cycle driver.
fn mixed_workload<M: MaxRegister>(m: &M, t: usize, writes: u64, reads: u64) {
    let mut vals = ValueStream::new(t as u64 + 1);
    ratio_mix(
        OPS,
        writes,
        reads,
        || vals.next_in(VALUE_BOUND),
        |v| m.write_max(t, v),
        || {
            black_box(m.read_max());
        },
    );
}

fn bench_write_max(c: &mut Criterion) {
    for (group_name, zipf) in [
        ("sharded_write_max", false),
        ("sharded_write_max_zipf", true),
    ] {
        let mut group = c.benchmark_group(group_name);
        group.sample_size(10);
        for threads in THREADS {
            group.bench_with_input(
                BenchmarkId::new("global", threads),
                &threads,
                |b, &threads| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let m = SlMaxRegister::new(threads);
                            total += parallel_duration(threads, |t| write_workload(&m, t, zipf));
                        }
                        total
                    });
                },
            );
            for shards in [1usize, 4, 16] {
                group.bench_with_input(
                    BenchmarkId::new(format!("sharded_s{shards}"), threads),
                    &threads,
                    |b, &threads| {
                        b.iter_custom(|iters| {
                            let mut total = Duration::ZERO;
                            for _ in 0..iters {
                                let m = ShardedMaxRegister::new(threads, shards);
                                total +=
                                    parallel_duration(threads, |t| write_workload(&m, t, zipf));
                            }
                            total
                        });
                    },
                );
            }
        }
        group.finish();
    }
}

fn bench_mixed(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_mixed");
    group.sample_size(10);
    // Write:read ratios across the mix spectrum — 3:1 is PR 3's
    // write-heavy point, 1:9 is the read-heavy regime the combining
    // front-end targets (its win/loss crossover is only measurable if
    // the fold read's cost is charted on the same ratios).
    for (writes, reads) in [(3u64, 1u64), (1, 3), (1, 9)] {
        for threads in [4usize, 8, 16] {
            group.bench_with_input(
                BenchmarkId::new(format!("global_w{writes}r{reads}"), threads),
                &threads,
                |b, &threads| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let m = SlMaxRegister::new(threads);
                            total += parallel_duration(threads, |t| {
                                mixed_workload(&m, t, writes, reads)
                            });
                        }
                        total
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("sharded_s16_w{writes}r{reads}"), threads),
                &threads,
                |b, &threads| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let m = ShardedMaxRegister::new(threads, 16);
                            total += parallel_duration(threads, |t| {
                                mixed_workload(&m, t, writes, reads)
                            });
                        }
                        total
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_counter(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_counter");
    group.sample_size(10);
    for threads in [4usize, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("global_wide", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let c = WideFetchInc::new(threads);
                        total += parallel_duration(threads, |t| {
                            for _ in 0..OPS {
                                black_box(c.fetch_inc(t));
                            }
                        });
                    }
                    total
                });
            },
        );
        for shards in [4usize, 16] {
            group.bench_with_input(
                BenchmarkId::new(format!("sharded_s{shards}"), threads),
                &threads,
                |b, &threads| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let c = ShardedFetchInc::new(threads, shards);
                            total += parallel_duration(threads, |t| {
                                for _ in 0..OPS {
                                    black_box(c.inc(t));
                                }
                            });
                        }
                        total
                    });
                },
            );
        }
    }

    // Read-path costs at a fixed population (single-thread latency).
    group.bench_function("read_exact_s16", |b| {
        let c = ShardedFetchInc::new(4, 16);
        for i in 0..64 {
            c.inc(i % 4);
        }
        b.iter(|| black_box(c.read()));
    });
    group.bench_function("read_relaxed_s16", |b| {
        let c = RelaxedShardedCounter::new(4, 16);
        for i in 0..64 {
            c.inc(i % 4);
        }
        b.iter(|| black_box(c.read()));
    });
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_snapshot");
    group.sample_size(10);
    for threads in [4usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("update_global", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let s = SlSnapshot::new(threads);
                        total += parallel_duration(threads, |t| {
                            let mut vals = ValueStream::new(t as u64 + 1);
                            for _ in 0..OPS {
                                s.update(t, vals.next_in(VALUE_BOUND));
                            }
                        });
                    }
                    total
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("update_groups2", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let s = ShardedSnapshot::new(threads, 2);
                        total += parallel_duration(threads, |t| {
                            let mut vals = ValueStream::new(t as u64 + 1);
                            for _ in 0..OPS {
                                s.update(t, vals.next_in(VALUE_BOUND));
                            }
                        });
                    }
                    total
                });
            },
        );
    }

    // Scan granularities at a fixed population (single-thread latency).
    let s = ShardedSnapshot::new(8, 2);
    for i in 0..8 {
        s.update(i, i as u64 + 1);
    }
    group.bench_function("scan_group", |b| b.iter(|| black_box(s.scan_group(1))));
    group.bench_function("scan_stable", |b| b.iter(|| black_box(s.scan())));
    group.bench_function("scan_relaxed", |b| b.iter(|| black_box(s.scan_relaxed())));
    group.finish();
}

/// The PR-6 lane-encoding series (E32). At bound 64 both encodings are
/// inline and unary's single-faa write is hard to beat; past 64·S = 256
/// the unary shards spill to heap limbs while binary lanes stay a few
/// bits wide — the series charts exactly where the O(log v) encoding
/// starts paying for its probe-then-adjust write.
fn bench_binary_vs_unary(c: &mut Criterion) {
    let mut group = c.benchmark_group("binary_vs_unary");
    group.sample_size(10);
    const SHARDS: usize = 4;
    for bound in [64u64, 1_024, 65_536, 1_048_576] {
        for binary in [false, true] {
            let tag = if binary { "binary" } else { "unary" };
            let make = move |n: usize| {
                if binary {
                    ShardedMaxRegister::new_binary(n, SHARDS)
                } else {
                    ShardedMaxRegister::new(n, SHARDS)
                }
            };
            group.bench_with_input(
                BenchmarkId::new(format!("write_{tag}"), bound),
                &bound,
                |b, &bound| {
                    let m = make(4);
                    let mut vals = ValueStream::new(7);
                    b.iter(|| m.write_max(0, vals.next_in(bound)));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("read_{tag}"), bound),
                &bound,
                |b, &bound| {
                    let m = make(4);
                    for p in 0..4 {
                        m.write_max(p, bound - 1 - p as u64);
                    }
                    b.iter(|| black_box(m.read_max()));
                },
            );
        }
    }
    // Contended makespan at the widest bound: 8 writer threads, values
    // far past the unary inline ceiling.
    for binary in [false, true] {
        let tag = if binary { "binary" } else { "unary" };
        group.bench_function(format!("contended8_{tag}/1048576"), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let m = if binary {
                        ShardedMaxRegister::new_binary(8, SHARDS)
                    } else {
                        ShardedMaxRegister::new(8, SHARDS)
                    };
                    total += parallel_duration(8, |t| {
                        let mut vals = ValueStream::new(t as u64 + 1);
                        for _ in 0..200 {
                            m.write_max(t, vals.next_in(1_048_576));
                        }
                    });
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_write_max,
    bench_mixed,
    bench_counter,
    bench_snapshot,
    bench_binary_vs_unary
);
criterion_main!(benches);
