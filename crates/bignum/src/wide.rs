//! [`WideFaa`]: an atomic fetch&add register holding a [`BigNat`].
//!
//! The paper's Section 3 constructions assume a hardware `fetch&add` on a
//! register of unbounded width (the Discussion acknowledges the values
//! stored are "extremely large"). No hardware provides that, so this is a
//! **documented substitution** (see DESIGN.md §2 and §9): a 128-bit
//! atomic cell carries the value while it is small — which is every
//! tier-1 scenario — and an unbounded [`BigNat`] behind a spinlock takes
//! over once the value outgrows the cell. What the algorithms require of
//! the base object is only that every operation takes effect atomically
//! at one instant between its invocation and response; both regimes
//! provide that (DESIGN.md §9 gives the linearization-point argument).
//!
//! # The two regimes and the migration tag
//!
//! * **Inline (lock-free).** On x86_64 with `cmpxchg16b` (runtime
//!   detected), values below 2^127 live directly in an [`Atomic128`]
//!   and every operation is a DWCAS retry loop: read the cell, compute
//!   the new value, `cmpxchg16b` it in. The successful CAS is the
//!   single linearization point; no lock is ever touched, so a stalled
//!   thread cannot block others (lock-freedom: some CAS wins every
//!   round). Reads are one `cmpxchg16b` seeded with a relaxed guess.
//! * **Heap (locked).** Bit 127 of the cell is the **migration tag**.
//!   When an add would carry into it (or a heap-sized operand arrives),
//!   the operation takes the spinlock, CASes the tag into the cell, and
//!   publishes the displaced value into the heap slot *while still
//!   holding the lock* — any thread that observes the tag serializes
//!   behind that same lock, so the heap value is visible before anyone
//!   reads it. The tag is one-way: once set, every later operation
//!   routes to the locked slow path, exactly the old spinlock design.
//!
//! Non-x86_64 targets, CPUs without `cmpxchg16b`, and builds with the
//! `force_spinlock` feature construct every register pre-tagged, so the
//! whole object degrades to the previous spinlock-protected `BigNat` —
//! same results, bit for bit, which the differential stress suite
//! checks by running seeded workloads against both in one binary (see
//! [`WideFaa::with_value_spinlocked`]).
//!
//! # Hot-path design
//!
//! The inline regime is allocation-free end to end: the cell is a
//! `u128`, decode probes run on a borrowed inline `BigNat` built on the
//! stack, and the `_with` entry points ([`WideFaa::read_with`],
//! [`WideFaa::fetch_add_with`], [`WideFaa::fetch_adjust_with`]) hand
//! the §3 algorithms a *borrowed* view of the snapshot, so a probing
//! `fetch&add(R, 0)` decodes lanes without materializing anything
//! (experiment E12's `faa_at_width` series, E30's contended sweep).

use std::cell::UnsafeCell;

use crate::cell::RawSpin;
use crate::{Atomic128, BigNat, Layout};

/// Bit 127 of the cell: set exactly when the value has migrated to the
/// heap slot. Inline values are therefore capped at 2^127 − 1, which
/// still covers every small-value fast path the §3 algorithms care
/// about (the old spinlock design capped *allocation-freedom* at 2^128
/// with the same order of magnitude).
const MIGRATED: u128 = 1 << 127;

#[inline]
const fn is_tagged(v: u128) -> bool {
    v & MIGRATED != 0
}

/// An atomic wide fetch&add register.
///
/// # Examples
///
/// ```
/// use sl2_bignum::{BigNat, WideFaa};
///
/// let r = WideFaa::new();
/// let old = r.fetch_add(&BigNat::pow2(100));
/// assert!(old.is_zero());
/// assert_eq!(r.load(), BigNat::pow2(100));
/// ```
#[derive(Debug)]
pub struct WideFaa {
    /// Inline value while untagged; permanently `MIGRATED`-tagged once
    /// the value moves to `heap` (or from birth on fallback builds).
    cell: Atomic128,
    /// Guards `heap`. Only ever taken by tagged/migrating operations.
    lock: RawSpin,
    /// The unbounded value; meaningful only while the cell is tagged.
    heap: UnsafeCell<BigNat>,
}

// SAFETY: `heap` is only touched under `lock`, and only after the cell
// is tagged; the tag is published by a CAS and read by atomic loads, so
// the lock acquire/release edges order all heap access. The inline
// regime touches only the atomic cell.
unsafe impl Send for WideFaa {}
unsafe impl Sync for WideFaa {}

impl Default for WideFaa {
    fn default() -> Self {
        WideFaa::new()
    }
}

impl WideFaa {
    /// Creates a register initialized to zero.
    pub fn new() -> Self {
        WideFaa::with_value(BigNat::zero())
    }

    /// Creates a register with the given initial value. Starts in the
    /// lock-free inline regime when the backend supports it and `v`
    /// fits below 2^127; otherwise starts migrated.
    pub fn with_value(v: BigNat) -> Self {
        if Atomic128::is_lock_free() {
            if let Some(x) = v.to_u128() {
                if !is_tagged(x) {
                    return WideFaa {
                        cell: Atomic128::new(x),
                        lock: RawSpin::new(),
                        heap: UnsafeCell::new(BigNat::zero()),
                    };
                }
            }
        }
        WideFaa {
            cell: Atomic128::new(MIGRATED),
            lock: RawSpin::new(),
            heap: UnsafeCell::new(v),
        }
    }

    /// Creates a register that routes **every** operation through the
    /// spinlocked slow path, even where the lock-free backend exists —
    /// the pre-PR-6 behavior. This is the ablation arm: the E30 bench
    /// sweep and the differential stress tests run identical workloads
    /// against a lock-free register and a spinlocked twin in the same
    /// binary and require bit-identical results.
    pub fn with_value_spinlocked(v: BigNat) -> Self {
        WideFaa {
            cell: Atomic128::new(MIGRATED),
            lock: RawSpin::new(),
            heap: UnsafeCell::new(v),
        }
    }

    /// True while operations on this register take the lock-free DWCAS
    /// path: the backend exists and the value has not migrated. Once
    /// false it stays false (migration is one-way).
    pub fn is_inline_lock_free(&self) -> bool {
        Atomic128::is_lock_free() && !is_tagged(self.cell.load())
    }

    /// Whether this build + CPU has the lock-free 128-bit backend at
    /// all (false on non-x86_64, under `force_spinlock`, or without
    /// `cmpxchg16b`).
    pub fn backend_lock_free() -> bool {
        Atomic128::is_lock_free()
    }

    /// Runs `f` with exclusive access to the heap value. Callers must
    /// have observed the migration tag (or constructed the register
    /// pre-tagged): the tag is permanent, and the migrating writer
    /// publishes the heap value before releasing this same lock, so the
    /// borrow below always sees the current value.
    #[cold]
    fn slow_locked<R>(&self, f: impl FnOnce(&mut BigNat) -> R) -> R {
        let _guard = self.lock.acquire();
        // Chaos: a panic here unwinds through `_guard`, whose Drop
        // releases the lock — the unwind-safety the regression tests
        // pin. A crash-stop here deadlocks this register (heap regime
        // serializes on the lock; ROADMAP item 5, DESIGN.md §10).
        sl2_chaos::point("wfaa.spin.critical");
        debug_assert!(is_tagged(self.cell.load()), "slow path on inline value");
        // SAFETY: the spinlock guarantees exclusive access for the
        // guard's lifetime; the reference does not escape `f`.
        f(unsafe { &mut *self.heap.get() })
    }

    /// Migrates the inline value to the heap slot (if some other thread
    /// has not already done so) and runs `f` on it under the lock.
    ///
    /// Inline operations keep succeeding on the cell until the tag CAS
    /// lands — the retry loop re-reads the displaced value each time —
    /// so migration never loses concurrent updates; and because the
    /// heap store happens while the lock is held, every tagged reader
    /// (which must take this lock) sees it.
    #[cold]
    fn migrate_and<R>(&self, f: impl FnOnce(&mut BigNat) -> R) -> R {
        let _guard = self.lock.acquire();
        sl2_chaos::point("wfaa.migrate");
        sl2_obs::count("faa.migrate");
        // Attribute the inline→heap regime change to the request that
        // forced it (ambient span; 0 outside the service tier).
        sl2_trace::event("faa.migrate", 0);
        let mut cur = self.cell.load();
        while !is_tagged(cur) {
            match self.cell.compare_exchange(cur, MIGRATED) {
                Ok(prev) => {
                    // SAFETY: lock held; no reader dereferences `heap`
                    // without first seeing the tag and taking the lock.
                    unsafe { *self.heap.get() = BigNat::from(prev) };
                    break;
                }
                Err(actual) => cur = actual,
            }
        }
        // SAFETY: as in `slow_locked`.
        f(unsafe { &mut *self.heap.get() })
    }

    /// Atomically adds `delta` and returns `f` applied to the
    /// **previous** value, borrowed at the linearization instant. This
    /// is the zero-copy form of `fetch&add`: the §3 algorithms only
    /// ever *decode* the returned snapshot, so handing them a borrow
    /// makes the probe allocation-free at every register width.
    ///
    /// On the inline path `f` runs after the winning DWCAS, on a
    /// stack-built copy of the pre-add value — no lock is held. On the
    /// migrated path `f` runs inside the critical section; keep it to
    /// the short decode work the §3 algorithms need.
    #[inline]
    pub fn fetch_add_with<R>(&self, delta: &BigNat, f: impl FnOnce(&BigNat) -> R) -> R {
        if Atomic128::is_lock_free() {
            match delta.to_u128() {
                Some(d) => {
                    // Seed with a relaxed guess: a torn guess costs one
                    // failed CAS (which returns the untorn value) and
                    // can never be *acted* on — the tag and overflow
                    // branches below re-read atomically before
                    // committing to a slow path.
                    let mut cur = self.cell.guess();
                    let mut confirmed = false;
                    loop {
                        sl2_chaos::point("wfaa.pre_cas");
                        // A tagged value is definitive even from a torn
                        // guess: the tag lives in the hi half, which
                        // `guess` loads atomically, and migration is
                        // one-way — no confirming DWCAS needed before
                        // falling through to the lock.
                        if is_tagged(cur) {
                            break;
                        }
                        match cur.checked_add(d).filter(|n| !is_tagged(*n)) {
                            Some(new) => match self.cell.compare_exchange(cur, new) {
                                Ok(prev) => return f(&BigNat::from(prev)),
                                Err(actual) => {
                                    sl2_obs::count("faa.dwcas_retry");
                                    sl2_trace::event("faa.dwcas_retry", actual as u64);
                                    cur = actual;
                                    confirmed = true;
                                }
                            },
                            None => {
                                if !confirmed {
                                    sl2_obs::count("faa.guess_miss");
                                    cur = self.cell.load();
                                    confirmed = true;
                                    continue;
                                }
                                // Genuine carry into the tag bit.
                                return self.migrate_and(|v| {
                                    let out = f(v);
                                    *v += delta;
                                    out
                                });
                            }
                        }
                    }
                }
                None => {
                    // Heap-sized delta: the result cannot stay inline.
                    return self.migrate_and(|v| {
                        let out = f(v);
                        *v += delta;
                        out
                    });
                }
            }
        }
        self.slow_locked(|v| {
            let out = f(v);
            *v += delta;
            out
        })
    }

    /// Atomically adds `delta`, returning the **previous** value.
    ///
    /// Allocation-free while both the register and `delta` fit the
    /// inline representation (the returned snapshot is an inline
    /// `BigNat` built on the stack); on the heap path the old value is
    /// cloned once (it must be returned) and the add happens in place.
    /// Callers that only need a *projection* of the previous value
    /// should use [`WideFaa::fetch_add_with`] instead, which never
    /// clones.
    #[inline]
    pub fn fetch_add(&self, delta: &BigNat) -> BigNat {
        self.fetch_add_with(delta, |v| v.clone())
    }

    /// Atomically adds `delta`, discarding the previous value — the
    /// write-only half of the §3.1 `writeMax` step 2, with no clone at
    /// any width.
    #[inline]
    pub fn add(&self, delta: &BigNat) {
        self.fetch_add_with(delta, |_| ());
    }

    /// Atomically applies `+pos − neg` in one step and returns `f`
    /// applied to the **previous** value, borrowed at the linearization
    /// instant (the zero-copy form of [`WideFaa::fetch_adjust`]). This
    /// is the signed `fetch&add(R, posAdj − negAdj)` of §3.2.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative (the §3 algorithms never
    /// let this happen: a process only clears bits it previously set).
    /// The register is left unchanged (`f` has already run by then, as
    /// in the eager `fetch_adjust`).
    #[inline]
    pub fn fetch_adjust_with<R>(
        &self,
        pos: &BigNat,
        neg: &BigNat,
        f: impl FnOnce(&BigNat) -> R,
    ) -> R {
        if Atomic128::is_lock_free() {
            if let (Some(p), Some(n)) = (pos.to_u128(), neg.to_u128()) {
                let mut cur = self.cell.guess();
                let mut confirmed = false;
                loop {
                    sl2_chaos::point("wfaa.pre_cas");
                    // Tagged guesses are definitive (atomic hi-half
                    // load + one-way migration), as in `fetch_add_with`.
                    if is_tagged(cur) {
                        break;
                    }
                    let next = if p >= n {
                        cur.checked_add(p - n).filter(|x| !is_tagged(*x))
                    } else {
                        cur.checked_sub(n - p)
                    };
                    match next {
                        Some(new) => match self.cell.compare_exchange(cur, new) {
                            Ok(prev) => return f(&BigNat::from(prev)),
                            Err(actual) => {
                                sl2_obs::count("faa.dwcas_retry");
                                sl2_trace::event("faa.dwcas_retry", actual as u64);
                                cur = actual;
                                confirmed = true;
                            }
                        },
                        None => {
                            if !confirmed {
                                sl2_obs::count("faa.guess_miss");
                                cur = self.cell.load();
                                confirmed = true;
                                continue;
                            }
                            if p >= n {
                                // Carry into the tag bit: go unbounded.
                                return self.migrate_and(|v| {
                                    let out = f(v);
                                    v.adjust_in_place(pos, neg);
                                    out
                                });
                            }
                            // Underflow: same contract as the locked
                            // path — `f` observes the value, then the
                            // register is left unchanged (no CAS has
                            // been attempted with this `cur`).
                            let out = f(&BigNat::from(cur));
                            drop(out);
                            panic!("fetch&add adjustment drove the register negative");
                        }
                    }
                }
            } else {
                return self.migrate_and(|v| {
                    let out = f(v);
                    v.adjust_in_place(pos, neg);
                    out
                });
            }
        }
        self.slow_locked(|v| {
            let out = f(v);
            v.adjust_in_place(pos, neg);
            out
        })
    }

    /// Atomically applies `+pos − neg` in one step, returning the
    /// previous value.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative (the §3 algorithms never
    /// let this happen: a process only clears bits it previously set).
    /// The register is left unchanged.
    #[inline]
    pub fn fetch_adjust(&self, pos: &BigNat, neg: &BigNat) -> BigNat {
        self.fetch_adjust_with(pos, neg, |v| v.clone())
    }

    /// Atomically applies `+pos − neg`, discarding the previous value —
    /// the write-only half of the §3.2 `update` step 2.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative; the register is left
    /// unchanged.
    #[inline]
    pub fn adjust(&self, pos: &BigNat, neg: &BigNat) {
        self.fetch_adjust_with(pos, neg, |_| ());
    }

    /// Runs `f` on a borrow of the current value — a `fetch&add(R, 0)`
    /// probe that never materializes a snapshot. This is the read entry
    /// point the §3 production algorithms use for `readMax`/`scan`/
    /// recovery probes.
    ///
    /// While the register is inline this is **lock-free**: one
    /// `cmpxchg16b` captures an untorn snapshot and `f` runs on a
    /// stack-built borrow with no lock held (ISSUE 6's small fix — the
    /// old design took the spinlock even for reads). On the migrated
    /// path `f` runs under the lock; keep it to short decode work.
    #[inline]
    pub fn read_with<R>(&self, f: impl FnOnce(&BigNat) -> R) -> R {
        if Atomic128::is_lock_free() {
            // A tagged guess routes straight to the lock (the hi half
            // is loaded atomically and migration is one-way — see
            // `fetch_add_with`); otherwise the guess seeds one DWCAS
            // that captures the untorn snapshot, re-checking the tag
            // that may have landed since.
            let guess = self.cell.guess();
            sl2_chaos::point("wfaa.read.pre_cas");
            if !is_tagged(guess) {
                let cur = match self.cell.compare_exchange(guess, guess) {
                    Ok(v) | Err(v) => v,
                };
                if !is_tagged(cur) {
                    return f(&BigNat::from(cur));
                }
            }
        }
        self.slow_locked(|v| f(v))
    }

    /// Reads the current value. Equivalent to `fetch_add(0)`, which is
    /// how the paper's algorithms read the register. Prefer
    /// [`WideFaa::read_with`] when only a decoded projection is needed.
    #[inline]
    pub fn load(&self) -> BigNat {
        self.read_with(|v| v.clone())
    }

    /// Decodes process `i`'s unary lane — the §3.1 recovery probe
    /// (`fetch&add(R, 0)` then count own-lane bits) as a single
    /// allocation-free entry point, lock-free while inline.
    #[inline]
    pub fn probe_unary(&self, layout: &Layout, i: usize) -> u64 {
        self.read_with(|v| layout.decode_unary(i, v))
    }

    /// Current width of the stored value in bits — the quantity tracked
    /// by experiment E12 ("extremely large values", Discussion section).
    /// Lock-free while inline.
    pub fn bit_len(&self) -> usize {
        self.read_with(|v| v.bit_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fetch_add_returns_previous() {
        let r = WideFaa::new();
        assert!(r.fetch_add(&BigNat::from(5u64)).is_zero());
        assert_eq!(r.fetch_add(&BigNat::from(7u64)), BigNat::from(5u64));
        assert_eq!(r.load(), BigNat::from(12u64));
    }

    #[test]
    fn fetch_add_zero_is_read() {
        let r = WideFaa::with_value(BigNat::pow2(99));
        assert_eq!(r.fetch_add(&BigNat::zero()), BigNat::pow2(99));
        assert_eq!(r.load(), BigNat::pow2(99));
    }

    #[test]
    fn fetch_adjust_moves_bits() {
        let r = WideFaa::with_value(BigNat::from(0b1010u64));
        let old = r.fetch_adjust(&BigNat::from(0b0001u64), &BigNat::from(0b1000u64));
        assert_eq!(old, BigNat::from(0b1010u64));
        assert_eq!(r.load(), BigNat::from(0b0011u64));
    }

    #[test]
    fn borrowed_forms_match_eager_forms() {
        let r = WideFaa::with_value(BigNat::from(0b1010u64));
        assert_eq!(r.read_with(|v| v.count_ones()), 2);
        let ones = r.fetch_add_with(&BigNat::from(0b0100u64), |old| old.count_ones());
        assert_eq!(ones, 2, "f sees the pre-add value");
        assert_eq!(r.load(), BigNat::from(0b1110u64));
        let bits = r.fetch_adjust_with(&BigNat::from(1u64), &BigNat::from(0b1000u64), |old| {
            old.bit_len()
        });
        assert_eq!(bits, 4, "f sees the pre-adjust value");
        assert_eq!(r.load(), BigNat::from(0b0111u64));
    }

    #[test]
    fn write_only_forms_apply() {
        let r = WideFaa::new();
        r.add(&BigNat::from(6u64));
        r.adjust(&BigNat::from(1u64), &BigNat::from(4u64));
        assert_eq!(r.load(), BigNat::from(3u64));
    }

    #[test]
    fn probe_unary_decodes_a_lane() {
        let layout = Layout::new(3);
        let r = WideFaa::new();
        r.add(&layout.unary_increment(1, 0, 4));
        assert_eq!(r.probe_unary(&layout, 1), 4);
        assert_eq!(r.probe_unary(&layout, 0), 0);
    }

    #[test]
    fn failed_adjust_leaves_register_intact() {
        let r = WideFaa::with_value(BigNat::from(0b10u64));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.adjust(&BigNat::zero(), &BigNat::from(0b100u64));
        }));
        assert!(err.is_err());
        // Any lock must have been released and the value preserved.
        assert_eq!(r.load(), BigNat::from(0b10u64));
        r.add(&BigNat::one());
        assert_eq!(r.load(), BigNat::from(0b11u64));
    }

    #[test]
    fn failed_adjust_on_spinlocked_twin_leaves_register_intact() {
        let r = WideFaa::with_value_spinlocked(BigNat::from(0b10u64));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.adjust(&BigNat::zero(), &BigNat::from(0b100u64));
        }));
        assert!(err.is_err());
        assert_eq!(r.load(), BigNat::from(0b10u64));
        r.add(&BigNat::one());
        assert_eq!(r.load(), BigNat::from(0b11u64));
    }

    #[test]
    fn small_registers_are_lock_free_where_the_backend_exists() {
        let r = WideFaa::with_value(BigNat::pow2(100));
        assert_eq!(r.is_inline_lock_free(), WideFaa::backend_lock_free());
        // Reads and small adds must not migrate.
        let _ = r.load();
        let _ = r.bit_len();
        r.add(&BigNat::one());
        assert_eq!(r.is_inline_lock_free(), WideFaa::backend_lock_free());
        // The spinlocked twin is never lock-free.
        let s = WideFaa::with_value_spinlocked(BigNat::zero());
        assert!(!s.is_inline_lock_free());
    }

    #[test]
    fn values_at_or_past_the_tag_bit_start_migrated_and_work() {
        for bits in [127usize, 128, 200] {
            let r = WideFaa::with_value(BigNat::pow2(bits));
            assert!(!r.is_inline_lock_free());
            assert_eq!(r.bit_len(), bits + 1);
            assert_eq!(r.fetch_add(&BigNat::one()), BigNat::pow2(bits));
            let mut want = BigNat::pow2(bits);
            want += &BigNat::one();
            assert_eq!(r.load(), want);
        }
    }

    #[test]
    fn overflow_past_the_tag_bit_migrates_once_and_stays_correct() {
        // 2^126 + 2^126 carries into bit 127 (the tag): the add must
        // migrate, produce the exact sum, and keep working afterwards.
        let r = WideFaa::with_value(BigNat::pow2(126));
        let was_lock_free = r.is_inline_lock_free();
        let old = r.fetch_add(&BigNat::pow2(126));
        assert_eq!(old, BigNat::pow2(126));
        assert_eq!(r.load(), BigNat::pow2(127));
        if was_lock_free {
            assert!(!r.is_inline_lock_free(), "migration is one-way");
        }
        r.add(&BigNat::one());
        let mut want = BigNat::pow2(127);
        want += &BigNat::one();
        assert_eq!(r.load(), want);
        // And the adjust path keeps its semantics on the migrated side.
        let prev = r.fetch_adjust(&BigNat::zero(), &BigNat::one());
        assert_eq!(prev, want);
        assert_eq!(r.load(), BigNat::pow2(127));
    }

    #[test]
    fn heap_sized_operands_migrate_inline_registers() {
        let r = WideFaa::with_value(BigNat::from(5u64));
        let old = r.fetch_add(&BigNat::pow2(300));
        assert_eq!(old, BigNat::from(5u64));
        assert_eq!(r.bit_len(), 301);
        let mut want = BigNat::pow2(300);
        want += &BigNat::from(5u64);
        assert_eq!(r.load(), want);
    }

    #[test]
    fn spinlocked_twin_matches_lock_free_register_on_a_script() {
        // A deterministic single-threaded script must land both
        // registers on identical values step for step.
        let a = WideFaa::new();
        let b = WideFaa::with_value_spinlocked(BigNat::zero());
        let layout = Layout::new(4);
        for step in 0..200u64 {
            let p = (step % 4) as usize;
            let old = layout.decode_unary(p, &a.load());
            let inc = layout.unary_increment(p, old, old + 1);
            a.add(&inc);
            b.add(&inc);
            assert_eq!(a.load(), b.load(), "diverged at step {step}");
            assert_eq!(a.probe_unary(&layout, p), b.probe_unary(&layout, p));
        }
    }

    #[test]
    fn panic_inside_the_locked_closure_releases_the_spinlock() {
        // The caller's closure runs *inside* the spinlock critical
        // section on the migrated path (and on every path of the
        // spinlocked twin): an unwinding panic must release the lock
        // through SpinGuard's Drop, or every other thread spins
        // forever. Regression for the ISSUE-7 hardening audit.
        for reg in [
            WideFaa::with_value(BigNat::pow2(130)),
            WideFaa::with_value_spinlocked(BigNat::pow2(130)),
        ] {
            let r = Arc::new(reg);
            std::thread::scope(|s| {
                let victim = Arc::clone(&r);
                s.spawn(move || {
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        victim.fetch_add_with(&BigNat::one(), |_| -> () {
                            panic!("injected: panic inside the critical section")
                        })
                    }));
                    assert!(out.is_err(), "the injected panic must propagate");
                });
                for _ in 0..4 {
                    let r = Arc::clone(&r);
                    s.spawn(move || {
                        for _ in 0..100 {
                            r.fetch_add_with(&BigNat::one(), |_| ());
                        }
                    });
                }
            });
            // The panicking add aborted before its store (`f` runs
            // first in the critical section); all 400 survivor
            // increments landed.
            let mut want = BigNat::pow2(130);
            want += &BigNat::from(400u64);
            assert_eq!(r.load(), want);
        }
    }

    #[test]
    fn concurrent_fetch_adds_all_land() {
        // Each of 8 threads adds 2^(k) for distinct k 1000 times; the sum
        // is exact iff no increment was lost.
        let r = Arc::new(WideFaa::new());
        std::thread::scope(|s| {
            for t in 0..8usize {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    let delta = BigNat::pow2(t * 70);
                    for _ in 0..1000 {
                        r.fetch_add(&delta);
                    }
                });
            }
        });
        let v = r.load();
        for t in 0..8usize {
            // lane value = 1000 = 0b1111101000 shifted into position
            let mut expect = BigNat::zero();
            for bit in 0..10 {
                if (1000u64 >> bit) & 1 == 1 {
                    expect.set_bit(t * 70 + bit, true);
                }
            }
            let mut mask = BigNat::zero();
            for bit in 0..10 {
                mask.set_bit(t * 70 + bit, true);
            }
            // extract the 10 bits of lane t
            let mut got = BigNat::zero();
            for b in v.one_bits() {
                if b >= t * 70 && b < t * 70 + 10 {
                    got.set_bit(b, true);
                }
            }
            assert_eq!(got, expect, "thread {t} lane");
        }
    }

    #[test]
    fn concurrent_mixed_borrowed_and_eager_ops() {
        // Writers use the in-place/borrowed forms; readers use both
        // load() and read_with(); the final sum must still be exact.
        let r = Arc::new(WideFaa::new());
        std::thread::scope(|s| {
            for t in 0..4usize {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    let delta = BigNat::pow2(t * 40);
                    for i in 0..500 {
                        if i % 2 == 0 {
                            r.add(&delta);
                        } else {
                            let _ = r.fetch_add_with(&delta, |old| old.bit_len());
                        }
                    }
                });
            }
            let r2 = Arc::clone(&r);
            s.spawn(move || {
                // The register value only ever grows (adds, no clears),
                // so its bit length is monotone; popcount is NOT (a
                // carry can clear more bits than it sets).
                let mut last = 0;
                for _ in 0..200 {
                    let bits = r2.read_with(|v| v.bit_len());
                    assert!(bits >= last, "register width regressed");
                    last = bits;
                }
            });
        });
        // 500 = 0b111110100; each lane holds 500 in binary at t*40.
        for t in 0..4usize {
            let lane: usize = r
                .load()
                .one_bits()
                .filter(|&b| b >= t * 40 && b < t * 40 + 10)
                .map(|b| 1usize << (b - t * 40))
                .sum();
            assert_eq!(lane, 500, "thread {t} lane");
        }
    }

    #[test]
    fn bit_len_tracks_growth() {
        let r = WideFaa::new();
        assert_eq!(r.bit_len(), 0);
        r.fetch_add(&BigNat::pow2(1234));
        assert_eq!(r.bit_len(), 1235);
    }
}
