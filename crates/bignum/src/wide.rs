//! [`WideFaa`]: an atomic fetch&add register holding a [`BigNat`].
//!
//! The paper's Section 3 constructions assume a hardware `fetch&add` on a
//! register of unbounded width (the Discussion acknowledges the values
//! stored are "extremely large"). No hardware provides that, so this is a
//! **documented substitution** (see DESIGN.md §2): the register is a
//! [`parking_lot::Mutex`]`<BigNat>` and each operation is a single
//! critical section. What the algorithms require of the base object is
//! only that every operation takes effect atomically at one instant
//! between its invocation and response — which a mutex-protected
//! read-modify-write provides. The critical sections are short
//! (limb-vector add/sub) and the lock is never held across user code, so
//! the progress properties observed by callers match a (slow) hardware
//! fetch&add rather than a lock-based algorithm in the paper's sense.

use parking_lot::Mutex;

use crate::BigNat;

/// An atomic wide fetch&add register.
///
/// # Examples
///
/// ```
/// use sl2_bignum::{BigNat, WideFaa};
///
/// let r = WideFaa::new();
/// let old = r.fetch_add(&BigNat::pow2(100));
/// assert!(old.is_zero());
/// assert_eq!(r.load(), BigNat::pow2(100));
/// ```
#[derive(Debug, Default)]
pub struct WideFaa {
    value: Mutex<BigNat>,
}

impl WideFaa {
    /// Creates a register initialized to zero.
    pub fn new() -> Self {
        WideFaa::default()
    }

    /// Creates a register with the given initial value.
    pub fn with_value(v: BigNat) -> Self {
        WideFaa {
            value: Mutex::new(v),
        }
    }

    /// Atomically adds `delta`, returning the **previous** value.
    pub fn fetch_add(&self, delta: &BigNat) -> BigNat {
        let mut guard = self.value.lock();
        let old = guard.clone();
        *guard = &old + delta;
        old
    }

    /// Atomically applies `+pos − neg` in one step, returning the
    /// previous value. This is the signed `fetch&add(R, posAdj − negAdj)`
    /// of §3.2.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative (the §3 algorithms never
    /// let this happen: a process only clears bits it previously set).
    pub fn fetch_adjust(&self, pos: &BigNat, neg: &BigNat) -> BigNat {
        let mut guard = self.value.lock();
        let old = guard.clone();
        *guard = old.apply_adjustment(pos, neg);
        old
    }

    /// Reads the current value. Equivalent to `fetch_add(0)`, which is
    /// how the paper's algorithms read the register.
    pub fn load(&self) -> BigNat {
        self.value.lock().clone()
    }

    /// Current width of the stored value in bits — the quantity tracked
    /// by experiment E12 ("extremely large values", Discussion section).
    pub fn bit_len(&self) -> usize {
        self.value.lock().bit_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fetch_add_returns_previous() {
        let r = WideFaa::new();
        assert!(r.fetch_add(&BigNat::from(5u64)).is_zero());
        assert_eq!(r.fetch_add(&BigNat::from(7u64)), BigNat::from(5u64));
        assert_eq!(r.load(), BigNat::from(12u64));
    }

    #[test]
    fn fetch_add_zero_is_read() {
        let r = WideFaa::with_value(BigNat::pow2(99));
        assert_eq!(r.fetch_add(&BigNat::zero()), BigNat::pow2(99));
        assert_eq!(r.load(), BigNat::pow2(99));
    }

    #[test]
    fn fetch_adjust_moves_bits() {
        let r = WideFaa::with_value(BigNat::from(0b1010u64));
        let old = r.fetch_adjust(&BigNat::from(0b0001u64), &BigNat::from(0b1000u64));
        assert_eq!(old, BigNat::from(0b1010u64));
        assert_eq!(r.load(), BigNat::from(0b0011u64));
    }

    #[test]
    fn concurrent_fetch_adds_all_land() {
        // Each of 8 threads adds 2^(k) for distinct k 1000 times; the sum
        // is exact iff no increment was lost.
        let r = Arc::new(WideFaa::new());
        std::thread::scope(|s| {
            for t in 0..8usize {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    let delta = BigNat::pow2(t * 70);
                    for _ in 0..1000 {
                        r.fetch_add(&delta);
                    }
                });
            }
        });
        let v = r.load();
        for t in 0..8usize {
            // lane value = 1000 = 0b1111101000 shifted into position
            let mut expect = BigNat::zero();
            for bit in 0..10 {
                if (1000u64 >> bit) & 1 == 1 {
                    expect.set_bit(t * 70 + bit, true);
                }
            }
            let mut mask = BigNat::zero();
            for bit in 0..10 {
                mask.set_bit(t * 70 + bit, true);
            }
            // extract the 10 bits of lane t
            let mut got = BigNat::zero();
            for b in v.one_bits() {
                if b >= t * 70 && b < t * 70 + 10 {
                    got.set_bit(b, true);
                }
            }
            assert_eq!(got, expect, "thread {t} lane");
        }
    }

    #[test]
    fn bit_len_tracks_growth() {
        let r = WideFaa::new();
        assert_eq!(r.bit_len(), 0);
        r.fetch_add(&BigNat::pow2(1234));
        assert_eq!(r.bit_len(), 1235);
    }
}
