//! [`WideFaa`]: an atomic fetch&add register holding a [`BigNat`].
//!
//! The paper's Section 3 constructions assume a hardware `fetch&add` on a
//! register of unbounded width (the Discussion acknowledges the values
//! stored are "extremely large"). No hardware provides that, so this is a
//! **documented substitution** (see DESIGN.md §2): the register is a
//! spinlock-protected [`BigNat`] and each operation is a single critical
//! section. What the algorithms require of the base object is only that
//! every operation takes effect atomically at one instant between its
//! invocation and response — which a lock-protected read-modify-write
//! provides. The critical sections are short (an inline `u128` add in the
//! common case, limb arithmetic otherwise) and the lock is never held
//! across user code other than the short decode closures of the `_with`
//! entry points, so the progress properties observed by callers match a
//! (slow) hardware fetch&add rather than a lock-based algorithm in the
//! paper's sense.
//!
//! # Hot-path design
//!
//! The previous implementation cloned the stored value twice per
//! `fetch_add` (once for the returned snapshot, once for the new value)
//! and parked on a full mutex. Three changes make the common case — a
//! register of ≤ 128 bits, i.e. every tier-1 scenario — allocation-free
//! (experiment E12's `faa_at_width` small-width series):
//!
//! * the value uses [`BigNat`]'s inline representation, so cloning and
//!   adding are stack-only;
//! * the critical section mutates in place (`+=` / `adjust_in_place`)
//!   instead of clone-modify-store;
//! * the lock is a raw spinlock (one `compare_exchange` + one release
//!   store when uncontended) sized to the nanosecond critical sections,
//!   with a spin-then-yield slow path under contention.
//!
//! The `_with` entry points ([`WideFaa::read_with`],
//! [`WideFaa::fetch_add_with`], [`WideFaa::fetch_adjust_with`]) hand the
//! §3 algorithms a *borrowed* view of the register inside the critical
//! section, so a probing `fetch&add(R, 0)` decodes lanes without
//! materializing a snapshot of the whole register.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::{BigNat, Layout};

/// An atomic wide fetch&add register.
///
/// # Examples
///
/// ```
/// use sl2_bignum::{BigNat, WideFaa};
///
/// let r = WideFaa::new();
/// let old = r.fetch_add(&BigNat::pow2(100));
/// assert!(old.is_zero());
/// assert_eq!(r.load(), BigNat::pow2(100));
/// ```
#[derive(Debug, Default)]
pub struct WideFaa {
    lock: RawSpin,
    value: UnsafeCell<BigNat>,
}

// SAFETY: all access to `value` goes through the spinlock, which
// establishes the necessary happens-before edges (acquire on lock,
// release on unlock).
unsafe impl Send for WideFaa {}
unsafe impl Sync for WideFaa {}

impl WideFaa {
    /// Creates a register initialized to zero.
    pub fn new() -> Self {
        WideFaa::default()
    }

    /// Creates a register with the given initial value.
    pub fn with_value(v: BigNat) -> Self {
        WideFaa {
            lock: RawSpin::new(),
            value: UnsafeCell::new(v),
        }
    }

    /// Runs `f` with exclusive access to the stored value.
    #[inline]
    fn with_locked<R>(&self, f: impl FnOnce(&mut BigNat) -> R) -> R {
        let _guard = self.lock.acquire();
        // SAFETY: the spinlock guarantees exclusive access for the
        // guard's lifetime; the reference does not escape `f`.
        f(unsafe { &mut *self.value.get() })
    }

    /// Atomically adds `delta`, returning the **previous** value.
    ///
    /// Allocation-free while both the register and `delta` fit the
    /// inline 128-bit representation; on the heap path the old value is
    /// cloned once (it must be returned) and the add happens in place.
    /// Callers that only need a *projection* of the previous value
    /// should use [`WideFaa::fetch_add_with`] instead, which never
    /// clones.
    #[inline]
    pub fn fetch_add(&self, delta: &BigNat) -> BigNat {
        self.with_locked(|v| {
            let old = v.clone();
            *v += delta;
            old
        })
    }

    /// Atomically adds `delta`, discarding the previous value — the
    /// write-only half of the §3.1 `writeMax` step 2, with no clone at
    /// any width.
    #[inline]
    pub fn add(&self, delta: &BigNat) {
        self.with_locked(|v| *v += delta);
    }

    /// Atomically adds `delta` and returns `f` applied to the
    /// **previous** value, borrowed inside the critical section. This
    /// is the zero-copy form of `fetch&add`: the §3 algorithms only
    /// ever *decode* the returned snapshot, so handing them a borrow
    /// makes the probe allocation-free at every register width.
    ///
    /// `f` runs while the register lock is held; keep it to the short
    /// decode work the §3 algorithms need.
    #[inline]
    pub fn fetch_add_with<R>(&self, delta: &BigNat, f: impl FnOnce(&BigNat) -> R) -> R {
        self.with_locked(|v| {
            let out = f(v);
            *v += delta;
            out
        })
    }

    /// Atomically applies `+pos − neg` in one step, returning the
    /// previous value. This is the signed `fetch&add(R, posAdj − negAdj)`
    /// of §3.2.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative (the §3 algorithms never
    /// let this happen: a process only clears bits it previously set).
    /// The register is left unchanged.
    #[inline]
    pub fn fetch_adjust(&self, pos: &BigNat, neg: &BigNat) -> BigNat {
        self.with_locked(|v| {
            let old = v.clone();
            v.adjust_in_place(pos, neg);
            old
        })
    }

    /// Atomically applies `+pos − neg`, discarding the previous value —
    /// the write-only half of the §3.2 `update` step 2.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative; the register is left
    /// unchanged.
    #[inline]
    pub fn adjust(&self, pos: &BigNat, neg: &BigNat) {
        self.with_locked(|v| v.adjust_in_place(pos, neg));
    }

    /// Atomically applies `+pos − neg` and returns `f` applied to the
    /// **previous** value, borrowed inside the critical section (the
    /// zero-copy form of [`WideFaa::fetch_adjust`]).
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative; the register is left
    /// unchanged (`f` has already run by then, as in the eager
    /// `fetch_adjust`).
    #[inline]
    pub fn fetch_adjust_with<R>(
        &self,
        pos: &BigNat,
        neg: &BigNat,
        f: impl FnOnce(&BigNat) -> R,
    ) -> R {
        self.with_locked(|v| {
            let out = f(v);
            v.adjust_in_place(pos, neg);
            out
        })
    }

    /// Reads the current value. Equivalent to `fetch_add(0)`, which is
    /// how the paper's algorithms read the register. Prefer
    /// [`WideFaa::read_with`] when only a decoded projection is needed.
    #[inline]
    pub fn load(&self) -> BigNat {
        self.with_locked(|v| v.clone())
    }

    /// Runs `f` on a borrow of the current value inside the critical
    /// section — a `fetch&add(R, 0)` probe that never materializes a
    /// snapshot. This is the read entry point the §3 production
    /// algorithms use for `readMax`/`scan`/recovery probes.
    ///
    /// `f` runs while the register lock is held; keep it to short
    /// decode work.
    #[inline]
    pub fn read_with<R>(&self, f: impl FnOnce(&BigNat) -> R) -> R {
        self.with_locked(|v| f(v))
    }

    /// Decodes process `i`'s unary lane under the lock — the §3.1
    /// recovery probe (`fetch&add(R, 0)` then count own-lane bits) as a
    /// single allocation-free entry point.
    #[inline]
    pub fn probe_unary(&self, layout: &Layout, i: usize) -> u64 {
        self.read_with(|v| layout.decode_unary(i, v))
    }

    /// Current width of the stored value in bits — the quantity tracked
    /// by experiment E12 ("extremely large values", Discussion section).
    pub fn bit_len(&self) -> usize {
        self.with_locked(|v| v.bit_len())
    }
}

/// A minimal test-and-test-and-set spinlock. The protected critical
/// sections are a handful of nanoseconds (an inline `u128` add), so a
/// full parking mutex costs more than the work it guards; spinning with
/// a bounded hint-loop then yielding keeps the uncontended path to one
/// `compare_exchange` + one release store.
#[derive(Debug, Default)]
struct RawSpin {
    locked: AtomicBool,
}

struct SpinGuard<'a>(&'a RawSpin);

impl RawSpin {
    const fn new() -> Self {
        RawSpin {
            locked: AtomicBool::new(false),
        }
    }

    #[inline]
    fn acquire(&self) -> SpinGuard<'_> {
        if self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.acquire_slow();
        }
        SpinGuard(self)
    }

    #[cold]
    fn acquire_slow(&self) {
        let mut spins = 0u32;
        loop {
            // Test-and-test-and-set: spin on a plain load so waiters
            // don't bounce the cache line with failed RMWs.
            if !self.locked.load(Ordering::Relaxed)
                && self
                    .locked
                    .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

impl Drop for SpinGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        self.0.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fetch_add_returns_previous() {
        let r = WideFaa::new();
        assert!(r.fetch_add(&BigNat::from(5u64)).is_zero());
        assert_eq!(r.fetch_add(&BigNat::from(7u64)), BigNat::from(5u64));
        assert_eq!(r.load(), BigNat::from(12u64));
    }

    #[test]
    fn fetch_add_zero_is_read() {
        let r = WideFaa::with_value(BigNat::pow2(99));
        assert_eq!(r.fetch_add(&BigNat::zero()), BigNat::pow2(99));
        assert_eq!(r.load(), BigNat::pow2(99));
    }

    #[test]
    fn fetch_adjust_moves_bits() {
        let r = WideFaa::with_value(BigNat::from(0b1010u64));
        let old = r.fetch_adjust(&BigNat::from(0b0001u64), &BigNat::from(0b1000u64));
        assert_eq!(old, BigNat::from(0b1010u64));
        assert_eq!(r.load(), BigNat::from(0b0011u64));
    }

    #[test]
    fn borrowed_forms_match_eager_forms() {
        let r = WideFaa::with_value(BigNat::from(0b1010u64));
        assert_eq!(r.read_with(|v| v.count_ones()), 2);
        let ones = r.fetch_add_with(&BigNat::from(0b0100u64), |old| old.count_ones());
        assert_eq!(ones, 2, "f sees the pre-add value");
        assert_eq!(r.load(), BigNat::from(0b1110u64));
        let bits = r.fetch_adjust_with(&BigNat::from(1u64), &BigNat::from(0b1000u64), |old| {
            old.bit_len()
        });
        assert_eq!(bits, 4, "f sees the pre-adjust value");
        assert_eq!(r.load(), BigNat::from(0b0111u64));
    }

    #[test]
    fn write_only_forms_apply() {
        let r = WideFaa::new();
        r.add(&BigNat::from(6u64));
        r.adjust(&BigNat::from(1u64), &BigNat::from(4u64));
        assert_eq!(r.load(), BigNat::from(3u64));
    }

    #[test]
    fn probe_unary_decodes_a_lane() {
        let layout = Layout::new(3);
        let r = WideFaa::new();
        r.add(&layout.unary_increment(1, 0, 4));
        assert_eq!(r.probe_unary(&layout, 1), 4);
        assert_eq!(r.probe_unary(&layout, 0), 0);
    }

    #[test]
    fn failed_adjust_leaves_register_intact() {
        let r = WideFaa::with_value(BigNat::from(0b10u64));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.adjust(&BigNat::zero(), &BigNat::from(0b100u64));
        }));
        assert!(err.is_err());
        // The lock must have been released and the value preserved.
        assert_eq!(r.load(), BigNat::from(0b10u64));
        r.add(&BigNat::one());
        assert_eq!(r.load(), BigNat::from(0b11u64));
    }

    #[test]
    fn concurrent_fetch_adds_all_land() {
        // Each of 8 threads adds 2^(k) for distinct k 1000 times; the sum
        // is exact iff no increment was lost.
        let r = Arc::new(WideFaa::new());
        std::thread::scope(|s| {
            for t in 0..8usize {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    let delta = BigNat::pow2(t * 70);
                    for _ in 0..1000 {
                        r.fetch_add(&delta);
                    }
                });
            }
        });
        let v = r.load();
        for t in 0..8usize {
            // lane value = 1000 = 0b1111101000 shifted into position
            let mut expect = BigNat::zero();
            for bit in 0..10 {
                if (1000u64 >> bit) & 1 == 1 {
                    expect.set_bit(t * 70 + bit, true);
                }
            }
            let mut mask = BigNat::zero();
            for bit in 0..10 {
                mask.set_bit(t * 70 + bit, true);
            }
            // extract the 10 bits of lane t
            let mut got = BigNat::zero();
            for b in v.one_bits() {
                if b >= t * 70 && b < t * 70 + 10 {
                    got.set_bit(b, true);
                }
            }
            assert_eq!(got, expect, "thread {t} lane");
        }
    }

    #[test]
    fn concurrent_mixed_borrowed_and_eager_ops() {
        // Writers use the in-place/borrowed forms; readers use both
        // load() and read_with(); the final sum must still be exact.
        let r = Arc::new(WideFaa::new());
        std::thread::scope(|s| {
            for t in 0..4usize {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    let delta = BigNat::pow2(t * 40);
                    for i in 0..500 {
                        if i % 2 == 0 {
                            r.add(&delta);
                        } else {
                            let _ = r.fetch_add_with(&delta, |old| old.bit_len());
                        }
                    }
                });
            }
            let r2 = Arc::clone(&r);
            s.spawn(move || {
                // The register value only ever grows (adds, no clears),
                // so its bit length is monotone; popcount is NOT (a
                // carry can clear more bits than it sets).
                let mut last = 0;
                for _ in 0..200 {
                    let bits = r2.read_with(|v| v.bit_len());
                    assert!(bits >= last, "register width regressed");
                    last = bits;
                }
            });
        });
        // 500 = 0b111110100; each lane holds 500 in binary at t*40.
        for t in 0..4usize {
            let lane: usize = r
                .load()
                .one_bits()
                .filter(|&b| b >= t * 40 && b < t * 40 + 10)
                .map(|b| 1usize << (b - t * 40))
                .sum();
            assert_eq!(lane, 500, "thread {t} lane");
        }
    }

    #[test]
    fn bit_len_tracks_growth() {
        let r = WideFaa::new();
        assert_eq!(r.bit_len(), 0);
        r.fetch_add(&BigNat::pow2(1234));
        assert_eq!(r.bit_len(), 1235);
    }
}
