//! Arbitrary-precision naturals and the wide fetch&add register used by
//! the interleaved-bit constructions of *Strong Linearizability using
//! Primitives with Consensus Number 2* (Attiya, Castañeda, Enea; PODC
//! 2024), Section 3.
//!
//! The max-register (§3.1) and snapshot (§3.2) algorithms pack one
//! unbounded bit-string per process into a single fetch&add register by
//! interleaving bits: process `i` owns bits `i, n+i, 2n+i, ...`. This
//! crate provides:
//!
//! * [`BigNat`] — the unbounded natural numbers those registers hold,
//!   with a two-limb inline representation that keeps every value below
//!   `2^128` off the heap (the common case for realistic `n` × values);
//! * [`Layout`] — the interleaved lane codec (encode/decode/adjustments),
//!   whose decode entry points work on borrowed register images with no
//!   intermediate allocations;
//! * [`WideFaa`] — an atomic wide fetch&add register (a documented
//!   substitution for the paper's unbounded hardware register; see
//!   DESIGN.md §2) whose critical sections mutate in place and whose
//!   `*_with` entry points lend the callers a borrowed snapshot.
//!
//! # Example
//!
//! ```
//! use sl2_bignum::{BigNat, Layout, WideFaa};
//!
//! // Three processes share one register; process 2 publishes value 0b11.
//! let layout = Layout::new(3);
//! let reg = WideFaa::new();
//! let (pos, neg) = layout.adjustments(2, &BigNat::zero(), &BigNat::from(0b11u64));
//! reg.fetch_adjust(&pos, &neg);
//! let view = layout.decode_all(&reg.load());
//! assert_eq!(view[2], BigNat::from(0b11u64));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cell;
mod faa128;
mod interleave;
mod nat;
mod wide;

pub use cell::Atomic128;
pub use faa128::FetchAdd128;
pub use interleave::{BinaryLayout, LaneEncoding, Layout};
pub use nat::{BigNat, LIMB_BITS};
pub use wide::WideFaa;
