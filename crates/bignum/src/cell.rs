//! [`Atomic128`]: a 128-bit atomic cell, lock-free where the hardware
//! allows it, plus the raw spinlock shared with [`WideFaa`]'s slow
//! path.
//!
//! x86_64 has had a 16-byte compare-and-swap (`cmpxchg16b`) since the
//! first 64-bit parts, but Rust's `core::sync::atomic` does not expose
//! `AtomicU128` on stable. This module supplies the missing primitive
//! with a short inline-asm sequence, runtime-detected via CPUID and
//! compiled only on x86_64; every other target (and any build with the
//! `force_spinlock` feature, which exists so the portable path can be
//! differentially tested on hardware that would normally take the
//! lock-free path) falls back to a spinlock-protected `u128` with the
//! same API and the same single-instant atomicity guarantees, just
//! without lock-freedom.
//!
//! The consensus-number story (DESIGN.md §2, §9) is unchanged by the
//! stronger primitive: the spinlock this replaces was itself built on
//! `AtomicBool::compare_exchange`, and CAS reduces to consensus-number-2
//! primitives by Khanchandani–Wattenhofer (arXiv 1802.03844), so
//! nothing the checker certifies gets quietly easier.
//!
//! [`WideFaa`]: crate::WideFaa

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Whether the DWCAS (`cmpxchg16b`) path is compiled in *and* supported
/// by the running CPU. Constant-false on non-x86_64 targets and under
/// the `force_spinlock` feature; detected once and cached otherwise.
#[inline]
pub(crate) fn dwcas_available() -> bool {
    #[cfg(all(target_arch = "x86_64", not(feature = "force_spinlock")))]
    {
        // 0 = unprobed, 1 = unavailable, 2 = available. Racing probes
        // are harmless: CPUID is idempotent and every thread stores the
        // same verdict.
        static STATE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);
        match STATE.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => {
                let ok = is_x86_feature_detected!("cmpxchg16b");
                STATE.store(if ok { 2 } else { 1 }, Ordering::Relaxed);
                ok
            }
        }
    }
    #[cfg(not(all(target_arch = "x86_64", not(feature = "force_spinlock"))))]
    {
        false
    }
}

/// One `lock cmpxchg16b` on `dst`: if the 16 bytes equal `expected`,
/// store `new`; either way return the value observed (equal to
/// `expected` exactly when the store happened). Sequentially consistent
/// (`lock`-prefixed instructions are full fences on x86).
///
/// `rbx` cannot be named as an operand (LLVM may reserve it), so the
/// low half of `new` travels through `rsi` and is swapped into `rbx`
/// around the instruction. Every operand register is named explicitly:
/// with a `reg`-class operand the allocator is free to pick `rbx`
/// itself in frames where it is not reserved, and the `xchg` prologue
/// would then destroy that operand before the instruction reads it
/// (observed in practice with the pointer operand — a release-mode
/// segfault inside `catch_unwind` frames).
///
/// # Safety
///
/// `dst` must be 16-byte aligned, valid for reads and writes, and the
/// CPU must support `cmpxchg16b` (see [`dwcas_available`]).
#[cfg(all(target_arch = "x86_64", not(feature = "force_spinlock")))]
#[inline]
unsafe fn cmpxchg16b(dst: *mut u128, expected: u128, new: u128) -> u128 {
    let mut lo = expected as u64;
    let mut hi = (expected >> 64) as u64;
    unsafe {
        core::arch::asm!(
            "xchg rsi, rbx",
            "lock cmpxchg16b [rdi]",
            "mov rbx, rsi",
            in("rdi") dst,
            inout("rsi") new as u64 => _,
            inout("rax") lo,
            inout("rdx") hi,
            in("rcx") (new >> 64) as u64,
            options(nostack),
        );
    }
    (lo as u128) | ((hi as u128) << 64)
}

/// A 16-byte-aligned atomic `u128`.
///
/// Lock-free on x86_64 parts with `cmpxchg16b` (detected at runtime;
/// see [`Atomic128::is_lock_free`]); elsewhere every operation takes a
/// short internal spinlock. Both modes give each operation a single
/// linearization instant, so callers never observe torn values.
///
/// # Examples
///
/// ```
/// use sl2_bignum::Atomic128;
///
/// let c = Atomic128::new(1 << 100);
/// assert_eq!(c.fetch_add(1), 1 << 100);
/// assert_eq!(c.load(), (1 << 100) + 1);
/// assert!(c.compare_exchange(5, 6).is_err());
/// ```
#[repr(C, align(16))]
pub struct Atomic128 {
    value: UnsafeCell<u128>,
    lock: RawSpin,
}

// SAFETY: all access to `value` is either a `lock cmpxchg16b` (atomic
// at hardware level; `lock` is a full fence) or guarded by the internal
// spinlock — the two are never mixed, because `dwcas_available()` is
// constant for the life of the process.
unsafe impl Send for Atomic128 {}
unsafe impl Sync for Atomic128 {}

impl Atomic128 {
    /// Creates a cell holding `v`.
    pub const fn new(v: u128) -> Self {
        Atomic128 {
            value: UnsafeCell::new(v),
            lock: RawSpin::new(),
        }
    }

    /// True when operations on every `Atomic128` in this process use
    /// the DWCAS instruction rather than the spinlock fallback.
    #[inline]
    pub fn is_lock_free() -> bool {
        dwcas_available()
    }

    /// A relaxed, possibly-torn read of the two halves — only useful as
    /// the seed of a CAS loop, where a torn guess merely costs one
    /// failed `cmpxchg16b` (whose returned value is untorn). Never
    /// hand the result to code that interprets it.
    #[cfg(all(target_arch = "x86_64", not(feature = "force_spinlock")))]
    #[inline]
    pub(crate) fn guess(&self) -> u128 {
        use std::sync::atomic::AtomicU64;
        let p = self.value.get() as *const AtomicU64;
        // SAFETY: the cell is 16-aligned so both halves are 8-aligned;
        // `AtomicU64` is layout-compatible with `u64`, and atomic loads
        // never race with the concurrent `cmpxchg16b` stores in the
        // sense of the memory model (both are atomic accesses).
        let lo = unsafe { &*p }.load(Ordering::Relaxed);
        let hi = unsafe { &*p.add(1) }.load(Ordering::Relaxed);
        (lo as u128) | ((hi as u128) << 64)
    }

    /// Portable stand-in for the seed read where no DWCAS exists; the
    /// fallback paths are lock-based anyway, so an exact read is fine.
    #[cfg(not(all(target_arch = "x86_64", not(feature = "force_spinlock"))))]
    #[inline]
    pub(crate) fn guess(&self) -> u128 {
        self.load()
    }

    /// Atomically reads the current value.
    ///
    /// On the DWCAS path this is a single `cmpxchg16b` seeded with a
    /// relaxed guess: if the guess matches, the (idempotent) store
    /// confirms it atomically; if not, the instruction *returns* the
    /// untorn current value. Either way the result is the cell's value
    /// at one instant.
    #[inline]
    pub fn load(&self) -> u128 {
        if dwcas_available() {
            #[cfg(all(target_arch = "x86_64", not(feature = "force_spinlock")))]
            {
                let guess = self.guess();
                // SAFETY: alignment by repr; availability just checked.
                return unsafe { cmpxchg16b(self.value.get(), guess, guess) };
            }
        }
        let _g = self.lock.acquire();
        // SAFETY: the spinlock gives exclusive access.
        unsafe { *self.value.get() }
    }

    /// Atomically replaces the value with `new` if it equals `current`.
    /// Returns the previous value: `Ok` (== `current`) if the exchange
    /// happened, `Err` (the actual value) if not.
    #[inline]
    pub fn compare_exchange(&self, current: u128, new: u128) -> Result<u128, u128> {
        if dwcas_available() {
            #[cfg(all(target_arch = "x86_64", not(feature = "force_spinlock")))]
            {
                // SAFETY: alignment by repr; availability just checked.
                let observed = unsafe { cmpxchg16b(self.value.get(), current, new) };
                return if observed == current {
                    Ok(observed)
                } else {
                    Err(observed)
                };
            }
        }
        let _g = self.lock.acquire();
        // SAFETY: the spinlock gives exclusive access.
        let v = unsafe { &mut *self.value.get() };
        if *v == current {
            *v = new;
            Ok(current)
        } else {
            Err(*v)
        }
    }

    /// Atomically replaces the value with `f(value)`, returning the
    /// **previous** value. `f` may run several times under contention
    /// (CAS retry loop); it is always applied to an untorn snapshot. If
    /// `f` panics the cell is left unchanged.
    #[inline]
    pub fn fetch_update(&self, mut f: impl FnMut(u128) -> u128) -> u128 {
        if dwcas_available() {
            let mut cur = self.load();
            loop {
                match self.compare_exchange(cur, f(cur)) {
                    Ok(prev) => return prev,
                    Err(actual) => cur = actual,
                }
            }
        }
        let _g = self.lock.acquire();
        // SAFETY: the spinlock gives exclusive access.
        let v = unsafe { &mut *self.value.get() };
        let prev = *v;
        *v = f(prev);
        prev
    }

    /// Atomically adds `delta` (wrapping), returning the previous
    /// value.
    ///
    /// Unlike [`Atomic128::fetch_update`] the CAS loop here is seeded
    /// with a relaxed guess rather than an atomic load — one locked
    /// instruction per uncontended call instead of two. That is safe
    /// only because wrapping addition is total: a torn guess produces a
    /// candidate the CAS rejects (returning the untorn value), and
    /// nothing observes the discarded sum. `fetch_update` cannot do
    /// this — its caller-supplied closure may branch or panic on the
    /// value it is shown.
    #[inline]
    pub fn fetch_add(&self, delta: u128) -> u128 {
        if dwcas_available() {
            let mut cur = self.guess();
            loop {
                match self.compare_exchange(cur, cur.wrapping_add(delta)) {
                    Ok(prev) => return prev,
                    Err(actual) => cur = actual,
                }
            }
        }
        self.fetch_update(|v| v.wrapping_add(delta))
    }
}

impl std::fmt::Debug for Atomic128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Atomic128")
            .field("value", &self.load())
            .field("lock_free", &Self::is_lock_free())
            .finish()
    }
}

impl Default for Atomic128 {
    fn default() -> Self {
        Atomic128::new(0)
    }
}

/// A minimal test-and-test-and-set spinlock. The protected critical
/// sections are a handful of nanoseconds (an inline `u128` add), so a
/// full parking mutex costs more than the work it guards; spinning with
/// a bounded hint-loop then yielding keeps the uncontended path to one
/// `compare_exchange` + one release store.
#[derive(Debug, Default)]
pub(crate) struct RawSpin {
    locked: AtomicBool,
}

pub(crate) struct SpinGuard<'a>(&'a RawSpin);

impl RawSpin {
    pub(crate) const fn new() -> Self {
        RawSpin {
            locked: AtomicBool::new(false),
        }
    }

    #[inline]
    pub(crate) fn acquire(&self) -> SpinGuard<'_> {
        if self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.acquire_slow();
        }
        // Chaos: fires with the lock held and the guard already live,
        // so an injected panic unwinds through `SpinGuard::drop` and
        // releases — the unwind-safety contract of every RawSpin
        // critical section (WideFaa heap regime and the Atomic128
        // `force_spinlock` fallback alike). A crash-stop here models
        // a client dead inside the critical section: the lock stays
        // held forever, by design (DESIGN.md §10).
        let guard = SpinGuard(self);
        sl2_chaos::point("spin.acquired");
        sl2_obs::count("faa.spin_acquire");
        guard
    }

    #[cold]
    fn acquire_slow(&self) {
        let mut spins = 0u32;
        loop {
            // Test-and-test-and-set: spin on a plain load so waiters
            // don't bounce the cache line with failed RMWs.
            if !self.locked.load(Ordering::Relaxed)
                && self
                    .locked
                    .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

impl Drop for SpinGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        self.0.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn cell_is_sixteen_byte_aligned() {
        assert_eq!(std::mem::align_of::<Atomic128>(), 16);
        let c = Atomic128::new(0);
        assert_eq!(&c as *const _ as usize % 16, 0);
    }

    #[test]
    fn load_and_cas_round_trip() {
        let c = Atomic128::new(7);
        assert_eq!(c.load(), 7);
        assert_eq!(c.compare_exchange(7, u128::MAX), Ok(7));
        assert_eq!(c.load(), u128::MAX);
        assert_eq!(c.compare_exchange(3, 4), Err(u128::MAX));
        assert_eq!(c.load(), u128::MAX);
    }

    #[test]
    fn fetch_add_wraps_and_returns_previous() {
        let c = Atomic128::new(u128::MAX);
        assert_eq!(c.fetch_add(2), u128::MAX);
        assert_eq!(c.load(), 1);
    }

    #[test]
    fn fetch_update_panics_leave_cell_unchanged() {
        let c = Atomic128::new(10);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.fetch_update(|_| panic!("no"));
        }));
        assert!(err.is_err());
        assert_eq!(c.load(), 10);
        assert_eq!(c.fetch_add(1), 10);
    }

    #[test]
    fn x86_builds_detect_the_instruction() {
        // Runtime detection may legitimately fail on exotic hardware,
        // but every x86_64 machine this repo's CI touches has
        // cmpxchg16b; pin that so a broken detector can't silently
        // demote the whole suite to the spinlock path.
        #[cfg(all(target_arch = "x86_64", not(feature = "force_spinlock")))]
        assert!(Atomic128::is_lock_free());
        #[cfg(feature = "force_spinlock")]
        assert!(!Atomic128::is_lock_free());
    }

    #[test]
    fn concurrent_fetch_adds_sum_exactly_across_both_halves() {
        // Each thread adds a value with bits in both 64-bit halves so a
        // torn RMW would lose carries; the total is exact iff every
        // update was atomic.
        let c = Arc::new(Atomic128::new(0));
        let delta: u128 = (1 << 80) | 3;
        let (threads, per) = (8u128, 1000u128);
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..per {
                        c.fetch_add(delta);
                    }
                });
            }
        });
        assert_eq!(c.load(), delta * threads * per);
    }

    #[test]
    fn concurrent_cas_elects_exactly_one_winner_per_round() {
        let c = Arc::new(Atomic128::new(0));
        let rounds = 100u128;
        let winners: Vec<u64> = std::thread::scope(|s| {
            (0..4u128)
                .map(|t| {
                    let c = Arc::clone(&c);
                    s.spawn(move || {
                        let mut won = 0u64;
                        for r in 0..rounds {
                            // Round r: CAS r -> r+1; exactly one thread
                            // can succeed.
                            loop {
                                match c.compare_exchange(r, r + 1) {
                                    Ok(_) => {
                                        won += 1;
                                        break;
                                    }
                                    Err(v) if v > r => break,
                                    Err(_) => std::hint::spin_loop(),
                                }
                            }
                            let _ = t;
                        }
                        won
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(winners.iter().sum::<u64>(), rounds as u64);
        assert_eq!(c.load(), rounds);
    }
}
