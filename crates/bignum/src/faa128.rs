//! The fixed-width 128-bit fetch&add register and the consensus-number
//! annotations tying this crate's registers into the
//! [`sl2_primitives`] hierarchy.
//!
//! This module lives here (rather than in `sl2_primitives::rmw`, where
//! the 64-bit registers are) so that the crate graph stays a DAG with
//! `sl2_primitives` at the bottom: the wide registers depend on the
//! consensus-number vocabulary, not the other way around.

use sl2_primitives::{BaseObject, ConsensusNumber};

use crate::cell::Atomic128;
use crate::wide::WideFaa;

/// Atomic fetch&add on a `u128` — a fixed-width register for callers
/// that know `n × values` fits in 128 bits (e.g. a 2-process max
/// register up to 64, or a 4-component snapshot of 32-bit values).
/// Built on [`Atomic128`]: a lock-free `cmpxchg16b` retry loop on
/// x86_64 (runtime-detected), a short spinlock critical section
/// elsewhere — either way each operation has a single linearization
/// instant (DESIGN.md §9), which is all the §3 algorithms require.
///
/// Since [`WideFaa`] gained its inline two-limb representation it
/// covers this whole regime allocation-free *and* grows past it on
/// demand, so prefer `WideFaa` unless a hard 128-bit bound is itself
/// the point (this type never spills, so it doubles as a guard that a
/// workload stays within the bound).
#[derive(Debug, Default)]
pub struct FetchAdd128 {
    cell: Atomic128,
}

impl FetchAdd128 {
    /// Creates a register with the given initial value.
    pub fn new(init: u128) -> Self {
        FetchAdd128 {
            cell: Atomic128::new(init),
        }
    }

    /// Atomically adds `delta` (wrapping), returning the previous
    /// value.
    pub fn fetch_add(&self, delta: u128) -> u128 {
        self.cell.fetch_add(delta)
    }

    /// Atomically applies `+pos − neg` in one step (the §3.2 signed
    /// adjustment), returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative or overflow 128 bits —
    /// the never-spills guard. The register is left unchanged.
    pub fn fetch_adjust(&self, pos: u128, neg: u128) -> u128 {
        self.cell.fetch_update(|old| {
            old.checked_add(pos)
                .and_then(|v| v.checked_sub(neg))
                .expect("adjustment drove the register out of range")
        })
    }

    /// Reads the current value (= `fetch_add(0)`).
    pub fn read(&self) -> u128 {
        self.cell.load()
    }
}

impl BaseObject for FetchAdd128 {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::Two;
}

// The wide register is fetch&add on an unbounded value: same position
// in the hierarchy as the fixed-width fetch&adds (the paper's point is
// precisely that this level-2 object suffices for the §3 towers).
impl BaseObject for WideFaa {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::Two;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faa128_basics() {
        let c = FetchAdd128::new(0);
        assert_eq!(c.fetch_add(1 << 100), 0);
        assert_eq!(c.read(), 1 << 100);
        assert_eq!(c.fetch_adjust(1, 1 << 100), 1 << 100);
        assert_eq!(c.read(), 1);
    }

    #[test]
    fn faa128_concurrent_sums_exactly() {
        let c = FetchAdd128::new(0);
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.fetch_add(1u128 << (t * 16));
                    }
                });
            }
        });
        for t in 0..8u32 {
            assert_eq!((c.read() >> (t * 16)) & 0xffff, 1000, "lane {t}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn faa128_adjust_rejects_underflow() {
        FetchAdd128::new(0).fetch_adjust(0, 1);
    }

    #[test]
    fn faa128_failed_adjust_leaves_register_usable() {
        // The never-spills guard: a rejected adjustment must not tear
        // the cell or wedge the fallback lock.
        let c = FetchAdd128::new(10);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.fetch_adjust(0, 11);
        }));
        assert!(err.is_err());
        assert_eq!(c.read(), 10);
        assert_eq!(c.fetch_adjust(5, 1), 10);
        assert_eq!(c.read(), 14);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn faa128_adjust_rejects_overflow_past_128_bits() {
        FetchAdd128::new(u128::MAX).fetch_adjust(1, 0);
    }

    #[test]
    fn wide_registers_sit_at_level_two() {
        assert_eq!(FetchAdd128::new(0).consensus_number(), ConsensusNumber::Two);
        assert_eq!(WideFaa::new().consensus_number(), ConsensusNumber::Two);
    }
}
