//! Interleaved-bit layout shared by the Section 3 constructions.
//!
//! A single wide register `R` packs one unbounded bit-string per process:
//! with `n` processes, process `i` owns bits `i, n+i, 2n+i, ...` of `R`
//! (its *lane*). This is the representation the paper borrows from the
//! recoverable fetch&add of Nahum et al. \[26\]. Lane `k`-th bit of process
//! `i` lives at global bit `k*n + i`.
//!
//! [`Layout`] converts between a process-local value and its lane image,
//! and decodes a whole register into per-process values.

use crate::{BigNat, LIMB_BITS};

/// The interleaved lane layout for `n` processes.
///
/// # Examples
///
/// ```
/// use sl2_bignum::{BigNat, Layout};
///
/// let layout = Layout::new(3);
/// // Process 1 encodes local value 0b101 into its lane.
/// let lane = layout.encode(1, &BigNat::from(0b101u64));
/// // Global bits 0*3+1 = 1 and 2*3+1 = 7 are set.
/// assert_eq!(lane.one_bits().collect::<Vec<_>>(), vec![1, 7]);
/// assert_eq!(layout.decode(1, &lane), BigNat::from(0b101u64));
/// // Other lanes are untouched.
/// assert!(layout.decode(0, &lane).is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Layout {
    n: usize,
}

impl Layout {
    /// Creates a layout for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "layout requires at least one process");
        Layout { n }
    }

    /// Number of processes.
    pub fn processes(&self) -> usize {
        self.n
    }

    /// Global bit position of lane bit `k` of process `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn bit(&self, i: usize, k: usize) -> usize {
        assert!(i < self.n, "process index {i} out of range (n={})", self.n);
        k * self.n + i
    }

    /// Spreads a process-local value into its lane image: local bit `k`
    /// becomes global bit `k*n + i`.
    pub fn encode(&self, i: usize, local: &BigNat) -> BigNat {
        let mut out = BigNat::zero();
        for k in local.one_bits() {
            out.set_bit(self.bit(i, k), true);
        }
        out
    }

    /// Extracts process `i`'s local value from a register image.
    ///
    /// Works on a *borrowed* image (e.g. inside
    /// [`crate::WideFaa::read_with`]); the result stays in `BigNat`'s
    /// inline representation — and therefore allocates nothing — while
    /// the lane value fits in 128 bits.
    pub fn decode(&self, i: usize, register: &BigNat) -> BigNat {
        assert!(i < self.n, "process index {i} out of range (n={})", self.n);
        let mut out = BigNat::zero();
        for g in register.one_bits() {
            if g % self.n == i {
                out.set_bit(g / self.n, true);
            }
        }
        out
    }

    /// Extracts process `i`'s local value directly into a `u64`, with
    /// no intermediate `BigNat`; `None` if the lane value needs more
    /// than 64 bits. This is the decode the §3.2 `scan` uses (component
    /// values are `u64` at the API boundary).
    pub fn decode_u64(&self, i: usize, register: &BigNat) -> Option<u64> {
        assert!(i < self.n, "process index {i} out of range (n={})", self.n);
        let mut out = 0u64;
        for g in register.one_bits() {
            if g % self.n == i {
                let k = g / self.n;
                if k >= 64 {
                    return None;
                }
                out |= 1u64 << k;
            }
        }
        Some(out)
    }

    /// Decodes the whole register into one local value per process —
    /// the "view" reconstruction used by `scan`/`ReadMax`.
    pub fn decode_all(&self, register: &BigNat) -> Vec<BigNat> {
        let mut out = vec![BigNat::zero(); self.n];
        for g in register.one_bits() {
            out[g % self.n].set_bit(g / self.n, true);
        }
        out
    }

    /// Decodes the whole register into one `u64` per process in a
    /// single pass with no per-lane `BigNat`s; `None` if any lane needs
    /// more than 64 bits. One output vector is the only allocation.
    pub fn decode_all_u64(&self, register: &BigNat) -> Option<Vec<u64>> {
        let mut out = vec![0u64; self.n];
        for g in register.one_bits() {
            let k = g / self.n;
            if k >= 64 {
                return None;
            }
            out[g % self.n] |= 1u64 << k;
        }
        Some(out)
    }

    /// The fetch&add adjustments that move process `i`'s lane from
    /// `old` to `new`: `(posAdj, negAdj)` such that applying
    /// `+posAdj − negAdj` to the register rewrites exactly the differing
    /// lane bits (§3.2, step 2 of `update`).
    pub fn adjustments(&self, i: usize, old: &BigNat, new: &BigNat) -> (BigNat, BigNat) {
        let mut pos = BigNat::zero();
        let mut neg = BigNat::zero();
        let top = old.bit_len().max(new.bit_len());
        for k in 0..top {
            match (old.bit(k), new.bit(k)) {
                (false, true) => pos.set_bit(self.bit(i, k), true),
                (true, false) => neg.set_bit(self.bit(i, k), true),
                _ => {}
            }
        }
        (pos, neg)
    }

    /// The unary increment used by the §3.1 max register: the image of
    /// setting lane bits `from+1 ..= to` (1-indexed values held in unary;
    /// lane bit `v-1` set means "value at least v").
    pub fn unary_increment(&self, i: usize, from: u64, to: u64) -> BigNat {
        let mut out = BigNat::zero();
        for v in (from + 1)..=to {
            out.set_bit(self.bit(i, (v - 1) as usize), true);
        }
        out
    }

    /// Decodes the unary lane of process `i` into the value it encodes
    /// (the count of set lane bits; the lane is always a prefix of
    /// ones). Counts directly off the borrowed register image — no
    /// intermediate lane extraction, no allocation at any width — one
    /// masked popcount per limb rather than a modulo per set bit, so a
    /// dense unary register decodes at ~`64/n` steps per limb.
    pub fn decode_unary(&self, i: usize, register: &BigNat) -> u64 {
        assert!(i < self.n, "process index {i} out of range (n={})", self.n);
        let n = self.n;
        if n == 1 {
            return register.count_ones() as u64;
        }
        if LIMB_BITS % n == 0 {
            // The lane pattern repeats every limb: one constant mask,
            // one popcount per limb.
            let mut mask = 0u64;
            let mut b = i;
            while b < LIMB_BITS {
                mask |= 1u64 << b;
                b += n;
            }
            return register
                .limbs()
                .iter()
                .map(|w| (w & mask).count_ones() as usize)
                .sum::<usize>() as u64;
        }
        let mut count = 0usize;
        let mut next = i; // global index of the lane's next bit
        for (j, &w) in register.limbs().iter().enumerate() {
            let limb_start = j * LIMB_BITS;
            let limb_end = limb_start + LIMB_BITS;
            if next >= limb_end {
                continue;
            }
            if w == 0 {
                // Skip the zero limb; land `next` on the first lane bit
                // at or past the limb boundary.
                next += (limb_end - next).div_ceil(n) * n;
                continue;
            }
            let mut mask = 0u64;
            while next < limb_end {
                mask |= 1u64 << (next - limb_start);
                next += n;
            }
            count += (w & mask).count_ones() as usize;
        }
        count as u64
    }
}

/// Which per-lane value encoding a register uses.
///
/// The §3 constructions store each process's value in its interleaved
/// lane. *How* a value becomes lane bits is a codec choice that the
/// algorithms' atomicity arguments do not depend on — both codecs below
/// update a lane with one atomic `fetch&add` adjustment — but the
/// register width depends on it dramatically (experiment E31).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LaneEncoding {
    /// The paper's unary prefix code (§3.1): lane bit `v−1` set means
    /// "value at least `v`" — O(v) bits per lane. Writes only ever
    /// *set* bits, so the register image itself is bitwise monotone,
    /// which is what lets §3.1 recover a lane with a single popcount.
    #[default]
    Unary,
    /// Positional (binary) code: lane bit `k` carries weight `2^k` —
    /// O(log v) bits per lane. Writes rewrite the differing bits in
    /// one signed adjustment (clears are allowed, as in §3.2), so the
    /// *decoded lane value* is monotone whenever its single writer only
    /// increases it, even though the bit image is not.
    Binary,
}

/// Log-width companion of [`Layout`]: the same interleaved lanes, with
/// each lane holding its value in *binary* rather than unary.
///
/// A lane value `v` occupies `⌈log₂(v+1)⌉` lane bits instead of `v`,
/// so a register of `n` lanes holding values up to `V` needs
/// `n·⌈log₂(V+1)⌉` bits instead of `n·V` — this is what lifts the
/// sharded quotient encoding's 64·S inline-value ceiling (ROADMAP item
/// 5): with 4 shards and 4 lanes, values into the hundreds of
/// thousands still fit a 128-bit register.
///
/// The price is the update discipline: moving a lane from `old` to
/// `new` clears the bits that drop and sets the bits that rise, as one
/// atomic `+pos − neg` adjustment ([`crate::WideFaa::fetch_adjust`]) —
/// exactly the §3.2 snapshot update shape, and sound for the same
/// reason (each lane has a single writer, so the probe that computed
/// `old` cannot be invalidated by another writer of the same lane).
///
/// # Examples
///
/// ```
/// use sl2_bignum::{BigNat, BinaryLayout};
///
/// let layout = BinaryLayout::new(3);
/// let image = layout.encode(1, 6);
/// assert_eq!(layout.decode(1, &image), 6);
/// // 6 = 0b110: lane bits 1 and 2 of process 1 → global bits 4 and 7.
/// assert_eq!(image.one_bits().collect::<Vec<_>>(), vec![4, 7]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BinaryLayout {
    inner: Layout,
}

impl BinaryLayout {
    /// Creates a binary-lane layout for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        BinaryLayout {
            inner: Layout::new(n),
        }
    }

    /// Wraps an existing interleaving: same lane geometry, binary
    /// values.
    pub fn over(layout: Layout) -> Self {
        BinaryLayout { inner: layout }
    }

    /// Number of processes.
    pub fn processes(&self) -> usize {
        self.inner.processes()
    }

    /// The underlying lane interleaving (shared with the unary codec).
    pub fn interleaving(&self) -> Layout {
        self.inner
    }

    /// Lane bits needed to hold `v` in binary.
    pub const fn bits_for(v: u64) -> u32 {
        u64::BITS - v.leading_zeros()
    }

    /// The lane image of process `i` holding value `v`: local binary
    /// bit `k` of `v` becomes global bit `k*n + i`.
    pub fn encode(&self, i: usize, v: u64) -> BigNat {
        let mut out = BigNat::zero();
        let mut rest = v;
        while rest != 0 {
            let k = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            out.set_bit(self.inner.bit(i, k), true);
        }
        out
    }

    /// Decodes process `i`'s binary lane from a borrowed register
    /// image. Allocation-free at every register width.
    ///
    /// # Panics
    ///
    /// Panics if the lane value needs more than 64 bits — impossible
    /// for registers written through this codec, whose lane values are
    /// `u64` at the API boundary.
    pub fn decode(&self, i: usize, register: &BigNat) -> u64 {
        self.inner
            .decode_u64(i, register)
            .expect("binary lane exceeds 64 bits")
    }

    /// The fetch&add adjustments that move process `i`'s lane from
    /// `old` to `new`: `(posAdj, negAdj)` rewriting exactly the
    /// differing binary digits. Built directly from the XOR of the two
    /// `u64`s — no intermediate `BigNat`s, no allocation while the
    /// adjustments stay inline.
    pub fn adjustments(&self, i: usize, old: u64, new: u64) -> (BigNat, BigNat) {
        let mut pos = BigNat::zero();
        let mut neg = BigNat::zero();
        let mut diff = old ^ new;
        while diff != 0 {
            let k = diff.trailing_zeros() as usize;
            diff &= diff - 1;
            let bit = self.inner.bit(i, k);
            if (new >> k) & 1 == 1 {
                pos.set_bit(bit, true);
            } else {
                neg.set_bit(bit, true);
            }
        }
        (pos, neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_every_process() {
        let layout = Layout::new(5);
        let local = BigNat::from(0b1011001u64);
        for i in 0..5 {
            let lane = layout.encode(i, &local);
            assert_eq!(layout.decode(i, &lane), local);
            for j in 0..5 {
                if j != i {
                    assert!(layout.decode(j, &lane).is_zero());
                }
            }
        }
    }

    #[test]
    fn lanes_are_disjoint_and_compose_additively() {
        let layout = Layout::new(3);
        let a = layout.encode(0, &BigNat::from(0b11u64));
        let b = layout.encode(1, &BigNat::from(0b10u64));
        let c = layout.encode(2, &BigNat::from(0b01u64));
        let sum = &(&a + &b) + &c;
        let all = layout.decode_all(&sum);
        assert_eq!(all[0], BigNat::from(0b11u64));
        assert_eq!(all[1], BigNat::from(0b10u64));
        assert_eq!(all[2], BigNat::from(0b01u64));
    }

    #[test]
    fn single_process_layout_is_identity() {
        let layout = Layout::new(1);
        let v = BigNat::from(0xdead_beefu64);
        assert_eq!(layout.encode(0, &v), v);
        assert_eq!(layout.decode(0, &v), v);
    }

    #[test]
    fn adjustments_rewrite_exactly_the_difference() {
        let layout = Layout::new(4);
        let old = BigNat::from(0b1100u64);
        let new = BigNat::from(0b0110u64);
        let (pos, neg) = layout.adjustments(2, &old, &new);
        // Start from the encoded old lane plus noise in other lanes.
        let noise = layout.encode(0, &BigNat::from(0b111u64));
        let reg = &layout.encode(2, &old) + &noise;
        let reg2 = reg.apply_adjustment(&pos, &neg);
        assert_eq!(layout.decode(2, &reg2), new);
        assert_eq!(layout.decode(0, &reg2), BigNat::from(0b111u64));
    }

    #[test]
    fn adjustments_for_equal_values_are_zero() {
        let layout = Layout::new(2);
        let v = BigNat::from(42u64);
        let (pos, neg) = layout.adjustments(1, &v, &v);
        assert!(pos.is_zero() && neg.is_zero());
    }

    #[test]
    fn unary_increment_encodes_prefix() {
        let layout = Layout::new(2);
        // process 1 raises its unary value from 2 to 5: sets lane bits 2,3,4
        let inc = layout.unary_increment(1, 2, 5);
        let reg = inc.clone();
        assert_eq!(layout.decode_unary(1, &reg), 3); // bits 2..4 only
        let full = &layout.unary_increment(1, 0, 2) + &inc;
        assert_eq!(layout.decode_unary(1, &full), 5);
    }

    #[test]
    fn unary_increment_noop_when_not_larger() {
        let layout = Layout::new(2);
        assert!(layout.unary_increment(0, 3, 3).is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_rejects_bad_process() {
        Layout::new(2).decode(2, &BigNat::zero());
    }

    #[test]
    fn decode_u64_matches_decode() {
        let layout = Layout::new(3);
        let reg = &layout.encode(0, &BigNat::from(0b1101u64))
            + &layout.encode(2, &BigNat::from(u64::MAX));
        for i in 0..3 {
            assert_eq!(
                layout.decode_u64(i, &reg),
                layout.decode(i, &reg).to_u64(),
                "lane {i}"
            );
        }
        // A lane needing 65 bits is rejected, not truncated.
        let wide = layout.encode(1, &BigNat::pow2(64));
        assert_eq!(layout.decode_u64(1, &wide), None);
        assert_eq!(layout.decode(1, &wide).to_u64(), None);
    }

    #[test]
    fn decode_all_u64_matches_decode_all() {
        let layout = Layout::new(4);
        let mut reg = BigNat::zero();
        for (i, v) in [(0usize, 7u64), (1, 0), (2, u64::MAX), (3, 0b1010)] {
            reg = &reg + &layout.encode(i, &BigNat::from(v));
        }
        let fast = layout.decode_all_u64(&reg).expect("all lanes fit");
        let slow: Vec<u64> = layout
            .decode_all(&reg)
            .iter()
            .map(|b| b.to_u64().expect("fits"))
            .collect();
        assert_eq!(fast, slow);
        assert_eq!(
            layout.decode_all_u64(&layout.encode(0, &BigNat::pow2(64))),
            None
        );
    }

    #[test]
    fn decode_unary_counts_without_extraction() {
        let layout = Layout::new(3);
        let reg = &layout.unary_increment(0, 0, 5) + &layout.unary_increment(2, 0, 9);
        assert_eq!(layout.decode_unary(0, &reg), 5);
        assert_eq!(layout.decode_unary(1, &reg), 0);
        assert_eq!(layout.decode_unary(2, &reg), 9);
    }

    #[test]
    fn binary_encode_decode_roundtrip_every_process() {
        let layout = BinaryLayout::new(5);
        for v in [0u64, 1, 6, 1000, u64::MAX] {
            for i in 0..5 {
                let image = layout.encode(i, v);
                assert_eq!(layout.decode(i, &image), v, "lane {i} value {v}");
                for j in 0..5 {
                    if j != i {
                        assert_eq!(layout.decode(j, &image), 0);
                    }
                }
            }
        }
    }

    #[test]
    fn binary_adjustments_rewrite_exactly_the_difference() {
        let layout = BinaryLayout::new(4);
        // Lane 2 moves 12 → 6 while lane 0 holds noise; only lane 2's
        // differing digits change.
        let (pos, neg) = layout.adjustments(2, 12, 6);
        let reg = &layout.encode(2, 12) + &layout.encode(0, 7);
        let reg2 = reg.apply_adjustment(&pos, &neg);
        assert_eq!(layout.decode(2, &reg2), 6);
        assert_eq!(layout.decode(0, &reg2), 7);
        // And they agree with the BigNat-valued unary-layout codec.
        let (p2, n2) =
            layout
                .interleaving()
                .adjustments(2, &BigNat::from(12u64), &BigNat::from(6u64));
        assert_eq!((pos, neg), (p2, n2));
    }

    #[test]
    fn binary_adjustments_for_equal_values_are_zero() {
        let layout = BinaryLayout::new(2);
        let (pos, neg) = layout.adjustments(1, 42, 42);
        assert!(pos.is_zero() && neg.is_zero());
    }

    #[test]
    fn binary_lanes_are_log_width() {
        // The whole point: n lanes at value v cost n·⌈log₂(v+1)⌉ bits,
        // not n·v. 4 lanes at 100 000 fit a 128-bit register.
        let n = 4;
        let layout = BinaryLayout::new(n);
        let mut reg = BigNat::zero();
        for i in 0..n {
            reg = &reg + &layout.encode(i, 100_000);
        }
        assert!(reg.is_inline(), "binary register must stay inline");
        assert_eq!(
            reg.bit_len(),
            (BinaryLayout::bits_for(100_000) as usize - 1) * n + n
        );
        // The unary codec would need 4 × 100 000 bits for the same view.
        assert_eq!(BinaryLayout::bits_for(100_000), 17);
    }

    #[test]
    fn binary_layout_shares_the_lane_geometry() {
        let layout = BinaryLayout::new(3);
        assert_eq!(layout.processes(), 3);
        assert_eq!(BinaryLayout::over(Layout::new(3)), layout);
        // Same interleave as the unary layout: global bit of lane bit k.
        assert_eq!(layout.interleaving().bit(1, 2), 7);
        assert_eq!(BinaryLayout::bits_for(0), 0);
        assert_eq!(BinaryLayout::bits_for(1), 1);
        assert_eq!(BinaryLayout::bits_for(u64::MAX), 64);
    }
}
