//! Interleaved-bit layout shared by the Section 3 constructions.
//!
//! A single wide register `R` packs one unbounded bit-string per process:
//! with `n` processes, process `i` owns bits `i, n+i, 2n+i, ...` of `R`
//! (its *lane*). This is the representation the paper borrows from the
//! recoverable fetch&add of Nahum et al. \[26\]. Lane `k`-th bit of process
//! `i` lives at global bit `k*n + i`.
//!
//! [`Layout`] converts between a process-local value and its lane image,
//! and decodes a whole register into per-process values.

use crate::BigNat;

/// The interleaved lane layout for `n` processes.
///
/// # Examples
///
/// ```
/// use sl2_bignum::{BigNat, Layout};
///
/// let layout = Layout::new(3);
/// // Process 1 encodes local value 0b101 into its lane.
/// let lane = layout.encode(1, &BigNat::from(0b101u64));
/// // Global bits 0*3+1 = 1 and 2*3+1 = 7 are set.
/// assert_eq!(lane.one_bits().collect::<Vec<_>>(), vec![1, 7]);
/// assert_eq!(layout.decode(1, &lane), BigNat::from(0b101u64));
/// // Other lanes are untouched.
/// assert!(layout.decode(0, &lane).is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Layout {
    n: usize,
}

impl Layout {
    /// Creates a layout for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "layout requires at least one process");
        Layout { n }
    }

    /// Number of processes.
    pub fn processes(&self) -> usize {
        self.n
    }

    /// Global bit position of lane bit `k` of process `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn bit(&self, i: usize, k: usize) -> usize {
        assert!(i < self.n, "process index {i} out of range (n={})", self.n);
        k * self.n + i
    }

    /// Spreads a process-local value into its lane image: local bit `k`
    /// becomes global bit `k*n + i`.
    pub fn encode(&self, i: usize, local: &BigNat) -> BigNat {
        let mut out = BigNat::zero();
        for k in local.one_bits() {
            out.set_bit(self.bit(i, k), true);
        }
        out
    }

    /// Extracts process `i`'s local value from a register image.
    pub fn decode(&self, i: usize, register: &BigNat) -> BigNat {
        assert!(i < self.n, "process index {i} out of range (n={})", self.n);
        let mut out = BigNat::zero();
        for g in register.one_bits() {
            if g % self.n == i {
                out.set_bit(g / self.n, true);
            }
        }
        out
    }

    /// Decodes the whole register into one local value per process —
    /// the "view" reconstruction used by `scan`/`ReadMax`.
    pub fn decode_all(&self, register: &BigNat) -> Vec<BigNat> {
        let mut out = vec![BigNat::zero(); self.n];
        for g in register.one_bits() {
            out[g % self.n].set_bit(g / self.n, true);
        }
        out
    }

    /// The fetch&add adjustments that move process `i`'s lane from
    /// `old` to `new`: `(posAdj, negAdj)` such that applying
    /// `+posAdj − negAdj` to the register rewrites exactly the differing
    /// lane bits (§3.2, step 2 of `update`).
    pub fn adjustments(&self, i: usize, old: &BigNat, new: &BigNat) -> (BigNat, BigNat) {
        let mut pos = BigNat::zero();
        let mut neg = BigNat::zero();
        let top = old.bit_len().max(new.bit_len());
        for k in 0..top {
            match (old.bit(k), new.bit(k)) {
                (false, true) => pos.set_bit(self.bit(i, k), true),
                (true, false) => neg.set_bit(self.bit(i, k), true),
                _ => {}
            }
        }
        (pos, neg)
    }

    /// The unary increment used by the §3.1 max register: the image of
    /// setting lane bits `from+1 ..= to` (1-indexed values held in unary;
    /// lane bit `v-1` set means "value at least v").
    pub fn unary_increment(&self, i: usize, from: u64, to: u64) -> BigNat {
        let mut out = BigNat::zero();
        for v in (from + 1)..=to {
            out.set_bit(self.bit(i, (v - 1) as usize), true);
        }
        out
    }

    /// Decodes the unary lane of process `i` into the value it encodes
    /// (the count of set lane bits; the lane is always a prefix of ones).
    pub fn decode_unary(&self, i: usize, register: &BigNat) -> u64 {
        self.decode(i, register).count_ones() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_every_process() {
        let layout = Layout::new(5);
        let local = BigNat::from(0b1011001u64);
        for i in 0..5 {
            let lane = layout.encode(i, &local);
            assert_eq!(layout.decode(i, &lane), local);
            for j in 0..5 {
                if j != i {
                    assert!(layout.decode(j, &lane).is_zero());
                }
            }
        }
    }

    #[test]
    fn lanes_are_disjoint_and_compose_additively() {
        let layout = Layout::new(3);
        let a = layout.encode(0, &BigNat::from(0b11u64));
        let b = layout.encode(1, &BigNat::from(0b10u64));
        let c = layout.encode(2, &BigNat::from(0b01u64));
        let sum = &(&a + &b) + &c;
        let all = layout.decode_all(&sum);
        assert_eq!(all[0], BigNat::from(0b11u64));
        assert_eq!(all[1], BigNat::from(0b10u64));
        assert_eq!(all[2], BigNat::from(0b01u64));
    }

    #[test]
    fn single_process_layout_is_identity() {
        let layout = Layout::new(1);
        let v = BigNat::from(0xdead_beefu64);
        assert_eq!(layout.encode(0, &v), v);
        assert_eq!(layout.decode(0, &v), v);
    }

    #[test]
    fn adjustments_rewrite_exactly_the_difference() {
        let layout = Layout::new(4);
        let old = BigNat::from(0b1100u64);
        let new = BigNat::from(0b0110u64);
        let (pos, neg) = layout.adjustments(2, &old, &new);
        // Start from the encoded old lane plus noise in other lanes.
        let noise = layout.encode(0, &BigNat::from(0b111u64));
        let reg = &layout.encode(2, &old) + &noise;
        let reg2 = reg.apply_adjustment(&pos, &neg);
        assert_eq!(layout.decode(2, &reg2), new);
        assert_eq!(layout.decode(0, &reg2), BigNat::from(0b111u64));
    }

    #[test]
    fn adjustments_for_equal_values_are_zero() {
        let layout = Layout::new(2);
        let v = BigNat::from(42u64);
        let (pos, neg) = layout.adjustments(1, &v, &v);
        assert!(pos.is_zero() && neg.is_zero());
    }

    #[test]
    fn unary_increment_encodes_prefix() {
        let layout = Layout::new(2);
        // process 1 raises its unary value from 2 to 5: sets lane bits 2,3,4
        let inc = layout.unary_increment(1, 2, 5);
        let reg = inc.clone();
        assert_eq!(layout.decode_unary(1, &reg), 3); // bits 2..4 only
        let full = &layout.unary_increment(1, 0, 2) + &inc;
        assert_eq!(layout.decode_unary(1, &full), 5);
    }

    #[test]
    fn unary_increment_noop_when_not_larger() {
        let layout = Layout::new(2);
        assert!(layout.unary_increment(0, 3, 3).is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_rejects_bad_process() {
        Layout::new(2).decode(2, &BigNat::zero());
    }
}
