//! [`BigNat`]: an arbitrary-precision natural number.
//!
//! The constructions of Section 3 of the paper store, in a single
//! fetch&add register, one bit-string per process interleaved bit-by-bit
//! (process `i` owns bits `i, n+i, 2n+i, ...`). Values written are of the
//! form `2^(K*n+i)` and grow without bound, so a fixed-width integer does
//! not suffice. `BigNat` is a little-endian limb vector (`u64` limbs) kept
//! in *normalized* form: no trailing zero limbs, so `BigNat::default()`
//! (zero) has an empty limb vector.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Number of bits per limb.
pub const LIMB_BITS: usize = 64;

/// An arbitrary-precision natural number (unsigned).
///
/// # Examples
///
/// ```
/// use sl2_bignum::BigNat;
///
/// let a = BigNat::pow2(200);           // 2^200, far beyond u128
/// let b = &a + &BigNat::from(1u64);
/// assert!(b > a);
/// assert_eq!(b.bit(200), true);
/// assert_eq!(b.bit(0), true);
/// assert_eq!(b.bit(100), false);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BigNat {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

impl BigNat {
    /// The value zero.
    ///
    /// ```
    /// # use sl2_bignum::BigNat;
    /// assert!(BigNat::zero().is_zero());
    /// ```
    pub fn zero() -> Self {
        BigNat { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigNat { limbs: vec![1] }
    }

    /// `2^k`, the fetch&add increment used throughout Section 3
    /// ("apply `fetch&add(R, 2^(K*n+i))`").
    ///
    /// ```
    /// # use sl2_bignum::BigNat;
    /// assert_eq!(BigNat::pow2(0), BigNat::from(1u64));
    /// assert_eq!(BigNat::pow2(65).bit(65), true);
    /// ```
    pub fn pow2(k: usize) -> Self {
        let mut n = BigNat::zero();
        n.set_bit(k, true);
        n
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (`0` for zero).
    ///
    /// ```
    /// # use sl2_bignum::BigNat;
    /// assert_eq!(BigNat::zero().bit_len(), 0);
    /// assert_eq!(BigNat::from(1u64).bit_len(), 1);
    /// assert_eq!(BigNat::pow2(100).bit_len(), 101);
    /// ```
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() - 1) * LIMB_BITS + (LIMB_BITS - top.leading_zeros() as usize)
            }
        }
    }

    /// Value of bit `k` (bit 0 is least significant).
    pub fn bit(&self, k: usize) -> bool {
        let (limb, off) = (k / LIMB_BITS, k % LIMB_BITS);
        match self.limbs.get(limb) {
            None => false,
            Some(&w) => (w >> off) & 1 == 1,
        }
    }

    /// Sets bit `k` to `v`, growing the limb vector as needed.
    pub fn set_bit(&mut self, k: usize, v: bool) {
        let (limb, off) = (k / LIMB_BITS, k % LIMB_BITS);
        if limb >= self.limbs.len() {
            if !v {
                return;
            }
            self.limbs.resize(limb + 1, 0);
        }
        if v {
            self.limbs[limb] |= 1u64 << off;
        } else {
            self.limbs[limb] &= !(1u64 << off);
        }
        self.normalize();
    }

    /// Number of one-bits. Used by the unary max-register encoding, where
    /// the value written by a process is the count of its set bits.
    pub fn count_ones(&self) -> usize {
        self.limbs.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over the indices of set bits, ascending.
    ///
    /// ```
    /// # use sl2_bignum::BigNat;
    /// let mut n = BigNat::zero();
    /// n.set_bit(3, true);
    /// n.set_bit(70, true);
    /// assert_eq!(n.one_bits().collect::<Vec<_>>(), vec![3, 70]);
    /// ```
    pub fn one_bits(&self) -> impl Iterator<Item = usize> + '_ {
        self.limbs.iter().enumerate().flat_map(|(i, &w)| {
            (0..LIMB_BITS).filter_map(move |b| ((w >> b) & 1 == 1).then_some(i * LIMB_BITS + b))
        })
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Checked subtraction; `None` if `rhs > self`.
    ///
    /// The snapshot construction of §3.2 computes `posAdj − negAdj`
    /// applied to the register; the register value never goes negative
    /// because a process only clears bits it itself set.
    ///
    /// ```
    /// # use sl2_bignum::BigNat;
    /// let five = BigNat::from(5u64);
    /// let three = BigNat::from(3u64);
    /// assert_eq!(five.checked_sub(&three), Some(BigNat::from(2u64)));
    /// assert_eq!(three.checked_sub(&five), None);
    /// ```
    pub fn checked_sub(&self, rhs: &BigNat) -> Option<BigNat> {
        if self < rhs {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = rhs.limbs.get(i).copied().unwrap_or(0);
            let (d1, o1) = a.overflowing_sub(b);
            let (d2, o2) = d1.overflowing_sub(borrow);
            borrow = (o1 as u64) + (o2 as u64);
            out.push(d2);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigNat { limbs: out };
        n.normalize();
        Some(n)
    }

    /// Applies a signed adjustment `+pos − neg` in one step, as done by a
    /// single `fetch&add(R, posAdj − negAdj)` in the paper.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative, which the §3 algorithms
    /// guarantee never happens (a process only un-sets its own bits).
    pub fn apply_adjustment(&self, pos: &BigNat, neg: &BigNat) -> BigNat {
        (self + pos)
            .checked_sub(neg)
            .expect("fetch&add adjustment drove the register negative")
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Raw limbs, little-endian, normalized. Exposed for hashing/tests.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }
}

impl From<u64> for BigNat {
    fn from(v: u64) -> Self {
        let mut n = BigNat { limbs: vec![v] };
        n.normalize();
        n
    }
}

impl From<u128> for BigNat {
    fn from(v: u128) -> Self {
        let mut n = BigNat {
            limbs: vec![v as u64, (v >> 64) as u64],
        };
        n.normalize();
        n
    }
}

impl PartialOrd for BigNat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigNat {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl Add<&BigNat> for &BigNat {
    type Output = BigNat;

    fn add(self, rhs: &BigNat) -> BigNat {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut out = Vec::with_capacity(long.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.limbs.len() {
            let a = long.limbs[i];
            let b = short.limbs.get(i).copied().unwrap_or(0);
            let (s1, o1) = a.overflowing_add(b);
            let (s2, o2) = s1.overflowing_add(carry);
            carry = (o1 as u64) + (o2 as u64);
            out.push(s2);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut n = BigNat { limbs: out };
        n.normalize();
        n
    }
}

impl Add for BigNat {
    type Output = BigNat;
    fn add(self, rhs: BigNat) -> BigNat {
        &self + &rhs
    }
}

impl AddAssign<&BigNat> for BigNat {
    fn add_assign(&mut self, rhs: &BigNat) {
        *self = &*self + rhs;
    }
}

impl Sub<&BigNat> for &BigNat {
    type Output = BigNat;

    /// # Panics
    ///
    /// Panics if `rhs > self`; use [`BigNat::checked_sub`] to handle that
    /// case.
    fn sub(self, rhs: &BigNat) -> BigNat {
        self.checked_sub(rhs).expect("BigNat subtraction underflow")
    }
}

impl SubAssign<&BigNat> for BigNat {
    fn sub_assign(&mut self, rhs: &BigNat) {
        *self = &*self - rhs;
    }
}

impl fmt::Debug for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigNat({:#x})", self)
    }
}

impl fmt::Display for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(self, f)
    }
}

impl fmt::LowerHex for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if f.alternate() {
            write!(f, "0x")?;
        }
        match self.limbs.last() {
            None => write!(f, "0"),
            Some(top) => {
                write!(f, "{:x}", top)?;
                for w in self.limbs.iter().rev().skip(1) {
                    write!(f, "{:016x}", w)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Binary for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.limbs.last() {
            None => write!(f, "0"),
            Some(top) => {
                write!(f, "{:b}", top)?;
                for w in self.limbs.iter().rev().skip(1) {
                    write!(f, "{:064b}", w)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default_and_empty() {
        assert_eq!(BigNat::default(), BigNat::zero());
        assert!(BigNat::zero().is_zero());
        assert_eq!(BigNat::zero().limbs(), &[] as &[u64]);
        assert_eq!(BigNat::from(0u64), BigNat::zero());
    }

    #[test]
    fn add_small() {
        let a = BigNat::from(3u64);
        let b = BigNat::from(4u64);
        assert_eq!((&a + &b).to_u64(), Some(7));
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = BigNat::from(u64::MAX);
        let b = BigNat::from(1u64);
        let s = &a + &b;
        assert_eq!(s.to_u128(), Some(1u128 << 64));
        assert_eq!(s.bit_len(), 65);
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = BigNat::from(1u128 << 64);
        let b = BigNat::from(1u64);
        let d = &a - &b;
        assert_eq!(d.to_u64(), Some(u64::MAX));
    }

    #[test]
    fn checked_sub_underflow_is_none() {
        assert_eq!(BigNat::zero().checked_sub(&BigNat::one()), None);
        let a = BigNat::pow2(100);
        let b = &a + &BigNat::one();
        assert_eq!(a.checked_sub(&b), None);
        assert_eq!(b.checked_sub(&a), Some(BigNat::one()));
    }

    #[test]
    fn pow2_bits() {
        for k in [0usize, 1, 63, 64, 65, 127, 128, 1000] {
            let n = BigNat::pow2(k);
            assert!(n.bit(k));
            assert_eq!(n.count_ones(), 1);
            assert_eq!(n.bit_len(), k + 1);
        }
    }

    #[test]
    fn set_and_clear_bits() {
        let mut n = BigNat::zero();
        n.set_bit(5, true);
        n.set_bit(300, true);
        assert!(n.bit(5) && n.bit(300));
        n.set_bit(300, false);
        assert!(!n.bit(300));
        assert_eq!(n, BigNat::pow2(5));
        // clearing an out-of-range bit is a no-op
        n.set_bit(10_000, false);
        assert_eq!(n, BigNat::pow2(5));
    }

    #[test]
    fn clearing_top_bit_renormalizes() {
        let mut n = BigNat::pow2(64);
        n.set_bit(64, false);
        assert!(n.is_zero());
        assert_eq!(n.limbs(), &[] as &[u64]);
    }

    #[test]
    fn ordering_matches_numeric_order() {
        let vals = [0u128, 1, 2, u64::MAX as u128, 1 << 64, (1 << 64) + 5];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    BigNat::from(a).cmp(&BigNat::from(b)),
                    a.cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
        assert!(BigNat::pow2(1000) > BigNat::from(u128::MAX));
    }

    #[test]
    fn one_bits_roundtrip() {
        let mut n = BigNat::zero();
        let idx = [0usize, 1, 63, 64, 100, 500];
        for &i in &idx {
            n.set_bit(i, true);
        }
        assert_eq!(n.one_bits().collect::<Vec<_>>(), idx);
        assert_eq!(n.count_ones(), idx.len());
    }

    #[test]
    fn apply_adjustment_matches_add_then_sub() {
        let base = BigNat::from(0b1100u64);
        let pos = BigNat::from(0b0010u64);
        let neg = BigNat::from(0b1000u64);
        assert_eq!(base.apply_adjustment(&pos, &neg), BigNat::from(0b0110u64));
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn apply_adjustment_panics_on_negative() {
        BigNat::zero().apply_adjustment(&BigNat::zero(), &BigNat::one());
    }

    #[test]
    fn hex_and_binary_formatting() {
        assert_eq!(format!("{:x}", BigNat::zero()), "0");
        assert_eq!(format!("{:#x}", BigNat::from(255u64)), "0xff");
        assert_eq!(format!("{:b}", BigNat::from(5u64)), "101");
        let big = BigNat::pow2(64);
        assert_eq!(format!("{:x}", big), format!("1{}", "0".repeat(16)));
        assert!(!format!("{:?}", BigNat::zero()).is_empty());
    }

    #[test]
    fn to_u64_u128_bounds() {
        assert_eq!(BigNat::pow2(63).to_u64(), Some(1 << 63));
        assert_eq!(BigNat::pow2(64).to_u64(), None);
        assert_eq!(BigNat::pow2(127).to_u128(), Some(1 << 127));
        assert_eq!(BigNat::pow2(128).to_u128(), None);
    }
}
