//! [`BigNat`]: an arbitrary-precision natural number with an inline
//! 128-bit fast path.
//!
//! The constructions of Section 3 of the paper store, in a single
//! fetch&add register, one bit-string per process interleaved bit-by-bit
//! (process `i` owns bits `i, n+i, 2n+i, ...`). Values written are of the
//! form `2^(K*n+i)` and grow without bound, so a fixed-width integer does
//! not suffice — but the *common* case (small `n` × small values: every
//! tier-1 scenario and most bench points) fits comfortably in 128 bits.
//!
//! `BigNat` therefore has two representations (see DESIGN.md §2):
//!
//! * **inline** — two `u64` limbs on the stack, holding any value below
//!   `2^128` with zero heap traffic;
//! * **heap** — the little-endian `u64` limb vector, only ever used for
//!   values of 129 bits or more.
//!
//! The representation is *canonical*: a value is heap-backed **iff** it
//! needs more than 128 bits. Every operation that can shrink a value
//! (subtraction, bit clearing) re-canonicalizes, so derived equality and
//! hashing are value equality, and `is_inline` is a pure function of the
//! numeric value. Heap limbs are kept *normalized* (no trailing zero
//! limbs), exactly as before the inline variant existed.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Number of bits per limb.
pub const LIMB_BITS: usize = 64;

/// Bits the inline representation can hold.
const INLINE_BITS: usize = 128;

#[inline]
fn pair_to_u128(limbs: &[u64; 2]) -> u128 {
    limbs[0] as u128 | (limbs[1] as u128) << 64
}

#[inline]
fn u128_to_pair(v: u128) -> [u64; 2] {
    [v as u64, (v >> 64) as u64]
}

/// The two storage forms. Canonical invariant: `Heap` limbs are
/// normalized (`last() != Some(&0)`) and `len() >= 3`, i.e. the value
/// does not fit in 128 bits; everything else is `Inline`.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// Little-endian `[lo, hi]`; value `lo + hi·2^64 < 2^128`.
    Inline([u64; 2]),
    /// Little-endian limbs; invariant: normalized and `len >= 3`.
    Heap(Vec<u64>),
}

/// An arbitrary-precision natural number (unsigned).
///
/// # Examples
///
/// ```
/// use sl2_bignum::BigNat;
///
/// let a = BigNat::pow2(200);           // 2^200, far beyond u128
/// let b = &a + &BigNat::from(1u64);
/// assert!(b > a);
/// assert_eq!(b.bit(200), true);
/// assert_eq!(b.bit(0), true);
/// assert_eq!(b.bit(100), false);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigNat {
    repr: Repr,
}

impl Default for BigNat {
    fn default() -> Self {
        BigNat::zero()
    }
}

impl BigNat {
    /// The value zero.
    ///
    /// ```
    /// # use sl2_bignum::BigNat;
    /// assert!(BigNat::zero().is_zero());
    /// ```
    #[inline]
    pub const fn zero() -> Self {
        BigNat {
            repr: Repr::Inline([0, 0]),
        }
    }

    /// The value one.
    #[inline]
    pub const fn one() -> Self {
        BigNat {
            repr: Repr::Inline([1, 0]),
        }
    }

    /// `2^k`, the fetch&add increment used throughout Section 3
    /// ("apply `fetch&add(R, 2^(K*n+i))`").
    ///
    /// ```
    /// # use sl2_bignum::BigNat;
    /// assert_eq!(BigNat::pow2(0), BigNat::from(1u64));
    /// assert_eq!(BigNat::pow2(65).bit(65), true);
    /// assert!(BigNat::pow2(127).is_inline());
    /// assert!(!BigNat::pow2(128).is_inline());
    /// ```
    pub fn pow2(k: usize) -> Self {
        if k < INLINE_BITS {
            BigNat {
                repr: Repr::Inline(u128_to_pair(1u128 << k)),
            }
        } else {
            let (limb, off) = (k / LIMB_BITS, k % LIMB_BITS);
            let mut limbs = vec![0u64; limb + 1];
            limbs[limb] = 1 << off;
            // k >= 128 means limb >= 2, so len >= 3: canonically heap.
            BigNat {
                repr: Repr::Heap(limbs),
            }
        }
    }

    /// Returns `true` if the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Inline([0, 0]))
    }

    /// Returns `true` while the value is held in the inline (two-limb,
    /// allocation-free) representation — by the canonical-form
    /// invariant, exactly when the value fits in 128 bits.
    ///
    /// ```
    /// # use sl2_bignum::BigNat;
    /// assert!(BigNat::from(u128::MAX).is_inline());
    /// assert!(!(&BigNat::from(u128::MAX) + &BigNat::one()).is_inline());
    /// ```
    #[inline]
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline(_))
    }

    /// Number of significant bits (`0` for zero).
    ///
    /// ```
    /// # use sl2_bignum::BigNat;
    /// assert_eq!(BigNat::zero().bit_len(), 0);
    /// assert_eq!(BigNat::from(1u64).bit_len(), 1);
    /// assert_eq!(BigNat::pow2(100).bit_len(), 101);
    /// ```
    #[inline]
    pub fn bit_len(&self) -> usize {
        match &self.repr {
            Repr::Inline(a) => INLINE_BITS - pair_to_u128(a).leading_zeros() as usize,
            Repr::Heap(limbs) => {
                let top = limbs[limbs.len() - 1];
                (limbs.len() - 1) * LIMB_BITS + (LIMB_BITS - top.leading_zeros() as usize)
            }
        }
    }

    /// Value of bit `k` (bit 0 is least significant).
    #[inline]
    pub fn bit(&self, k: usize) -> bool {
        match &self.repr {
            Repr::Inline(a) => k < INLINE_BITS && (pair_to_u128(a) >> k) & 1 == 1,
            Repr::Heap(limbs) => {
                let (limb, off) = (k / LIMB_BITS, k % LIMB_BITS);
                match limbs.get(limb) {
                    None => false,
                    Some(&w) => (w >> off) & 1 == 1,
                }
            }
        }
    }

    /// Sets bit `k` to `v`, spilling to (or shrinking back from) the
    /// heap representation as needed.
    pub fn set_bit(&mut self, k: usize, v: bool) {
        let mut shrunk = false;
        match &mut self.repr {
            Repr::Inline(a) => {
                if k < INLINE_BITS {
                    let mut x = pair_to_u128(a);
                    if v {
                        x |= 1u128 << k;
                    } else {
                        x &= !(1u128 << k);
                    }
                    *a = u128_to_pair(x);
                } else if v {
                    let (limb, off) = (k / LIMB_BITS, k % LIMB_BITS);
                    let mut limbs = Vec::with_capacity(limb + 1);
                    limbs.extend_from_slice(a);
                    limbs.resize(limb + 1, 0);
                    limbs[limb] |= 1 << off;
                    self.repr = Repr::Heap(limbs);
                }
                // Clearing a bit beyond the inline width is a no-op.
            }
            Repr::Heap(limbs) => {
                let (limb, off) = (k / LIMB_BITS, k % LIMB_BITS);
                if limb >= limbs.len() {
                    if !v {
                        return;
                    }
                    limbs.resize(limb + 1, 0);
                }
                if v {
                    limbs[limb] |= 1u64 << off;
                } else {
                    limbs[limb] &= !(1u64 << off);
                    shrunk = true;
                }
            }
        }
        if shrunk {
            self.canonicalize();
        }
    }

    /// Number of one-bits. Used by the unary max-register encoding, where
    /// the value written by a process is the count of its set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        match &self.repr {
            Repr::Inline(a) => pair_to_u128(a).count_ones() as usize,
            Repr::Heap(limbs) => limbs.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// Iterator over the indices of set bits, ascending. Allocation-free
    /// (skips zero runs limb-wise), so the `Layout` decode paths can walk
    /// a borrowed register image without materializing anything.
    ///
    /// ```
    /// # use sl2_bignum::BigNat;
    /// let mut n = BigNat::zero();
    /// n.set_bit(3, true);
    /// n.set_bit(70, true);
    /// assert_eq!(n.one_bits().collect::<Vec<_>>(), vec![3, 70]);
    /// ```
    pub fn one_bits(&self) -> impl Iterator<Item = usize> + '_ {
        self.limbs().iter().enumerate().flat_map(|(i, &w)| OneBits {
            word: w,
            base: i * LIMB_BITS,
        })
    }

    /// Converts to `u64` if the value fits.
    #[inline]
    pub fn to_u64(&self) -> Option<u64> {
        match &self.repr {
            Repr::Inline([lo, 0]) => Some(*lo),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    #[inline]
    pub fn to_u128(&self) -> Option<u128> {
        match &self.repr {
            Repr::Inline(a) => Some(pair_to_u128(a)),
            Repr::Heap(_) => None,
        }
    }

    /// Checked subtraction; `None` if `rhs > self`.
    ///
    /// The snapshot construction of §3.2 computes `posAdj − negAdj`
    /// applied to the register; the register value never goes negative
    /// because a process only clears bits it itself set.
    ///
    /// ```
    /// # use sl2_bignum::BigNat;
    /// let five = BigNat::from(5u64);
    /// let three = BigNat::from(3u64);
    /// assert_eq!(five.checked_sub(&three), Some(BigNat::from(2u64)));
    /// assert_eq!(three.checked_sub(&five), None);
    /// ```
    pub fn checked_sub(&self, rhs: &BigNat) -> Option<BigNat> {
        if self < rhs {
            return None;
        }
        if let (Repr::Inline(a), Repr::Inline(b)) = (&self.repr, &rhs.repr) {
            return Some(BigNat {
                repr: Repr::Inline(u128_to_pair(pair_to_u128(a) - pair_to_u128(b))),
            });
        }
        let (al, bl) = (self.limbs(), rhs.limbs());
        let mut out = Vec::with_capacity(al.len());
        let mut borrow = 0u64;
        for (i, &a) in al.iter().enumerate() {
            let b = bl.get(i).copied().unwrap_or(0);
            let (d1, o1) = a.overflowing_sub(b);
            let (d2, o2) = d1.overflowing_sub(borrow);
            borrow = (o1 as u64) + (o2 as u64);
            out.push(d2);
        }
        debug_assert_eq!(borrow, 0);
        Some(BigNat::from_limb_vec(out))
    }

    /// Applies a signed adjustment `+pos − neg` in one step, as done by a
    /// single `fetch&add(R, posAdj − negAdj)` in the paper.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative, which the §3 algorithms
    /// guarantee never happens (a process only un-sets its own bits).
    pub fn apply_adjustment(&self, pos: &BigNat, neg: &BigNat) -> BigNat {
        let mut out = self.clone();
        out.adjust_in_place(pos, neg);
        out
    }

    /// In-place form of [`BigNat::apply_adjustment`]: adds `pos` then
    /// subtracts `neg` without allocating on the inline path. This is
    /// the critical-section body of `WideFaa::fetch_adjust`.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative; `self` is restored to its
    /// prior value first, so a shared register is left consistent.
    pub fn adjust_in_place(&mut self, pos: &BigNat, neg: &BigNat) {
        *self += pos;
        if !self.try_sub_assign(neg) {
            // Roll back the add before panicking: a WideFaa holds the
            // lock across this call and must not publish a half-applied
            // adjustment to subsequent operations.
            let rolled_back = self.try_sub_assign(pos);
            debug_assert!(rolled_back);
            panic!("fetch&add adjustment drove the register negative");
        }
    }

    /// Subtracts `rhs` in place; returns `false` (leaving `self`
    /// untouched) if `rhs > self`.
    fn try_sub_assign(&mut self, rhs: &BigNat) -> bool {
        if (*self) < *rhs {
            return false;
        }
        let mut shrunk = false;
        match (&mut self.repr, &rhs.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => {
                *a = u128_to_pair(pair_to_u128(a) - pair_to_u128(b));
            }
            (Repr::Heap(v), _) => {
                let rl = match &rhs.repr {
                    Repr::Inline(b) => &b[..],
                    Repr::Heap(b) => &b[..],
                };
                let mut borrow = 0u64;
                for (i, limb) in v.iter_mut().enumerate() {
                    if borrow == 0 && i >= rl.len() {
                        break; // remaining limbs are unchanged
                    }
                    let b = rl.get(i).copied().unwrap_or(0);
                    let (d1, o1) = limb.overflowing_sub(b);
                    let (d2, o2) = d1.overflowing_sub(borrow);
                    *limb = d2;
                    borrow = (o1 as u64) + (o2 as u64);
                }
                debug_assert_eq!(borrow, 0);
                shrunk = true;
            }
            (Repr::Inline(_), Repr::Heap(_)) => {
                unreachable!("canonical heap value exceeds any inline value; caught by `<`")
            }
        }
        if shrunk {
            self.canonicalize();
        }
        true
    }

    /// Restores the canonical form after a heap value may have shrunk:
    /// drops trailing zero limbs and converts to inline if ≤ 2 remain.
    fn canonicalize(&mut self) {
        if let Repr::Heap(v) = &mut self.repr {
            while v.last() == Some(&0) {
                v.pop();
            }
            if v.len() <= 2 {
                let lo = v.first().copied().unwrap_or(0);
                let hi = v.get(1).copied().unwrap_or(0);
                self.repr = Repr::Inline([lo, hi]);
            }
        }
    }

    /// Builds the canonical representation from little-endian limbs.
    fn from_limb_vec(limbs: Vec<u64>) -> Self {
        let mut n = BigNat {
            repr: Repr::Heap(limbs),
        };
        n.canonicalize();
        n
    }

    /// Raw limbs, little-endian, normalized (no trailing zeros; empty
    /// for zero). Exposed for hashing/tests; works for both
    /// representations.
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(a) => {
                let len = if a[1] != 0 {
                    2
                } else if a[0] != 0 {
                    1
                } else {
                    0
                };
                &a[..len]
            }
            Repr::Heap(limbs) => limbs,
        }
    }
}

/// Limb-wise set-bit cursor used by [`BigNat::one_bits`]; strips the
/// lowest set bit per step, so a limb costs `popcount` iterations, not
/// 64.
struct OneBits {
    word: u64,
    base: usize,
}

impl Iterator for OneBits {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + b)
    }
}

impl From<u64> for BigNat {
    #[inline]
    fn from(v: u64) -> Self {
        BigNat {
            repr: Repr::Inline([v, 0]),
        }
    }
}

impl From<u128> for BigNat {
    #[inline]
    fn from(v: u128) -> Self {
        BigNat {
            repr: Repr::Inline(u128_to_pair(v)),
        }
    }
}

impl PartialOrd for BigNat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigNat {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => pair_to_u128(a).cmp(&pair_to_u128(b)),
            // Canonical heap values always exceed 128 bits.
            (Repr::Inline(_), Repr::Heap(_)) => Ordering::Less,
            (Repr::Heap(_), Repr::Inline(_)) => Ordering::Greater,
            (Repr::Heap(a), Repr::Heap(b)) => match a.len().cmp(&b.len()) {
                Ordering::Equal => a
                    .iter()
                    .rev()
                    .zip(b.iter().rev())
                    .map(|(x, y)| x.cmp(y))
                    .find(|&ord| ord != Ordering::Equal)
                    .unwrap_or(Ordering::Equal),
                ord => ord,
            },
        }
    }
}

impl Add<&BigNat> for &BigNat {
    type Output = BigNat;

    fn add(self, rhs: &BigNat) -> BigNat {
        if let (Repr::Inline(a), Repr::Inline(b)) = (&self.repr, &rhs.repr) {
            let (x, y) = (pair_to_u128(a), pair_to_u128(b));
            return match x.checked_add(y) {
                Some(s) => BigNat {
                    repr: Repr::Inline(u128_to_pair(s)),
                },
                None => {
                    let s = x.wrapping_add(y);
                    let pair = u128_to_pair(s);
                    BigNat {
                        repr: Repr::Heap(vec![pair[0], pair[1], 1]),
                    }
                }
            };
        }
        let (long, short) = if self.limbs().len() >= rhs.limbs().len() {
            (self.limbs(), rhs.limbs())
        } else {
            (rhs.limbs(), self.limbs())
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, o1) = a.overflowing_add(b);
            let (s2, o2) = s1.overflowing_add(carry);
            carry = (o1 as u64) + (o2 as u64);
            out.push(s2);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigNat::from_limb_vec(out)
    }
}

impl Add for BigNat {
    type Output = BigNat;
    fn add(self, rhs: BigNat) -> BigNat {
        &self + &rhs
    }
}

impl AddAssign<&BigNat> for BigNat {
    /// In-place addition: allocation-free while the sum stays inline,
    /// and carry propagation directly into the existing limb vector on
    /// the heap path (no clone-add-store round trip).
    fn add_assign(&mut self, rhs: &BigNat) {
        match (&mut self.repr, &rhs.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => {
                let (x, y) = (pair_to_u128(a), pair_to_u128(b));
                match x.checked_add(y) {
                    Some(s) => *a = u128_to_pair(s),
                    None => {
                        let pair = u128_to_pair(x.wrapping_add(y));
                        // Spill: reserve one spare limb so the next few
                        // carries don't immediately reallocate.
                        let mut limbs = Vec::with_capacity(4);
                        limbs.extend_from_slice(&[pair[0], pair[1], 1]);
                        self.repr = Repr::Heap(limbs);
                    }
                }
            }
            (Repr::Heap(v), _) => {
                let rl = match &rhs.repr {
                    Repr::Inline(b) => &b[..],
                    Repr::Heap(b) => &b[..],
                };
                if v.len() < rl.len() {
                    v.reserve(rl.len() + 1 - v.len());
                    v.resize(rl.len(), 0);
                }
                let mut carry = 0u64;
                for (i, limb) in v.iter_mut().enumerate() {
                    if carry == 0 && i >= rl.len() {
                        break; // remaining limbs are unchanged
                    }
                    let b = rl.get(i).copied().unwrap_or(0);
                    let (s1, o1) = limb.overflowing_add(b);
                    let (s2, o2) = s1.overflowing_add(carry);
                    *limb = s2;
                    carry = (o1 as u64) + (o2 as u64);
                }
                if carry != 0 {
                    v.push(carry);
                }
            }
            (Repr::Inline(_), Repr::Heap(_)) => {
                // Rare mixed case: the result is heap-sized anyway.
                *self = &*self + rhs;
            }
        }
    }
}

impl Sub<&BigNat> for &BigNat {
    type Output = BigNat;

    /// # Panics
    ///
    /// Panics if `rhs > self`; use [`BigNat::checked_sub`] to handle that
    /// case.
    fn sub(self, rhs: &BigNat) -> BigNat {
        self.checked_sub(rhs).expect("BigNat subtraction underflow")
    }
}

impl SubAssign<&BigNat> for BigNat {
    /// In-place subtraction: allocation-free in every case (borrow
    /// propagation into the existing limbs; shrinking below 129 bits
    /// converts back to the inline form, which only releases memory).
    ///
    /// # Panics
    ///
    /// Panics if `rhs > self`.
    fn sub_assign(&mut self, rhs: &BigNat) {
        let ok = self.try_sub_assign(rhs);
        assert!(ok, "BigNat subtraction underflow");
    }
}

impl fmt::Debug for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigNat({:#x})", self)
    }
}

impl fmt::Display for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(self, f)
    }
}

impl fmt::LowerHex for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if f.alternate() {
            write!(f, "0x")?;
        }
        let limbs = self.limbs();
        match limbs.last() {
            None => write!(f, "0"),
            Some(top) => {
                write!(f, "{:x}", top)?;
                for w in limbs.iter().rev().skip(1) {
                    write!(f, "{:016x}", w)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Binary for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let limbs = self.limbs();
        match limbs.last() {
            None => write!(f, "0"),
            Some(top) => {
                write!(f, "{:b}", top)?;
                for w in limbs.iter().rev().skip(1) {
                    write!(f, "{:064b}", w)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default_and_empty() {
        assert_eq!(BigNat::default(), BigNat::zero());
        assert!(BigNat::zero().is_zero());
        assert_eq!(BigNat::zero().limbs(), &[] as &[u64]);
        assert_eq!(BigNat::from(0u64), BigNat::zero());
    }

    #[test]
    fn add_small() {
        let a = BigNat::from(3u64);
        let b = BigNat::from(4u64);
        assert_eq!((&a + &b).to_u64(), Some(7));
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = BigNat::from(u64::MAX);
        let b = BigNat::from(1u64);
        let s = &a + &b;
        assert_eq!(s.to_u128(), Some(1u128 << 64));
        assert_eq!(s.bit_len(), 65);
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = BigNat::from(1u128 << 64);
        let b = BigNat::from(1u64);
        let d = &a - &b;
        assert_eq!(d.to_u64(), Some(u64::MAX));
    }

    #[test]
    fn checked_sub_underflow_is_none() {
        assert_eq!(BigNat::zero().checked_sub(&BigNat::one()), None);
        let a = BigNat::pow2(100);
        let b = &a + &BigNat::one();
        assert_eq!(a.checked_sub(&b), None);
        assert_eq!(b.checked_sub(&a), Some(BigNat::one()));
    }

    #[test]
    fn pow2_bits() {
        for k in [0usize, 1, 63, 64, 65, 127, 128, 1000] {
            let n = BigNat::pow2(k);
            assert!(n.bit(k));
            assert_eq!(n.count_ones(), 1);
            assert_eq!(n.bit_len(), k + 1);
            assert_eq!(n.is_inline(), k < 128, "canonical form at k={k}");
        }
    }

    #[test]
    fn set_and_clear_bits() {
        let mut n = BigNat::zero();
        n.set_bit(5, true);
        n.set_bit(300, true);
        assert!(n.bit(5) && n.bit(300));
        n.set_bit(300, false);
        assert!(!n.bit(300));
        assert_eq!(n, BigNat::pow2(5));
        // clearing an out-of-range bit is a no-op
        n.set_bit(10_000, false);
        assert_eq!(n, BigNat::pow2(5));
    }

    #[test]
    fn clearing_top_bit_renormalizes() {
        let mut n = BigNat::pow2(64);
        n.set_bit(64, false);
        assert!(n.is_zero());
        assert_eq!(n.limbs(), &[] as &[u64]);
    }

    #[test]
    fn ordering_matches_numeric_order() {
        let vals = [0u128, 1, 2, u64::MAX as u128, 1 << 64, (1 << 64) + 5];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    BigNat::from(a).cmp(&BigNat::from(b)),
                    a.cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
        assert!(BigNat::pow2(1000) > BigNat::from(u128::MAX));
    }

    #[test]
    fn one_bits_roundtrip() {
        let mut n = BigNat::zero();
        let idx = [0usize, 1, 63, 64, 100, 500];
        for &i in &idx {
            n.set_bit(i, true);
        }
        assert_eq!(n.one_bits().collect::<Vec<_>>(), idx);
        assert_eq!(n.count_ones(), idx.len());
    }

    #[test]
    fn apply_adjustment_matches_add_then_sub() {
        let base = BigNat::from(0b1100u64);
        let pos = BigNat::from(0b0010u64);
        let neg = BigNat::from(0b1000u64);
        assert_eq!(base.apply_adjustment(&pos, &neg), BigNat::from(0b0110u64));
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn apply_adjustment_panics_on_negative() {
        BigNat::zero().apply_adjustment(&BigNat::zero(), &BigNat::one());
    }

    #[test]
    fn adjust_in_place_rolls_back_before_panicking() {
        let mut n = BigNat::from(6u64);
        let pos = BigNat::from(1u64);
        let neg = BigNat::from(100u64);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            n.adjust_in_place(&pos, &neg);
        }));
        assert!(err.is_err());
        assert_eq!(n, BigNat::from(6u64), "register restored after rollback");
    }

    #[test]
    fn hex_and_binary_formatting() {
        assert_eq!(format!("{:x}", BigNat::zero()), "0");
        assert_eq!(format!("{:#x}", BigNat::from(255u64)), "0xff");
        assert_eq!(format!("{:b}", BigNat::from(5u64)), "101");
        let big = BigNat::pow2(64);
        assert_eq!(format!("{:x}", big), format!("1{}", "0".repeat(16)));
        assert!(!format!("{:?}", BigNat::zero()).is_empty());
    }

    #[test]
    fn to_u64_u128_bounds() {
        assert_eq!(BigNat::pow2(63).to_u64(), Some(1 << 63));
        assert_eq!(BigNat::pow2(64).to_u64(), None);
        assert_eq!(BigNat::pow2(127).to_u128(), Some(1 << 127));
        assert_eq!(BigNat::pow2(128).to_u128(), None);
    }

    #[test]
    fn inline_spills_on_overflow_and_shrinks_back() {
        let mut n = BigNat::from(u128::MAX);
        assert!(n.is_inline());
        n += &BigNat::one(); // 2^128: spills
        assert!(!n.is_inline());
        assert_eq!(n, BigNat::pow2(128));
        n -= &BigNat::one(); // back under the boundary: shrinks
        assert!(n.is_inline());
        assert_eq!(n, BigNat::from(u128::MAX));
    }

    #[test]
    fn add_assign_matches_add_across_the_boundary() {
        let cases = [
            (BigNat::from(7u64), BigNat::from(9u64)),
            (BigNat::from(u128::MAX), BigNat::from(u128::MAX)),
            (BigNat::pow2(200), BigNat::from(u128::MAX)),
            (BigNat::from(3u64), BigNat::pow2(300)),
            (BigNat::pow2(200), BigNat::pow2(200)),
        ];
        for (a, b) in cases {
            let mut x = a.clone();
            x += &b;
            assert_eq!(x, &a + &b, "{a:?} += {b:?}");
        }
    }

    #[test]
    fn sub_assign_matches_checked_sub_across_the_boundary() {
        let cases = [
            (BigNat::from(9u64), BigNat::from(7u64)),
            (BigNat::pow2(128), BigNat::one()),
            (BigNat::pow2(300), BigNat::pow2(299)),
            (&BigNat::pow2(200) + &BigNat::from(5u64), BigNat::pow2(200)),
        ];
        for (a, b) in cases {
            let mut x = a.clone();
            x -= &b;
            assert_eq!(Some(x), a.checked_sub(&b), "{a:?} -= {b:?}");
        }
    }

    #[test]
    fn canonical_form_is_a_function_of_the_value() {
        // Reach 2^127 both ways: directly, and by shrinking from above.
        let direct = BigNat::pow2(127);
        let mut shrunk = BigNat::pow2(400);
        shrunk.set_bit(127, true);
        shrunk.set_bit(400, false);
        assert_eq!(direct, shrunk);
        assert!(shrunk.is_inline());
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |n: &BigNat| {
            let mut s = DefaultHasher::new();
            n.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&direct), h(&shrunk));
    }
}
