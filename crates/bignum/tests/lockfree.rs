//! Stress coverage for the PR-6 lock-free inline regime: migration
//! under contention across the 2^127 tag boundary and the 2^128 inline
//! limit, and seeded differential workloads that must land the
//! lock-free register and its spinlocked twin on bit-identical values.
//!
//! Under `--features force_spinlock` the same suite runs with every
//! register on the portable locked path — the assertions are mode-
//! independent by construction, which is exactly the differential
//! guarantee ISSUE 6 asks for (the CI fallback leg runs this file in
//! both configurations).

use std::sync::Arc;

use sl2_bignum::{BigNat, Layout, WideFaa};

/// xorshift64* — deterministic per-seed op streams with no external RNG
/// crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[test]
fn contended_migration_crossing_the_tag_boundary_is_exact() {
    // 8 threads × 128 adds of 2^120 sum to exactly 2^127: the crossing
    // into the tagged regime happens mid-race, with every thread
    // hammering the cell as the migration CAS lands. No increment may
    // be lost on either side of the boundary.
    let r = Arc::new(WideFaa::new());
    let delta = BigNat::pow2(120);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let r = Arc::clone(&r);
            let delta = delta.clone();
            s.spawn(move || {
                for _ in 0..16 {
                    r.fetch_add(&delta);
                }
            });
        }
    });
    assert_eq!(r.load(), BigNat::pow2(127));
    assert_eq!(r.bit_len(), 128);
    assert!(
        !r.is_inline_lock_free(),
        "a register at 2^127 must have migrated"
    );
    // The migrated register keeps full fetch&add semantics.
    assert_eq!(r.fetch_add(&BigNat::one()), BigNat::pow2(127));
}

#[test]
fn contended_migration_crossing_two_to_the_128_is_exact() {
    // 8 threads × 100 adds of 2^124 = 800·2^124 ≈ 2^133.6 — the race
    // crosses both the tag bit and BigNat's own inline limit while
    // threads from before the migration are still mid-operation.
    let r = Arc::new(WideFaa::new());
    let delta = BigNat::pow2(124);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let r = Arc::clone(&r);
            let delta = delta.clone();
            s.spawn(move || {
                for _ in 0..100 {
                    r.fetch_add(&delta);
                }
            });
        }
    });
    let mut want = BigNat::zero();
    for _ in 0..800 {
        want += &delta;
    }
    assert_eq!(r.load(), want);
    assert!(!r.load().is_inline(), "800·2^124 needs more than 128 bits");
}

#[test]
fn contended_adjusts_migrate_without_losing_lane_bits() {
    // Each thread owns one lane of a 4-process layout and bounces its
    // own lane value up and down with fetch_adjust while a heap-sized
    // add from thread 0 forces migration mid-race. Single-writer lanes
    // mean the final per-lane values are deterministic.
    let layout = Layout::new(4);
    let r = Arc::new(WideFaa::new());
    std::thread::scope(|s| {
        for t in 0..4usize {
            let r = Arc::clone(&r);
            s.spawn(move || {
                let mut lane = BigNat::zero();
                for step in 1..=200u64 {
                    // Deterministic walk: mostly up, every 5th step dips.
                    let next = if step % 5 == 0 { step - 1 } else { step };
                    let next = BigNat::from(next);
                    let (pos, neg) = layout.adjustments(t, &lane, &next);
                    r.adjust(&pos, &neg);
                    lane = next;
                    if t == 0 && step == 100 {
                        // Force the inline→heap migration mid-workload.
                        r.add(&BigNat::pow2(1000));
                    }
                }
            });
        }
    });
    let v = r.load();
    assert!(v.bit(1000), "the migration-forcing bit must survive");
    for t in 0..4usize {
        // Final lane value: 200 is divisible by 5, so the last step
        // dipped to 199.
        let mut lane = BigNat::zero();
        for g in v.one_bits().filter(|g| g % 4 == t && *g < 1000) {
            lane.set_bit(g / 4, true);
        }
        assert_eq!(lane, BigNat::from(199u64), "lane {t}");
    }
}

#[test]
fn seeded_threaded_workload_is_bit_identical_to_the_spinlocked_twin() {
    // The differential harness: the same seeded, single-writer-per-lane
    // workload runs against a default register and a spinlocked twin.
    // Every op commutes across lanes (adds/adjusts touch only the
    // caller's lane), so the final image is schedule-independent — any
    // divergence is a lost or torn update in one of the two
    // implementations.
    let layout = Layout::new(8);
    let run = |reg: &Arc<WideFaa>| {
        std::thread::scope(|s| {
            for t in 0..8usize {
                let reg = Arc::clone(reg);
                s.spawn(move || {
                    let mut rng = Rng(0x9e37_79b9_7f4a_7c15 ^ (t as u64 + 1));
                    let mut lane = 0u64;
                    for _ in 0..400 {
                        match rng.next() % 4 {
                            0 | 1 => {
                                // Grow the lane (unary-ish add).
                                let next = lane + 1 + rng.next() % 3;
                                let (pos, neg) =
                                    layout.adjustments(t, &BigNat::from(lane), &BigNat::from(next));
                                reg.adjust(&pos, &neg);
                                lane = next;
                            }
                            2 => {
                                // Rewrite the lane downward.
                                let next = lane / 2;
                                let (pos, neg) =
                                    layout.adjustments(t, &BigNat::from(lane), &BigNat::from(next));
                                reg.adjust(&pos, &neg);
                                lane = next;
                            }
                            _ => {
                                // Probe; the decoded own-lane value must
                                // match the thread's local shadow.
                                let got = reg
                                    .read_with(|v| layout.decode_u64(t, v).expect("lane fits u64"));
                                assert_eq!(got, lane, "thread {t} lane probe");
                            }
                        }
                    }
                });
            }
        });
        reg.load()
    };

    let lock_free = Arc::new(WideFaa::new());
    let spinlocked = Arc::new(WideFaa::with_value_spinlocked(BigNat::zero()));
    let a = run(&lock_free);
    let b = run(&spinlocked);
    assert_eq!(a, b, "lock-free and spinlocked runs diverged");
    for t in 0..8 {
        assert_eq!(
            layout.decode_u64(t, &a),
            layout.decode_u64(t, &b),
            "lane {t}"
        );
    }
}

#[test]
fn mixed_fleet_of_lock_free_and_spinlocked_registers_agree_under_load() {
    // Same seeded workload applied in lockstep to both flavors from the
    // same threads: after every batch the two registers must agree.
    let a = Arc::new(WideFaa::new());
    let b = Arc::new(WideFaa::with_value_spinlocked(BigNat::zero()));
    std::thread::scope(|s| {
        for t in 0..6usize {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            s.spawn(move || {
                let mut rng = Rng(0xdead_beef ^ (t as u64).wrapping_mul(0x1234_5678));
                for _ in 0..500 {
                    // Own-lane add at a 20-bit stride: commutative, and
                    // six lanes of 500 small adds stay inline (each
                    // lane's running sum is below 2^19).
                    let small = rng.next() % 1000;
                    let mut delta = BigNat::zero();
                    for bit in 0..10 {
                        if (small >> bit) & 1 == 1 {
                            delta.set_bit(t * 20 + bit, true);
                        }
                    }
                    a.add(&delta);
                    b.add(&delta);
                }
            });
        }
    });
    assert_eq!(a.load(), b.load());
    assert_eq!(a.bit_len(), b.bit_len());
}
