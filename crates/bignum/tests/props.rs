//! Property tests for `BigNat` arithmetic laws and the interleaved codec.

use proptest::prelude::*;
use sl2_bignum::{BigNat, Layout};

/// Strategy producing arbitrary `BigNat`s up to a few hundred bits.
fn big_nat() -> impl Strategy<Value = BigNat> {
    prop::collection::vec(any::<u64>(), 0..6).prop_map(|limbs| {
        let mut n = BigNat::zero();
        for (i, w) in limbs.iter().enumerate() {
            for b in 0..64 {
                if (w >> b) & 1 == 1 {
                    n.set_bit(i * 64 + b, true);
                }
            }
        }
        n
    })
}

proptest! {
    #[test]
    fn add_commutative(a in big_nat(), b in big_nat()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in big_nat(), b in big_nat(), c in big_nat()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_identity(a in big_nat()) {
        prop_assert_eq!(&a + &BigNat::zero(), a.clone());
    }

    #[test]
    fn sub_inverts_add(a in big_nat(), b in big_nat()) {
        let s = &a + &b;
        prop_assert_eq!(s.checked_sub(&b), Some(a.clone()));
        prop_assert_eq!(s.checked_sub(&a), Some(b.clone()));
    }

    #[test]
    fn checked_sub_total_order(a in big_nat(), b in big_nat()) {
        // exactly one of a-b, b-a exists unless equal (then both are zero)
        match (a.checked_sub(&b), b.checked_sub(&a)) {
            (Some(x), Some(y)) => {
                prop_assert!(x.is_zero() && y.is_zero());
                prop_assert_eq!(&a, &b);
            }
            (Some(_), None) => prop_assert!(a > b),
            (None, Some(_)) => prop_assert!(b > a),
            (None, None) => prop_assert!(false, "subtraction must succeed one way"),
        }
    }

    #[test]
    fn u128_roundtrip(v in any::<u128>()) {
        prop_assert_eq!(BigNat::from(v).to_u128(), Some(v));
    }

    #[test]
    fn ordering_agrees_with_u128(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(BigNat::from(a).cmp(&BigNat::from(b)), a.cmp(&b));
    }

    #[test]
    fn bit_len_bounds(a in big_nat()) {
        let len = a.bit_len();
        if len > 0 {
            prop_assert!(a.bit(len - 1));
        }
        prop_assert!(!a.bit(len));
        prop_assert!(!a.bit(len + 100));
    }

    #[test]
    fn one_bits_reconstruct(a in big_nat()) {
        let mut r = BigNat::zero();
        for b in a.one_bits() {
            r.set_bit(b, true);
        }
        prop_assert_eq!(r, a.clone());
    }

    #[test]
    fn lane_roundtrip(n in 1usize..6, i in 0usize..6, v in big_nat()) {
        let i = i % n;
        let layout = Layout::new(n);
        prop_assert_eq!(layout.decode(i, &layout.encode(i, &v)), v.clone());
    }

    #[test]
    fn lanes_never_collide(n in 2usize..6, v in big_nat(), w in big_nat()) {
        let layout = Layout::new(n);
        let a = layout.encode(0, &v);
        let b = layout.encode(1, &w);
        let sum = &a + &b;
        prop_assert_eq!(layout.decode(0, &sum), v.clone());
        prop_assert_eq!(layout.decode(1, &sum), w.clone());
    }

    #[test]
    fn adjustments_move_lane(n in 1usize..5, i in 0usize..5, old in big_nat(), new in big_nat()) {
        let i = i % n;
        let layout = Layout::new(n);
        let (pos, neg) = layout.adjustments(i, &old, &new);
        let reg = layout.encode(i, &old);
        let reg2 = reg.apply_adjustment(&pos, &neg);
        prop_assert_eq!(layout.decode(i, &reg2), new.clone());
    }

    #[test]
    fn decode_all_consistent(n in 1usize..5, v in big_nat()) {
        let layout = Layout::new(n);
        let reg = layout.encode(n - 1, &v);
        let all = layout.decode_all(&reg);
        prop_assert_eq!(all.len(), n);
        prop_assert_eq!(all[n - 1].clone(), v.clone());
        for lane in &all[..n - 1] {
            prop_assert!(lane.is_zero());
        }
    }
}

// ---------------------------------------------------------------------
// Inline/heap hybrid representation: cross-checks against a plain
// limb-vector reference model, with operands straddling the 128-bit
// spill boundary (see DESIGN.md §2).
// ---------------------------------------------------------------------

/// Reference model: a bare little-endian limb vector with the textbook
/// schoolbook algorithms, independent of `BigNat`'s representation.
mod model {
    pub fn normalize(mut v: Vec<u64>) -> Vec<u64> {
        while v.last() == Some(&0) {
            v.pop();
        }
        v
    }

    pub fn add(a: &[u64], b: &[u64]) -> Vec<u64> {
        let n = a.len().max(b.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let x = a.get(i).copied().unwrap_or(0);
            let y = b.get(i).copied().unwrap_or(0);
            let (s1, o1) = x.overflowing_add(y);
            let (s2, o2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (o1 as u64) + (o2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        normalize(out)
    }

    /// `a - b`; caller guarantees `a >= b`.
    pub fn sub(a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for (i, &x) in a.iter().enumerate() {
            let y = b.get(i).copied().unwrap_or(0);
            let (d1, o1) = x.overflowing_sub(y);
            let (d2, o2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (o1 as u64) + (o2 as u64);
        }
        assert_eq!(borrow, 0, "model subtraction underflow");
        normalize(out)
    }
}

/// Strategy whose values cluster around the 128-bit spill boundary:
/// 0–3 limbs, so sums and differences cross in and out of the inline
/// representation.
fn boundary_nat() -> impl Strategy<Value = BigNat> {
    prop::collection::vec(any::<u64>(), 0..4).prop_map(|limbs| {
        let mut n = BigNat::zero();
        for (i, w) in limbs.iter().enumerate() {
            for b in 0..64 {
                if (w >> b) & 1 == 1 {
                    n.set_bit(i * 64 + b, true);
                }
            }
        }
        n
    })
}

/// The canonical-form invariant: heap-backed iff the value needs more
/// than 128 bits, and heap limbs normalized.
fn assert_canonical(n: &BigNat, ctx: &str) {
    assert_eq!(
        n.is_inline(),
        n.bit_len() <= 128,
        "{ctx}: representation must be a function of the value ({:?})",
        n
    );
    assert_ne!(n.limbs().last(), Some(&0), "{ctx}: unnormalized limbs");
}

proptest! {
    #[test]
    fn add_matches_reference_model_across_spill(a in boundary_nat(), b in boundary_nat()) {
        let sum = &a + &b;
        let expect = model::add(a.limbs(), b.limbs());
        prop_assert_eq!(sum.limbs(), expect.as_slice());
        assert_canonical(&sum, "add");
    }

    #[test]
    fn add_assign_agrees_with_add_across_spill(a in boundary_nat(), b in boundary_nat()) {
        let mut x = a.clone();
        x += &b;
        prop_assert_eq!(&x, &(&a + &b));
        assert_canonical(&x, "add_assign");
    }

    #[test]
    fn sub_matches_reference_model_across_spill(a in boundary_nat(), b in boundary_nat()) {
        let (hi, lo) = if a >= b { (&a, &b) } else { (&b, &a) };
        let diff = hi - lo;
        let expect = model::sub(hi.limbs(), lo.limbs());
        prop_assert_eq!(diff.limbs(), expect.as_slice());
        assert_canonical(&diff, "sub");
    }

    #[test]
    fn sub_assign_shrinks_back_under_the_boundary(a in boundary_nat(), b in boundary_nat()) {
        // a + b - b == a, exercising spill on the way up and (when a is
        // small) shrink-to-inline on the way down.
        let mut x = &a + &b;
        x -= &b;
        prop_assert_eq!(&x, &a);
        assert_canonical(&x, "sub_assign roundtrip");
        prop_assert_eq!(x.is_inline(), a.is_inline());
    }

    #[test]
    fn adjustment_matches_add_then_sub_across_spill(
        base in boundary_nat(), pos in boundary_nat(), extra in boundary_nat()
    ) {
        // neg is constructed ≤ base + pos so the adjustment is legal.
        let sum = &base + &pos;
        let neg = if extra > sum { sum.clone() } else { extra };
        let eager = sum.checked_sub(&neg).expect("neg <= base + pos");
        let adjusted = base.apply_adjustment(&pos, &neg);
        prop_assert_eq!(&adjusted, &eager);
        assert_canonical(&adjusted, "apply_adjustment");
        let mut in_place = base.clone();
        in_place.adjust_in_place(&pos, &neg);
        prop_assert_eq!(&in_place, &eager);
        assert_canonical(&in_place, "adjust_in_place");
    }

    #[test]
    fn bit_ops_agree_across_spill(a in boundary_nat(), k in 0usize..200, v in any::<bool>()) {
        let mut n = a.clone();
        n.set_bit(k, v);
        assert_canonical(&n, "set_bit");
        prop_assert_eq!(n.bit(k), v);
        // count_ones / one_bits stay consistent across representations.
        prop_assert_eq!(n.count_ones(), n.one_bits().count());
        let expected_ones = a.count_ones()
            + usize::from(v && !a.bit(k))
            - usize::from(!v && a.bit(k));
        prop_assert_eq!(n.count_ones(), expected_ones);
    }

    #[test]
    fn spill_and_shrink_roundtrip(lo in any::<u128>(), k in 128usize..300) {
        // Start inline, spill via a high bit, shrink back by clearing it.
        let mut n = BigNat::from(lo);
        prop_assert!(n.is_inline());
        n.set_bit(k, true);
        prop_assert!(!n.is_inline());
        assert_canonical(&n, "after spill");
        n.set_bit(k, false);
        prop_assert!(n.is_inline());
        prop_assert_eq!(&n, &BigNat::from(lo));
        assert_canonical(&n, "after shrink");
    }

    #[test]
    fn inline_arithmetic_agrees_with_u128(a in any::<u128>() , b in any::<u128>()) {
        let (x, y) = (BigNat::from(a), BigNat::from(b));
        match a.checked_add(b) {
            Some(s) => prop_assert_eq!((&x + &y).to_u128(), Some(s)),
            None => {
                let s = &x + &y;
                prop_assert!(!s.is_inline());
                prop_assert_eq!(s.bit_len(), 129);
            }
        }
        if a >= b {
            prop_assert_eq!((&x - &y).to_u128(), Some(a - b));
        }
    }
}

proptest! {
    #[test]
    fn decode_unary_matches_per_bit_filter(n in 1usize..9, i in 0usize..9, v in boundary_nat()) {
        // The limb-wise masked-popcount decode must agree with the
        // obvious per-set-bit definition on arbitrary (non-prefix)
        // registers, across the inline/heap boundary.
        let i = i % n;
        let layout = Layout::new(n);
        let naive = v.one_bits().filter(|g| g % n == i).count() as u64;
        prop_assert_eq!(layout.decode_unary(i, &v), naive);
    }
}
