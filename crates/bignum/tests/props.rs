//! Property tests for `BigNat` arithmetic laws and the interleaved codec.

use proptest::prelude::*;
use sl2_bignum::{BigNat, Layout};

/// Strategy producing arbitrary `BigNat`s up to a few hundred bits.
fn big_nat() -> impl Strategy<Value = BigNat> {
    prop::collection::vec(any::<u64>(), 0..6).prop_map(|limbs| {
        let mut n = BigNat::zero();
        for (i, w) in limbs.iter().enumerate() {
            for b in 0..64 {
                if (w >> b) & 1 == 1 {
                    n.set_bit(i * 64 + b, true);
                }
            }
        }
        n
    })
}

proptest! {
    #[test]
    fn add_commutative(a in big_nat(), b in big_nat()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in big_nat(), b in big_nat(), c in big_nat()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_identity(a in big_nat()) {
        prop_assert_eq!(&a + &BigNat::zero(), a.clone());
    }

    #[test]
    fn sub_inverts_add(a in big_nat(), b in big_nat()) {
        let s = &a + &b;
        prop_assert_eq!(s.checked_sub(&b), Some(a.clone()));
        prop_assert_eq!(s.checked_sub(&a), Some(b.clone()));
    }

    #[test]
    fn checked_sub_total_order(a in big_nat(), b in big_nat()) {
        // exactly one of a-b, b-a exists unless equal (then both are zero)
        match (a.checked_sub(&b), b.checked_sub(&a)) {
            (Some(x), Some(y)) => {
                prop_assert!(x.is_zero() && y.is_zero());
                prop_assert_eq!(&a, &b);
            }
            (Some(_), None) => prop_assert!(a > b),
            (None, Some(_)) => prop_assert!(b > a),
            (None, None) => prop_assert!(false, "subtraction must succeed one way"),
        }
    }

    #[test]
    fn u128_roundtrip(v in any::<u128>()) {
        prop_assert_eq!(BigNat::from(v).to_u128(), Some(v));
    }

    #[test]
    fn ordering_agrees_with_u128(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(BigNat::from(a).cmp(&BigNat::from(b)), a.cmp(&b));
    }

    #[test]
    fn bit_len_bounds(a in big_nat()) {
        let len = a.bit_len();
        if len > 0 {
            prop_assert!(a.bit(len - 1));
        }
        prop_assert!(!a.bit(len));
        prop_assert!(!a.bit(len + 100));
    }

    #[test]
    fn one_bits_reconstruct(a in big_nat()) {
        let mut r = BigNat::zero();
        for b in a.one_bits() {
            r.set_bit(b, true);
        }
        prop_assert_eq!(r, a.clone());
    }

    #[test]
    fn lane_roundtrip(n in 1usize..6, i in 0usize..6, v in big_nat()) {
        let i = i % n;
        let layout = Layout::new(n);
        prop_assert_eq!(layout.decode(i, &layout.encode(i, &v)), v.clone());
    }

    #[test]
    fn lanes_never_collide(n in 2usize..6, v in big_nat(), w in big_nat()) {
        let layout = Layout::new(n);
        let a = layout.encode(0, &v);
        let b = layout.encode(1, &w);
        let sum = &a + &b;
        prop_assert_eq!(layout.decode(0, &sum), v.clone());
        prop_assert_eq!(layout.decode(1, &sum), w.clone());
    }

    #[test]
    fn adjustments_move_lane(n in 1usize..5, i in 0usize..5, old in big_nat(), new in big_nat()) {
        let i = i % n;
        let layout = Layout::new(n);
        let (pos, neg) = layout.adjustments(i, &old, &new);
        let reg = layout.encode(i, &old);
        let reg2 = reg.apply_adjustment(&pos, &neg);
        prop_assert_eq!(layout.decode(i, &reg2), new.clone());
    }

    #[test]
    fn decode_all_consistent(n in 1usize..5, v in big_nat()) {
        let layout = Layout::new(n);
        let reg = layout.encode(n - 1, &v);
        let all = layout.decode_all(&reg);
        prop_assert_eq!(all.len(), n);
        prop_assert_eq!(all[n - 1].clone(), v.clone());
        for lane in &all[..n - 1] {
            prop_assert!(lane.is_zero());
        }
    }
}
