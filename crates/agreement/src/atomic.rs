//! Atomic (single-step) k-ordering objects — the *strongest possible*
//! implementations Lemma 12 can consume.
//!
//! Every operation here is one shared-memory step on an
//! [`sl2_exec::mem::Cell::AQueue`] composite cell, so the
//! implementation is trivially lock-free (wait-free, even) and
//! strongly linearizable: the linearization point *is* the step. These
//! are the positive-direction instruments for Theorem 19's reduction
//! at `k ≥ 1`:
//!
//! * [`AtomicQueueAlg`] — an exact queue; Algorithm B over it solves
//!   consensus (`k = 1`), the ideal-object control for E9.
//! * [`AtomicOooQueueAlg`] — a k-out-of-order queue whose dequeue
//!   removes one of the `k` oldest items, chosen deterministically
//!   from the queue state and a per-caller salt. Algorithm B over it
//!   solves `k`-set agreement: at most `k` distinct decisions, and for
//!   `k > 1` genuinely distinct decisions do occur (experiment E17).
//!
//! Contrast with the negative direction: Algorithm B over the
//! *linearizable-but-not-strongly-linearizable* read/write queue with
//! multiplicity (`sl2_core::baselines::multiplicity`) violates
//! 1-agreement on schedules that land in its timestamp-tie window —
//! see `tests/agreement_e2e.rs`.

use std::collections::VecDeque;

use sl2_exec::machine::{Algorithm, OpMachine, Step};
use sl2_exec::mem::{Cell, Loc, SimMemory};
use sl2_spec::fifo::{QueueOp, QueueResp, QueueSpec};
use sl2_spec::relaxed::OutOfOrderQueueSpec;

/// Atomic exact queue: every operation is one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AtomicQueueAlg {
    loc: Loc,
}

impl AtomicQueueAlg {
    /// Allocates the queue cell.
    pub fn new(mem: &mut SimMemory) -> Self {
        AtomicQueueAlg {
            loc: mem.alloc(Cell::AQueue {
                items: VecDeque::new(),
                last: None,
            }),
        }
    }
}

impl Algorithm for AtomicQueueAlg {
    type Spec = QueueSpec;
    type Machine = AtomicQueueMachine;

    fn spec(&self) -> QueueSpec {
        QueueSpec
    }

    fn machine(&self, _process: usize, op: &QueueOp) -> AtomicQueueMachine {
        match op {
            QueueOp::Enq(v) => AtomicQueueMachine::Enq(self.loc, *v),
            QueueOp::Deq => AtomicQueueMachine::Deq(self.loc),
        }
    }
}

/// Single-step machine for [`AtomicQueueAlg`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AtomicQueueMachine {
    /// `enq(v)` in one step.
    Enq(Loc, u64),
    /// `deq()` in one step.
    Deq(Loc),
}

impl OpMachine for AtomicQueueMachine {
    type Resp = QueueResp;

    fn step(&mut self, mem: &mut SimMemory) -> Step<QueueResp> {
        match *self {
            AtomicQueueMachine::Enq(loc, v) => {
                mem.queue_enq(loc, v);
                Step::Ready(QueueResp::Ok)
            }
            AtomicQueueMachine::Deq(loc) => Step::Ready(match mem.queue_deq(loc) {
                Some(v) => QueueResp::Item(v),
                None => QueueResp::Empty,
            }),
        }
    }
}

/// Atomic k-out-of-order queue: `deq` removes one of the `k` oldest
/// items (state-and-salt-deterministic choice), in one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AtomicOooQueueAlg {
    loc: Loc,
    /// The out-of-order window.
    pub k: usize,
}

impl AtomicOooQueueAlg {
    /// Allocates the queue cell for window `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(mem: &mut SimMemory, k: usize) -> Self {
        assert!(k >= 1, "the window must contain at least the front item");
        AtomicOooQueueAlg {
            loc: mem.alloc(Cell::AQueue {
                items: VecDeque::new(),
                last: None,
            }),
            k,
        }
    }
}

impl Algorithm for AtomicOooQueueAlg {
    type Spec = OutOfOrderQueueSpec;
    type Machine = AtomicOooQueueMachine;

    fn spec(&self) -> OutOfOrderQueueSpec {
        OutOfOrderQueueSpec { k: self.k }
    }

    fn machine(&self, process: usize, op: &QueueOp) -> AtomicOooQueueMachine {
        match op {
            QueueOp::Enq(v) => AtomicOooQueueMachine::Enq(self.loc, *v),
            // The caller's id salts the in-window choice, so different
            // processes genuinely spread across the window.
            QueueOp::Deq => AtomicOooQueueMachine::Deq(self.loc, self.k, process as u64),
        }
    }
}

/// Single-step machine for [`AtomicOooQueueAlg`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AtomicOooQueueMachine {
    /// `enq(v)` in one step.
    Enq(Loc, u64),
    /// `deq()` in one step: window size and salt.
    Deq(Loc, usize, u64),
}

impl OpMachine for AtomicOooQueueMachine {
    type Resp = QueueResp;

    fn step(&mut self, mem: &mut SimMemory) -> Step<QueueResp> {
        match *self {
            AtomicOooQueueMachine::Enq(loc, v) => {
                mem.queue_enq(loc, v);
                Step::Ready(QueueResp::Ok)
            }
            AtomicOooQueueMachine::Deq(loc, k, salt) => {
                Step::Ready(match mem.queue_deq_within(loc, k, salt) {
                    Some(v) => QueueResp::Item(v),
                    None => QueueResp::Empty,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl2_exec::is_linearizable;
    use sl2_exec::machine::run_solo;
    use sl2_exec::sched::Scenario;
    use sl2_exec::sched::{run, CrashPlan, RandomSched};
    use sl2_exec::strong::check_strong;

    #[test]
    fn atomic_queue_is_exact_fifo() {
        let mut mem = SimMemory::new();
        let alg = AtomicQueueAlg::new(&mut mem);
        for v in [1, 2, 3] {
            run_solo(&mut alg.machine(0, &QueueOp::Enq(v)), &mut mem);
        }
        for v in [1, 2, 3] {
            let (r, steps) = run_solo(&mut alg.machine(1, &QueueOp::Deq), &mut mem);
            assert_eq!((r, steps), (QueueResp::Item(v), 1));
        }
    }

    #[test]
    fn atomic_queue_is_strongly_linearizable() {
        let mut mem = SimMemory::new();
        let alg = AtomicQueueAlg::new(&mut mem);
        let scenario = Scenario::new(vec![
            vec![QueueOp::Enq(1)],
            vec![QueueOp::Enq(2)],
            vec![QueueOp::Deq, QueueOp::Deq],
        ]);
        let report = check_strong(&alg, mem, &scenario, 2_000_000);
        assert!(report.strongly_linearizable, "{:?}", report.witness);
    }

    #[test]
    fn ooo_queue_stays_in_window_and_spreads() {
        let mut mem = SimMemory::new();
        let alg = AtomicOooQueueAlg::new(&mut mem, 3);
        for v in 0..9u64 {
            run_solo(&mut alg.machine(0, &QueueOp::Enq(v)), &mut mem);
        }
        // Dequeue with different salts: all results within the 3-oldest
        // window of the evolving queue; at least two distinct first
        // picks across salts in some run.
        let mut firsts = Vec::new();
        for salt_proc in 0..4usize {
            let mut m = mem.clone();
            let (r, _) = run_solo(&mut alg.machine(salt_proc, &QueueOp::Deq), &mut m);
            match r {
                QueueResp::Item(v) => {
                    assert!(v <= 2, "first deq must pick from {{0,1,2}}, got {v}");
                    firsts.push(v);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        firsts.sort_unstable();
        firsts.dedup();
        assert!(
            firsts.len() >= 2,
            "salts should spread across the window: {firsts:?}"
        );
    }

    #[test]
    fn ooo_queue_is_strongly_linearizable_wrt_relaxed_spec() {
        let mut mem = SimMemory::new();
        let alg = AtomicOooQueueAlg::new(&mut mem, 2);
        let scenario = Scenario::new(vec![
            vec![QueueOp::Enq(1), QueueOp::Enq(2)],
            vec![QueueOp::Deq, QueueOp::Deq, QueueOp::Deq],
        ]);
        let report = check_strong(&alg, mem, &scenario, 4_000_000);
        assert!(report.strongly_linearizable, "{:?}", report.witness);
    }

    #[test]
    fn ooo_histories_linearizable_under_random_schedules() {
        let mut base = SimMemory::new();
        let alg = AtomicOooQueueAlg::new(&mut base, 3);
        let scenario = Scenario::new(vec![
            vec![QueueOp::Enq(1), QueueOp::Deq],
            vec![QueueOp::Enq(2), QueueOp::Deq],
            vec![QueueOp::Enq(3), QueueOp::Deq],
        ]);
        for seed in 0..200 {
            let exec = run(
                &alg,
                base.clone(),
                &scenario,
                &mut RandomSched::seeded(seed),
                &CrashPlan::none(3),
            );
            assert!(
                is_linearizable(&OutOfOrderQueueSpec { k: 3 }, &exec.history),
                "seed {seed}: {:?}",
                exec.history
            );
        }
    }

    #[test]
    fn empty_ooo_deq_reports_empty() {
        let mut mem = SimMemory::new();
        let alg = AtomicOooQueueAlg::new(&mut mem, 4);
        let (r, _) = run_solo(&mut alg.machine(0, &QueueOp::Deq), &mut mem);
        assert_eq!(r, QueueResp::Empty);
    }
}
