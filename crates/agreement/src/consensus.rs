//! 2-process consensus from 2-process test&set.
//!
//! The paper's Theorem 19 leans on the equivalence of 2-process
//! test&set and 2-process consensus \[20\]: the winner of the test&set
//! decides its own value, the loser adopts the winner's. This module
//! provides the classic construction in both step-machine form (for
//! exhaustive interleaving checks) and production form (on
//! [`sl2_primitives::TwoProcessTestAndSet`]), plus validators used by
//! the Theorem 19 discussion in EXPERIMENTS.md: with only 2-process
//! test&set available, disjoint pairs can agree pairwise, but `n > 2k`
//! processes cannot reach k-agreement — the validator exhibits the
//! pairwise building block working and the experiments record the
//! impossibility boundary.

use sl2_exec::machine::Step;
use sl2_exec::mem::{Cell, Loc, SimMemory};
use sl2_primitives::{Register, TwoProcessTestAndSet};

/// Sentinel for "no value announced" (values are stored +1).
const NO_VALUE: u64 = 0;

/// Step-machine form of 2-process test&set consensus. The two
/// participants are processes 0 and 1 of the instance.
#[derive(Debug, Clone)]
pub struct TasConsensus {
    announce: [Loc; 2],
    ts: Loc,
}

impl TasConsensus {
    /// Allocates the shared objects.
    pub fn new(mem: &mut SimMemory) -> Self {
        TasConsensus {
            announce: [
                mem.alloc(Cell::Reg(NO_VALUE)),
                mem.alloc(Cell::Reg(NO_VALUE)),
            ],
            ts: mem.alloc(Cell::Tas(false)),
        }
    }

    /// Creates the proposer machine for participant `who` (0 or 1).
    pub fn propose(&self, who: usize, value: u64) -> TasConsensusMachine {
        assert!(who < 2, "2-process consensus has participants 0 and 1");
        TasConsensusMachine::Announce {
            obj: self.clone(),
            who,
            value,
        }
    }
}

/// Step machine for one `propose` call.
#[derive(Debug, Clone)]
pub enum TasConsensusMachine {
    /// Step 1: announce the own value.
    Announce {
        /// Shared objects.
        obj: TasConsensus,
        /// Participant index (0/1).
        who: usize,
        /// Proposed value.
        value: u64,
    },
    /// Step 2: race on the test&set.
    Race {
        /// Shared objects.
        obj: TasConsensus,
        /// Participant index (0/1).
        who: usize,
        /// Proposed value.
        value: u64,
    },
    /// Step 3 (loser only): read the winner's announcement.
    Adopt {
        /// Shared objects.
        obj: TasConsensus,
        /// Participant index (0/1).
        who: usize,
    },
}

impl TasConsensusMachine {
    /// Performs one shared-memory step; returns the decision when
    /// done.
    pub fn step(&mut self, mem: &mut SimMemory) -> Step<u64> {
        match self.clone() {
            TasConsensusMachine::Announce { obj, who, value } => {
                mem.write(obj.announce[who], value + 1);
                *self = TasConsensusMachine::Race { obj, who, value };
                Step::Pending
            }
            TasConsensusMachine::Race { obj, who, value } => {
                if mem.tas(obj.ts) == 0 {
                    Step::Ready(value)
                } else {
                    *self = TasConsensusMachine::Adopt { obj, who };
                    Step::Pending
                }
            }
            TasConsensusMachine::Adopt { obj, who } => {
                let other = mem.read(obj.announce[1 - who]);
                assert_ne!(other, NO_VALUE, "winner announced before racing");
                Step::Ready(other - 1)
            }
        }
    }
}

/// Production form: 2-process consensus on real atomics.
#[derive(Debug)]
pub struct TasConsensusShared {
    announce: [Register; 2],
    ts: TwoProcessTestAndSet,
}

impl Default for TasConsensusShared {
    fn default() -> Self {
        TasConsensusShared {
            announce: [Register::new(NO_VALUE), Register::new(NO_VALUE)],
            ts: TwoProcessTestAndSet::new(),
        }
    }
}

impl TasConsensusShared {
    /// Creates a consensus object for two participants.
    pub fn new() -> Self {
        TasConsensusShared::default()
    }

    /// Proposes `value` as participant `who` (0 or 1); returns the
    /// decision.
    ///
    /// # Panics
    ///
    /// Panics if `who` is not 0 or 1.
    pub fn propose(&self, who: usize, value: u64) -> u64 {
        assert!(who < 2, "participants are 0 and 1");
        self.announce[who].write(value + 1);
        if self.ts.test_and_set(who) == 0 {
            value
        } else {
            let other = self.announce[1 - who].read();
            assert_ne!(other, NO_VALUE, "winner announced before racing");
            other - 1
        }
    }
}

/// Exhaustively verifies agreement + validity of the step-machine
/// consensus over *every* interleaving of the two proposers. Returns
/// the number of interleavings checked.
pub fn verify_tas_consensus_exhaustively(v0: u64, v1: u64) -> usize {
    fn explore(
        mem: &SimMemory,
        machines: &mut [Option<TasConsensusMachine>; 2],
        decided: &mut [Option<u64>; 2],
        inputs: [u64; 2],
        count: &mut usize,
    ) {
        let enabled: Vec<usize> = (0..2).filter(|&p| machines[p].is_some()).collect();
        if enabled.is_empty() {
            *count += 1;
            let d0 = decided[0].expect("both decided");
            let d1 = decided[1].expect("both decided");
            assert_eq!(d0, d1, "agreement violated");
            assert!(d0 == inputs[0] || d0 == inputs[1], "validity violated");
            return;
        }
        for p in enabled {
            let mut mem2 = mem.clone();
            let mut machines2 = machines.clone();
            let mut decided2 = *decided;
            let mut m = machines2[p].take().expect("enabled");
            match m.step(&mut mem2) {
                Step::Pending => machines2[p] = Some(m),
                Step::Ready(v) => decided2[p] = Some(v),
            }
            explore(&mem2, &mut machines2, &mut decided2, inputs, count);
        }
    }

    let mut mem = SimMemory::new();
    let obj = TasConsensus::new(&mut mem);
    let mut machines = [Some(obj.propose(0, v0)), Some(obj.propose(1, v1))];
    let mut decided = [None, None];
    let mut count = 0;
    explore(&mem, &mut machines, &mut decided, [v0, v1], &mut count);
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_agreement_and_validity() {
        let interleavings = verify_tas_consensus_exhaustively(17, 42);
        assert!(interleavings >= 6, "checked {interleavings} interleavings");
    }

    #[test]
    fn exhaustive_with_equal_inputs() {
        verify_tas_consensus_exhaustively(5, 5);
    }

    #[test]
    fn production_form_agrees_across_threads() {
        for _ in 0..200 {
            let c = std::sync::Arc::new(TasConsensusShared::new());
            let c0 = std::sync::Arc::clone(&c);
            let c1 = std::sync::Arc::clone(&c);
            let (d0, d1) = std::thread::scope(|s| {
                let h0 = s.spawn(move || c0.propose(0, 111));
                let h1 = s.spawn(move || c1.propose(1, 222));
                (h0.join().expect("p0"), h1.join().expect("p1"))
            });
            assert_eq!(d0, d1);
            assert!(d0 == 111 || d0 == 222);
        }
    }

    #[test]
    fn solo_proposer_decides_itself() {
        let c = TasConsensusShared::new();
        assert_eq!(c.propose(0, 9), 9);
    }
}
