//! *k-ordering objects* (Definition 11) and the paper's catalogue.
//!
//! An object is k-ordering if each process has a *proposal* sequence
//! and a *decision* sequence of invocations, plus a decision function
//! `d`, such that running proposals through any strongly-linearizable
//! implementation and then locally simulating the decision sequence
//! solves k-set agreement. Section 5 instantiates this for queues,
//! stacks, queues/stacks with multiplicity, m-stuttering queues/stacks
//! and k-out-of-order queues; those instances live here, validated by
//! [`validate_k_ordering`] over random sequential executions of the
//! *atomic* object (experiment E13).

use std::fmt::Debug;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sl2_spec::fifo::{QueueOp, QueueResp, QueueSpec, StackOp, StackResp, StackSpec};
use sl2_spec::relaxed::{
    MultiplicityQueueSpec, MultiplicityStackSpec, OutOfOrderQueueSpec, StutteringQueueSpec,
    StutteringStackSpec,
};
use sl2_spec::Spec;

/// Definition 11: proposal/decision sequences and the decision
/// function `d` for an object type.
pub trait KOrdering: Clone + Debug {
    /// The object's sequential specification.
    type Spec: Spec;

    /// An instance of the specification (used to run/validate
    /// sequential executions).
    fn spec(&self) -> Self::Spec;

    /// The `k` of the agreement the object solves among `n` processes.
    fn k(&self, n: usize) -> usize;

    /// `prop_i`: the invocation sequence process `i` performs on the
    /// shared implementation.
    fn proposal(&self, i: usize, n: usize) -> Vec<<Self::Spec as Spec>::Op>;

    /// `dec_i`: the invocation sequence process `i` simulates locally.
    fn decision(&self, i: usize, n: usize) -> Vec<<Self::Spec as Spec>::Op>;

    /// `d(i, resps)`: maps the concatenated responses of `prop_i` and
    /// `dec_i` to the index of a winning process.
    fn decide(&self, i: usize, n: usize, resps: &[<Self::Spec as Spec>::Resp]) -> usize;

    /// Whether the *local simulation* of `dec_i` must resolve the
    /// specification's nondeterminism canonically (first outcome).
    ///
    /// Algorithm B simulates a fixed, deterministic implementation,
    /// whose solo executions do not exercise the optional "operation
    /// has no effect" relaxations (stuttering, multiplicity): those
    /// fire under concurrency only. The k-out-of-order queue is
    /// different — *which* of the `k` oldest items a dequeue returns
    /// is implementation-defined even solo — so it overrides this to
    /// `false` and the validator samples the choice.
    fn canonical_decision_sim(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------
// Queue-shaped instances: prop = enq(i)^r, dec = deq, d = dequeued id.
// ---------------------------------------------------------------------

/// Queues are 1-ordering: `prop_i = enq(i)`, `dec_i = deq()`,
/// `d(i, OK · ℓ) = ℓ`.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueOrdering;

impl KOrdering for QueueOrdering {
    type Spec = QueueSpec;

    fn spec(&self) -> QueueSpec {
        QueueSpec
    }

    fn k(&self, _n: usize) -> usize {
        1
    }

    fn proposal(&self, i: usize, _n: usize) -> Vec<QueueOp> {
        vec![QueueOp::Enq(i as u64)]
    }

    fn decision(&self, _i: usize, _n: usize) -> Vec<QueueOp> {
        vec![QueueOp::Deq]
    }

    fn decide(&self, _i: usize, _n: usize, resps: &[QueueResp]) -> usize {
        match resps.last() {
            Some(QueueResp::Item(l)) => *l as usize,
            other => panic!("queue decision sequence must dequeue an item, got {other:?}"),
        }
    }
}

/// Queues with multiplicity are 1-ordering with the same sequences
/// (the relaxation only fires for concurrent dequeues, and each
/// process dequeues once, locally).
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiplicityQueueOrdering;

impl KOrdering for MultiplicityQueueOrdering {
    type Spec = MultiplicityQueueSpec;

    fn spec(&self) -> MultiplicityQueueSpec {
        MultiplicityQueueSpec
    }

    fn k(&self, _n: usize) -> usize {
        1
    }

    fn proposal(&self, i: usize, _n: usize) -> Vec<QueueOp> {
        vec![QueueOp::Enq(i as u64)]
    }

    fn decision(&self, _i: usize, _n: usize) -> Vec<QueueOp> {
        vec![QueueOp::Deq]
    }

    fn decide(&self, _i: usize, _n: usize, resps: &[QueueResp]) -> usize {
        match resps.last() {
            Some(QueueResp::Item(l)) => *l as usize,
            other => panic!("multiplicity queue decision must dequeue, got {other:?}"),
        }
    }
}

/// m-stuttering queues are 1-ordering: `prop_i = enq(i)^{m+1}` (at
/// least one lands), `dec_i = deq()`.
#[derive(Debug, Clone, Copy)]
pub struct StutteringQueueOrdering {
    /// The stuttering bound `m ≥ 1`.
    pub m: u32,
}

impl KOrdering for StutteringQueueOrdering {
    type Spec = StutteringQueueSpec;

    fn spec(&self) -> StutteringQueueSpec {
        StutteringQueueSpec { m: self.m }
    }

    fn k(&self, _n: usize) -> usize {
        1
    }

    fn proposal(&self, i: usize, _n: usize) -> Vec<QueueOp> {
        vec![QueueOp::Enq(i as u64); self.m as usize + 1]
    }

    fn decision(&self, _i: usize, _n: usize) -> Vec<QueueOp> {
        vec![QueueOp::Deq]
    }

    fn decide(&self, _i: usize, _n: usize, resps: &[QueueResp]) -> usize {
        match resps.last() {
            Some(QueueResp::Item(l)) => *l as usize,
            other => panic!("stuttering queue decision must dequeue, got {other:?}"),
        }
    }
}

/// k-out-of-order queues are k-ordering: the dequeued item is one of
/// the `k` oldest, so decisions land in the first `k` enqueuers.
#[derive(Debug, Clone, Copy)]
pub struct OutOfOrderQueueOrdering {
    /// The out-of-order window (the object's `k`).
    pub k: usize,
}

impl KOrdering for OutOfOrderQueueOrdering {
    type Spec = OutOfOrderQueueSpec;

    fn spec(&self) -> OutOfOrderQueueSpec {
        OutOfOrderQueueSpec { k: self.k }
    }

    fn k(&self, _n: usize) -> usize {
        self.k
    }

    fn proposal(&self, i: usize, _n: usize) -> Vec<QueueOp> {
        vec![QueueOp::Enq(i as u64)]
    }

    fn decision(&self, _i: usize, _n: usize) -> Vec<QueueOp> {
        vec![QueueOp::Deq]
    }

    fn decide(&self, _i: usize, _n: usize, resps: &[QueueResp]) -> usize {
        match resps.last() {
            Some(QueueResp::Item(l)) => *l as usize,
            other => panic!("out-of-order queue decision must dequeue, got {other:?}"),
        }
    }

    fn canonical_decision_sim(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------
// Stack-shaped instances: dec = pop^(...), d = deepest popped id.
// ---------------------------------------------------------------------

fn last_item_of_stack_resps(resps: &[StackResp]) -> usize {
    resps
        .iter()
        .rev()
        .find_map(|r| match r {
            StackResp::Item(l) => Some(*l as usize),
            _ => None,
        })
        .expect("some pop must return an item")
}

/// Stacks are 1-ordering: `prop_i = push(i)`, `dec_i = pop()^{n+1}`,
/// `d` = the non-ε response with the largest index (the bottom of the
/// stack = the first push).
#[derive(Debug, Clone, Copy, Default)]
pub struct StackOrdering;

impl KOrdering for StackOrdering {
    type Spec = StackSpec;

    fn spec(&self) -> StackSpec {
        StackSpec
    }

    fn k(&self, _n: usize) -> usize {
        1
    }

    fn proposal(&self, i: usize, _n: usize) -> Vec<StackOp> {
        vec![StackOp::Push(i as u64)]
    }

    fn decision(&self, _i: usize, n: usize) -> Vec<StackOp> {
        vec![StackOp::Pop; n + 1]
    }

    fn decide(&self, _i: usize, _n: usize, resps: &[StackResp]) -> usize {
        last_item_of_stack_resps(resps)
    }
}

/// Stacks with multiplicity are 1-ordering with the stack sequences.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiplicityStackOrdering;

impl KOrdering for MultiplicityStackOrdering {
    type Spec = MultiplicityStackSpec;

    fn spec(&self) -> MultiplicityStackSpec {
        MultiplicityStackSpec
    }

    fn k(&self, _n: usize) -> usize {
        1
    }

    fn proposal(&self, i: usize, _n: usize) -> Vec<StackOp> {
        vec![StackOp::Push(i as u64)]
    }

    fn decision(&self, _i: usize, n: usize) -> Vec<StackOp> {
        // Duplicated pops can stretch the stack: pop once per possible
        // duplicate too (n+1 suffices — local simulation has no
        // concurrency, so no duplicates arise — but keep the paper's
        // count).
        vec![StackOp::Pop; n + 1]
    }

    fn decide(&self, _i: usize, _n: usize, resps: &[StackResp]) -> usize {
        last_item_of_stack_resps(resps)
    }
}

/// m-stuttering stacks are 1-ordering: `prop_i = push(i)^{m+1}`,
/// `dec_i = pop()^{n(m+1)+1}`.
#[derive(Debug, Clone, Copy)]
pub struct StutteringStackOrdering {
    /// The stuttering bound `m ≥ 1`.
    pub m: u32,
}

impl KOrdering for StutteringStackOrdering {
    type Spec = StutteringStackSpec;

    fn spec(&self) -> StutteringStackSpec {
        StutteringStackSpec { m: self.m }
    }

    fn k(&self, _n: usize) -> usize {
        1
    }

    fn proposal(&self, i: usize, _n: usize) -> Vec<StackOp> {
        vec![StackOp::Push(i as u64); self.m as usize + 1]
    }

    fn decision(&self, _i: usize, n: usize) -> Vec<StackOp> {
        vec![StackOp::Pop; n * (self.m as usize + 1) + 1]
    }

    fn decide(&self, _i: usize, _n: usize, resps: &[StackResp]) -> usize {
        last_item_of_stack_resps(resps)
    }
}

// ---------------------------------------------------------------------
// Validation of Definition 11 over the atomic object (experiment E13)
// ---------------------------------------------------------------------

/// Empirically validates that `ordering` is k-ordering for the atomic
/// object, in the form Lemma 12 consumes it: decisions taken at
/// different points of **one** execution chain stay within a set of at
/// most `k` process indexes.
///
/// Per round, one full sequential execution chain is built (a random
/// interleaving of all proposal sequences, with the object's
/// nondeterminism — e.g. stuttering — resolved randomly, playing the
/// adversary). Every process then decides at a random cut of the chain
/// at which its own proposal is complete, by locally simulating its
/// decision sequence from the cut state (canonically or sampled, per
/// [`KOrdering::canonical_decision_sim`]). Checks:
///
/// * **k-agreement**: at most `k` distinct decisions per chain;
/// * **validity**: every decided process has started its proposal at
///   the corresponding cut (the guarantee Algorithm B needs — its
///   `M[ℓ]` entry is written before its first proposal step; for the
///   exact queue/stack the decided proposal is in fact complete, as
///   the paper notes).
///
/// Returns the maximum per-chain disagreement observed (≤ k).
///
/// # Panics
///
/// Panics if either property is violated.
pub fn validate_k_ordering<O: KOrdering>(
    ordering: &O,
    n: usize,
    rounds: u64,
    cuts_per_process: u64,
    seed: u64,
) -> usize {
    let spec = ordering.spec();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut worst = 0usize;
    for round in 0..rounds {
        // One chain: a random interleaving of all proposal operations.
        // chain[t] = (state after t+1 ops, per-process responses so
        // far, per-process progress).
        let mut pending: Vec<(usize, usize)> = Vec::new(); // (proc, remaining)
        for i in 0..n {
            pending.push((i, ordering.proposal(i, n).len()));
        }
        let mut state = spec.initial();
        let mut resps: Vec<Vec<<O::Spec as Spec>::Resp>> = vec![Vec::new(); n];
        let mut progress = vec![0usize; n];
        // Record the evolution for cutting.
        type Snapshot<O> = (
            <<O as KOrdering>::Spec as Spec>::State,
            Vec<Vec<<<O as KOrdering>::Spec as Spec>::Resp>>,
            Vec<usize>,
        );
        let mut timeline: Vec<Snapshot<O>> = vec![(state.clone(), resps.clone(), progress.clone())];
        while !pending.is_empty() {
            let pick = rng.gen_range(0..pending.len());
            let (i, _) = pending[pick];
            let op = &ordering.proposal(i, n)[progress[i]];
            let outcomes = spec.step(&state, op);
            let (next, r) = outcomes[rng.gen_range(0..outcomes.len())].clone();
            state = next;
            resps[i].push(r);
            progress[i] += 1;
            pending[pick].1 -= 1;
            if pending[pick].1 == 0 {
                pending.swap_remove(pick);
            }
            timeline.push((state.clone(), resps.clone(), progress.clone()));
        }

        // Decisions at random cuts where the decider's prop is done.
        let mut decisions: Vec<usize> = Vec::new();
        for i in 0..n {
            let prop_len = ordering.proposal(i, n).len();
            let earliest = timeline
                .iter()
                .position(|(_, _, prog)| prog[i] == prop_len)
                .expect("chain completes every proposal");
            for _ in 0..cuts_per_process {
                let cut = rng.gen_range(earliest..timeline.len());
                let (cut_state, cut_resps, cut_prog) = &timeline[cut];
                let mut sim = cut_state.clone();
                let mut all = cut_resps[i].clone();
                for op in ordering.decision(i, n) {
                    let outcomes = spec.step(&sim, &op);
                    let choice = if ordering.canonical_decision_sim() {
                        0
                    } else {
                        rng.gen_range(0..outcomes.len())
                    };
                    let (next, r) = outcomes[choice].clone();
                    sim = next;
                    all.push(r);
                }
                let l = ordering.decide(i, n, &all);
                assert!(
                    cut_prog[l] >= 1,
                    "round {round}: decided process {l} has not started its proposal"
                );
                if !decisions.contains(&l) {
                    decisions.push(l);
                }
            }
        }
        assert!(
            decisions.len() <= ordering.k(n),
            "round {round}: {} distinct decisions {decisions:?} exceed k={}",
            decisions.len(),
            ordering.k(n)
        );
        worst = worst.max(decisions.len());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_is_1_ordering() {
        assert_eq!(validate_k_ordering(&QueueOrdering, 4, 60, 20, 1), 1);
    }

    #[test]
    fn stack_is_1_ordering() {
        assert_eq!(validate_k_ordering(&StackOrdering, 4, 60, 20, 2), 1);
    }

    #[test]
    fn multiplicity_queue_is_1_ordering() {
        assert_eq!(
            validate_k_ordering(&MultiplicityQueueOrdering, 3, 60, 20, 3),
            1
        );
    }

    #[test]
    fn multiplicity_stack_is_1_ordering() {
        assert_eq!(
            validate_k_ordering(&MultiplicityStackOrdering, 3, 60, 20, 4),
            1
        );
    }

    #[test]
    fn stuttering_queue_is_1_ordering() {
        for m in [1, 2] {
            assert_eq!(
                validate_k_ordering(&StutteringQueueOrdering { m }, 3, 50, 20, 5 + m as u64),
                1,
                "m={m}"
            );
        }
    }

    #[test]
    fn stuttering_stack_is_1_ordering() {
        for m in [1, 2] {
            assert_eq!(
                validate_k_ordering(&StutteringStackOrdering { m }, 3, 50, 20, 8 + m as u64),
                1,
                "m={m}"
            );
        }
    }

    #[test]
    fn out_of_order_queue_is_k_ordering() {
        for k in [1usize, 2, 3] {
            let worst =
                validate_k_ordering(&OutOfOrderQueueOrdering { k }, 5, 60, 30, 20 + k as u64);
            assert!(worst <= k, "k={k}, observed {worst}");
        }
        // And the window genuinely widens: with k=3 and 5 processes,
        // more than one decision is reachable.
        let worst = validate_k_ordering(&OutOfOrderQueueOrdering { k: 3 }, 5, 80, 40, 99);
        assert!(worst >= 2, "expected real multi-valued decisions");
    }

    #[test]
    fn queue_decide_reads_the_dequeued_index() {
        let d = QueueOrdering.decide(0, 3, &[QueueResp::Ok, QueueResp::Item(2)]);
        assert_eq!(d, 2);
    }

    #[test]
    fn stack_decide_takes_deepest_item() {
        let resps = vec![
            StackResp::Ok,
            StackResp::Item(2),
            StackResp::Item(0),
            StackResp::Empty,
            StackResp::Empty,
        ];
        assert_eq!(StackOrdering.decide(1, 4, &resps), 0);
    }

    #[test]
    #[should_panic(expected = "must dequeue")]
    fn queue_decide_rejects_empty() {
        QueueOrdering.decide(0, 3, &[QueueResp::Ok, QueueResp::Empty]);
    }
}
