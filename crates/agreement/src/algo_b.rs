//! Algorithm B (Lemma 12): k-set agreement from any lock-free
//! strongly-linearizable implementation of a k-ordering object with
//! readable base objects.
//!
//! Process `p_i` with input `x`:
//!
//! 1. write `M[i] := x`;
//! 2. execute every invocation of `prop_i` on the shared
//!    implementation `A`, writing `T[i] := t+1` **before every step**
//!    of `A`;
//! 3. repeat { `t1 := collect(T)`; `r := collect(R)`;
//!    `t2 := collect(T)` } until `t1 = t2` — the states in `r` are then
//!    a snapshot of `A`'s base objects (Claim 13);
//! 4. starting from `r`, locally simulate `dec_i` to completion;
//! 5. return `M[d(i, resps)]`.
//!
//! Everything here drives the implementation through its step-machine
//! form: one base-object operation per scheduler step, with the
//! collects performed cell by cell (the paper's "readable base
//! objects" assumption — every [`sl2_exec::mem::Cell`] supports
//! `read`). The local simulation runs on a memory rebuilt from the
//! collected cell values, which is exactly the paper's "starting from
//! the states of base objects in `r`".
//!
//! Used positively (E9: consensus from the strongly-linearizable CAS
//! queue) and negatively (E10: agreement violations from the
//! linearizable-but-not-SL AGM stack — the executable content of
//! Theorem 17).

use std::fmt;

use sl2_exec::machine::{run_solo, Algorithm, OpMachine, Step};
use sl2_exec::mem::{Cell, Loc, SimMemory};
use sl2_exec::sched::Scheduler;
use sl2_spec::Spec;

use crate::ordering::KOrdering;

/// Sentinel for "no input written yet" in `M` (inputs are stored +1).
const NO_INPUT: u64 = 0;

/// The shared set-agreement protocol instance.
#[derive(Debug, Clone)]
pub struct AlgoB<A, O> {
    alg: A,
    ordering: O,
    n: usize,
    m: Vec<Loc>,
    t: Vec<Loc>,
}

impl<A, O> AlgoB<A, O>
where
    A: Algorithm,
    O: KOrdering<Spec = A::Spec>,
{
    /// Wires Algorithm B around an implementation `alg` whose base
    /// objects already live in `mem`. Allocates the `M` and `T`
    /// register arrays in the same memory.
    pub fn new(mem: &mut SimMemory, alg: A, ordering: O, n: usize) -> Self {
        let m = (0..n).map(|_| mem.alloc(Cell::Reg(NO_INPUT))).collect();
        let t = (0..n).map(|_| mem.alloc(Cell::Reg(0))).collect();
        AlgoB {
            alg,
            ordering,
            n,
            m,
            t,
        }
    }

    /// The `k` this instance is allowed to disagree by.
    pub fn k(&self) -> usize {
        self.ordering.k(self.n)
    }

    /// Creates the state machine for process `i` with input `input`.
    pub fn process(&self, i: usize, input: u64) -> BProcess<A, O> {
        BProcess {
            b: self.clone(),
            i,
            input,
            resps: Vec::new(),
            t_counter: 0,
            phase: BPhase::WriteInput,
        }
    }
}

#[derive(Debug, Clone)]
enum BPhase<M> {
    /// Step 2 of the paper's listing: `M[i].write(x)`.
    WriteInput,
    /// Step 3: next action is writing `T[i]` before an `A` step.
    PropTick { op_idx: usize, machine: Option<M> },
    /// Step 3c: one step of the current proposal operation.
    PropStep { op_idx: usize, machine: M },
    /// Steps 4–5: the double collect. `stage` 0 = t1, 1 = r, 2 = t2.
    Collect {
        stage: u8,
        idx: usize,
        t1: Vec<u64>,
        r: Vec<Cell>,
        t2: Vec<u64>,
        r_len: usize,
    },
    /// Step 7: read `M[l]` and decide.
    Decide { l: usize },
}

/// Algorithm B's per-process state machine. Each [`BProcess::step`]
/// performs exactly one shared-memory operation, so schedulers can
/// interleave agreement processes at base-object granularity.
pub struct BProcess<A: Algorithm, O> {
    b: AlgoB<A, O>,
    i: usize,
    input: u64,
    resps: Vec<<A::Spec as Spec>::Resp>,
    t_counter: u64,
    phase: BPhase<A::Machine>,
}

impl<A: Algorithm, O> fmt::Debug for BProcess<A, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BProcess")
            .field("i", &self.i)
            .field("input", &self.input)
            .finish()
    }
}

impl<A, O> BProcess<A, O>
where
    A: Algorithm,
    O: KOrdering<Spec = A::Spec>,
{
    /// Performs one shared-memory step. Returns the decision when
    /// done.
    pub fn step(&mut self, mem: &mut SimMemory) -> Step<u64> {
        let n = self.b.n;
        match std::mem::replace(&mut self.phase, BPhase::WriteInput) {
            BPhase::WriteInput => {
                mem.write(self.b.m[self.i], self.input + 1);
                self.phase = BPhase::PropTick {
                    op_idx: 0,
                    machine: None,
                };
                Step::Pending
            }
            BPhase::PropTick { op_idx, machine } => {
                let prop = self.b.ordering.proposal(self.i, n);
                if op_idx >= prop.len() {
                    // Proposal finished: enter the collect loop (no
                    // shared op consumed by this transition, so fall
                    // through by performing the first collect read).
                    self.phase = BPhase::Collect {
                        stage: 0,
                        idx: 0,
                        t1: Vec::new(),
                        r: Vec::new(),
                        t2: Vec::new(),
                        r_len: 0,
                    };
                    return self.step(mem);
                }
                // T[i].write(t + 1) — announced before every A step.
                self.t_counter += 1;
                mem.write(self.b.t[self.i], self.t_counter);
                let machine = machine.unwrap_or_else(|| self.b.alg.machine(self.i, &prop[op_idx]));
                self.phase = BPhase::PropStep { op_idx, machine };
                Step::Pending
            }
            BPhase::PropStep {
                op_idx,
                mut machine,
            } => {
                match machine.step(mem) {
                    Step::Pending => {
                        self.phase = BPhase::PropTick {
                            op_idx,
                            machine: Some(machine),
                        };
                    }
                    Step::Ready(resp) => {
                        self.resps.push(resp);
                        self.phase = BPhase::PropTick {
                            op_idx: op_idx + 1,
                            machine: None,
                        };
                    }
                }
                Step::Pending
            }
            BPhase::Collect {
                stage,
                idx,
                mut t1,
                mut r,
                mut t2,
                mut r_len,
            } => {
                match stage {
                    0 => {
                        t1.push(mem.read(self.b.t[idx]));
                        let next_idx = idx + 1;
                        if next_idx < n {
                            self.phase = BPhase::Collect {
                                stage: 0,
                                idx: next_idx,
                                t1,
                                r,
                                t2,
                                r_len,
                            };
                        } else {
                            r_len = mem.flat_len();
                            self.phase = BPhase::Collect {
                                stage: 1,
                                idx: 0,
                                t1,
                                r,
                                t2,
                                r_len,
                            };
                        }
                        Step::Pending
                    }
                    1 => {
                        r.push(mem.collect_read(idx));
                        let next_idx = idx + 1;
                        self.phase = BPhase::Collect {
                            stage: if next_idx < r_len { 1 } else { 2 },
                            idx: if next_idx < r_len { next_idx } else { 0 },
                            t1,
                            r,
                            t2,
                            r_len,
                        };
                        Step::Pending
                    }
                    _ => {
                        t2.push(mem.read(self.b.t[idx]));
                        let next_idx = idx + 1;
                        if next_idx < n {
                            self.phase = BPhase::Collect {
                                stage: 2,
                                idx: next_idx,
                                t1,
                                r,
                                t2,
                                r_len,
                            };
                            return Step::Pending;
                        }
                        // Double collect complete: compare.
                        if t1 != t2 || mem.flat_len() != r_len {
                            self.phase = BPhase::Collect {
                                stage: 0,
                                idx: 0,
                                t1: Vec::new(),
                                r: Vec::new(),
                                t2: Vec::new(),
                                r_len: 0,
                            };
                            return Step::Pending;
                        }
                        // Claim 13 holds: r is a snapshot. Simulate
                        // dec_i locally (free: no shared steps).
                        let mut sim = mem.rebuild_from_collect(&r);
                        let mut all = self.resps.clone();
                        for op in self.b.ordering.decision(self.i, n) {
                            let (resp, _) =
                                run_solo(&mut self.b.alg.machine(self.i, &op), &mut sim);
                            all.push(resp);
                        }
                        let l = self.b.ordering.decide(self.i, n, &all);
                        self.phase = BPhase::Decide { l };
                        Step::Pending
                    }
                }
            }
            BPhase::Decide { l } => {
                let raw = mem.read(self.b.m[l]);
                assert_ne!(
                    raw, NO_INPUT,
                    "decided process {l} completed its proposal, so its input is in M"
                );
                Step::Ready(raw - 1)
            }
        }
    }
}

/// Outcome of one agreement run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgreementRun {
    /// Decision of each process (`None` = crashed before deciding).
    pub decisions: Vec<Option<u64>>,
    /// Inputs proposed.
    pub inputs: Vec<u64>,
}

impl AgreementRun {
    /// Distinct decided values.
    pub fn distinct_decisions(&self) -> Vec<u64> {
        let mut d: Vec<u64> = self.decisions.iter().flatten().copied().collect();
        d.sort_unstable();
        d.dedup();
        d
    }

    /// Validity: every decision is some process's input.
    pub fn is_valid(&self) -> bool {
        self.decisions
            .iter()
            .flatten()
            .all(|d| self.inputs.contains(d))
    }
}

/// Runs Algorithm B for all `n` processes under `sched`, with
/// process `p` halting permanently after `crash_after[p]` steps
/// (`None` = never). Returns each process's decision.
///
/// # Panics
///
/// Panics if the run exceeds `step_limit` total steps — with a
/// lock-free implementation and finite proposals this indicates a
/// livelock, which Lemma 12's termination argument rules out.
pub fn run_agreement<A, O>(
    b: &AlgoB<A, O>,
    mem: &mut SimMemory,
    inputs: &[u64],
    sched: &mut dyn Scheduler,
    crash_after: &[Option<u64>],
    step_limit: u64,
) -> AgreementRun
where
    A: Algorithm,
    O: KOrdering<Spec = A::Spec>,
{
    let n = inputs.len();
    let mut procs: Vec<Option<BProcess<A, O>>> = inputs
        .iter()
        .enumerate()
        .map(|(i, &x)| Some(b.process(i, x)))
        .collect();
    let mut decisions: Vec<Option<u64>> = vec![None; n];
    let mut steps_taken = vec![0u64; n];
    let mut total = 0u64;

    loop {
        let enabled: Vec<usize> = (0..n)
            .filter(|&p| {
                procs[p].is_some() && crash_after[p].is_none_or(|limit| steps_taken[p] < limit)
            })
            .collect();
        if enabled.is_empty() {
            break;
        }
        let p = sched.pick(&enabled);
        total += 1;
        assert!(
            total <= step_limit,
            "agreement run exceeded {step_limit} steps"
        );
        steps_taken[p] += 1;
        let mut proc = procs[p].take().expect("enabled implies alive");
        match proc.step(mem) {
            Step::Pending => procs[p] = Some(proc),
            Step::Ready(v) => decisions[p] = Some(v),
        }
    }

    AgreementRun {
        decisions,
        inputs: inputs.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::{QueueOrdering, StackOrdering};
    use sl2_core::baselines::agm_stack::AgmStackAlg;
    use sl2_core::baselines::cas_queue::CasQueueAlg;
    use sl2_exec::sched::{BurstSched, FixedSchedule, RandomSched, RoundRobin};

    fn cas_queue_setup() -> (SimMemory, AlgoB<CasQueueAlg, QueueOrdering>) {
        let mut mem = SimMemory::new();
        let alg = CasQueueAlg::new(&mut mem);
        let b = AlgoB::new(&mut mem, alg, QueueOrdering, 3);
        (mem, b)
    }

    #[test]
    fn consensus_from_sl_cas_queue_round_robin() {
        let (mut mem, b) = cas_queue_setup();
        let run = run_agreement(
            &b,
            &mut mem,
            &[10, 20, 30],
            &mut RoundRobin::default(),
            &[None, None, None],
            100_000,
        );
        assert_eq!(run.distinct_decisions().len(), 1, "{run:?}");
        assert!(run.is_valid());
    }

    #[test]
    fn consensus_from_sl_cas_queue_random_schedules() {
        for seed in 0..300 {
            let (mut mem, b) = cas_queue_setup();
            let run = run_agreement(
                &b,
                &mut mem,
                &[7, 8, 9],
                &mut RandomSched::seeded(seed),
                &[None, None, None],
                100_000,
            );
            assert_eq!(
                run.distinct_decisions().len(),
                1,
                "seed {seed} broke consensus: {run:?}"
            );
            assert!(run.is_valid(), "seed {seed}");
        }
    }

    #[test]
    fn consensus_survives_crashes() {
        for seed in 0..100 {
            let (mut mem, b) = cas_queue_setup();
            // p2 crashes early; correct processes still decide one value.
            let run = run_agreement(
                &b,
                &mut mem,
                &[1, 2, 3],
                &mut RandomSched::seeded(seed),
                &[None, None, Some(seed % 7)],
                100_000,
            );
            assert!(run.decisions[0].is_some() && run.decisions[1].is_some());
            assert!(run.distinct_decisions().len() <= 1, "seed {seed}: {run:?}");
            assert!(run.is_valid());
        }
    }

    #[test]
    fn agm_stack_violates_agreement_on_a_crafted_schedule() {
        // The executable core of Theorem 17: the AGM stack is
        // linearizable but NOT strongly linearizable, and Algorithm B
        // punishes exactly that. Schedule: p0 reserves slot 0 but has
        // not yet written its item; p1 completes everything and
        // decides itself; p0 then finishes and decides itself.
        let mut mem = SimMemory::new();
        let alg = AgmStackAlg::new(&mut mem);
        let b = AlgoB::new(&mut mem, alg, StackOrdering, 3);
        let script: Vec<usize> = std::iter::repeat_n(0, 3)
            .chain(std::iter::repeat_n(1, 400))
            .chain(std::iter::repeat_n(0, 400))
            .collect();
        let run = run_agreement(
            &b,
            &mut mem,
            &[100, 200, 300],
            &mut FixedSchedule::new(script),
            &[None, None, Some(0)], // p2 crashed from the start
            100_000,
        );
        assert_eq!(
            run.distinct_decisions(),
            vec![100, 200],
            "both survivors decide their own input: {run:?}"
        );
    }

    #[test]
    fn agm_stack_violations_found_by_adversarial_search() {
        // E10: burst schedules (stall one process, sprint another —
        // the strong adversary's signature move) find the violation
        // without hand-crafting.
        let mut violations = 0;
        for seed in 0..400 {
            let mut mem = SimMemory::new();
            let alg = AgmStackAlg::new(&mut mem);
            let b = AlgoB::new(&mut mem, alg, StackOrdering, 3);
            let run = run_agreement(
                &b,
                &mut mem,
                &[100, 200, 300],
                &mut BurstSched::seeded(seed, 64),
                &[None, None, Some(seed % 4)],
                400_000,
            );
            assert!(run.is_valid());
            if run.distinct_decisions().len() > 1 {
                violations += 1;
            }
        }
        assert!(
            violations > 0,
            "400 burst schedules must expose the AGM non-strong-linearizability"
        );
    }

    #[test]
    fn cas_queue_never_violates_under_the_same_adversary() {
        // The control: the strongly-linearizable queue survives the
        // exact adversary that breaks the AGM stack.
        for seed in 0..400 {
            let mut mem = SimMemory::new();
            let alg = CasQueueAlg::new(&mut mem);
            let b = AlgoB::new(&mut mem, alg, QueueOrdering, 3);
            let run = run_agreement(
                &b,
                &mut mem,
                &[100, 200, 300],
                &mut BurstSched::seeded(seed, 64),
                &[None, None, Some(seed % 4)],
                400_000,
            );
            assert!(run.is_valid());
            assert!(run.distinct_decisions().len() <= 1, "seed {seed}: {run:?}");
        }
    }

    #[test]
    fn decisions_always_valid_even_for_agm() {
        // Violating agreement never violates validity.
        for seed in 0..50 {
            let mut mem = SimMemory::new();
            let alg = AgmStackAlg::new(&mut mem);
            let b = AlgoB::new(&mut mem, alg, StackOrdering, 3);
            let run = run_agreement(
                &b,
                &mut mem,
                &[4, 5, 6],
                &mut RandomSched::seeded(seed),
                &[None, None, None],
                200_000,
            );
            assert!(run.is_valid(), "seed {seed}");
        }
    }
}
