//! Section 5 of *Strong Linearizability using Primitives with
//! Consensus Number 2* (Attiya, Castañeda, Enea; PODC 2024), executable.
//!
//! * [`ordering`] — Definition 11 (*k-ordering objects*) with the
//!   paper's full catalogue: queues, stacks, multiplicity variants,
//!   m-stuttering variants, k-out-of-order queues, plus an empirical
//!   validator for the definition (experiment E13).
//! * [`algo_b`] — Algorithm B of Lemma 12: k-set agreement from any
//!   lock-free strongly-linearizable implementation with readable base
//!   objects. Run positively over the CAS queue (consensus solved —
//!   E9) and negatively over the AGM stack (agreement violated — E10,
//!   the executable content of Theorem 17).
//! * [`consensus`] — 2-process consensus ⇔ 2-process test&set (the
//!   Theorem 19 ingredient), verified over every interleaving.
//!
//! The impossibility theorems themselves (17 and 19) cannot be "run";
//! what can be run is their reduction, in both directions — see
//! EXPERIMENTS.md.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algo_b;
pub mod atomic;
pub mod consensus;
pub mod ordering;

pub use algo_b::{run_agreement, AgreementRun, AlgoB, BProcess};
pub use atomic::{AtomicOooQueueAlg, AtomicQueueAlg};
pub use consensus::{verify_tas_consensus_exhaustively, TasConsensus, TasConsensusShared};
pub use ordering::{
    validate_k_ordering, KOrdering, MultiplicityQueueOrdering, MultiplicityStackOrdering,
    OutOfOrderQueueOrdering, QueueOrdering, StackOrdering, StutteringQueueOrdering,
    StutteringStackOrdering,
};
