//! Deterministic fault injection for the sl2 production forms.
//!
//! The checker (`sl2_exec::strong`) certifies *step machines* under
//! every interleaving, but the production objects — `WideFaa`, the
//! sharded registers, the combining front-end — run on real threads,
//! where the adversary of the paper shows up as crashes, stalls, and
//! panics at the worst possible instruction. This crate is the seam
//! that lets tests *be* that adversary, deterministically:
//!
//! * **Chaos points.** Hot paths are annotated with labeled hooks,
//!   `sl2_chaos::point("combine.won")`. With the `chaos` feature off
//!   (the default everywhere), [`point`] is an empty
//!   `#[inline(always)]` function: it compiles to nothing and the
//!   production build is bit-for-bit unaffected.
//! * **Fault plans.** With `chaos` on, a test installs a seeded
//!   `FaultPlan`: targeted rules (“the 2nd time thread 1 passes
//!   `combine.won`, crash-stop it”) plus optional seeded scheduling
//!   noise (deterministic pseudo-random yields). Every injected fault
//!   is a pure function of `(seed, thread, label, hit-count)`, so a
//!   failing run is reproducible from its seed alone.
//! * **Crash-stop semantics.** A crash-stopped thread must *not*
//!   unwind at the point of the crash — unwinding runs drop glue
//!   (e.g. spinlock guards release on drop), which would falsify
//!   crash semantics. Instead the thread parks on a global gate:
//!   to every other thread it is indistinguishable from a process
//!   that stalled forever, which is exactly the asynchronous-model
//!   reading of a crash. At teardown `release_crashed` opens the
//!   gate and the parked threads unwind with a `CrashToken`
//!   payload that `catch_crash` absorbs, so scoped joins succeed.
//!
//! # Adversary model
//!
//! Three observable fault classes, in increasing order of what they
//! can break (DESIGN.md §10):
//!
//! * **Stall / yield-storm** — the op eventually completes; strong
//!   linearizability must hold unconditionally (this is just the
//!   adversarial scheduler).
//! * **Panic** — the op aborts but the thread unwinds, so RAII
//!   guards run; locks must release on unwind.
//! * **Crash-stop** — the thread stops mid-op and never unwinds;
//!   anything it held (a combiner lock, a claimed publication slot)
//!   is abandoned and must be reclaimed or routed around by the
//!   survivors. The crashed op is *pending forever*, which a
//!   linearizable history is free to drop or to linearize.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// A labeled injection point. With the `chaos` feature off this is an
/// empty `#[inline(always)]` stub — zero cost on every hot path. With
/// the feature on, consults the installed `FaultPlan` and may stall,
/// yield, panic, or crash-stop the calling thread.
#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub fn point(_label: &str) {}

#[cfg(feature = "chaos")]
pub use active::{
    active, catch_crash, crashed_count, install, plan_seed, point, release_crashed, set_thread,
    ChaosSession, CrashToken, FaultAction, FaultPlan, FaultRule,
};

#[cfg(feature = "chaos")]
mod active {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, RwLock};

    // Label hashing and thread enrollment live in the dependency-free
    // crate at the bottom of the workspace graph, shared with the
    // sl2_obs probes (one identity, two consumers).
    use sl2_primitives::labeled::{self, label_hash, mix};

    /// What a matched rule does to the calling thread.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FaultAction {
        /// Bounded busy-wait of roughly this many spin iterations
        /// (with periodic yields so single-core hosts make progress).
        Stall(u32),
        /// `n` consecutive `thread::yield_now` calls — hands the
        /// scheduler `n` chances to run everyone else first.
        YieldStorm(u32),
        /// Unwinding panic at the point, seed in the message. RAII
        /// guards run; models an aborted client.
        Panic,
        /// Crash-stop: park forever (until [`release_crashed`]),
        /// *without* unwinding. Models a dead process.
        CrashStop,
    }

    /// One targeted fault: the `nth` time `thread` passes `label`,
    /// perform `action`. Hit counts are per-thread per-label, so a
    /// rule fires deterministically regardless of interleaving.
    #[derive(Debug, Clone)]
    pub struct FaultRule {
        /// Chaos-point label the rule arms, e.g. `"combine.won"`.
        pub label: String,
        /// Thread the rule targets (`None` = any enrolled thread).
        pub thread: Option<usize>,
        /// 1-based pass count at which the rule fires.
        pub nth: u64,
        /// The injected fault.
        pub action: FaultAction,
    }

    /// A seeded, deterministic fault schedule: targeted rules plus
    /// optional background scheduling noise.
    #[derive(Debug, Clone)]
    pub struct FaultPlan {
        seed: u64,
        rules: Vec<FaultRule>,
        noise_percent: u8,
    }

    impl FaultPlan {
        /// An empty plan carrying `seed` (no rules, no noise).
        pub fn new(seed: u64) -> Self {
            FaultPlan {
                seed,
                rules: Vec::new(),
                noise_percent: 0,
            }
        }

        /// A pure-noise plan: no targeted rules, `percent`% of point
        /// passes yield (deterministically from the seed). The
        /// chaos-matrix stress tests use these.
        pub fn noisy(seed: u64, percent: u8) -> Self {
            FaultPlan::new(seed).with_noise(percent)
        }

        /// Arms a targeted rule (builder style).
        pub fn on(
            mut self,
            label: &str,
            thread: Option<usize>,
            nth: u64,
            action: FaultAction,
        ) -> Self {
            self.rules.push(FaultRule {
                label: label.to_string(),
                thread,
                nth,
                action,
            });
            self
        }

        /// Sets the background-yield probability (0–100, per point
        /// pass, derived deterministically from the seed).
        pub fn with_noise(mut self, percent: u8) -> Self {
            self.noise_percent = percent.min(100);
            self
        }

        /// The plan's seed (printed in injected-panic messages).
        pub fn seed(&self) -> u64 {
            self.seed
        }
    }

    /// Payload a crash-stopped thread unwinds with once the gate
    /// opens. [`catch_crash`] absorbs it; anything else treats the
    /// late unwind as an ordinary panic.
    #[derive(Debug)]
    pub struct CrashToken {
        /// Label of the point the thread crashed at.
        pub label: String,
        /// Enrolled id of the crashed thread.
        pub thread: usize,
    }

    struct Global {
        /// Serializes chaos sessions: tests in one binary run in
        /// parallel, but the plan and gate are process-global.
        session: Mutex<()>,
        plan: RwLock<Option<Arc<FaultPlan>>>,
        active: AtomicBool,
        gate_open: Mutex<bool>,
        gate_cv: Condvar,
        crashed: AtomicU64,
    }

    fn global() -> &'static Global {
        static G: OnceLock<Global> = OnceLock::new();
        G.get_or_init(|| Global {
            session: Mutex::new(()),
            plan: RwLock::new(None),
            active: AtomicBool::new(false),
            gate_open: Mutex::new(false),
            gate_cv: Condvar::new(),
            crashed: AtomicU64::new(0),
        })
    }

    thread_local! {
        static HITS: RefCell<HashMap<String, u64>> = RefCell::new(HashMap::new());
    }

    /// Exclusive handle on the installed plan. Dropping it uninstalls
    /// the plan and opens the crash gate so parked threads unwind.
    #[derive(Debug)]
    pub struct ChaosSession {
        _session: MutexGuard<'static, ()>,
    }

    impl Drop for ChaosSession {
        fn drop(&mut self) {
            let g = global();
            g.active.store(false, Ordering::SeqCst);
            *g.plan.write().unwrap_or_else(|e| e.into_inner()) = None;
            release_crashed();
        }
    }

    /// Installs `plan` process-wide and returns the session guard.
    /// Blocks until any other session (e.g. a concurrently running
    /// chaos test in the same binary) has ended. Enroll worker
    /// threads with [`set_thread`] — un-enrolled threads pass every
    /// point untouched.
    pub fn install(plan: FaultPlan) -> ChaosSession {
        let g = global();
        let session = g.session.lock().unwrap_or_else(|e| e.into_inner());
        *g.gate_open.lock().unwrap_or_else(|e| e.into_inner()) = false;
        g.crashed.store(0, Ordering::SeqCst);
        *g.plan.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(plan));
        g.active.store(true, Ordering::SeqCst);
        ChaosSession { _session: session }
    }

    /// Enrolls the calling thread under id `t` for the current plan
    /// (via the shared [`labeled`] registry, so obs shards see the
    /// same id) and resets its per-label hit counters.
    pub fn set_thread(t: usize) {
        labeled::enroll(t);
        HITS.with(|h| h.borrow_mut().clear());
    }

    /// True while a plan is installed.
    pub fn active() -> bool {
        global().active.load(Ordering::Acquire)
    }

    /// Seed of the installed plan, if any (for assertion messages:
    /// every chaos failure must be reproducible from its seed).
    pub fn plan_seed() -> Option<u64> {
        let g = global();
        g.plan
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|p| p.seed())
    }

    /// Number of threads currently parked as crash-stopped.
    pub fn crashed_count() -> u64 {
        global().crashed.load(Ordering::SeqCst)
    }

    /// Opens the crash gate: every parked crash-stopped thread wakes
    /// and unwinds with a [`CrashToken`]. Call after the survivors'
    /// assertions, before joining the crashed threads.
    pub fn release_crashed() {
        let g = global();
        *g.gate_open.lock().unwrap_or_else(|e| e.into_inner()) = true;
        g.gate_cv.notify_all();
    }

    /// Runs `f`, absorbing a crash-stop unwind: returns `None` if `f`
    /// crash-stopped (its [`CrashToken`] is swallowed), `Some(result)`
    /// otherwise. Ordinary panics propagate unchanged. Wrap every
    /// worker-thread body in this so `std::thread::scope` joins
    /// cleanly after [`release_crashed`].
    pub fn catch_crash<R>(f: impl FnOnce() -> R) -> Option<R> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(r) => Some(r),
            Err(payload) => {
                if payload.downcast_ref::<CrashToken>().is_some() {
                    None
                } else {
                    std::panic::resume_unwind(payload)
                }
            }
        }
    }

    /// The armed injection point. No-op unless a plan is installed
    /// *and* the calling thread is enrolled via [`set_thread`].
    #[inline]
    pub fn point(label: &str) {
        let g = global();
        if !g.active.load(Ordering::Acquire) {
            return;
        }
        let Some(t) = labeled::enrolled() else {
            return;
        };
        let plan = {
            let guard = g.plan.read().unwrap_or_else(|e| e.into_inner());
            match guard.as_ref() {
                Some(p) => Arc::clone(p),
                None => return,
            }
        };
        let n = HITS.with(|h| {
            let mut h = h.borrow_mut();
            let c = h.entry(label.to_string()).or_insert(0);
            *c += 1;
            *c
        });
        for rule in &plan.rules {
            if rule.label == label && rule.thread.is_none_or(|rt| rt == t) && rule.nth == n {
                perform(rule.action, label, t, plan.seed(), g);
            }
        }
        if plan.noise_percent > 0 {
            let h = mix(plan.seed() ^ mix(t as u64) ^ label_hash(label) ^ n.rotate_left(17));
            if h % 100 < plan.noise_percent as u64 {
                std::thread::yield_now();
            }
        }
    }

    fn perform(action: FaultAction, label: &str, t: usize, seed: u64, g: &'static Global) {
        match action {
            FaultAction::Stall(spins) => {
                for i in 0..spins {
                    if i % 256 == 255 {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
            FaultAction::YieldStorm(n) => {
                for _ in 0..n {
                    std::thread::yield_now();
                }
            }
            FaultAction::Panic => {
                panic!("chaos[seed={seed}]: injected panic at '{label}' (thread {t})");
            }
            FaultAction::CrashStop => {
                g.crashed.fetch_add(1, Ordering::SeqCst);
                let mut open = g.gate_open.lock().unwrap_or_else(|e| e.into_inner());
                while !*open {
                    open = g.gate_cv.wait(open).unwrap_or_else(|e| e.into_inner());
                }
                drop(open);
                std::panic::resume_unwind(Box::new(CrashToken {
                    label: label.to_string(),
                    thread: t,
                }));
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unenrolled_threads_pass_points_untouched() {
            let _s = install(FaultPlan::new(1).on("x", None, 1, FaultAction::Panic));
            // This thread never called set_thread: the armed panic
            // rule must not fire.
            point("x");
        }

        #[test]
        fn targeted_panic_fires_on_nth_hit_with_seed_in_message() {
            let _s = install(FaultPlan::new(42).on("p.label", Some(3), 2, FaultAction::Panic));
            set_thread(3);
            point("p.label"); // hit 1: armed for hit 2
            let err = std::panic::catch_unwind(|| point("p.label")).unwrap_err();
            let msg = err.downcast_ref::<String>().unwrap();
            assert!(msg.contains("seed=42"), "seed missing from: {msg}");
            assert!(msg.contains("p.label"), "label missing from: {msg}");
        }

        #[test]
        fn crash_stop_parks_until_released_and_is_caught() {
            let _s = install(FaultPlan::new(7).on("c.label", Some(0), 1, FaultAction::CrashStop));
            std::thread::scope(|s| {
                s.spawn(|| {
                    set_thread(0);
                    let r = catch_crash(|| {
                        point("c.label");
                        unreachable!("crash-stop must not fall through");
                    });
                    assert!(r.is_none(), "crash token must be absorbed");
                });
                while crashed_count() == 0 {
                    std::thread::yield_now();
                }
                release_crashed();
            });
        }

        #[test]
        fn noise_is_deterministic_in_the_seed() {
            // Same (seed, thread, label, n) => same yield decision.
            let a = mix(5 ^ mix(1) ^ label_hash("l") ^ 4u64.rotate_left(17)) % 100;
            let b = mix(5 ^ mix(1) ^ label_hash("l") ^ 4u64.rotate_left(17)) % 100;
            assert_eq!(a, b);
        }

        #[test]
        fn stall_and_yield_storm_return() {
            let _s = install(
                FaultPlan::new(9)
                    .on("s", Some(1), 1, FaultAction::Stall(1024))
                    .on("s", Some(1), 2, FaultAction::YieldStorm(16)),
            );
            set_thread(1);
            point("s");
            point("s");
            point("s"); // unarmed hit
        }
    }
}
