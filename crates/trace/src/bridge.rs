//! The trace→history bridge: pairs span boundaries back into
//! invoke/response intervals the checker can adjudicate.
//!
//! [`request_spans`] scans a drained [`TraceLog`] for `Begin`/`End`
//! events under one label and reconstructs each request as a
//! [`SpanRecord`]: the process that invoked it (a dense remap of the
//! begin-thread slot), its invoke stamp and operation word, and —
//! if the span ever ended — its response stamp and word. A span that
//! never ends (the worker crash-stopped, the client never observed a
//! response) comes out with `response: None` and stays **pending
//! forever** in the bridged history, exactly the PR-7 recorder
//! convention: the checker is free to take or drop its effect.
//!
//! The typed half lives in `sl2_exec::record::history_from_spans`
//! (`sl2_exec` sits above this crate in the workspace DAG, so the
//! `History` constructor cannot live here — DESIGN.md §13 records the
//! split): it decodes the op/response words against a spec and feeds
//! the merged event stream to `History` in stamp order.
//!
//! # Soundness direction
//!
//! Begin is emitted *before* the request is published and End *after*
//! its response is observed, so every recorded interval contains the
//! real one; stamp slack therefore only ever **shrinks** recorded
//! precedence. A history with fewer precedence constraints admits a
//! superset of linearizations — so a refutation of the bridged
//! history refutes the real run too, while a certification is exact
//! only modulo that slack (DESIGN.md §13).

use crate::{EventKind, TraceLog};

/// One reconstructed request interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span id the request carried through the FIFO.
    pub span: u64,
    /// Dense process index (begin-thread slots remapped to `0..n` in
    /// ascending slot order, so the mapping is run-independent).
    pub process: usize,
    /// Raw thread slot that emitted the begin event.
    pub thread: usize,
    /// Stamp of the begin event (invocation ticket).
    pub invoke_stamp: u64,
    /// Payload word of the begin event (the encoded operation).
    pub op_word: u64,
    /// `(stamp, payload)` of the end event, or `None` if the span
    /// never completed — a crashed request, pending forever.
    pub response: Option<(u64, u64)>,
}

impl SpanRecord {
    /// True if the span never observed a response.
    pub fn is_pending(&self) -> bool {
        self.response.is_none()
    }
}

/// Reconstructs the request spans recorded under `label`, sorted by
/// invoke stamp. Instants and other labels are ignored; an `End`
/// without a matching `Begin` (its begin was overwritten in a full
/// ring) is dropped — half a span is not an interval.
pub fn request_spans(log: &TraceLog, label: &str) -> Vec<SpanRecord> {
    let mut spans: Vec<SpanRecord> = Vec::new();
    for e in &log.events {
        if e.label != label {
            continue;
        }
        match e.kind {
            EventKind::Begin => spans.push(SpanRecord {
                span: e.span,
                process: 0, // remapped below
                thread: e.thread,
                invoke_stamp: e.stamp,
                op_word: e.payload,
                response: None,
            }),
            EventKind::End => {
                if let Some(s) = spans
                    .iter_mut()
                    .find(|s| s.span == e.span && s.response.is_none())
                {
                    s.response = Some((e.stamp, e.payload));
                }
            }
            EventKind::Instant => {}
        }
    }
    spans.sort_by_key(|s| s.invoke_stamp);
    let mut threads: Vec<usize> = spans.iter().map(|s| s.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    for s in &mut spans {
        s.process = threads
            .binary_search(&s.thread)
            .expect("thread was collected above");
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceEvent;

    fn ev(
        kind: EventKind,
        label: &'static str,
        thread: usize,
        span: u64,
        stamp: u64,
        payload: u64,
    ) -> TraceEvent {
        TraceEvent {
            kind,
            label,
            thread,
            span,
            stamp,
            payload,
        }
    }

    #[test]
    fn pairs_boundaries_and_remaps_processes_densely() {
        let log = TraceLog {
            events: vec![
                ev(EventKind::Begin, "svc.req", 7, 1, 0, 10),
                ev(EventKind::Instant, "svc.step", 7, 1, 1, 0),
                ev(EventKind::Begin, "svc.req", 3, 2, 2, 20),
                ev(EventKind::End, "svc.req", 7, 1, 3, 11),
                ev(EventKind::End, "svc.req", 3, 2, 4, 21),
            ],
        };
        let spans = request_spans(&log, "svc.req");
        assert_eq!(spans.len(), 2);
        // Thread 3 < thread 7, so processes are {3 → 0, 7 → 1}.
        assert_eq!(spans[0].process, 1);
        assert_eq!(spans[0].op_word, 10);
        assert_eq!(spans[0].response, Some((3, 11)));
        assert_eq!(spans[1].process, 0);
        assert_eq!(spans[1].response, Some((4, 21)));
    }

    #[test]
    fn unfinished_spans_stay_pending_and_orphan_ends_are_dropped() {
        let log = TraceLog {
            events: vec![
                ev(EventKind::Begin, "svc.req", 0, 5, 0, 1),
                ev(EventKind::End, "svc.req", 0, 99, 1, 2), // begin overwritten
            ],
        };
        let spans = request_spans(&log, "svc.req");
        assert_eq!(spans.len(), 1);
        assert!(spans[0].is_pending());
    }
}
