//! The armed trace implementation (`--features trace`): fixed-size
//! binary events in static cache-padded ring buffers, published
//! seqlock-style so a post-mortem drain can detect torn slots.
//!
//! Design constraints, in order (the obs contract, DESIGN.md §11,
//! extended to events):
//!
//! * **Never perturb what it traces.** Emitting takes no locks and
//!   allocates nothing: a label is interned into a fixed
//!   open-addressed table (FNV-1a probe order, content-verified), a
//!   slot is claimed with one relaxed `fetch_add` on the ring head,
//!   and the five event words are plain atomic stores. The only
//!   cross-thread edge an emit creates is the global clock ticket —
//!   the same `AcqRel` ticket the PR-7 recorder already takes, and
//!   for the same reason: stamps must order consistently with real
//!   time for the bridge to be sound.
//! * **Bounded.** [`RINGS`] rings of [`RING_CAP`] slots, all static.
//!   A full ring overwrites oldest-first: the rings are a black box
//!   holding the *last* `RING_CAP` events per lane, not a log.
//! * **Torn-proof reads.** Each slot carries a commit word written
//!   `0 → fields → claim+1` (release-published). [`drain`] accepts a
//!   slot only if the commit word reads `claim+1` both before and
//!   after the field loads, so an in-flight or wrapped-over slot is
//!   skipped, never decoded torn. Drains are exact at quiescence
//!   (workers joined or parked); during live writes they are a
//!   best-effort snapshot — exactly what a flight recorder wants.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Once, OnceLock};

use sl2_primitives::labeled::{self, label_hash};
use sl2_primitives::CachePadded;

use crate::{EventKind, TraceEvent, TraceLog};

/// Number of static per-thread ring buffers events are striped over.
pub const RINGS: usize = 16;

/// Capacity of each ring, in events.
pub const RING_CAP: usize = 1024;

const LABEL_SLOTS: usize = 64;

const KIND_BEGIN: u64 = 1;
const KIND_END: u64 = 2;
const KIND_INSTANT: u64 = 3;

/// Fixed-capacity open-addressed label interning table — the same
/// structure the obs registry uses (FNV-1a start slot, linear probing,
/// `OnceLock` slots with content-verified claims).
struct LabelTable<const N: usize> {
    slots: [OnceLock<&'static str>; N],
}

impl<const N: usize> LabelTable<N> {
    const fn new() -> Self {
        LabelTable {
            slots: [const { OnceLock::new() }; N],
        }
    }

    /// Index of `label`, interning it on first use.
    fn index_of(&self, label: &'static str) -> usize {
        debug_assert!(N.is_power_of_two());
        let h = label_hash(label) as usize;
        for i in 0..N {
            let idx = (h + i) & (N - 1);
            let slot = &self.slots[idx];
            match slot.get() {
                Some(&l) => {
                    if l == label {
                        return idx;
                    }
                    // Collision: probe onward.
                }
                None => {
                    // Claim the empty slot; on a lost race, accept the
                    // slot iff the winner registered the same label.
                    if slot.set(label).is_ok() || *slot.get().expect("slot was set") == label {
                        return idx;
                    }
                }
            }
        }
        panic!("trace: label table full ({N} slots) — raise the capacity in sl2_trace");
    }

    fn label_at(&self, idx: usize) -> Option<&'static str> {
        self.slots.get(idx).and_then(|s| s.get().copied())
    }
}

/// One in-ring event: five words, seqlock-published via `commit`.
struct Slot {
    /// 0 while being written; `claim + 1` once the claim-th event of
    /// this ring is fully stored. A reader expecting generation
    /// `claim` validates `commit == claim + 1` around its field loads.
    commit: AtomicU64,
    /// `kind | label_idx << 8 | thread << 32`.
    meta: AtomicU64,
    span: AtomicU64,
    stamp: AtomicU64,
    payload: AtomicU64,
}

struct Ring {
    /// Total events ever claimed in this ring (monotone; the live
    /// window is `[head - RING_CAP, head)`).
    head: AtomicU64,
    slots: [Slot; RING_CAP],
}

static LABELS: LabelTable<LABEL_SLOTS> = LabelTable::new();

static RING_BUFFERS: [CachePadded<Ring>; RINGS] = [const {
    CachePadded::new(Ring {
        head: AtomicU64::new(0),
        slots: [const {
            Slot {
                commit: AtomicU64::new(0),
                meta: AtomicU64::new(0),
                span: AtomicU64::new(0),
                stamp: AtomicU64::new(0),
                payload: AtomicU64::new(0),
            }
        }; RING_CAP],
    })
}; RINGS];

/// Global event clock: one ticket per event, `AcqRel` like the PR-7
/// recorder's, so stamp order is consistent with real-time order.
static CLOCK: AtomicU64 = AtomicU64::new(0);

/// Span id mint. Starts at 1: span 0 means "no ambient span".
static SPAN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The calling thread's ambient span (0 = none).
    static AMBIENT: Cell<u64> = const { Cell::new(0) };
}

/// Mints a fresh nonzero span id.
#[inline]
pub fn next_span() -> u64 {
    SPAN.fetch_add(1, Ordering::Relaxed)
}

/// The calling thread's ambient span (0 = none).
#[inline]
pub fn current_span() -> u64 {
    AMBIENT.with(|c| c.get())
}

/// Drop guard restoring the previous ambient span.
#[derive(Debug)]
#[must_use = "the guard scopes the ambient span — bind it for the span's extent"]
pub struct SpanGuard {
    prev: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        AMBIENT.with(|c| c.set(self.prev));
    }
}

/// Makes `span` the calling thread's ambient span for the guard's
/// lifetime (nests: dropping restores the outer span).
#[inline]
pub fn enter_span(span: u64) -> SpanGuard {
    SpanGuard {
        prev: AMBIENT.with(|c| c.replace(span)),
    }
}

#[inline]
fn emit(kind: u64, label: &'static str, span: u64, payload: u64) {
    let idx = LABELS.index_of(label) as u64;
    let thread = labeled::slot() as u64;
    let ring = &RING_BUFFERS[(thread as usize) % RINGS];
    let claim = ring.head.fetch_add(1, Ordering::Relaxed);
    let slot = &ring.slots[(claim as usize) % RING_CAP];
    let stamp = CLOCK.fetch_add(1, Ordering::AcqRel);
    // Seqlock-style publish: invalidate, store fields, commit. A
    // drain racing this write sees commit ≠ claim+1 on one side of
    // its field loads and skips the slot instead of decoding it torn.
    slot.commit.store(0, Ordering::Release);
    slot.meta
        .store(kind | (idx << 8) | (thread << 32), Ordering::Relaxed);
    slot.span.store(span, Ordering::Relaxed);
    slot.stamp.store(stamp, Ordering::Relaxed);
    slot.payload.store(payload, Ordering::Relaxed);
    slot.commit.store(claim + 1, Ordering::Release);
}

/// Marks the invocation boundary of `span` at `label`.
#[inline]
pub fn span_begin(label: &'static str, span: u64, payload: u64) {
    emit(KIND_BEGIN, label, span, payload);
}

/// Marks the response boundary of `span` at `label`.
#[inline]
pub fn span_end(label: &'static str, span: u64, payload: u64) {
    emit(KIND_END, label, span, payload);
}

/// Emits an instant attributed to the ambient span.
#[inline]
pub fn event(label: &'static str, payload: u64) {
    emit(KIND_INSTANT, label, current_span(), payload);
}

/// Emits an instant attributed to an explicit `span`.
#[inline]
pub fn event_in(label: &'static str, span: u64, payload: u64) {
    emit(KIND_INSTANT, label, span, payload);
}

/// True: the trace layer is armed in this build.
#[inline]
pub fn armed() -> bool {
    true
}

/// Nondestructive merge of every ring: the last `RING_CAP` committed
/// events per ring, validated against their commit words (torn or
/// in-flight slots are skipped), sorted by stamp. Exact at
/// quiescence; a best-effort snapshot while writers are live.
pub fn drain() -> TraceLog {
    let mut events = Vec::new();
    for ring in RING_BUFFERS.iter() {
        let head = ring.head.load(Ordering::Acquire);
        let start = head.saturating_sub(RING_CAP as u64);
        for claim in start..head {
            let slot = &ring.slots[(claim as usize) % RING_CAP];
            if slot.commit.load(Ordering::Acquire) != claim + 1 {
                continue; // in-flight, or wrapped past us
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let span = slot.span.load(Ordering::Relaxed);
            let stamp = slot.stamp.load(Ordering::Relaxed);
            let payload = slot.payload.load(Ordering::Relaxed);
            if slot.commit.load(Ordering::Acquire) != claim + 1 {
                continue; // overwritten mid-read: drop, never tear
            }
            let kind = match meta & 0xff {
                KIND_BEGIN => EventKind::Begin,
                KIND_END => EventKind::End,
                _ => EventKind::Instant,
            };
            let label = LABELS
                .label_at(((meta >> 8) & 0xff_ffff) as usize)
                .unwrap_or("?");
            events.push(TraceEvent {
                kind,
                label,
                thread: (meta >> 32) as usize,
                span,
                stamp,
                payload,
            });
        }
    }
    events.sort_by_key(|e| e.stamp);
    TraceLog { events }
}

/// Clears every ring and rewinds the clock and span mints, so a
/// scripted run replayed after `reset` reproduces identical stamps
/// and span ids (the determinism `tests/trace.rs` pins). Labels stay
/// interned. Callers serialize against concurrent emitters — the
/// rings are process-global.
pub fn reset() {
    for ring in RING_BUFFERS.iter() {
        for slot in ring.slots.iter() {
            slot.commit.store(0, Ordering::Release);
        }
        ring.head.store(0, Ordering::Release);
    }
    CLOCK.store(0, Ordering::Release);
    SPAN.store(1, Ordering::Release);
}

/// Chains a panic hook that dumps the rings via [`dump_env`] with
/// reason `"panic"`, after the previous hook has printed its report.
/// Idempotent: the hook is installed once per process. (A chaos
/// crash-stop never unwinds and runs no hook — its observer calls
/// [`dump_env`] explicitly; DESIGN.md §13.)
pub fn install_flight_recorder() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            dump_env("panic");
        }));
    });
}

/// Drains the rings and writes the JSON-lines dump to the path named
/// by `SL2_TRACE_JSON` (if set), tagged with the installed chaos
/// plan's seed so the post-mortem names the run that reproduces it.
pub fn dump_env(reason: &str) {
    drain().write_env(reason, &chaos_tag());
}

#[cfg(feature = "chaos")]
fn chaos_tag() -> String {
    match sl2_chaos::plan_seed() {
        Some(seed) => format!("chaos[seed={seed}]"),
        None => String::new(),
    }
}

#[cfg(not(feature = "chaos"))]
fn chaos_tag() -> String {
    String::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The rings, clock, and span mint are process-global: unit tests
    /// in this binary serialize on this lock (as `tests/trace.rs`
    /// does at the workspace level).
    static SEQ: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_and_restore() {
        let _g = SEQ.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(current_span(), 0);
        let outer = next_span();
        let inner = next_span();
        {
            let _a = enter_span(outer);
            assert_eq!(current_span(), outer);
            {
                let _b = enter_span(inner);
                assert_eq!(current_span(), inner);
            }
            assert_eq!(current_span(), outer);
        }
        assert_eq!(current_span(), 0);
    }

    #[test]
    fn emitted_events_drain_in_stamp_order_with_fields_intact() {
        let _g = SEQ.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        let span = next_span();
        span_begin("trace.unit.op", span, 41);
        event_in("trace.unit.step", span, 42);
        span_end("trace.unit.op", span, 43);
        let log = drain();
        assert_eq!(log.len(), 3);
        assert!(log.events.windows(2).all(|w| w[0].stamp < w[1].stamp));
        assert_eq!(log.events[0].kind, EventKind::Begin);
        assert_eq!(log.events[0].label, "trace.unit.op");
        assert_eq!(log.events[0].payload, 41);
        assert_eq!(log.events[1].kind, EventKind::Instant);
        assert_eq!(log.events[2].kind, EventKind::End);
        assert!(log.events.iter().all(|e| e.span == span));
        reset();
        assert!(drain().is_empty());
    }

    #[test]
    fn json_dump_carries_reason_and_tag() {
        let _g = SEQ.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        event_in("trace.unit.json", 0, 9);
        let json = drain().to_json_lines("panic", "chaos[seed=7]");
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"reason\":\"panic\""));
        assert!(lines[0].contains("\"tag\":\"chaos[seed=7]\""));
        assert!(lines[1].contains("\"label\":\"trace.unit.json\""));
        reset();
    }
}
