//! Causal request tracing for the sl2 runtime crates — the third leg
//! of the disarmed-instrumentation triad (chaos = PR 7, obs = PR 8),
//! and the first whose output is itself checker-adjudicated.
//!
//! `sl2_obs` answers "how much / how fast" in aggregate; nothing there
//! can answer *what happened, in order, to one request* as it crosses
//! the service tier. This crate records exactly that, on the same
//! zero-cost terms:
//!
//! * **Trace points.** Hot paths emit fixed-size binary events —
//!   label id, thread id (from `sl2_primitives::labeled`), request
//!   *span* id, a monotone stamp from a record-style global clock, and
//!   one payload word — via [`span_begin`]/[`span_end`] (operation
//!   boundaries) and [`event`]/[`event_in`] (instants inside a span).
//!   With the `trace` feature off (the default everywhere), every
//!   point is an empty `#[inline(always)]` stub and [`SpanGuard`] is a
//!   ZST: the production build is bit-for-bit unaffected (pinned by
//!   `tests/alloc_counter.rs`).
//! * **Per-thread rings.** Armed, events go into [`RINGS`] static
//!   cache-padded ring buffers of [`RING_CAP`] slots each, selected by
//!   the caller's thread slot. Writes are lock-free and allocation-free
//!   in steady state; a full ring overwrites oldest-first, so the rings
//!   always hold the *last* `RING_CAP` events per lane — a black box,
//!   not an unbounded log. A per-slot commit word (seqlock-style
//!   publish) lets [`drain`] detect and skip torn slots.
//! * **Spans.** A request takes one span id ([`next_span`]) at its
//!   client boundary; the id rides through the worker FIFO, and the
//!   serving worker re-enters it ambiently ([`enter_span`]) so that
//!   instants emitted layers below — combiner election, bignum
//!   migration — attribute to the request that caused them without any
//!   signature threading.
//! * **Flight recorder.** [`install_flight_recorder`] chains a panic
//!   hook that dumps the rings ([`dump_env`], `SL2_TRACE_JSON`
//!   JSON-lines, mirroring the corpus/recorder/metrics artifacts),
//!   tagged `chaos[seed=…]` when a fault plan is installed — every
//!   failure ships its own black box. (A chaos *crash-stop* parks the
//!   thread without unwinding, so no hook runs at the point of crash;
//!   the observer calls [`dump_env`] explicitly once
//!   `crashed_count` trips — see `tests/trace.rs`.)
//! * **The bridge.** [`bridge`] pairs span boundaries back into
//!   invoke/response intervals, which `sl2_exec::record::
//!   history_from_spans` turns into a checkable `History`: crashed
//!   spans stay pending forever (the PR-7 convention), and stamp slack
//!   only ever *shrinks* recorded precedence, so refutations found in
//!   a bridged history are sound (DESIGN.md §13).
//!
//! # Example
//!
//! ```
//! use sl2_trace as trace;
//!
//! // Disarmed by default: stubs compile to nothing and drains are
//! // empty. Armed under `--features trace`, these fill the rings.
//! let span = trace::next_span();
//! trace::span_begin("doc.example.request", span, 7);
//! {
//!     let _g = trace::enter_span(span);
//!     trace::event("doc.example.step", 1); // attributes to `span`
//! }
//! trace::span_end("doc.example.request", span, 0);
//! assert_eq!(trace::drain().events.is_empty(), !trace::armed());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bridge;

#[cfg(feature = "trace")]
mod armed;

#[cfg(feature = "trace")]
pub use armed::{
    armed, current_span, drain, dump_env, enter_span, event, event_in, install_flight_recorder,
    next_span, reset, span_begin, span_end, SpanGuard, RINGS, RING_CAP,
};

/// Number of static per-thread ring buffers events are striped over
/// when the trace layer is armed (mirrored here so ring-aware callers
/// compile in both configurations).
#[cfg(not(feature = "trace"))]
pub const RINGS: usize = 16;

/// Capacity of each ring, in events: the "last N per lane" a flight
/// dump can hold (mirrored for disarmed builds).
#[cfg(not(feature = "trace"))]
pub const RING_CAP: usize = 1024;

/// What a trace event marks within its span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// The span's operation was invoked (client boundary).
    Begin,
    /// The span's operation completed (response boundary).
    End,
    /// A point inside the span (route step, election, migration, …).
    Instant,
}

impl EventKind {
    /// Lowercase wire name used in the JSON-lines dump.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::End => "end",
            EventKind::Instant => "instant",
        }
    }
}

/// One decoded trace event. The in-ring representation is five `u64`
/// words; this is the drained, label-resolved form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Begin/End/Instant.
    pub kind: EventKind,
    /// Interned point label, e.g. `"service.request"`.
    pub label: &'static str,
    /// Thread slot of the emitting thread (`labeled::slot`).
    pub thread: usize,
    /// Request span the event belongs to (0 = no ambient span).
    pub span: u64,
    /// Global-clock ticket: stamps are unique and totally ordered.
    pub stamp: u64,
    /// One word of event payload (operation encoding, batch size, …).
    pub payload: u64,
}

/// A drained trace: events from every ring, merged and sorted by
/// stamp. Produced by [`drain`]; consumed by [`bridge`] and the
/// flight-recorder dump.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceLog {
    /// Events in stamp order (stamps are unique global tickets).
    pub events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Number of events in the log.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the log as JSON lines: a header object carrying the
    /// dump `reason` and chaos `tag` (empty when no plan is
    /// installed), then one object per event in stamp order. Two runs
    /// of the same seeded schedule produce byte-identical output —
    /// the determinism `tests/trace.rs` pins.
    pub fn to_json_lines(&self, reason: &str, tag: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"trace\":\"dump\",\"reason\":\"{}\",\"tag\":\"{}\",\"events\":{}}}\n",
            json_escape(reason),
            json_escape(tag),
            self.events.len(),
        ));
        for e in &self.events {
            out.push_str(&format!(
                "{{\"trace\":\"event\",\"kind\":\"{}\",\"label\":\"{}\",\
                 \"thread\":{},\"span\":{},\"stamp\":{},\"payload\":{}}}\n",
                e.kind.name(),
                json_escape(e.label),
                e.thread,
                e.span,
                e.stamp,
                e.payload,
            ));
        }
        out
    }

    /// Writes the JSON-lines dump to the path named by the
    /// `SL2_TRACE_JSON` environment variable, if set (the CI artifact
    /// hook, mirroring `SL2_RECORDER_JSON`/`SL2_METRICS_JSON`).
    pub fn write_env(&self, reason: &str, tag: &str) {
        if let Ok(path) = std::env::var("SL2_TRACE_JSON") {
            std::fs::write(&path, self.to_json_lines(reason, tag))
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Mints a fresh nonzero span id. Disarmed: returns 0 (no span).
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn next_span() -> u64 {
    0
}

/// The calling thread's ambient span (0 = none). Disarmed: 0.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn current_span() -> u64 {
    0
}

/// Drop guard restoring the previous ambient span. Disarmed: a ZST
/// with no `Drop` glue.
#[cfg(not(feature = "trace"))]
#[derive(Debug)]
#[must_use = "the guard scopes the ambient span — bind it for the span's extent"]
pub struct SpanGuard(());

/// Makes `span` the calling thread's ambient span for the guard's
/// lifetime. Disarmed: returns the ZST.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn enter_span(_span: u64) -> SpanGuard {
    SpanGuard(())
}

/// Marks the invocation boundary of `span` at `label`. Disarmed:
/// empty stub.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn span_begin(_label: &'static str, _span: u64, _payload: u64) {}

/// Marks the response boundary of `span` at `label`. Disarmed: empty
/// stub.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn span_end(_label: &'static str, _span: u64, _payload: u64) {}

/// Emits an instant attributed to the ambient span. Disarmed: empty
/// stub.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn event(_label: &'static str, _payload: u64) {}

/// Emits an instant attributed to an explicit `span`. Disarmed: empty
/// stub.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn event_in(_label: &'static str, _span: u64, _payload: u64) {}

/// False: the trace layer is compiled out of this build.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn armed() -> bool {
    false
}

/// Clears the rings and rewinds the clock and span counters.
/// Disarmed: no-op.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn reset() {}

/// Nondestructive merge of every ring. Disarmed: always empty, so
/// dump-emitting call sites need no feature gate.
#[cfg(not(feature = "trace"))]
pub fn drain() -> TraceLog {
    TraceLog::default()
}

/// Chains the flight-recorder panic hook. Disarmed: no-op.
#[cfg(not(feature = "trace"))]
pub fn install_flight_recorder() {}

/// Dumps the rings to `SL2_TRACE_JSON` (if set). Disarmed: no-op.
#[cfg(not(feature = "trace"))]
pub fn dump_env(_reason: &str) {}
