//! Test&set primitives (consensus number 2).
//!
//! [`TestAndSet`] is the plain one-shot primitive: the first caller
//! of [`TestAndSet::test_and_set`] obtains 0 (wins), everyone else
//! obtains 1. [`ReadableTestAndSet`] additionally exposes `read` — the
//! "readable" base-object variant the paper's Section 5 reduction
//! requires, and which Theorem 5 shows is implementable from the
//! non-readable one. [`TwoProcessTestAndSet`] enforces the 2-process
//! restriction appearing in Theorem 19 (`n > 2k` impossibility from
//! 2-process test&set).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::consensus::{BaseObject, ConsensusNumber};

/// One-shot test&set: first caller wins.
///
/// # Examples
///
/// ```
/// use sl2_primitives::TestAndSet;
///
/// let ts = TestAndSet::new();
/// assert_eq!(ts.test_and_set(), 0); // winner
/// assert_eq!(ts.test_and_set(), 1);
/// ```
#[derive(Debug, Default)]
pub struct TestAndSet {
    bit: AtomicBool,
}

impl TestAndSet {
    /// Creates a test&set object in state 0.
    pub fn new() -> Self {
        TestAndSet::default()
    }

    /// Atomically sets the bit and returns its previous value (0 or 1).
    pub fn test_and_set(&self) -> u8 {
        self.bit.swap(true, Ordering::SeqCst) as u8
    }
}

impl BaseObject for TestAndSet {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::Two;
}

/// Atomic *readable* test&set: test&set plus a read of the current
/// state.
///
/// Hardware test&set bits are naturally readable; the paper keeps the
/// readable and non-readable variants distinct because the Section 5
/// reduction needs readability while Theorem 5 shows it can be
/// recovered from the plain primitive.
#[derive(Debug, Default)]
pub struct ReadableTestAndSet {
    bit: AtomicBool,
}

impl ReadableTestAndSet {
    /// Creates a readable test&set object in state 0.
    pub fn new() -> Self {
        ReadableTestAndSet::default()
    }

    /// Atomically sets the bit and returns its previous value (0 or 1).
    pub fn test_and_set(&self) -> u8 {
        self.bit.swap(true, Ordering::SeqCst) as u8
    }

    /// Reads the current state (0 or 1).
    pub fn read(&self) -> u8 {
        self.bit.load(Ordering::SeqCst) as u8
    }
}

impl BaseObject for ReadableTestAndSet {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::Two;
}

/// A test&set object restricted to two fixed participants.
///
/// 2-process test&set is equivalent to 2-process consensus \[20\]; Theorem
/// 19 shows that `k`-set agreement for `n > 2k` — and hence lock-free
/// strongly-linearizable `k`-ordering objects — is impossible from this
/// primitive alone. The restriction is enforced dynamically: at most two
/// distinct participant identifiers may ever call
/// [`TwoProcessTestAndSet::test_and_set`].
#[derive(Debug, Default)]
pub struct TwoProcessTestAndSet {
    bit: AtomicBool,
    // Participant slots: 0 = vacant, otherwise id + 1.
    slots: [AtomicU64; 2],
}

impl TwoProcessTestAndSet {
    /// Creates a 2-process test&set object in state 0.
    pub fn new() -> Self {
        TwoProcessTestAndSet::default()
    }

    /// Atomically sets the bit and returns its previous value.
    ///
    /// # Panics
    ///
    /// Panics if `participant` is the third distinct identifier to
    /// access this object — the primitive is only defined for two
    /// processes.
    pub fn test_and_set(&self, participant: usize) -> u8 {
        self.register(participant);
        self.bit.swap(true, Ordering::SeqCst) as u8
    }

    fn register(&self, participant: usize) {
        let tag = participant as u64 + 1;
        for slot in &self.slots {
            let seen = slot.load(Ordering::SeqCst);
            if seen == tag {
                return;
            }
            if seen == 0
                && slot
                    .compare_exchange(0, tag, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                return;
            }
            if slot.load(Ordering::SeqCst) == tag {
                return;
            }
        }
        panic!("TwoProcessTestAndSet accessed by a third participant ({participant})");
    }
}

impl BaseObject for TwoProcessTestAndSet {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::Two;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn exactly_one_winner_across_threads() {
        for _ in 0..50 {
            let ts = TestAndSet::new();
            let winners = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        if ts.test_and_set() == 0 {
                            winners.fetch_add(1, Ordering::SeqCst);
                        }
                    });
                }
            });
            assert_eq!(winners.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn readable_read_tracks_state() {
        let ts = ReadableTestAndSet::new();
        assert_eq!(ts.read(), 0);
        assert_eq!(ts.test_and_set(), 0);
        assert_eq!(ts.read(), 1);
        assert_eq!(ts.test_and_set(), 1);
    }

    #[test]
    fn two_process_allows_two_participants() {
        let ts = TwoProcessTestAndSet::new();
        assert_eq!(ts.test_and_set(4), 0);
        assert_eq!(ts.test_and_set(9), 1);
        assert_eq!(ts.test_and_set(4), 1); // repeat access is fine
    }

    #[test]
    #[should_panic(expected = "third participant")]
    fn two_process_rejects_third_participant() {
        let ts = TwoProcessTestAndSet::new();
        ts.test_and_set(0);
        ts.test_and_set(1);
        ts.test_and_set(2);
    }

    #[test]
    fn consensus_numbers_are_two() {
        assert_eq!(TestAndSet::new().consensus_number(), ConsensusNumber::Two);
        assert_eq!(
            ReadableTestAndSet::new().consensus_number(),
            ConsensusNumber::Two
        );
        assert_eq!(
            TwoProcessTestAndSet::new().consensus_number(),
            ConsensusNumber::Two
        );
    }
}
