//! Read/write registers (consensus number 1).
//!
//! All operations use sequentially-consistent ordering: the paper's
//! model is atomic shared memory, and every construction's proof relies
//! on a total order of base-object operations.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::consensus::{BaseObject, ConsensusNumber};

/// A multi-writer multi-reader `u64` register.
///
/// # Examples
///
/// ```
/// use sl2_primitives::Register;
///
/// let r = Register::new(0);
/// r.write(7);
/// assert_eq!(r.read(), 7);
/// ```
#[derive(Debug, Default)]
pub struct Register {
    cell: AtomicU64,
}

impl Register {
    /// Creates a register with the given initial value.
    pub fn new(init: u64) -> Self {
        Register {
            cell: AtomicU64::new(init),
        }
    }

    /// Atomically reads the current value.
    pub fn read(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }

    /// Atomically writes `v`.
    pub fn write(&self, v: u64) {
        self.cell.store(v, Ordering::SeqCst);
    }
}

impl BaseObject for Register {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::One;
}

/// A multi-writer multi-reader boolean register (e.g. the `state`
/// register of Theorem 5's readable test&set).
#[derive(Debug, Default)]
pub struct BoolRegister {
    cell: AtomicBool,
}

impl BoolRegister {
    /// Creates a register with the given initial value.
    pub fn new(init: bool) -> Self {
        BoolRegister {
            cell: AtomicBool::new(init),
        }
    }

    /// Atomically reads the current value.
    pub fn read(&self) -> bool {
        self.cell.load(Ordering::SeqCst)
    }

    /// Atomically writes `v`.
    pub fn write(&self, v: bool) {
        self.cell.store(v, Ordering::SeqCst);
    }
}

impl BaseObject for BoolRegister {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::One;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_reads_last_write() {
        let r = Register::new(3);
        assert_eq!(r.read(), 3);
        r.write(10);
        r.write(11);
        assert_eq!(r.read(), 11);
    }

    #[test]
    fn bool_register_round_trips() {
        let r = BoolRegister::new(false);
        assert!(!r.read());
        r.write(true);
        assert!(r.read());
    }

    #[test]
    fn registers_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Register>();
        assert_send_sync::<BoolRegister>();
    }

    #[test]
    fn consensus_number_is_one() {
        assert_eq!(Register::new(0).consensus_number(), ConsensusNumber::One);
        assert_eq!(
            BoolRegister::new(false).consensus_number(),
            ConsensusNumber::One
        );
    }
}
