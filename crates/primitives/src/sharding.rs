//! Cache-line padding and shard-index helpers for the sharded runtime
//! layer (`sl2_sharded`).
//!
//! Sharding the §3 objects replaces one global wide register with `S`
//! independent ones. That only relieves contention if the shards do not
//! share cache lines: two spinlocks in one 64-byte line still bounce a
//! single line between cores (false sharing), which erases the win the
//! sharding exists to buy. [`CachePadded`] pins each shard to its own
//! line; [`Sharding`] centralizes the index arithmetic so the
//! production forms and the checker step machines provably agree on
//! which shard an operation touches.

use std::ops::{Deref, DerefMut};

/// Pads and aligns `T` to a 64-byte cache line so adjacent array
/// elements never share a line.
///
/// 64 bytes is the line size of every mainstream x86-64 and aarch64
/// part this repo targets; on machines with 128-byte lines the wrapper
/// halves, but does not eliminate, the benefit.
///
/// # Examples
///
/// ```
/// use sl2_primitives::CachePadded;
///
/// let shards: Vec<CachePadded<u64>> = (0..4).map(CachePadded::new).collect();
/// assert_eq!(*shards[2], 2);
/// assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 64);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(align(64))]
pub struct CachePadded<T>(T);

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded(value)
    }

    /// Consumes the wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Upper bound on shard counts accepted by [`Sharding`].
///
/// The sharded read paths keep their collect buffers on the stack
/// (`[u64; MAX_SHARDS]`) so folds stay allocation-free; 256 shards
/// costs 4 KiB of stack per collect — still trivial — and leaves
/// headroom past any core count this repo targets. (The bound was 64
/// before PR 6; the binary lane encoding made wide shard fans cheap
/// enough to be worth allowing, since shard width no longer grows
/// linearly in the stored values.)
pub const MAX_SHARDS: usize = 256;

/// Shard-index arithmetic shared by `sl2_sharded`'s production forms
/// and step machines.
///
/// The maps are plain residues, deliberately: the checker scenarios in
/// DESIGN.md §6 reason about *which* shard each operation touches, and
/// a mixing hash would make those scenarios unreadable without making
/// the contention story better (the benches drive skew explicitly
/// through their value streams instead).
///
/// # Examples
///
/// ```
/// use sl2_primitives::Sharding;
///
/// let sharding = Sharding::new(4);
/// assert_eq!(sharding.of_value(10), 2);
/// assert_eq!(sharding.of_process(5), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sharding {
    shards: usize,
}

impl Sharding {
    /// Creates an index map over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0 or exceeds [`MAX_SHARDS`].
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "sharding requires at least one shard");
        assert!(
            shards <= MAX_SHARDS,
            "sharding capped at {MAX_SHARDS} shards (stack collect buffers)"
        );
        Sharding { shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Home shard of a value (value-hashed objects: max registers).
    pub fn of_value(&self, v: u64) -> usize {
        (v % self.shards as u64) as usize
    }

    /// Home shard of a process (process-striped objects: counters).
    pub fn of_process(&self, p: usize) -> usize {
        p % self.shards
    }

    /// Probes every shard with `probe` until two consecutive collects
    /// agree, returning the stable collect (entries past
    /// `self.shards()` are zero). This is the shared read discipline of
    /// the sharded objects: shard projections are monotone, so equal
    /// collects pin each shard to its observed value over an interval
    /// common to all of them — the stable collect is an exact cut.
    /// Lock-free (a retry implies a concurrent write completed) and
    /// allocation-free: the buffers live on the stack, which is what
    /// [`MAX_SHARDS`] exists to bound.
    pub fn stable_collect(&self, mut probe: impl FnMut(usize) -> u64) -> [u64; MAX_SHARDS] {
        let s = self.shards;
        let mut prev = [0u64; MAX_SHARDS];
        let mut have_prev = false;
        loop {
            let mut cur = [0u64; MAX_SHARDS];
            for (i, slot) in cur.iter_mut().enumerate().take(s) {
                *slot = probe(i);
            }
            if have_prev && prev[..s] == cur[..s] {
                return cur;
            }
            prev = cur;
            have_prev = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_line_aligned_and_transparent() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 64);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 64);
        let mut c = CachePadded::new(5u32);
        *c += 1;
        assert_eq!(*c, 6);
        assert_eq!(c.into_inner(), 6);
    }

    #[test]
    fn padded_array_elements_live_on_distinct_lines() {
        let v: Vec<CachePadded<u64>> = (0..4).map(CachePadded::new).collect();
        let a = &v[0] as *const _ as usize;
        let b = &v[1] as *const _ as usize;
        assert!(b - a >= 64, "adjacent shards {a:#x}/{b:#x} share a line");
    }

    #[test]
    fn sharding_maps_are_total_and_in_range() {
        let s = Sharding::new(3);
        for v in 0..100u64 {
            assert!(s.of_value(v) < 3);
        }
        for p in 0..100usize {
            assert!(s.of_process(p) < 3);
        }
        assert_eq!(Sharding::new(1).of_value(u64::MAX), 0);
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn sharding_rejects_oversized_counts() {
        let _ = Sharding::new(MAX_SHARDS + 1);
    }

    #[test]
    fn stable_collect_retries_until_quiescent() {
        // A probe that moves once: the first collect sees the old value
        // somewhere, so a second (and third) pass must run before two
        // consecutive collects agree.
        let s = Sharding::new(3);
        let mut calls = 0;
        let stable = s.stable_collect(|i| {
            calls += 1;
            if calls <= 2 {
                0 // first pass sees shards 0 and 1 before the "write"
            } else {
                (i as u64) + 10
            }
        });
        assert_eq!(&stable[..3], &[10, 11, 12]);
        assert_eq!(stable[3..], [0u64; MAX_SHARDS - 3]);
        assert!(calls >= 9, "at least three full passes: {calls}");
    }
}
