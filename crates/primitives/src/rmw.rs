//! Read-modify-write primitives: fetch&add, swap (consensus number 2)
//! and compare&swap (consensus number ∞).
//!
//! `FetchAdd` and `Swap` are the paper's realistic level-2 primitives;
//! `CompareAndSwap` is included as the *universal* primitive the paper
//! contrasts against (the only previously-known route to wait-free
//! strong linearizability \[16, 24\]).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::consensus::{BaseObject, ConsensusNumber};

/// Atomic fetch&add on a `u64` (wrapping, like hardware `xadd`).
///
/// # Examples
///
/// ```
/// use sl2_primitives::FetchAdd;
///
/// let c = FetchAdd::new(0);
/// assert_eq!(c.fetch_add(5), 0);
/// assert_eq!(c.read(), 5);
/// ```
#[derive(Debug, Default)]
pub struct FetchAdd {
    cell: AtomicU64,
}

impl FetchAdd {
    /// Creates a fetch&add register with the given initial value.
    pub fn new(init: u64) -> Self {
        FetchAdd {
            cell: AtomicU64::new(init),
        }
    }

    /// Atomically adds `delta` (wrapping), returning the previous value.
    pub fn fetch_add(&self, delta: u64) -> u64 {
        self.cell.fetch_add(delta, Ordering::SeqCst)
    }

    /// Reads the current value (= `fetch_add(0)`, as the paper's
    /// algorithms do).
    pub fn read(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }
}

impl BaseObject for FetchAdd {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::Two;
}

/// Atomic swap register on a `u64`.
#[derive(Debug, Default)]
pub struct Swap {
    cell: AtomicU64,
}

impl Swap {
    /// Creates a swap register with the given initial value.
    pub fn new(init: u64) -> Self {
        Swap {
            cell: AtomicU64::new(init),
        }
    }

    /// Atomically writes `v`, returning the previous value.
    pub fn swap(&self, v: u64) -> u64 {
        self.cell.swap(v, Ordering::SeqCst)
    }

    /// Reads the current value.
    pub fn read(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }
}

impl BaseObject for Swap {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::Two;
}

/// Atomic compare&swap on a `u64` — the universal primitive.
#[derive(Debug, Default)]
pub struct CompareAndSwap {
    cell: AtomicU64,
}

impl CompareAndSwap {
    /// Creates a CAS register with the given initial value.
    pub fn new(init: u64) -> Self {
        CompareAndSwap {
            cell: AtomicU64::new(init),
        }
    }

    /// Atomically replaces the value with `new` iff it equals `expect`.
    /// Returns the value observed (equal to `expect` iff the CAS won).
    pub fn compare_and_swap(&self, expect: u64, new: u64) -> u64 {
        match self
            .cell
            .compare_exchange(expect, new, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(prev) => prev,
            Err(prev) => prev,
        }
    }

    /// Reads the current value.
    pub fn read(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }
}

impl BaseObject for CompareAndSwap {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::Infinite;
}

// The wide registers (`sl2_bignum::FetchAdd128` / `WideFaa`) carry the
// same annotation from their own crate — `sl2_bignum` depends on this
// one for the vocabulary, keeping the crate graph a DAG with the
// primitives at the bottom.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_add_sums_exactly_across_threads() {
        let c = FetchAdd::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.fetch_add(1);
                    }
                });
            }
        });
        assert_eq!(c.read(), 80_000);
    }

    #[test]
    fn fetch_add_returns_distinct_tickets() {
        use std::sync::Mutex;
        let c = FetchAdd::new(0);
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        let t = c.fetch_add(1);
                        seen.lock().unwrap().push(t);
                    }
                });
            }
        });
        let mut tickets = seen.into_inner().unwrap();
        tickets.sort_unstable();
        tickets.dedup();
        assert_eq!(tickets.len(), 4000, "tickets must be unique");
    }

    #[test]
    fn swap_forms_a_chain() {
        // Sequential check that swap returns the previous value.
        let s = Swap::new(0);
        assert_eq!(s.swap(1), 0);
        assert_eq!(s.swap(2), 1);
        assert_eq!(s.read(), 2);
    }

    #[test]
    fn cas_succeeds_once_per_expected_value() {
        let c = CompareAndSwap::new(0);
        assert_eq!(c.compare_and_swap(0, 5), 0); // won
        assert_eq!(c.compare_and_swap(0, 9), 5); // lost
        assert_eq!(c.read(), 5);
    }

    #[test]
    fn consensus_numbers_match_the_hierarchy() {
        assert_eq!(FetchAdd::new(0).consensus_number(), ConsensusNumber::Two);
        assert_eq!(Swap::new(0).consensus_number(), ConsensusNumber::Two);
        assert_eq!(
            CompareAndSwap::new(0).consensus_number(),
            ConsensusNumber::Infinite
        );
    }
}
