//! Read-modify-write primitives: fetch&add, swap (consensus number 2)
//! and compare&swap (consensus number ∞).
//!
//! `FetchAdd` and `Swap` are the paper's realistic level-2 primitives;
//! `CompareAndSwap` is included as the *universal* primitive the paper
//! contrasts against (the only previously-known route to wait-free
//! strong linearizability \[16, 24\]).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::consensus::{BaseObject, ConsensusNumber};

/// Atomic fetch&add on a `u64` (wrapping, like hardware `xadd`).
///
/// # Examples
///
/// ```
/// use sl2_primitives::FetchAdd;
///
/// let c = FetchAdd::new(0);
/// assert_eq!(c.fetch_add(5), 0);
/// assert_eq!(c.read(), 5);
/// ```
#[derive(Debug, Default)]
pub struct FetchAdd {
    cell: AtomicU64,
}

impl FetchAdd {
    /// Creates a fetch&add register with the given initial value.
    pub fn new(init: u64) -> Self {
        FetchAdd {
            cell: AtomicU64::new(init),
        }
    }

    /// Atomically adds `delta` (wrapping), returning the previous value.
    pub fn fetch_add(&self, delta: u64) -> u64 {
        self.cell.fetch_add(delta, Ordering::SeqCst)
    }

    /// Reads the current value (= `fetch_add(0)`, as the paper's
    /// algorithms do).
    pub fn read(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }
}

impl BaseObject for FetchAdd {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::Two;
}

/// Atomic fetch&add on a `u128` — a fixed-width register for callers
/// that know `n × values` fits in 128 bits (e.g. a 2-process max
/// register up to 64, or a 4-component snapshot of 32-bit values).
/// Built on [`sl2_bignum::Atomic128`]: a lock-free `cmpxchg16b` retry
/// loop on x86_64 (runtime-detected), a short spinlock critical section
/// elsewhere — either way each operation has a single linearization
/// instant (DESIGN.md §9), which is all the §3 algorithms require.
///
/// Since `WideFaa` gained its inline two-limb representation it covers
/// this whole regime allocation-free *and* grows past it on demand, so
/// prefer `WideFaa` unless a hard 128-bit bound is itself the point
/// (this type never spills, so it doubles as a guard that a workload
/// stays within the bound).
#[derive(Debug, Default)]
pub struct FetchAdd128 {
    cell: sl2_bignum::Atomic128,
}

impl FetchAdd128 {
    /// Creates a register with the given initial value.
    pub fn new(init: u128) -> Self {
        FetchAdd128 {
            cell: sl2_bignum::Atomic128::new(init),
        }
    }

    /// Atomically adds `delta` (wrapping), returning the previous
    /// value.
    pub fn fetch_add(&self, delta: u128) -> u128 {
        self.cell.fetch_add(delta)
    }

    /// Atomically applies `+pos − neg` in one step (the §3.2 signed
    /// adjustment), returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative or overflow 128 bits —
    /// the never-spills guard. The register is left unchanged.
    pub fn fetch_adjust(&self, pos: u128, neg: u128) -> u128 {
        self.cell.fetch_update(|old| {
            old.checked_add(pos)
                .and_then(|v| v.checked_sub(neg))
                .expect("adjustment drove the register out of range")
        })
    }

    /// Reads the current value (= `fetch_add(0)`).
    pub fn read(&self) -> u128 {
        self.cell.load()
    }
}

impl BaseObject for FetchAdd128 {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::Two;
}

/// Atomic swap register on a `u64`.
#[derive(Debug, Default)]
pub struct Swap {
    cell: AtomicU64,
}

impl Swap {
    /// Creates a swap register with the given initial value.
    pub fn new(init: u64) -> Self {
        Swap {
            cell: AtomicU64::new(init),
        }
    }

    /// Atomically writes `v`, returning the previous value.
    pub fn swap(&self, v: u64) -> u64 {
        self.cell.swap(v, Ordering::SeqCst)
    }

    /// Reads the current value.
    pub fn read(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }
}

impl BaseObject for Swap {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::Two;
}

/// Atomic compare&swap on a `u64` — the universal primitive.
#[derive(Debug, Default)]
pub struct CompareAndSwap {
    cell: AtomicU64,
}

impl CompareAndSwap {
    /// Creates a CAS register with the given initial value.
    pub fn new(init: u64) -> Self {
        CompareAndSwap {
            cell: AtomicU64::new(init),
        }
    }

    /// Atomically replaces the value with `new` iff it equals `expect`.
    /// Returns the value observed (equal to `expect` iff the CAS won).
    pub fn compare_and_swap(&self, expect: u64, new: u64) -> u64 {
        match self
            .cell
            .compare_exchange(expect, new, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(prev) => prev,
            Err(prev) => prev,
        }
    }

    /// Reads the current value.
    pub fn read(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }
}

impl BaseObject for CompareAndSwap {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::Infinite;
}

// The wide register is fetch&add on an unbounded value: same position
// in the hierarchy as the fixed-width fetch&adds (the paper's point is
// precisely that this level-2 object suffices for the §3 towers).
impl BaseObject for sl2_bignum::WideFaa {
    const CONSENSUS_NUMBER: ConsensusNumber = ConsensusNumber::Two;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_add_sums_exactly_across_threads() {
        let c = FetchAdd::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.fetch_add(1);
                    }
                });
            }
        });
        assert_eq!(c.read(), 80_000);
    }

    #[test]
    fn fetch_add_returns_distinct_tickets() {
        use std::sync::Mutex;
        let c = FetchAdd::new(0);
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        let t = c.fetch_add(1);
                        seen.lock().unwrap().push(t);
                    }
                });
            }
        });
        let mut tickets = seen.into_inner().unwrap();
        tickets.sort_unstable();
        tickets.dedup();
        assert_eq!(tickets.len(), 4000, "tickets must be unique");
    }

    #[test]
    fn swap_forms_a_chain() {
        // Sequential check that swap returns the previous value.
        let s = Swap::new(0);
        assert_eq!(s.swap(1), 0);
        assert_eq!(s.swap(2), 1);
        assert_eq!(s.read(), 2);
    }

    #[test]
    fn cas_succeeds_once_per_expected_value() {
        let c = CompareAndSwap::new(0);
        assert_eq!(c.compare_and_swap(0, 5), 0); // won
        assert_eq!(c.compare_and_swap(0, 9), 5); // lost
        assert_eq!(c.read(), 5);
    }

    #[test]
    fn faa128_basics() {
        let c = FetchAdd128::new(0);
        assert_eq!(c.fetch_add(1 << 100), 0);
        assert_eq!(c.read(), 1 << 100);
        assert_eq!(c.fetch_adjust(1, 1 << 100), 1 << 100);
        assert_eq!(c.read(), 1);
    }

    #[test]
    fn faa128_concurrent_sums_exactly() {
        let c = FetchAdd128::new(0);
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.fetch_add(1u128 << (t * 16));
                    }
                });
            }
        });
        for t in 0..8u32 {
            assert_eq!((c.read() >> (t * 16)) & 0xffff, 1000, "lane {t}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn faa128_adjust_rejects_underflow() {
        FetchAdd128::new(0).fetch_adjust(0, 1);
    }

    #[test]
    fn faa128_failed_adjust_leaves_register_usable() {
        // The never-spills guard: a rejected adjustment must not tear
        // the cell or wedge the fallback lock.
        let c = FetchAdd128::new(10);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.fetch_adjust(0, 11);
        }));
        assert!(err.is_err());
        assert_eq!(c.read(), 10);
        assert_eq!(c.fetch_adjust(5, 1), 10);
        assert_eq!(c.read(), 14);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn faa128_adjust_rejects_overflow_past_128_bits() {
        FetchAdd128::new(u128::MAX).fetch_adjust(1, 0);
    }

    #[test]
    fn consensus_numbers_match_the_hierarchy() {
        assert_eq!(FetchAdd::new(0).consensus_number(), ConsensusNumber::Two);
        assert_eq!(FetchAdd128::new(0).consensus_number(), ConsensusNumber::Two);
        assert_eq!(Swap::new(0).consensus_number(), ConsensusNumber::Two);
        assert_eq!(
            sl2_bignum::WideFaa::new().consensus_number(),
            ConsensusNumber::Two
        );
        assert_eq!(
            CompareAndSwap::new(0).consensus_number(),
            ConsensusNumber::Infinite
        );
    }
}
