//! Shared label/thread-identity plumbing for the feature-gated
//! instrumentation layers (`sl2_chaos` injection points and `sl2_obs`
//! metrics probes).
//!
//! Both layers annotate the same hot paths with `&str`-labeled hooks
//! and need the same two pieces of infrastructure:
//!
//! * a **stable label identity** — [`label_hash`] (FNV-1a, identical
//!   across runs and platforms) and the [`Labeled`] pair that caches
//!   it, so seeded decisions and lock-free interning tables agree on
//!   what a label *is*;
//! * a **thread identity** — [`enroll`]/[`enrolled`] for the explicit
//!   logical ids chaos plans target, and [`slot`] for the
//!   always-available shard index obs counters hash by (enrolled id if
//!   present, else a lazily auto-assigned per-thread id).
//!
//! Keeping this here — in the dependency-free crate at the bottom of
//! the workspace graph — means the two consumers cannot drift: a chaos
//! rule targeting thread 3 and an obs shard attributing thread 3 are
//! talking about the same thread.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// FNV-1a hash of a label; stable across runs and platforms, so it is
/// safe to bake into seeded decisions (chaos noise) and lock-free
/// interning tables (obs registry).
pub fn label_hash(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: the deterministic noise source. Good
/// avalanche, no state — a decision derived from `mix` is a pure
/// function of its inputs.
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A label paired with its cached [`label_hash`] — the registration
/// unit both instrumentation layers key by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Labeled {
    /// The label text (probe or injection-point name).
    pub name: &'static str,
    /// Its FNV-1a hash, computed once at registration.
    pub hash: u64,
}

impl Labeled {
    /// Registers `name`, caching its hash.
    pub fn new(name: &'static str) -> Self {
        Labeled {
            name,
            hash: label_hash(name),
        }
    }
}

static NEXT_AUTO_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static ENROLLED: Cell<Option<usize>> = const { Cell::new(None) };
    static AUTO_SLOT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Enrolls the calling thread under logical id `t`. Chaos plans target
/// enrolled ids; obs shards prefer them (via [`slot`]) so metrics
/// attribute to the same logical thread a fault plan would.
pub fn enroll(t: usize) {
    ENROLLED.with(|c| c.set(Some(t)));
}

/// The calling thread's enrolled id, if [`enroll`] was called.
/// Un-enrolled threads return `None` — chaos points pass them
/// untouched.
pub fn enrolled() -> Option<usize> {
    ENROLLED.with(|c| c.get())
}

/// A small per-thread index for sharding: the enrolled id if present,
/// otherwise a process-unique id lazily assigned on first call and
/// cached for the thread's lifetime. Always succeeds — obs counters
/// must work on threads no test bothered to enroll.
pub fn slot() -> usize {
    if let Some(t) = enrolled() {
        return t;
    }
    AUTO_SLOT.with(|c| match c.get() {
        Some(s) => s,
        None => {
            let s = NEXT_AUTO_SLOT.fetch_add(1, Ordering::Relaxed);
            c.set(Some(s));
            s
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_hash_is_stable_and_discriminating() {
        // Pinned FNV-1a vector: the hash is part of the deterministic
        // seeding contract, so a silent change must fail loudly.
        assert_eq!(label_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(label_hash("combine.won"), label_hash("combine.lost"));
        assert_eq!(label_hash("wfaa.pre_cas"), label_hash("wfaa.pre_cas"));
    }

    #[test]
    fn mix_is_a_pure_function() {
        assert_eq!(mix(5 ^ mix(1)), mix(5 ^ mix(1)));
        assert_ne!(mix(0), mix(1));
    }

    #[test]
    fn labeled_caches_the_hash() {
        let l = Labeled::new("obs.test");
        assert_eq!(l.hash, label_hash("obs.test"));
        assert_eq!(l.name, "obs.test");
    }

    #[test]
    fn slot_is_stable_per_thread_and_prefers_enrollment() {
        let a = slot();
        assert_eq!(a, slot(), "auto slot must be cached");
        enroll(97);
        assert_eq!(enrolled(), Some(97));
        assert_eq!(slot(), 97, "enrolled id wins");
    }

    #[test]
    fn distinct_threads_get_distinct_auto_slots() {
        let (a, b) = std::thread::scope(|s| {
            let a = s.spawn(slot).join().unwrap();
            let b = s.spawn(slot).join().unwrap();
            (a, b)
        });
        assert_ne!(a, b);
    }
}
