//! Real-atomics shared base objects for the PODC 2024 reproduction
//! *Strong Linearizability using Primitives with Consensus Number 2*.
//!
//! Every object is annotated with its position in Herlihy's consensus
//! hierarchy ([`ConsensusNumber`]), which is the organizing principle of
//! the paper:
//!
//! | level | objects here |
//! |-------|--------------|
//! | 1     | [`Register`], [`BoolRegister`] |
//! | 2     | [`TestAndSet`], [`ReadableTestAndSet`], [`TwoProcessTestAndSet`], [`FetchAdd`], [`Swap`] (plus the wide registers `sl2_bignum::{FetchAdd128, WideFaa}`, annotated from their own crate) |
//! | ∞     | [`CompareAndSwap`] |
//!
//! All operations are sequentially consistent (`Ordering::SeqCst`): the
//! paper's model is an atomic shared memory with a total order on base
//! object operations, and the strong-linearizability arguments rely on
//! it.
//!
//! The *infinite arrays* of §4.2/§4.3 are provided by [`ChunkedArray`],
//! a lock-free, grow-on-first-touch chunked vector whose cells never
//! move.
//!
//! # Example
//!
//! ```
//! use sl2_primitives::{BaseObject, ConsensusNumber, FetchAdd, TestAndSet};
//!
//! let ts = TestAndSet::new();
//! assert_eq!(ts.consensus_number(), ConsensusNumber::Two);
//! assert_eq!(ts.test_and_set(), 0);
//!
//! let tickets = FetchAdd::new(0);
//! assert_eq!(tickets.fetch_add(1), 0);
//! assert_eq!(tickets.fetch_add(1), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arrays;
mod consensus;
pub mod labeled;
mod register;
mod rmw;
mod sharding;
mod tas;

pub use arrays::ChunkedArray;
pub use consensus::{BaseObject, ConsensusNumber};
pub use register::{BoolRegister, Register};
pub use rmw::{CompareAndSwap, FetchAdd, Swap};
pub use sharding::{CachePadded, Sharding, MAX_SHARDS};
pub use tas::{ReadableTestAndSet, TestAndSet, TwoProcessTestAndSet};
