//! Growable, lock-free arrays of base objects.
//!
//! Sections 4.2 and 4.3 of the paper use *infinite arrays* of test&set
//! and read/write objects. [`ChunkedArray`] realizes them: an
//! append-only chunked vector with a fixed spine of exponentially-sized
//! chunks, so that (a) any index up to `2^63` is addressable, (b)
//! elements are allocated on first touch, and (c) no element ever moves
//! once created — references stay valid and reads are lock-free.

use std::fmt;
use std::sync::OnceLock;

/// Number of spine slots; chunk `k` holds `2^k` elements.
const SPINE: usize = 64;

/// A lock-free growable array of default-initialized cells.
///
/// # Examples
///
/// ```
/// use sl2_primitives::{ChunkedArray, ReadableTestAndSet};
///
/// let arr: ChunkedArray<ReadableTestAndSet> = ChunkedArray::new();
/// assert_eq!(arr.get(100).test_and_set(), 0);
/// assert_eq!(arr.get(100).read(), 1);
/// assert_eq!(arr.get(0).read(), 0);
/// ```
pub struct ChunkedArray<T> {
    spine: Box<[OnceLock<Box<[T]>>; SPINE]>,
}

impl<T: Default> ChunkedArray<T> {
    /// Creates an empty array; cells spring into existence (with
    /// `T::default()`) on first access.
    pub fn new() -> Self {
        ChunkedArray {
            spine: Box::new(std::array::from_fn(|_| OnceLock::new())),
        }
    }

    /// Returns the cell at `index`, allocating its chunk on first touch.
    ///
    /// Lock-free: allocation races are resolved by `OnceLock` (the loser
    /// drops its chunk).
    pub fn get(&self, index: usize) -> &T {
        let slot = index + 1; // 1-based so chunk k covers [2^k - 1, 2^(k+1) - 1)
        let bucket = (usize::BITS - 1 - slot.leading_zeros()) as usize;
        let offset = slot - (1usize << bucket);
        let chunk = self.spine[bucket].get_or_init(|| {
            (0..(1usize << bucket))
                .map(|_| T::default())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        &chunk[offset]
    }

    /// Number of cells currently allocated (for diagnostics/tests).
    pub fn allocated(&self) -> usize {
        self.spine
            .iter()
            .filter_map(|c| c.get().map(|chunk| chunk.len()))
            .sum()
    }
}

impl<T: Default> Default for ChunkedArray<T> {
    fn default() -> Self {
        ChunkedArray::new()
    }
}

impl<T> fmt::Debug for ChunkedArray<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let chunks = self.spine.iter().filter(|c| c.get().is_some()).count();
        write!(f, "ChunkedArray {{ chunks: {chunks} }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ReadableTestAndSet, Register};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn indexing_is_stable_and_disjoint() {
        let arr: ChunkedArray<Register> = ChunkedArray::new();
        for i in 0..1000 {
            arr.get(i).write(i as u64);
        }
        for i in 0..1000 {
            assert_eq!(arr.get(i).read(), i as u64, "index {i}");
        }
    }

    #[test]
    fn first_touch_allocates_lazily() {
        let arr: ChunkedArray<Register> = ChunkedArray::new();
        assert_eq!(arr.allocated(), 0);
        arr.get(0);
        assert_eq!(arr.allocated(), 1); // chunk 0: 1 cell
        arr.get(5); // slot 6 -> bucket 2 (cells 3..6)
        assert_eq!(arr.allocated(), 1 + 4);
    }

    #[test]
    fn sparse_high_indices_work() {
        let arr: ChunkedArray<Register> = ChunkedArray::new();
        arr.get(1_000_000).write(42);
        assert_eq!(arr.get(1_000_000).read(), 42);
        assert_eq!(arr.get(999_999).read(), 0);
    }

    #[test]
    fn element_identity_is_preserved() {
        let arr: ChunkedArray<Register> = ChunkedArray::new();
        let a = arr.get(17) as *const Register;
        let _ = arr.get(100_000); // grow elsewhere
        let b = arr.get(17) as *const Register;
        assert_eq!(a, b, "cells never move");
    }

    #[test]
    fn concurrent_first_touch_yields_one_winner_per_cell() {
        for _ in 0..20 {
            let arr: ChunkedArray<ReadableTestAndSet> = ChunkedArray::new();
            let winners = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        if arr.get(77).test_and_set() == 0 {
                            winners.fetch_add(1, Ordering::SeqCst);
                        }
                    });
                }
            });
            assert_eq!(winners.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn debug_is_nonempty() {
        let arr: ChunkedArray<Register> = ChunkedArray::new();
        assert!(!format!("{arr:?}").is_empty());
    }
}
