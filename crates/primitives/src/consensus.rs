//! Consensus numbers (Herlihy \[20\]) as a first-class annotation.
//!
//! The paper's entire premise is the consensus hierarchy: read/write
//! registers sit at level 1, test&set / fetch&add / swap at level 2, and
//! compare&swap at level ∞. Every base object in this crate declares its
//! level so that constructions can state — and tests can assert — which
//! part of the hierarchy they live in.

use std::fmt;

/// Position of an object in Herlihy's consensus hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConsensusNumber {
    /// Level 1: read/write registers. No wait-free 2-process consensus.
    One,
    /// Level 2: test&set, fetch&add, swap — the paper's subject.
    Two,
    /// Level ∞: compare&swap and other universal primitives.
    Infinite,
}

impl fmt::Display for ConsensusNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusNumber::One => write!(f, "1"),
            ConsensusNumber::Two => write!(f, "2"),
            ConsensusNumber::Infinite => write!(f, "∞"),
        }
    }
}

/// A shared base object with a declared consensus number.
pub trait BaseObject {
    /// The object's level in the consensus hierarchy.
    const CONSENSUS_NUMBER: ConsensusNumber;

    /// The object's level, as a method (for trait objects).
    fn consensus_number(&self) -> ConsensusNumber {
        Self::CONSENSUS_NUMBER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_the_hierarchy() {
        assert!(ConsensusNumber::One < ConsensusNumber::Two);
        assert!(ConsensusNumber::Two < ConsensusNumber::Infinite);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(ConsensusNumber::One.to_string(), "1");
        assert_eq!(ConsensusNumber::Two.to_string(), "2");
        assert_eq!(ConsensusNumber::Infinite.to_string(), "∞");
    }
}
