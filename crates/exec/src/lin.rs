//! Linearizability checker (Herlihy & Wing \[23\]).
//!
//! Decides whether a finite [`History`] has a linearization: a
//! sequential execution containing every complete operation (with its
//! actual response) and a subset of pending operations, respecting the
//! real-time precedence order, and legal for the (possibly
//! nondeterministic) sequential specification.
//!
//! The search enumerates linearization orders with memoization on
//! `(set of linearized ops, specification state)`, the classic
//! Wing–Gong style exploration.

use std::collections::HashSet;

use sl2_spec::Spec;

use crate::history::{History, OpId, OpRecord};

/// A linearization: operations in order with their responses
/// (assigned responses for pending operations).
pub type Linearization<S> = Vec<(OpId, <S as Spec>::Op, <S as Spec>::Resp)>;

/// Searches for a linearization of `history` against `spec`.
///
/// Returns `Some(linearization)` if one exists, `None` otherwise.
///
/// # Panics
///
/// Panics if the history has more than 128 operations (the checker is
/// meant for bounded scenarios).
pub fn linearize<S: Spec>(spec: &S, history: &History<S>) -> Option<Linearization<S>> {
    let ops = history.ops();
    assert!(ops.len() <= 128, "checker supports at most 128 operations");
    debug_assert!(history.is_well_formed(), "ill-formed history");

    // Precedence matrix: must[i] = bitmask of ops that must precede op i.
    let n = ops.len();
    let mut must = vec![0u128; n];
    for (i, a) in ops.iter().enumerate() {
        for (j, b) in ops.iter().enumerate() {
            if i != j && history.precedes(a, b) {
                must[j] |= 1u128 << i;
            }
        }
    }
    let complete_mask: u128 = ops
        .iter()
        .enumerate()
        .filter(|(_, r)| r.returned.is_some())
        .fold(0, |m, (i, _)| m | (1u128 << i));

    let mut visited: HashSet<(u128, S::State)> = HashSet::new();
    let mut chosen: Vec<(usize, S::Resp)> = Vec::new();
    if dfs(
        spec,
        &ops,
        &must,
        complete_mask,
        0,
        spec.initial(),
        &mut visited,
        &mut chosen,
    ) {
        Some(
            chosen
                .iter()
                .map(|(i, r)| (ops[*i].id, ops[*i].op.clone(), r.clone()))
                .collect(),
        )
    } else {
        None
    }
}

/// Convenience: does a linearization exist?
pub fn is_linearizable<S: Spec>(spec: &S, history: &History<S>) -> bool {
    linearize(spec, history).is_some()
}

#[allow(clippy::too_many_arguments)]
fn dfs<S: Spec>(
    spec: &S,
    ops: &[OpRecord<S>],
    must: &[u128],
    complete_mask: u128,
    placed: u128,
    state: S::State,
    visited: &mut HashSet<(u128, S::State)>,
    chosen: &mut Vec<(usize, S::Resp)>,
) -> bool {
    if complete_mask & !placed == 0 {
        // All complete ops placed; pending ops may be dropped.
        return true;
    }
    if !visited.insert((placed, state.clone())) {
        return false;
    }
    for (i, rec) in ops.iter().enumerate() {
        let bit = 1u128 << i;
        if placed & bit != 0 {
            continue;
        }
        // Every operation that must precede i has to be placed already.
        if must[i] & !placed != 0 {
            continue;
        }
        match &rec.returned {
            Some((resp, _)) => {
                for next in spec.accept(&state, &rec.op, resp) {
                    chosen.push((i, resp.clone()));
                    if dfs(
                        spec,
                        ops,
                        must,
                        complete_mask,
                        placed | bit,
                        next,
                        visited,
                        chosen,
                    ) {
                        return true;
                    }
                    chosen.pop();
                }
            }
            None => {
                // A pending op may linearize with any legal outcome.
                for (next, resp) in spec.step(&state, &rec.op) {
                    chosen.push((i, resp.clone()));
                    if dfs(
                        spec,
                        ops,
                        must,
                        complete_mask,
                        placed | bit,
                        next,
                        visited,
                        chosen,
                    ) {
                        return true;
                    }
                    chosen.pop();
                }
            }
        }
    }
    false
}

/// Checks that `lin` is itself a valid linearization of `history`
/// (used to cross-validate checker output in tests).
pub fn validate_linearization<S: Spec>(
    spec: &S,
    history: &History<S>,
    lin: &Linearization<S>,
) -> Result<(), String> {
    let ops = history.ops();
    let find = |id: OpId| ops.iter().find(|r| r.id == id);
    // 1. Every complete op appears with its actual response.
    for rec in history.complete_ops() {
        let (resp, _) = rec.returned.clone().expect("complete");
        match lin.iter().find(|(id, _, _)| *id == rec.id) {
            None => {
                return Err(format!(
                    "complete op {:?} missing from linearization",
                    rec.id
                ))
            }
            Some((_, _, r)) if *r != resp => {
                return Err(format!("op {:?} response mismatch", rec.id))
            }
            _ => {}
        }
    }
    // 2. Real-time order respected.
    for (x, (a, _, _)) in lin.iter().enumerate() {
        for (b, _, _) in lin.iter().skip(x + 1) {
            let (ra, rb) = (find(*a).expect("known"), find(*b).expect("known"));
            if history.precedes(rb, ra) {
                return Err(format!("{:?} linearized before its predecessor {:?}", a, b));
            }
        }
    }
    // 3. Spec-legal.
    let seq: Vec<(S::Op, S::Resp)> = lin
        .iter()
        .map(|(_, op, resp)| (op.clone(), resp.clone()))
        .collect();
    if !sl2_spec::is_legal(spec, &seq) {
        return Err("linearization is not a legal sequential execution".to_owned());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl2_spec::fifo::{QueueOp, QueueResp, QueueSpec};
    use sl2_spec::max_register::{MaxOp, MaxRegisterSpec, MaxResp};
    use sl2_spec::put_take::{PutTakeSetSpec, SetOp, SetResp};

    #[test]
    fn sequential_history_is_linearizable() {
        let mut h: History<MaxRegisterSpec> = History::new();
        h.invoke(OpId(0), 0, MaxOp::Write(5));
        h.ret(OpId(0), MaxResp::Ok);
        h.invoke(OpId(1), 1, MaxOp::Read);
        h.ret(OpId(1), MaxResp::Value(5));
        let lin = linearize(&MaxRegisterSpec, &h).expect("linearizable");
        validate_linearization(&MaxRegisterSpec, &h, &lin).expect("valid");
    }

    #[test]
    fn stale_read_after_write_is_not_linearizable() {
        let mut h: History<MaxRegisterSpec> = History::new();
        h.invoke(OpId(0), 0, MaxOp::Write(5));
        h.ret(OpId(0), MaxResp::Ok);
        h.invoke(OpId(1), 1, MaxOp::Read);
        h.ret(OpId(1), MaxResp::Value(0)); // must see 5
        assert!(!is_linearizable(&MaxRegisterSpec, &h));
    }

    #[test]
    fn concurrent_read_may_see_old_or_new() {
        for seen in [0u64, 5] {
            let mut h: History<MaxRegisterSpec> = History::new();
            h.invoke(OpId(0), 0, MaxOp::Write(5));
            h.invoke(OpId(1), 1, MaxOp::Read);
            h.ret(OpId(1), MaxResp::Value(seen));
            h.ret(OpId(0), MaxResp::Ok);
            assert!(
                is_linearizable(&MaxRegisterSpec, &h),
                "concurrent read seeing {seen} is fine"
            );
        }
    }

    #[test]
    fn pending_op_may_be_linearized_to_explain_effects() {
        // p0's Write(5) never returns, but p1 reads 5: the pending write
        // must be linearized before the read.
        let mut h: History<MaxRegisterSpec> = History::new();
        h.invoke(OpId(0), 0, MaxOp::Write(5));
        h.invoke(OpId(1), 1, MaxOp::Read);
        h.ret(OpId(1), MaxResp::Value(5));
        let lin = linearize(&MaxRegisterSpec, &h).expect("linearizable");
        assert_eq!(lin.len(), 2, "pending write included");
        validate_linearization(&MaxRegisterSpec, &h, &lin).expect("valid");
    }

    #[test]
    fn queue_fifo_violation_detected() {
        // enq(1) enq(2) sequentially, then deq -> 2: not linearizable.
        let mut h: History<QueueSpec> = History::new();
        h.invoke(OpId(0), 0, QueueOp::Enq(1));
        h.ret(OpId(0), QueueResp::Ok);
        h.invoke(OpId(1), 0, QueueOp::Enq(2));
        h.ret(OpId(1), QueueResp::Ok);
        h.invoke(OpId(2), 1, QueueOp::Deq);
        h.ret(OpId(2), QueueResp::Item(2));
        assert!(!is_linearizable(&QueueSpec, &h));
    }

    #[test]
    fn queue_concurrent_enqueues_allow_either_order() {
        let mut h: History<QueueSpec> = History::new();
        h.invoke(OpId(0), 0, QueueOp::Enq(1));
        h.invoke(OpId(1), 1, QueueOp::Enq(2));
        h.ret(OpId(0), QueueResp::Ok);
        h.ret(OpId(1), QueueResp::Ok);
        h.invoke(OpId(2), 0, QueueOp::Deq);
        h.ret(OpId(2), QueueResp::Item(2)); // legal iff enq(2) first
        let lin = linearize(&QueueSpec, &h).expect("linearizable");
        validate_linearization(&QueueSpec, &h, &lin).expect("valid");
    }

    #[test]
    fn nondeterministic_spec_take_any_item() {
        let mut h: History<PutTakeSetSpec> = History::new();
        h.invoke(OpId(0), 0, SetOp::Put(1));
        h.ret(OpId(0), SetResp::Ok);
        h.invoke(OpId(1), 1, SetOp::Put(2));
        h.ret(OpId(1), SetResp::Ok);
        h.invoke(OpId(2), 0, SetOp::Take);
        h.ret(OpId(2), SetResp::Item(2));
        h.invoke(OpId(3), 1, SetOp::Take);
        h.ret(OpId(3), SetResp::Item(1));
        let lin = linearize(&PutTakeSetSpec, &h).expect("linearizable");
        validate_linearization(&PutTakeSetSpec, &h, &lin).expect("valid");
    }

    #[test]
    fn set_double_take_of_same_item_rejected() {
        let mut h: History<PutTakeSetSpec> = History::new();
        h.invoke(OpId(0), 0, SetOp::Put(1));
        h.ret(OpId(0), SetResp::Ok);
        h.invoke(OpId(1), 0, SetOp::Take);
        h.ret(OpId(1), SetResp::Item(1));
        h.invoke(OpId(2), 1, SetOp::Take);
        h.ret(OpId(2), SetResp::Item(1));
        assert!(!is_linearizable(&PutTakeSetSpec, &h));
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h: History<QueueSpec> = History::new();
        assert!(is_linearizable(&QueueSpec, &h));
    }
}
