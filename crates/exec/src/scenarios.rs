//! Scenario builders for the checker regressions.
//!
//! The sharded-composition tests (DESIGN.md §6) exercise the same two
//! scenario shapes over and over: a *fan-in* (independent single-op
//! writers racing one multi-op reader — the shape that distinguishes
//! collect-frontier reads from single-step reads) and a *symmetric*
//! race (every process runs the same list). Building them by hand
//! obscures which process is which; these helpers name the roles.

use sl2_spec::Spec;

use crate::sched::Scenario;

/// One single-op process per element of `writer_ops`, plus a final
/// process running `reader_ops`: the canonical shape for probing how an
/// implementation's reads behave while independent writers complete
/// around them. Process `i` runs `writer_ops[i]`; the reader is process
/// `writer_ops.len()`.
///
/// # Examples
///
/// ```
/// use sl2_exec::scenarios::fan_in;
/// use sl2_spec::max_register::{MaxOp, MaxRegisterSpec};
///
/// let s = fan_in::<MaxRegisterSpec>(vec![MaxOp::Write(2), MaxOp::Write(5)], vec![MaxOp::Read]);
/// assert_eq!(s.processes(), 3);
/// assert_eq!(s.ops[2], vec![MaxOp::Read]);
/// ```
pub fn fan_in<S: Spec>(writer_ops: Vec<S::Op>, reader_ops: Vec<S::Op>) -> Scenario<S> {
    let mut ops: Vec<Vec<S::Op>> = writer_ops.into_iter().map(|op| vec![op]).collect();
    ops.push(reader_ops);
    Scenario::new(ops)
}

/// `processes` identical processes, each running `ops` in order — the
/// all-against-all race used by the contention-shaped checker
/// scenarios.
///
/// # Examples
///
/// ```
/// use sl2_exec::scenarios::symmetric;
/// use sl2_spec::counters::{CounterOp, CounterSpec};
///
/// let s = symmetric::<CounterSpec>(3, vec![CounterOp::Inc, CounterOp::Read]);
/// assert_eq!(s.processes(), 3);
/// assert_eq!(s.total_ops(), 6);
/// ```
pub fn symmetric<S: Spec>(processes: usize, ops: Vec<S::Op>) -> Scenario<S> {
    Scenario::new((0..processes).map(|_| ops.clone()).collect())
}

/// A *tower*: process 0 runs `block` cycled out to `height`
/// operations, racing the fixed `rivals` processes (process `i + 1`
/// runs `rivals[i]`). Towers are the depth-shaped scenarios — the
/// explicit-stack checker engine and the widened per-process op
/// packing exist so these keep checking as `height` grows past what a
/// recursive explorer (or the old 1024-op `OpId` packing) tolerated.
///
/// # Examples
///
/// ```
/// use sl2_exec::scenarios::tower;
/// use sl2_spec::counters::{CounterOp, CounterSpec};
///
/// let s = tower::<CounterSpec>(&[CounterOp::Inc], 5, &[vec![CounterOp::Read]]);
/// assert_eq!(s.processes(), 2);
/// assert_eq!(s.ops[0].len(), 5);
/// ```
pub fn tower<S: Spec>(block: &[S::Op], height: usize, rivals: &[Vec<S::Op>]) -> Scenario<S> {
    assert!(!block.is_empty(), "tower needs a non-empty block");
    let tall: Vec<S::Op> = block.iter().cycle().take(height).cloned().collect();
    let mut ops = vec![tall];
    ops.extend(rivals.iter().cloned());
    Scenario::new(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl2_spec::counters::{CounterOp, CounterSpec};

    #[test]
    fn fan_in_assigns_one_op_per_writer() {
        let s = fan_in::<CounterSpec>(
            vec![CounterOp::Inc, CounterOp::Inc],
            vec![CounterOp::Read, CounterOp::Read],
        );
        assert_eq!(s.processes(), 3);
        assert_eq!(s.ops[0], vec![CounterOp::Inc]);
        assert_eq!(s.ops[1], vec![CounterOp::Inc]);
        assert_eq!(s.ops[2], vec![CounterOp::Read, CounterOp::Read]);
    }

    #[test]
    fn fan_in_with_no_writers_is_a_solo_reader() {
        let s = fan_in::<CounterSpec>(vec![], vec![CounterOp::Read]);
        assert_eq!(s.processes(), 1);
    }

    #[test]
    fn symmetric_clones_the_list() {
        let s = symmetric::<CounterSpec>(4, vec![CounterOp::Inc]);
        assert!(s.ops.iter().all(|l| l == &vec![CounterOp::Inc]));
    }

    #[test]
    fn tower_cycles_the_block_to_height() {
        let s = tower::<CounterSpec>(&[CounterOp::Inc, CounterOp::Read], 5, &[]);
        assert_eq!(s.processes(), 1);
        assert_eq!(
            s.ops[0],
            vec![
                CounterOp::Inc,
                CounterOp::Read,
                CounterOp::Inc,
                CounterOp::Read,
                CounterOp::Inc,
            ]
        );
    }
}
