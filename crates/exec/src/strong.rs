//! Strong-linearizability checker.
//!
//! An implementation is *strongly linearizable* \[16\] if there is a
//! function `L` mapping each finite execution to a linearization of it,
//! such that `L` is prefix-closed: if `α` is a prefix of `β` then
//! `L(α)` is a prefix of `L(β)`. Equivalently: once an operation is
//! linearized, its position can never be revised, no matter how the
//! adversary extends the execution.
//!
//! On a bounded scenario (fixed per-process operation lists) the set of
//! executions is a finite tree, and the existence of a prefix-closed
//! `L` is decidable by AND/OR search:
//!
//! ```text
//! feasible(node, lin) :=
//!     (lin is a valid linearization of node's history — invariant)
//!  ∧  for EVERY enabled process step (child node c):
//!         EXISTS an extension σ of lin (ops linearizing *at* this
//!         step, with spec-assigned responses for still-pending ops)
//!         such that feasible(c, lin·σ)
//! ```
//!
//! The implementation is strongly linearizable on the scenario iff
//! `feasible(root, ε)`. The search memoizes on the pair (execution
//! state, linearization-relevant state), which merges schedule
//! prefixes that converged — and the memo is **sound**: states are
//! keyed by a canonical `StateKey` stored by value and compared by
//! equality, never by a bare hash (DESIGN.md §7; a hash collision in
//! the pre-PR-4 scheme could silently flip a verdict, which for a
//! referee is the one unforgivable failure). The explorer itself is an
//! explicit-stack machine, so scenario depth is bounded by heap, not
//! by the thread stack.
//!
//! On refutation the engine re-walks the failing branch — reading
//! memoized verdicts instead of stopping at them — to produce a
//! [`Witness`] whose `path`/`schedule` run from the root to the actual
//! dying step; [`validate_witness`] replays it against the scenario.
//!
//! Scope notes:
//! * Invocations are folded into the invoked operation's first step.
//!   An invocation by itself creates no linearization obligation (the
//!   new operation is pending and `L` need not include it), so folding
//!   loses no violations.
//! * Nondeterministic specifications are supported: the checker tracks
//!   the set of specification states consistent with the chosen
//!   linearization prefix.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use sl2_spec::Spec;

use crate::history::{History, OpId};
use crate::machine::{Algorithm, OpMachine, Step};
use crate::mem::SimMemory;
use crate::sched::Scenario;

/// Bits of an [`OpId`] carrying the per-process operation index; the
/// process index occupies the bits above. 32 index bits on 64-bit
/// targets (the pre-PR-4 packing allowed only 1024 operations per
/// process and *panicked* past it).
const OP_INDEX_BITS: u32 = if usize::BITS >= 64 { 32 } else { 16 };

/// Canonical operation identity within a scenario: `(process, index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpKey {
    /// Invoking process.
    pub process: usize,
    /// Index within that process's operation list.
    pub index: usize,
}

impl OpKey {
    fn id(self) -> OpId {
        OpId((self.process << OP_INDEX_BITS) | self.index)
    }
}

/// Lifecycle of a scenario operation during checking.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum OpStatus<R> {
    NotInvoked,
    Active,
    Done(R),
}

/// Outcome of a strong-linearizability check (non-panicking API).
#[derive(Debug, Clone)]
pub enum Outcome {
    /// A prefix-closed linearization function exists on the scenario's
    /// execution tree.
    Certified,
    /// No prefix-closed linearization function exists; the witness is
    /// a branch on which every linearization choice dies.
    Refuted(Witness),
    /// The search could not complete within the engine's limits (node
    /// budget, or an operation index too wide for the [`OpId`]
    /// packing). No semantic claim is made either way;
    /// [`StrongOutcome::nodes`] says how far the search got.
    Bounded,
}

/// Search-shape accounting for one checker run: how the AND/OR search
/// actually spent its budget. Reported unconditionally (no feature
/// gate — the counters ride state the engine already touches) through
/// [`StrongOutcome`] into the corpus records, where they make the
/// memoization claims of DESIGN.md §5 measurable in vivo.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Feasible entries answered from the memo table.
    pub memo_hits: usize,
    /// Feasible entries that had to be explored (with memoization off,
    /// every feasible entry is a miss).
    pub memo_misses: usize,
    /// Deepest explicit-stack depth reached (= longest chain of
    /// in-flight frames, bounding the search's memory high-water).
    pub max_depth: usize,
}

impl SearchStats {
    /// Fraction of feasible entries answered from the memo table
    /// (0.0 when nothing was entered).
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

/// Result of [`check_strong_outcome`]: the verdict plus search-size
/// accounting.
#[derive(Debug, Clone)]
pub struct StrongOutcome {
    /// The verdict.
    pub outcome: Outcome,
    /// Distinct search states explored.
    pub nodes: usize,
    /// Search-shape counters (memo hits/misses, max stack depth).
    pub stats: SearchStats,
}

impl StrongOutcome {
    /// Whether the scenario was certified strongly linearizable.
    pub fn is_certified(&self) -> bool {
        matches!(self.outcome, Outcome::Certified)
    }

    /// Whether the scenario was refuted (a witness exists).
    pub fn is_refuted(&self) -> bool {
        matches!(self.outcome, Outcome::Refuted(_))
    }

    /// Whether the search ran out of budget before deciding.
    pub fn is_bounded(&self) -> bool {
        matches!(self.outcome, Outcome::Bounded)
    }

    /// The refutation witness, when refuted.
    pub fn witness(&self) -> Option<&Witness> {
        match &self.outcome {
            Outcome::Refuted(w) => Some(w),
            _ => None,
        }
    }
}

/// Outcome of a strong-linearizability check (legacy panicking API;
/// prefer [`check_strong_outcome`] / [`StrongOutcome`] in new code).
#[derive(Debug, Clone)]
pub struct StrongReport {
    /// Whether a prefix-closed linearization function exists on the
    /// scenario's execution tree.
    pub strongly_linearizable: bool,
    /// Number of distinct search states explored.
    pub nodes: usize,
    /// A failing branch, when not strongly linearizable (always `None`
    /// on success).
    pub witness: Option<Witness>,
}

/// A branch of the execution tree on which every linearization prefix
/// dies: the schedule (events from the root to the dying step) and a
/// human-readable explanation. `schedule[i]` is the process taking
/// step `i`; `path[i]` is the rendered event — [`validate_witness`]
/// replays the former and checks it reproduces the latter.
#[derive(Debug, Clone)]
pub struct Witness {
    /// Event descriptions from the root to the failing step.
    pub path: Vec<String>,
    /// The process scheduled at each step of `path` (replayable form).
    pub schedule: Vec<usize>,
    /// What went wrong at the final step.
    pub detail: String,
}

/// How the search memoizes converged schedule prefixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoMode {
    /// Sound memoization: canonical `StateKey`s stored by value and
    /// compared by equality. The default.
    Canonical,
    /// The pre-PR-4 scheme: states keyed by a bare `u64` hash, so a
    /// collision silently reuses another state's verdict. **Unsound**;
    /// retained only so the collision regression test and the memo
    /// ablation (EXPERIMENTS.md E24) can demonstrate the failure mode.
    HashOnly,
    /// No memoization: the execution tree is re-explored at every join.
    /// Exponentially slower on racy scenarios; used by the soundness
    /// differential tests and the E16/E24 ablations.
    Off,
}

/// Tuning knobs for [`check_strong_with`] / [`check_strong_outcome`].
#[derive(Debug, Clone, Copy)]
pub struct StrongOptions {
    /// Bound on distinct search states. [`check_strong_outcome`]
    /// returns [`Outcome::Bounded`] when exceeded (the legacy wrappers
    /// panic, as they always did).
    pub node_limit: usize,
    /// Memoization mode (see [`MemoMode`]).
    pub memo: MemoMode,
}

impl StrongOptions {
    /// Canonical memoization with the given node budget.
    pub fn with_limit(node_limit: usize) -> Self {
        StrongOptions {
            node_limit,
            memo: MemoMode::Canonical,
        }
    }

    /// Switches between canonical memoization and none (the two sound
    /// modes), keeping the node budget.
    pub fn memoize(mut self, on: bool) -> Self {
        self.memo = if on {
            MemoMode::Canonical
        } else {
            MemoMode::Off
        };
        self
    }
}

impl Default for StrongOptions {
    fn default() -> Self {
        StrongOptions {
            node_limit: 1_000_000,
            memo: MemoMode::Canonical,
        }
    }
}

struct ExecState<A: Algorithm> {
    mem: SimMemory,
    machines: Vec<Option<A::Machine>>,
    status: Vec<Vec<OpStatus<<A::Spec as Spec>::Resp>>>,
}

impl<A: Algorithm> Clone for ExecState<A> {
    fn clone(&self) -> Self {
        ExecState {
            mem: self.mem.clone(),
            machines: self.machines.clone(),
            status: self.status.clone(),
        }
    }
}

impl<A: Algorithm> ExecState<A> {
    fn initial(scenario: &Scenario<A::Spec>, mem: SimMemory) -> Self {
        ExecState {
            mem,
            machines: (0..scenario.processes()).map(|_| None).collect(),
            status: scenario
                .ops
                .iter()
                .map(|l| l.iter().map(|_| OpStatus::NotInvoked).collect())
                .collect(),
        }
    }
}

#[derive(Clone)]
struct LinState<S: Spec> {
    /// Ops already linearized, in linearization order, with their
    /// (actual or assigned) responses.
    assigned: Vec<(OpKey, S::Resp)>,
    /// Spec states consistent with the linearization prefix (deduped).
    states: Vec<S::State>,
}

impl<S: Spec> LinState<S> {
    fn contains(&self, k: OpKey) -> bool {
        self.assigned.iter().any(|(a, _)| *a == k)
    }

    fn resp_of(&self, k: OpKey) -> Option<&S::Resp> {
        self.assigned.iter().find(|(a, _)| *a == k).map(|(_, r)| r)
    }

    /// Appends `(k, resp)` if spec-consistent; returns the new state.
    fn extended(&self, spec: &S, k: OpKey, op: &S::Op, resp: &S::Resp) -> Option<Self> {
        let mut next_states = Vec::new();
        for s in &self.states {
            for succ in spec.accept(s, op, resp) {
                if !next_states.contains(&succ) {
                    next_states.push(succ);
                }
            }
        }
        if next_states.is_empty() {
            return None;
        }
        let mut assigned = self.assigned.clone();
        assigned.push((k, resp.clone()));
        Some(LinState {
            assigned,
            states: next_states,
        })
    }
}

fn hash_of<T: Hash>(t: &T) -> u64 {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// Canonical memoization key: the full search state — execution state,
/// sorted linearization prefix, deduped spec-state set — stored **by
/// value** and compared by **equality**. Hashing only routes to a
/// bucket; a collision costs a comparison, never a verdict. Two nodes
/// merge iff their future behavior is literally identical: same base
/// objects, same machine states, same op lifecycle, same set of
/// linearized `(op, resp)` pairs, same spec-state set (the
/// linearization *order* is deliberately erased — futures depend only
/// on the set and the states it can reach).
struct StateKey<A: Algorithm> {
    exec: Rc<ExecState<A>>,
    /// `lin.assigned`, sorted by [`OpKey`] (order-erased).
    assigned: Vec<(OpKey, <A::Spec as Spec>::Resp)>,
    /// `lin.states`, sorted by per-state hash for near-canonical order.
    /// Hash ties between distinct states may order ambiguously; that
    /// can only split one semantic state over two entries (a missed
    /// merge), never conflate two states.
    states: Vec<<A::Spec as Spec>::State>,
}

impl<A: Algorithm> PartialEq for StateKey<A> {
    fn eq(&self, other: &Self) -> bool {
        self.exec.mem == other.exec.mem
            && self.exec.machines == other.exec.machines
            && self.exec.status == other.exec.status
            && self.assigned == other.assigned
            && self.states == other.states
    }
}

impl<A: Algorithm> Eq for StateKey<A> {}

impl<A: Algorithm> Hash for StateKey<A> {
    fn hash<H: Hasher>(&self, h: &mut H) {
        self.exec.mem.hash(h);
        self.exec.machines.hash(h);
        self.exec.status.hash(h);
        self.assigned.hash(h);
        // Order-independent fold over the spec-state set, so hash-tied
        // states whose sort order differed still share a bucket (their
        // keys then compare unequal — a missed merge, not a collision).
        let mut acc: u64 = 0;
        for s in &self.states {
            acc = acc.wrapping_add(hash_of(s));
        }
        acc.hash(h);
    }
}

/// Checks strong linearizability of `alg` on `scenario` (legacy
/// wrapper over [`check_strong_outcome`]; prefer that in new code —
/// this one panics where the outcome API reports
/// [`Outcome::Bounded`]).
///
/// `mem` must be the memory in which the algorithm allocated its base
/// objects (i.e. the state right after `A::new(&mut mem, ...)`).
///
/// # Panics
///
/// Panics if the scenario needs more than `node_limit` search states —
/// raise the limit or shrink the scenario.
pub fn check_strong<A: Algorithm>(
    alg: &A,
    mem: SimMemory,
    scenario: &Scenario<A::Spec>,
    node_limit: usize,
) -> StrongReport {
    check_strong_with(alg, mem, scenario, StrongOptions::with_limit(node_limit))
}

/// [`check_strong`] with explicit [`StrongOptions`] (legacy wrapper;
/// prefer [`check_strong_outcome`]).
///
/// # Panics
///
/// As [`check_strong`].
pub fn check_strong_with<A: Algorithm>(
    alg: &A,
    mem: SimMemory,
    scenario: &Scenario<A::Spec>,
    options: StrongOptions,
) -> StrongReport {
    let out = check_strong_outcome(alg, mem, scenario, options);
    match out.outcome {
        Outcome::Certified => StrongReport {
            strongly_linearizable: true,
            nodes: out.nodes,
            witness: None,
        },
        Outcome::Refuted(w) => StrongReport {
            strongly_linearizable: false,
            nodes: out.nodes,
            witness: Some(w),
        },
        Outcome::Bounded => panic!(
            "strong-linearizability search exceeded {} states",
            options.node_limit
        ),
    }
}

/// Checks strong linearizability of `alg` on `scenario`, reporting
/// [`Outcome::Bounded`] instead of panicking when the node budget runs
/// out.
///
/// `mem` must be the memory in which the algorithm allocated its base
/// objects (i.e. the state right after `A::new(&mut mem, ...)`).
pub fn check_strong_outcome<A: Algorithm>(
    alg: &A,
    mem: SimMemory,
    scenario: &Scenario<A::Spec>,
    options: StrongOptions,
) -> StrongOutcome {
    // Operation indices must fit the OpId packing; a scenario past it
    // is reported as out of engine bounds, not panicked on.
    if scenario.ops.iter().any(|l| l.len() >= 1 << OP_INDEX_BITS) {
        return StrongOutcome {
            outcome: Outcome::Bounded,
            nodes: 0,
            stats: SearchStats::default(),
        };
    }
    let exec = Rc::new(ExecState::<A>::initial(scenario, mem));
    let lin = Rc::new(LinState::<A::Spec> {
        assigned: Vec::new(),
        states: vec![alg.spec().initial()],
    });
    let mut engine = Engine::new(alg, scenario, options);
    match engine.run_task(SpawnTask::Feasible(Rc::clone(&exec), Rc::clone(&lin))) {
        Err(BudgetExhausted) => StrongOutcome {
            outcome: Outcome::Bounded,
            nodes: engine.nodes,
            stats: engine.stats,
        },
        Ok(true) => StrongOutcome {
            outcome: Outcome::Certified,
            nodes: engine.nodes,
            stats: engine.stats,
        },
        Ok(false) => {
            // Capture before witness extraction, which re-probes the
            // engine and would otherwise pollute the accounting.
            let nodes = engine.nodes;
            let stats = engine.stats;
            let witness = engine.extract_witness(&exec, &lin);
            StrongOutcome {
                outcome: Outcome::Refuted(witness),
                nodes,
                stats,
            }
        }
    }
}

/// Replays `witness.schedule` against `alg` on `scenario` from `mem`
/// (the same initial memory handed to the check) and verifies that
/// every step is enabled and renders exactly `witness.path` — i.e.
/// that the witness describes a real branch of the execution tree, all
/// the way to its final (dying) step.
pub fn validate_witness<A: Algorithm>(
    alg: &A,
    mem: SimMemory,
    scenario: &Scenario<A::Spec>,
    witness: &Witness,
) -> Result<(), String> {
    if witness.schedule.len() != witness.path.len() {
        return Err(format!(
            "schedule has {} steps but path has {} events",
            witness.schedule.len(),
            witness.path.len()
        ));
    }
    let mut exec = ExecState::<A>::initial(scenario, mem);
    for (i, (&p, event)) in witness.schedule.iter().zip(&witness.path).enumerate() {
        let enabled = enabled_of(scenario, &exec);
        if !enabled.contains(&p) {
            return Err(format!("step {i}: process {p} is not enabled"));
        }
        let (child, label, _) = step_child(alg, scenario, &exec, p);
        if *event != label {
            return Err(format!(
                "step {i}: witness says {event:?} but replay produces {label:?}"
            ));
        }
        exec = child;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------

fn enabled_of<A: Algorithm>(scenario: &Scenario<A::Spec>, exec: &ExecState<A>) -> Vec<usize> {
    (0..scenario.processes())
        .filter(|&p| {
            exec.machines[p].is_some()
                || exec.status[p]
                    .iter()
                    .any(|s| matches!(s, OpStatus::NotInvoked))
        })
        .collect()
}

/// Executes one step of process `p` (invoking its next operation if
/// idle). Returns the child state, an event label, and the completion
/// `(op, resp)` if the step finished an operation.
#[allow(clippy::type_complexity)]
fn step_child<A: Algorithm>(
    alg: &A,
    scenario: &Scenario<A::Spec>,
    exec: &ExecState<A>,
    p: usize,
) -> (
    ExecState<A>,
    String,
    Option<(OpKey, <A::Spec as Spec>::Resp)>,
) {
    let mut child = exec.clone();
    let mut label;
    let key;
    if child.machines[p].is_none() {
        let index = child.status[p]
            .iter()
            .position(|s| matches!(s, OpStatus::NotInvoked))
            .expect("caller ensured an op remains");
        let op = &scenario.ops[p][index];
        key = OpKey { process: p, index };
        child.status[p][index] = OpStatus::Active;
        child.machines[p] = Some(alg.machine(p, op));
        label = format!("p{p}: invoke {op:?}; step");
    } else {
        let index = child.status[p]
            .iter()
            .position(|s| matches!(s, OpStatus::Active))
            .expect("an active machine implies an active op");
        key = OpKey { process: p, index };
        label = format!("p{p}: step");
    }
    let mut machine = child.machines[p].take().expect("set above");
    let completed = match machine.step(&mut child.mem) {
        Step::Pending => {
            child.machines[p] = Some(machine);
            None
        }
        Step::Ready(resp) => {
            child.status[key.process][key.index] = OpStatus::Done(resp.clone());
            label.push_str(&format!(" → {resp:?}"));
            Some((key, resp))
        }
    };
    (child, label, completed)
}

/// Node budget exhausted: unwinds the engine without a verdict.
struct BudgetExhausted;

enum Memo<A: Algorithm> {
    Canonical(HashMap<StateKey<A>, bool>),
    HashOnly(HashMap<u64, bool>),
    Off,
}

/// A subproblem the engine can evaluate: the two mutually recursive
/// procedures of the AND/OR search, reified.
enum SpawnTask<A: Algorithm> {
    /// `feasible(exec, lin)` — the AND side.
    Feasible(Rc<ExecState<A>>, Rc<LinState<A::Spec>>),
    /// `extensions(child, lin, must)` — the OR side.
    Ext(Rc<ExecState<A>>, Rc<LinState<A::Spec>>, Option<OpKey>),
}

enum FrameKey<A: Algorithm> {
    Canonical(StateKey<A>),
    Hash(u64),
}

/// AND frame: every enabled step must admit a surviving extension.
struct FeasibleFrame<A: Algorithm> {
    exec: Rc<ExecState<A>>,
    lin: Rc<LinState<A::Spec>>,
    key: Option<FrameKey<A>>,
    enabled: Vec<usize>,
    next_child: usize,
}

/// OR frame: some linearization extension σ keeps the child feasible.
/// Alternatives are generated lazily: first σ = ε (allowed only when
/// nothing is forced), then every `(candidate, response)` pair.
struct ExtFrame<A: Algorithm> {
    child: Rc<ExecState<A>>,
    lin: Rc<LinState<A::Spec>>,
    must: Option<OpKey>,
    tried_epsilon: bool,
    cands: Vec<OpKey>,
    cand_i: usize,
    cand_loaded: bool,
    resp_opts: Vec<<A::Spec as Spec>::Resp>,
    resp_i: usize,
}

impl<A: Algorithm> ExtFrame<A> {
    fn new(child: Rc<ExecState<A>>, lin: Rc<LinState<A::Spec>>, must: Option<OpKey>) -> Self {
        // Candidates: invoked, unlinearized ops.
        let mut cands: Vec<OpKey> = Vec::new();
        for (p, stats) in child.status.iter().enumerate() {
            for (i, st) in stats.iter().enumerate() {
                let k = OpKey {
                    process: p,
                    index: i,
                };
                if !matches!(st, OpStatus::NotInvoked) && !lin.contains(k) {
                    cands.push(k);
                }
            }
        }
        ExtFrame {
            child,
            lin,
            must,
            tried_epsilon: false,
            cands,
            cand_i: 0,
            cand_loaded: false,
            resp_opts: Vec::new(),
            resp_i: 0,
        }
    }

    /// Produces the next alternative as a subtask, or `None` when the
    /// OR is exhausted (the frame then resolves to false).
    fn next_alternative(
        &mut self,
        spec: &A::Spec,
        scenario: &Scenario<A::Spec>,
    ) -> Option<SpawnTask<A>> {
        if !self.tried_epsilon {
            self.tried_epsilon = true;
            if self.must.is_none() {
                return Some(SpawnTask::Feasible(
                    Rc::clone(&self.child),
                    Rc::clone(&self.lin),
                ));
            }
        }
        loop {
            if self.cand_i >= self.cands.len() {
                return None;
            }
            if !self.cand_loaded {
                self.resp_opts = resp_options::<A>(
                    spec,
                    &self.child,
                    &self.lin,
                    scenario,
                    self.cands[self.cand_i],
                );
                self.resp_i = 0;
                self.cand_loaded = true;
            }
            let k = self.cands[self.cand_i];
            let op = &scenario.ops[k.process][k.index];
            while self.resp_i < self.resp_opts.len() {
                let resp = self.resp_opts[self.resp_i].clone();
                self.resp_i += 1;
                if let Some(next_lin) = self.lin.extended(spec, k, op, &resp) {
                    let still_must = match self.must {
                        Some(m) if m == k => None,
                        other => other,
                    };
                    return Some(SpawnTask::Ext(
                        Rc::clone(&self.child),
                        Rc::new(next_lin),
                        still_must,
                    ));
                }
            }
            self.cand_i += 1;
            self.cand_loaded = false;
        }
    }
}

/// Legal responses for linearizing candidate `k` now: its actual
/// response if it completed, else every response the spec admits from
/// some consistent state.
fn resp_options<A: Algorithm>(
    spec: &A::Spec,
    child: &ExecState<A>,
    lin: &LinState<A::Spec>,
    scenario: &Scenario<A::Spec>,
    k: OpKey,
) -> Vec<<A::Spec as Spec>::Resp> {
    let op = &scenario.ops[k.process][k.index];
    match &child.status[k.process][k.index] {
        OpStatus::Done(r) => vec![r.clone()],
        OpStatus::Active => {
            let mut opts = Vec::new();
            for s in &lin.states {
                for (_, r) in spec.step(s, op) {
                    if !opts.contains(&r) {
                        opts.push(r);
                    }
                }
            }
            opts
        }
        OpStatus::NotInvoked => unreachable!("candidates are invoked ops"),
    }
}

enum Frame<A: Algorithm> {
    Feasible(FeasibleFrame<A>),
    Ext(ExtFrame<A>),
}

enum Entered<A: Algorithm> {
    Done(bool),
    Frame(FeasibleFrame<A>),
}

/// Probe result while re-walking a refuted branch for its witness.
enum ExtProbe<S: Spec> {
    /// Some extension survives: this schedule step is not the failing
    /// one.
    Survives,
    /// All extensions die and `(child, lin)` is a false feasible leaf:
    /// the refuting schedule continues from there.
    Descend(Rc<LinState<S>>),
    /// All extensions die before reaching any feasible leaf: the
    /// branch dies at this very step.
    DeadEnd,
    /// A verdict probe ran out of node budget.
    Truncated,
}

struct Engine<'a, A: Algorithm> {
    alg: &'a A,
    spec: A::Spec,
    scenario: &'a Scenario<A::Spec>,
    memo: Memo<A>,
    nodes: usize,
    node_limit: usize,
    stats: SearchStats,
}

impl<'a, A: Algorithm> Engine<'a, A> {
    fn new(alg: &'a A, scenario: &'a Scenario<A::Spec>, options: StrongOptions) -> Self {
        Engine {
            alg,
            spec: alg.spec(),
            scenario,
            memo: match options.memo {
                MemoMode::Canonical => Memo::Canonical(HashMap::new()),
                MemoMode::HashOnly => Memo::HashOnly(HashMap::new()),
                MemoMode::Off => Memo::Off,
            },
            nodes: 0,
            node_limit: options.node_limit,
            stats: SearchStats::default(),
        }
    }

    fn state_key(&self, exec: &Rc<ExecState<A>>, lin: &LinState<A::Spec>) -> StateKey<A> {
        let mut assigned = lin.assigned.clone();
        assigned.sort_by_key(|(k, _)| *k);
        let mut states = lin.states.clone();
        states.sort_by_cached_key(hash_of);
        StateKey {
            exec: Rc::clone(exec),
            assigned,
            states,
        }
    }

    /// The pre-PR-4 collision-prone key, kept for [`MemoMode::HashOnly`].
    fn hash_key(&self, exec: &ExecState<A>, lin: &LinState<A::Spec>) -> u64 {
        let mut h = DefaultHasher::new();
        exec.mem.hash(&mut h);
        exec.machines.hash(&mut h);
        exec.status.hash(&mut h);
        let mut assigned = lin.assigned.clone();
        assigned.sort_by_key(|(k, _)| *k);
        assigned.hash(&mut h);
        let mut acc: u64 = 0;
        for s in &lin.states {
            acc = acc.wrapping_add(hash_of(s));
        }
        acc.hash(&mut h);
        h.finish()
    }

    /// Starts a `feasible` evaluation: resolves terminal and memoized
    /// states immediately, otherwise opens an AND frame.
    fn enter_feasible(
        &mut self,
        exec: Rc<ExecState<A>>,
        lin: Rc<LinState<A::Spec>>,
    ) -> Result<Entered<A>, BudgetExhausted> {
        let enabled = enabled_of(self.scenario, &exec);
        if enabled.is_empty() {
            return Ok(Entered::Done(true));
        }
        let key = match &self.memo {
            Memo::Canonical(map) => {
                let k = self.state_key(&exec, &lin);
                if let Some(&cached) = map.get(&k) {
                    self.stats.memo_hits += 1;
                    return Ok(Entered::Done(cached));
                }
                Some(FrameKey::Canonical(k))
            }
            Memo::HashOnly(map) => {
                let h = self.hash_key(&exec, &lin);
                if let Some(&cached) = map.get(&h) {
                    self.stats.memo_hits += 1;
                    return Ok(Entered::Done(cached));
                }
                Some(FrameKey::Hash(h))
            }
            Memo::Off => None,
        };
        self.stats.memo_misses += 1;
        self.nodes += 1;
        if self.nodes > self.node_limit {
            return Err(BudgetExhausted);
        }
        Ok(Entered::Frame(FeasibleFrame {
            exec,
            lin,
            key,
            enabled,
            next_child: 0,
        }))
    }

    fn memo_store(&mut self, key: Option<FrameKey<A>>, verdict: bool) {
        match (key, &mut self.memo) {
            (Some(FrameKey::Canonical(k)), Memo::Canonical(map)) => {
                map.insert(k, verdict);
            }
            (Some(FrameKey::Hash(h)), Memo::HashOnly(map)) => {
                map.insert(h, verdict);
            }
            _ => {}
        }
    }

    /// Evaluates one subproblem to a verdict with an explicit frame
    /// stack — the search never recurses, so scenario depth is bounded
    /// by heap, not by the thread stack.
    fn run_task(&mut self, task: SpawnTask<A>) -> Result<bool, BudgetExhausted> {
        let mut stack: Vec<Frame<A>> = Vec::new();
        let mut spawn = Some(task);
        let mut result: Option<bool> = None;
        loop {
            if let Some(task) = spawn.take() {
                match task {
                    SpawnTask::Feasible(e, l) => match self.enter_feasible(e, l)? {
                        Entered::Done(b) => result = Some(b),
                        Entered::Frame(f) => stack.push(Frame::Feasible(f)),
                    },
                    SpawnTask::Ext(c, l, m) => stack.push(Frame::Ext(ExtFrame::new(c, l, m))),
                }
                // Every push flows through here, so this is the one
                // place the stack high-water needs sampling.
                self.stats.max_depth = self.stats.max_depth.max(stack.len());
            }
            let Some(top) = stack.last_mut() else {
                return Ok(result.expect("root task resolved"));
            };
            match top {
                Frame::Feasible(f) => {
                    if let Some(r) = result.take() {
                        if !r {
                            // AND fails: record and propagate.
                            let Some(Frame::Feasible(f)) = stack.pop() else {
                                unreachable!("matched above");
                            };
                            self.memo_store(f.key, false);
                            result = Some(false);
                            continue;
                        }
                        f.next_child += 1;
                    }
                    if f.next_child >= f.enabled.len() {
                        let Some(Frame::Feasible(f)) = stack.pop() else {
                            unreachable!("matched above");
                        };
                        self.memo_store(f.key, true);
                        result = Some(true);
                        continue;
                    }
                    let p = f.enabled[f.next_child];
                    let (child, _label, completed) =
                        step_child(self.alg, self.scenario, &f.exec, p);
                    let child = Rc::new(child);
                    match completed {
                        Some((k, r)) if f.lin.contains(k) => {
                            // Already linearized as pending: the fixed
                            // response must match what really happened.
                            if f.lin.resp_of(k) == Some(&r) {
                                spawn = Some(SpawnTask::Ext(child, Rc::clone(&f.lin), None));
                            } else {
                                let Some(Frame::Feasible(f)) = stack.pop() else {
                                    unreachable!("matched above");
                                };
                                self.memo_store(f.key, false);
                                result = Some(false);
                            }
                        }
                        Some((k, _)) => {
                            spawn = Some(SpawnTask::Ext(child, Rc::clone(&f.lin), Some(k)));
                        }
                        None => {
                            spawn = Some(SpawnTask::Ext(child, Rc::clone(&f.lin), None));
                        }
                    }
                }
                Frame::Ext(f) => {
                    if result.take() == Some(true) {
                        stack.pop();
                        result = Some(true);
                        continue;
                    }
                    match f.next_alternative(&self.spec, self.scenario) {
                        Some(task) => spawn = Some(task),
                        None => {
                            stack.pop();
                            result = Some(false);
                        }
                    }
                }
            }
        }
    }

    /// Verdict oracle for witness extraction: memoized states answer
    /// instantly; unexplored ones are evaluated on the spot.
    fn verdict(
        &mut self,
        exec: &Rc<ExecState<A>>,
        lin: &Rc<LinState<A::Spec>>,
    ) -> Result<bool, BudgetExhausted> {
        self.run_task(SpawnTask::Feasible(Rc::clone(exec), Rc::clone(lin)))
    }

    /// Re-walks the refuted tree from the root, *through* memoized
    /// verdicts instead of stopping at them, building the complete
    /// schedule to the dying step. The pre-PR-4 checker reported
    /// whatever path happened to be on the stack when a witness was
    /// first recorded — truncated wherever a cached false was reused,
    /// and sometimes left over from an exploratory OR branch of a
    /// certification.
    fn extract_witness(
        &mut self,
        exec0: &Rc<ExecState<A>>,
        lin0: &Rc<LinState<A::Spec>>,
    ) -> Witness {
        // Replay gets a fresh budget on top of what the search spent;
        // under canonical memoization nearly every probe is a lookup.
        self.node_limit = self.nodes.saturating_add(self.node_limit);
        // Without a sound memo the probes would re-explore subtrees
        // exponentially; replay under a fresh canonical memo instead
        // (memoization does not change verdicts — the differential
        // suite pins that).
        if matches!(self.memo, Memo::Off) {
            self.memo = Memo::Canonical(HashMap::new());
        }
        let mut path = Vec::new();
        let mut schedule = Vec::new();
        let mut exec = Rc::clone(exec0);
        let mut lin = Rc::clone(lin0);
        loop {
            let enabled = enabled_of(self.scenario, &exec);
            let mut descended = false;
            for &p in &enabled {
                let (child, label, completed) = step_child(self.alg, self.scenario, &exec, p);
                let child = Rc::new(child);
                let (must, mismatch) = match &completed {
                    Some((k, r)) if lin.contains(*k) => {
                        if lin.resp_of(*k) == Some(r) {
                            (None, false)
                        } else {
                            (None, true)
                        }
                    }
                    Some((k, _)) => (Some(*k), false),
                    None => (None, false),
                };
                if mismatch {
                    let (k, r) = completed.expect("mismatch implies completion");
                    path.push(label);
                    schedule.push(p);
                    return Witness {
                        detail: format!(
                            "after this step, op {k:?} completed with {r:?} but it was \
                             already linearized with {:?} — a prefix-closed L cannot \
                             revise the choice",
                            lin.resp_of(k)
                        ),
                        path,
                        schedule,
                    };
                }
                match self.refute_ext(&child, &lin, must) {
                    ExtProbe::Survives => continue,
                    ExtProbe::Descend(next_lin) => {
                        path.push(label);
                        schedule.push(p);
                        exec = child;
                        lin = next_lin;
                        descended = true;
                        break;
                    }
                    ExtProbe::DeadEnd => {
                        path.push(label);
                        schedule.push(p);
                        let detail = match &completed {
                            Some((k, r)) => format!(
                                "after this step, op {k:?} completed with {r:?} but no \
                                 linearization extension of {:?} can accommodate it \
                                 across all futures",
                                lin.assigned
                            ),
                            None => format!(
                                "no linearization extension of {:?} survives all futures \
                                 of this step",
                                lin.assigned
                            ),
                        };
                        return Witness {
                            detail,
                            path,
                            schedule,
                        };
                    }
                    ExtProbe::Truncated => {
                        return Witness {
                            detail: "witness truncated: replay budget exhausted".to_string(),
                            path,
                            schedule,
                        };
                    }
                }
            }
            if !descended {
                // Every enabled branch probed feasible — possible only
                // if a probe was inconsistent with the refutation
                // (e.g. the unsound HashOnly memo); report honestly.
                return Witness {
                    detail: "witness incomplete: no failing branch found on replay \
                             (memoization mode is not sound?)"
                        .to_string(),
                    path,
                    schedule,
                };
            }
        }
    }

    /// Decides how the OR side of one schedule step fails, if it does:
    /// enumerates every extension alternative, preferring σ = ε as the
    /// continuation so the witness follows the adversary's schedule.
    fn refute_ext(
        &mut self,
        child: &Rc<ExecState<A>>,
        lin: &Rc<LinState<A::Spec>>,
        must: Option<OpKey>,
    ) -> ExtProbe<A::Spec> {
        let mut descend: Option<Rc<LinState<A::Spec>>> = None;
        if must.is_none() {
            match self.verdict(child, lin) {
                Ok(true) => return ExtProbe::Survives,
                Ok(false) => descend = Some(Rc::clone(lin)),
                Err(BudgetExhausted) => return ExtProbe::Truncated,
            }
        }
        let mut frame = ExtFrame::new(Rc::clone(child), Rc::clone(lin), must);
        frame.tried_epsilon = true; // ε handled above
        loop {
            let Some(task) = frame.next_alternative(&self.spec, self.scenario) else {
                break;
            };
            let SpawnTask::Ext(c, next_lin, still_must) = task else {
                unreachable!("alternatives after ε are extension tasks");
            };
            match self.refute_ext(&c, &next_lin, still_must) {
                ExtProbe::Survives => return ExtProbe::Survives,
                ExtProbe::Descend(l) => {
                    descend.get_or_insert(l);
                }
                ExtProbe::DeadEnd => {}
                ExtProbe::Truncated => return ExtProbe::Truncated,
            }
        }
        match descend {
            Some(l) => ExtProbe::Descend(l),
            None => ExtProbe::DeadEnd,
        }
    }
}

/// Enumerates every distinct complete history of `alg` on `scenario`
/// (all interleavings), calling `f` on each. Used to check plain
/// linearizability over a whole scenario and for differential tests.
///
/// # Panics
///
/// Panics if more than `limit` histories are produced.
pub fn for_each_history<A: Algorithm>(
    alg: &A,
    mem: SimMemory,
    scenario: &Scenario<A::Spec>,
    limit: usize,
    f: &mut dyn FnMut(&History<A::Spec>),
) {
    let exec = ExecState::<A>::initial(scenario, mem);
    let mut history = History::new();
    let mut count = 0usize;
    recurse(alg, scenario, &exec, &mut history, &mut count, limit, f);
}

fn recurse<A: Algorithm>(
    alg: &A,
    scenario: &Scenario<A::Spec>,
    exec: &ExecState<A>,
    history: &mut History<A::Spec>,
    count: &mut usize,
    limit: usize,
    f: &mut dyn FnMut(&History<A::Spec>),
) {
    let enabled = enabled_of(scenario, exec);
    if enabled.is_empty() {
        *count += 1;
        assert!(*count <= limit, "history enumeration exceeded {limit}");
        f(history);
        return;
    }
    for p in enabled {
        let mut child = exec.clone();
        let mut events = 0usize;
        if child.machines[p].is_none() {
            let index = child.status[p]
                .iter()
                .position(|s| matches!(s, OpStatus::NotInvoked))
                .expect("op remains");
            let op = scenario.ops[p][index].clone();
            child.status[p][index] = OpStatus::Active;
            child.machines[p] = Some(alg.machine(p, &op));
            history.invoke(OpKey { process: p, index }.id(), p, op);
            events += 1;
        }
        let index = child.status[p]
            .iter()
            .position(|s| matches!(s, OpStatus::Active))
            .expect("active op");
        let mut machine = child.machines[p].take().expect("active machine");
        match machine.step(&mut child.mem) {
            Step::Pending => child.machines[p] = Some(machine),
            Step::Ready(resp) => {
                child.status[p][index] = OpStatus::Done(resp.clone());
                history.ret(OpKey { process: p, index }.id(), resp);
                events += 1;
            }
        }
        recurse(alg, scenario, &child, history, count, limit, f);
        for _ in 0..events {
            history.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lin::is_linearizable;
    use crate::mem::{Cell, Loc};
    use sl2_spec::counters::{CounterOp, CounterResp, CounterSpec};
    use sl2_spec::max_register::{MaxOp, MaxRegisterSpec, MaxResp};

    /// Max register whose ops are single atomic steps — trivially SL.
    #[derive(Debug, Clone)]
    struct AtomicMax {
        loc: Loc,
    }

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum AtomicMaxMachine {
        Write(Loc, u64),
        Read(Loc),
    }

    impl OpMachine for AtomicMaxMachine {
        type Resp = MaxResp;
        fn step(&mut self, mem: &mut SimMemory) -> Step<MaxResp> {
            match *self {
                AtomicMaxMachine::Write(loc, v) => {
                    mem.max_write(loc, v);
                    Step::Ready(MaxResp::Ok)
                }
                AtomicMaxMachine::Read(loc) => Step::Ready(MaxResp::Value(mem.max_read(loc))),
            }
        }
    }

    impl Algorithm for AtomicMax {
        type Spec = MaxRegisterSpec;
        type Machine = AtomicMaxMachine;
        fn spec(&self) -> MaxRegisterSpec {
            MaxRegisterSpec
        }
        fn machine(&self, _p: usize, op: &MaxOp) -> AtomicMaxMachine {
            match op {
                MaxOp::Write(v) => AtomicMaxMachine::Write(self.loc, *v),
                MaxOp::Read => AtomicMaxMachine::Read(self.loc),
            }
        }
    }

    /// Non-atomic counter increment (read; write) — not even
    /// linearizable, a fortiori not strongly linearizable.
    #[derive(Debug, Clone)]
    struct RacyCounter {
        loc: Loc,
    }

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum RacyMachine {
        IncRead(Loc),
        IncWrite(Loc, u64),
        Read(Loc),
    }

    impl OpMachine for RacyMachine {
        type Resp = CounterResp;
        fn step(&mut self, mem: &mut SimMemory) -> Step<CounterResp> {
            match *self {
                RacyMachine::IncRead(loc) => {
                    let v = mem.read(loc);
                    *self = RacyMachine::IncWrite(loc, v);
                    Step::Pending
                }
                RacyMachine::IncWrite(loc, v) => {
                    mem.write(loc, v + 1);
                    Step::Ready(CounterResp::Ok)
                }
                RacyMachine::Read(loc) => Step::Ready(CounterResp::Value(mem.read(loc))),
            }
        }
    }

    impl Algorithm for RacyCounter {
        type Spec = CounterSpec;
        type Machine = RacyMachine;
        fn spec(&self) -> CounterSpec {
            CounterSpec
        }
        fn machine(&self, _p: usize, op: &CounterOp) -> RacyMachine {
            match op {
                CounterOp::Inc => RacyMachine::IncRead(self.loc),
                CounterOp::Read => RacyMachine::Read(self.loc),
            }
        }
    }

    #[test]
    fn atomic_max_register_is_strongly_linearizable() {
        let mut mem = SimMemory::new();
        let alg = AtomicMax {
            loc: mem.alloc(Cell::AMaxReg(0)),
        };
        let scenario = Scenario::new(vec![
            vec![MaxOp::Write(2), MaxOp::Read],
            vec![MaxOp::Write(5)],
            vec![MaxOp::Read],
        ]);
        let report = check_strong(&alg, mem, &scenario, 2_000_000);
        assert!(report.strongly_linearizable, "{:?}", report.witness);
        assert!(report.nodes > 0);
        assert!(
            report.witness.is_none(),
            "certification must not carry a leftover exploratory witness"
        );
    }

    #[test]
    fn racy_counter_is_rejected() {
        let mut mem = SimMemory::new();
        let alg = RacyCounter {
            loc: mem.alloc(Cell::Reg(0)),
        };
        let scenario = Scenario::new(vec![
            vec![CounterOp::Inc],
            vec![CounterOp::Inc],
            vec![CounterOp::Read],
        ]);
        let report = check_strong(&alg, mem.clone(), &scenario, 2_000_000);
        assert!(!report.strongly_linearizable);
        let w = report.witness.expect("witness on failure");
        assert!(!w.path.is_empty());
        assert_eq!(w.path.len(), w.schedule.len());
        validate_witness(&alg, mem, &scenario, &w).expect("witness must replay");
    }

    #[test]
    fn racy_counter_has_a_non_linearizable_history() {
        let mut mem = SimMemory::new();
        let alg = RacyCounter {
            loc: mem.alloc(Cell::Reg(0)),
        };
        let scenario = Scenario::new(vec![
            vec![CounterOp::Inc, CounterOp::Read],
            vec![CounterOp::Inc],
        ]);
        let mut bad = 0usize;
        let mut total = 0usize;
        for_each_history(&alg, mem, &scenario, 1_000_000, &mut |h| {
            total += 1;
            if !is_linearizable(&CounterSpec, h) {
                bad += 1;
            }
        });
        assert!(total > 0);
        assert!(bad > 0, "the lost update must surface in some history");
    }

    #[test]
    fn atomic_max_register_histories_all_linearizable() {
        let mut mem = SimMemory::new();
        let alg = AtomicMax {
            loc: mem.alloc(Cell::AMaxReg(0)),
        };
        let scenario = Scenario::new(vec![
            vec![MaxOp::Write(3), MaxOp::Read],
            vec![MaxOp::Write(1), MaxOp::Read],
        ]);
        for_each_history(&alg, mem, &scenario, 1_000_000, &mut |h| {
            assert!(is_linearizable(&MaxRegisterSpec, h));
        });
    }

    #[test]
    fn memoization_ablation_agrees_and_saves_states() {
        // Same verdicts with and without the state-keyed DAG; the
        // tree mode re-explores joins, so it visits at least as many
        // states (strictly more on racy scenarios).
        let mut mem = SimMemory::new();
        let alg = AtomicMax {
            loc: mem.alloc(Cell::AMaxReg(0)),
        };
        let scenario = Scenario::new(vec![
            vec![MaxOp::Write(2), MaxOp::Read],
            vec![MaxOp::Write(5)],
            vec![MaxOp::Read],
        ]);
        let dag = check_strong_with(
            &alg,
            mem.clone(),
            &scenario,
            StrongOptions::with_limit(4_000_000),
        );
        let tree = check_strong_with(
            &alg,
            mem,
            &scenario,
            StrongOptions::with_limit(4_000_000).memoize(false),
        );
        assert!(dag.strongly_linearizable && tree.strongly_linearizable);
        assert!(
            tree.nodes > dag.nodes,
            "tree {} vs dag {}",
            tree.nodes,
            dag.nodes
        );

        let mut mem = SimMemory::new();
        let alg = RacyCounter {
            loc: mem.alloc(Cell::Reg(0)),
        };
        let scenario = Scenario::new(vec![
            vec![CounterOp::Inc],
            vec![CounterOp::Inc],
            vec![CounterOp::Read],
        ]);
        let dag = check_strong_with(
            &alg,
            mem.clone(),
            &scenario,
            StrongOptions::with_limit(4_000_000),
        );
        let tree = check_strong_with(
            &alg,
            mem,
            &scenario,
            StrongOptions::with_limit(4_000_000).memoize(false),
        );
        assert!(!dag.strongly_linearizable && !tree.strongly_linearizable);
    }

    #[test]
    fn node_budget_reports_bounded_instead_of_panicking() {
        let mut mem = SimMemory::new();
        let alg = RacyCounter {
            loc: mem.alloc(Cell::Reg(0)),
        };
        let scenario = Scenario::new(vec![
            vec![CounterOp::Inc],
            vec![CounterOp::Inc],
            vec![CounterOp::Read],
        ]);
        let out = check_strong_outcome(&alg, mem, &scenario, StrongOptions::with_limit(3));
        assert!(out.is_bounded(), "{:?}", out.outcome);
        assert!(out.nodes >= 3);
    }

    #[test]
    fn scenarios_past_1024_ops_per_process_now_check() {
        // The pre-PR-4 OpId packing panicked on >1024 ops per process;
        // the widened packing takes a 1100-op solo tower in stride —
        // and the explicit-stack engine keeps depth off the thread
        // stack.
        let mut mem = SimMemory::new();
        let alg = AtomicMax {
            loc: mem.alloc(Cell::AMaxReg(0)),
        };
        let ops: Vec<MaxOp> = (0..1100)
            .map(|i| {
                if i % 5 == 4 {
                    MaxOp::Read
                } else {
                    MaxOp::Write(i as u64)
                }
            })
            .collect();
        let scenario = Scenario::new(vec![ops]);
        let out = check_strong_outcome(&alg, mem, &scenario, StrongOptions::with_limit(4_000_000));
        assert!(out.is_certified(), "{:?}", out.outcome);
        assert!(out.nodes >= 1100);
    }

    // -----------------------------------------------------------------
    // The PR-4 soundness regression: deliberately hash-colliding search
    // states. `Colliding`'s Hash impl is constant (legal — the Hash
    // contract only requires equal values to hash equally), so every
    // spec-state set collides under the pre-PR-4 hash-only memo key.
    // The last-writer spec checked against a max-register machine is
    // genuinely NOT strongly linearizable (schedule Write(2) to
    // completion before Write(1) is invoked: L = [Write 2] is forced,
    // then [Write 2, Write 1] — but a later Read returns 2, the
    // register's max, contradicting spec state 1). The hash-only memo
    // conflates the {state 2} and {state 1} nodes at the converged
    // execution state and certifies; equality-checked keys refute.
    // -----------------------------------------------------------------

    /// Last-writer register state with a deliberately degenerate Hash.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Colliding(u64);

    impl Hash for Colliding {
        fn hash<H: Hasher>(&self, state: &mut H) {
            0u64.hash(state);
        }
    }

    /// Last-writer (ordinary) register spec over `MaxOp`/`MaxResp`.
    #[derive(Debug, Clone)]
    struct LastWriteSpec;

    impl Spec for LastWriteSpec {
        type State = Colliding;
        type Op = MaxOp;
        type Resp = MaxResp;

        fn initial(&self) -> Colliding {
            Colliding(0)
        }

        fn step(&self, s: &Colliding, op: &MaxOp) -> Vec<(Colliding, MaxResp)> {
            match op {
                MaxOp::Write(v) => vec![(Colliding(*v), MaxResp::Ok)],
                MaxOp::Read => vec![(s.clone(), MaxResp::Value(s.0))],
            }
        }
    }

    /// The max-register machine judged against the last-writer spec.
    #[derive(Debug, Clone)]
    struct MaxVsLastWrite {
        loc: Loc,
    }

    impl Algorithm for MaxVsLastWrite {
        type Spec = LastWriteSpec;
        type Machine = AtomicMaxMachine;
        fn spec(&self) -> LastWriteSpec {
            LastWriteSpec
        }
        fn machine(&self, _p: usize, op: &MaxOp) -> AtomicMaxMachine {
            match op {
                MaxOp::Write(v) => AtomicMaxMachine::Write(self.loc, *v),
                MaxOp::Read => AtomicMaxMachine::Read(self.loc),
            }
        }
    }

    fn collider_scenario() -> (SimMemory, MaxVsLastWrite, Scenario<LastWriteSpec>) {
        let mut mem = SimMemory::new();
        let alg = MaxVsLastWrite {
            loc: mem.alloc(Cell::AMaxReg(0)),
        };
        let scenario = Scenario::new(vec![
            vec![MaxOp::Write(1)],
            vec![MaxOp::Write(2)],
            vec![MaxOp::Read],
        ]);
        (mem, alg, scenario)
    }

    #[test]
    fn hash_only_memo_misreferees_on_colliding_states() {
        // The bug this PR fixes, pinned: under the pre-PR-4 hash-only
        // memo the colliding spec-state sets conflate and the checker
        // *certifies* a non-strongly-linearizable object.
        let (mem, alg, scenario) = collider_scenario();
        let out = check_strong_outcome(
            &alg,
            mem,
            &scenario,
            StrongOptions {
                node_limit: 1_000_000,
                memo: MemoMode::HashOnly,
            },
        );
        assert!(
            out.is_certified(),
            "expected the hash-only memo to misreferee (did the exploration \
             order change?): {:?}",
            out.outcome
        );
    }

    #[test]
    fn canonical_memo_is_immune_to_hash_collisions() {
        // Equality-checked keys: same scenario, correct refutation —
        // and agreeing with the memo-free ground truth.
        let (mem, alg, scenario) = collider_scenario();
        let canonical = check_strong_outcome(
            &alg,
            mem.clone(),
            &scenario,
            StrongOptions::with_limit(1_000_000),
        );
        assert!(canonical.is_refuted(), "{:?}", canonical.outcome);
        let tree = check_strong_outcome(
            &alg,
            mem.clone(),
            &scenario,
            StrongOptions::with_limit(1_000_000).memoize(false),
        );
        assert!(tree.is_refuted(), "{:?}", tree.outcome);
        let w = canonical.witness().expect("refutation carries a witness");
        validate_witness(&alg, mem, &scenario, w).expect("witness must replay");
    }

    #[test]
    fn witness_extends_to_the_dying_step() {
        // The refuting branch needs Write(2) complete, then Write(1)
        // complete, then the Read observing the max — three steps. The
        // pre-PR-4 checker could stop the path wherever a cached false
        // was reused; the replayed witness always reaches the step
        // whose completion no linearization extension survives.
        let (mem, alg, scenario) = collider_scenario();
        let out = check_strong_outcome(
            &alg,
            mem.clone(),
            &scenario,
            StrongOptions::with_limit(1_000_000),
        );
        let w = out.witness().expect("refuted");
        assert_eq!(w.path.len(), 3, "complete branch: {:?}", w.path);
        assert!(
            w.path.last().expect("non-empty").contains("→"),
            "the dying step is a completion: {:?}",
            w.path
        );
        validate_witness(&alg, mem, &scenario, w).expect("witness must replay");
    }

    #[test]
    fn memo_modes_agree_on_sound_configurations() {
        // Canonical and Off must always agree (HashOnly deliberately
        // does not, on the collider). Both certification and
        // refutation shapes.
        let mut mem = SimMemory::new();
        let alg = AtomicMax {
            loc: mem.alloc(Cell::AMaxReg(0)),
        };
        let scenario = Scenario::new(vec![
            vec![MaxOp::Write(2), MaxOp::Read],
            vec![MaxOp::Write(5)],
        ]);
        for memoize in [true, false] {
            let out = check_strong_outcome(
                &alg,
                mem.clone(),
                &scenario,
                StrongOptions::with_limit(4_000_000).memoize(memoize),
            );
            assert!(out.is_certified());
        }
    }
}
