//! Strong-linearizability checker.
//!
//! An implementation is *strongly linearizable* \[16\] if there is a
//! function `L` mapping each finite execution to a linearization of it,
//! such that `L` is prefix-closed: if `α` is a prefix of `β` then
//! `L(α)` is a prefix of `L(β)`. Equivalently: once an operation is
//! linearized, its position can never be revised, no matter how the
//! adversary extends the execution.
//!
//! On a bounded scenario (fixed per-process operation lists) the set of
//! executions is a finite tree, and the existence of a prefix-closed
//! `L` is decidable by AND/OR search:
//!
//! ```text
//! feasible(node, lin) :=
//!     (lin is a valid linearization of node's history — invariant)
//!  ∧  for EVERY enabled process step (child node c):
//!         EXISTS an extension σ of lin (ops linearizing *at* this
//!         step, with spec-assigned responses for still-pending ops)
//!         such that feasible(c, lin·σ)
//! ```
//!
//! The implementation is strongly linearizable on the scenario iff
//! `feasible(root, ε)`. The search memoizes on the pair (execution
//! state, linearization-relevant state), which merges schedule
//! prefixes that converged. On failure a [`Witness`] describes the
//! branch on which no linearization choice can survive — precisely the
//! shape of counterexample discussed in the paper's related work for
//! the AW multi-shot fetch&inc and the AGM stack.
//!
//! Scope notes:
//! * Invocations are folded into the invoked operation's first step.
//!   An invocation by itself creates no linearization obligation (the
//!   new operation is pending and `L` need not include it), so folding
//!   loses no violations.
//! * Nondeterministic specifications are supported: the checker tracks
//!   the set of specification states consistent with the chosen
//!   linearization prefix.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use sl2_spec::Spec;

use crate::history::{History, OpId};
use crate::machine::{Algorithm, OpMachine, Step};
use crate::mem::SimMemory;
use crate::sched::Scenario;

/// Canonical operation identity within a scenario: `(process, index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpKey {
    /// Invoking process.
    pub process: usize,
    /// Index within that process's operation list.
    pub index: usize,
}

impl OpKey {
    fn id(self) -> OpId {
        OpId(self.process * 1024 + self.index)
    }
}

/// Lifecycle of a scenario operation during checking.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum OpStatus<R> {
    NotInvoked,
    Active,
    Done(R),
}

/// Outcome of a strong-linearizability check.
#[derive(Debug, Clone)]
pub struct StrongReport {
    /// Whether a prefix-closed linearization function exists on the
    /// scenario's execution tree.
    pub strongly_linearizable: bool,
    /// Number of distinct search states explored.
    pub nodes: usize,
    /// A failing branch, when not strongly linearizable.
    pub witness: Option<Witness>,
}

/// A branch of the execution tree on which every linearization prefix
/// dies: the schedule (events from the root) and a human-readable
/// explanation.
#[derive(Debug, Clone)]
pub struct Witness {
    /// Event descriptions from the root to the failing step.
    pub path: Vec<String>,
    /// What went wrong at the final step.
    pub detail: String,
}

struct ExecState<A: Algorithm> {
    mem: SimMemory,
    machines: Vec<Option<A::Machine>>,
    status: Vec<Vec<OpStatus<<A::Spec as Spec>::Resp>>>,
}

impl<A: Algorithm> Clone for ExecState<A> {
    fn clone(&self) -> Self {
        ExecState {
            mem: self.mem.clone(),
            machines: self.machines.clone(),
            status: self.status.clone(),
        }
    }
}

#[derive(Clone)]
struct LinState<S: Spec> {
    /// Ops already linearized, with their (actual or assigned) responses.
    assigned: Vec<(OpKey, S::Resp)>,
    /// Spec states consistent with the linearization prefix.
    states: Vec<S::State>,
}

impl<S: Spec> LinState<S> {
    fn contains(&self, k: OpKey) -> bool {
        self.assigned.iter().any(|(a, _)| *a == k)
    }

    fn resp_of(&self, k: OpKey) -> Option<&S::Resp> {
        self.assigned.iter().find(|(a, _)| *a == k).map(|(_, r)| r)
    }

    /// Appends `(k, resp)` if spec-consistent; returns the new state.
    fn extended(&self, spec: &S, k: OpKey, op: &S::Op, resp: &S::Resp) -> Option<Self> {
        let mut next_states = Vec::new();
        for s in &self.states {
            for succ in spec.accept(s, op, resp) {
                if !next_states.contains(&succ) {
                    next_states.push(succ);
                }
            }
        }
        if next_states.is_empty() {
            return None;
        }
        let mut assigned = self.assigned.clone();
        assigned.push((k, resp.clone()));
        Some(LinState {
            assigned,
            states: next_states,
        })
    }
}

/// Tuning knobs for [`check_strong_with`].
#[derive(Debug, Clone, Copy)]
pub struct StrongOptions {
    /// Bound on distinct search states (panics when exceeded).
    pub node_limit: usize,
    /// Whether to memoize search states (hashing the execution tree
    /// into a DAG). Disabling this re-explores every path separately —
    /// exponentially slower on racy scenarios; exposed for the ablation
    /// benchmark of the design choice.
    pub memoize: bool,
}

impl Default for StrongOptions {
    fn default() -> Self {
        StrongOptions {
            node_limit: 1_000_000,
            memoize: true,
        }
    }
}

/// Checks strong linearizability of `alg` on `scenario`.
///
/// `mem` must be the memory in which the algorithm allocated its base
/// objects (i.e. the state right after `A::new(&mut mem, ...)`).
/// `node_limit` bounds the search (panics if exceeded — raise it or
/// shrink the scenario).
///
/// # Panics
///
/// Panics if the scenario needs more than `node_limit` search states,
/// or if any process has more than 1024 operations.
pub fn check_strong<A: Algorithm>(
    alg: &A,
    mem: SimMemory,
    scenario: &Scenario<A::Spec>,
    node_limit: usize,
) -> StrongReport {
    check_strong_with(
        alg,
        mem,
        scenario,
        StrongOptions {
            node_limit,
            memoize: true,
        },
    )
}

/// [`check_strong`] with explicit [`StrongOptions`].
///
/// # Panics
///
/// As [`check_strong`].
pub fn check_strong_with<A: Algorithm>(
    alg: &A,
    mem: SimMemory,
    scenario: &Scenario<A::Spec>,
    options: StrongOptions,
) -> StrongReport {
    assert!(
        scenario.ops.iter().all(|l| l.len() <= 1024),
        "per-process op lists limited to 1024"
    );
    let spec = alg.spec();
    let n = scenario.processes();
    let exec = ExecState::<A> {
        mem,
        machines: (0..n).map(|_| None).collect(),
        status: scenario
            .ops
            .iter()
            .map(|l| l.iter().map(|_| OpStatus::NotInvoked).collect())
            .collect(),
    };
    let lin = LinState::<A::Spec> {
        assigned: Vec::new(),
        states: vec![spec.initial()],
    };
    let mut checker = Checker {
        alg,
        spec,
        scenario,
        memo: HashMap::new(),
        memoize: options.memoize,
        nodes: 0,
        node_limit: options.node_limit,
        witness: None,
    };
    let ok = checker.feasible(&exec, &lin, &mut Vec::new());
    StrongReport {
        strongly_linearizable: ok,
        nodes: checker.nodes,
        witness: checker.witness,
    }
}

struct Checker<'a, A: Algorithm> {
    alg: &'a A,
    spec: A::Spec,
    scenario: &'a Scenario<A::Spec>,
    memo: HashMap<u64, bool>,
    memoize: bool,
    nodes: usize,
    node_limit: usize,
    witness: Option<Witness>,
}

impl<'a, A: Algorithm> Checker<'a, A> {
    fn feasible(
        &mut self,
        exec: &ExecState<A>,
        lin: &LinState<A::Spec>,
        path: &mut Vec<String>,
    ) -> bool {
        let enabled: Vec<usize> = (0..self.scenario.processes())
            .filter(|&p| {
                exec.machines[p].is_some()
                    || exec.status[p]
                        .iter()
                        .any(|s| matches!(s, OpStatus::NotInvoked))
            })
            .collect();
        if enabled.is_empty() {
            return true;
        }

        let key = self.key(exec, lin);
        if self.memoize {
            if let Some(&cached) = self.memo.get(&key) {
                return cached;
            }
        }
        self.nodes += 1;
        assert!(
            self.nodes <= self.node_limit,
            "strong-linearizability search exceeded {} states",
            self.node_limit
        );

        let mut ok = true;
        for p in enabled {
            let (child, label, completed) = self.step_child(exec, p);
            path.push(label);
            let child_ok = match &completed {
                Some((k, r)) if lin.contains(*k) => {
                    // Already linearized as pending: response must match.
                    if lin.resp_of(*k) == Some(r) {
                        self.extensions(&child, lin, None, path)
                    } else {
                        false
                    }
                }
                Some((k, _)) => self.extensions(&child, lin, Some(*k), path),
                None => self.extensions(&child, lin, None, path),
            };
            if !child_ok {
                if self.witness.is_none() {
                    let detail = match &completed {
                        Some((k, r)) => format!(
                            "after this step, op {k:?} completed with {r:?} but no \
                             linearization extension of {:?} can accommodate it \
                             across all futures",
                            lin.assigned
                        ),
                        None => format!(
                            "no linearization extension of {:?} survives all futures \
                             of this step",
                            lin.assigned
                        ),
                    };
                    self.witness = Some(Witness {
                        path: path.clone(),
                        detail,
                    });
                }
                path.pop();
                ok = false;
                break;
            }
            path.pop();
        }
        if self.memoize {
            self.memo.insert(key, ok);
        }
        ok
    }

    /// EXISTS-side: tries all linearization extensions σ (sequences of
    /// unlinearized invoked ops) such that `must` (the op that just
    /// completed, if any) ends up linearized, recursing into
    /// `feasible`.
    fn extensions(
        &mut self,
        child: &ExecState<A>,
        lin: &LinState<A::Spec>,
        must: Option<OpKey>,
        path: &mut Vec<String>,
    ) -> bool {
        // σ = ε allowed iff nothing is forced.
        if must.is_none() && self.feasible(child, lin, path) {
            return true;
        }
        // Candidates: invoked, unlinearized ops.
        let mut cands: Vec<OpKey> = Vec::new();
        for (p, stats) in child.status.iter().enumerate() {
            for (i, st) in stats.iter().enumerate() {
                let k = OpKey {
                    process: p,
                    index: i,
                };
                if !matches!(st, OpStatus::NotInvoked) && !lin.contains(k) {
                    cands.push(k);
                }
            }
        }
        for &k in &cands {
            let op = &self.scenario.ops[k.process][k.index];
            let resp_options: Vec<<A::Spec as Spec>::Resp> = match &child.status[k.process][k.index]
            {
                OpStatus::Done(r) => vec![r.clone()],
                OpStatus::Active => {
                    let mut opts = Vec::new();
                    for s in &lin.states {
                        for (_, r) in self.spec.step(s, op) {
                            if !opts.contains(&r) {
                                opts.push(r);
                            }
                        }
                    }
                    opts
                }
                OpStatus::NotInvoked => unreachable!("filtered above"),
            };
            for resp in resp_options {
                if let Some(next_lin) = lin.extended(&self.spec, k, op, &resp) {
                    let still_must = match must {
                        Some(m) if m == k => None,
                        other => other,
                    };
                    if self.extensions(child, &next_lin, still_must, path) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Executes one step of process `p` (invoking its next operation if
    /// idle). Returns the child state, an event label, and the
    /// completion `(op, resp)` if the step finished an operation.
    #[allow(clippy::type_complexity)]
    fn step_child(
        &self,
        exec: &ExecState<A>,
        p: usize,
    ) -> (
        ExecState<A>,
        String,
        Option<(OpKey, <A::Spec as Spec>::Resp)>,
    ) {
        let mut child = exec.clone();
        let mut label;
        let key;
        if child.machines[p].is_none() {
            let index = child.status[p]
                .iter()
                .position(|s| matches!(s, OpStatus::NotInvoked))
                .expect("caller ensured an op remains");
            let op = &self.scenario.ops[p][index];
            key = OpKey { process: p, index };
            child.status[p][index] = OpStatus::Active;
            child.machines[p] = Some(self.alg.machine(p, op));
            label = format!("p{p}: invoke {op:?}; step");
        } else {
            let index = child.status[p]
                .iter()
                .position(|s| matches!(s, OpStatus::Active))
                .expect("an active machine implies an active op");
            key = OpKey { process: p, index };
            label = format!("p{p}: step");
        }
        let mut machine = child.machines[p].take().expect("set above");
        let completed = match machine.step(&mut child.mem) {
            Step::Pending => {
                child.machines[p] = Some(machine);
                None
            }
            Step::Ready(resp) => {
                child.status[key.process][key.index] = OpStatus::Done(resp.clone());
                label.push_str(&format!(" → {resp:?}"));
                Some((key, resp))
            }
        };
        (child, label, completed)
    }

    fn key(&self, exec: &ExecState<A>, lin: &LinState<A::Spec>) -> u64 {
        let mut h = DefaultHasher::new();
        exec.mem.hash(&mut h);
        exec.machines.hash(&mut h);
        exec.status.hash(&mut h);
        let mut assigned = lin.assigned.clone();
        assigned.sort_by_key(|(k, _)| *k);
        assigned.hash(&mut h);
        // Order-independent hash of the spec-state set.
        let mut acc: u64 = 0;
        for s in &lin.states {
            let mut sh = DefaultHasher::new();
            s.hash(&mut sh);
            acc = acc.wrapping_add(sh.finish());
        }
        acc.hash(&mut h);
        h.finish()
    }
}

/// Enumerates every distinct complete history of `alg` on `scenario`
/// (all interleavings), calling `f` on each. Used to check plain
/// linearizability over a whole scenario and for differential tests.
///
/// # Panics
///
/// Panics if more than `limit` histories are produced.
pub fn for_each_history<A: Algorithm>(
    alg: &A,
    mem: SimMemory,
    scenario: &Scenario<A::Spec>,
    limit: usize,
    f: &mut dyn FnMut(&History<A::Spec>),
) {
    let n = scenario.processes();
    let exec = ExecState::<A> {
        mem,
        machines: (0..n).map(|_| None).collect(),
        status: scenario
            .ops
            .iter()
            .map(|l| l.iter().map(|_| OpStatus::NotInvoked).collect())
            .collect(),
    };
    let mut history = History::new();
    let mut count = 0usize;
    recurse(alg, scenario, &exec, &mut history, &mut count, limit, f);
}

fn recurse<A: Algorithm>(
    alg: &A,
    scenario: &Scenario<A::Spec>,
    exec: &ExecState<A>,
    history: &mut History<A::Spec>,
    count: &mut usize,
    limit: usize,
    f: &mut dyn FnMut(&History<A::Spec>),
) {
    let enabled: Vec<usize> = (0..scenario.processes())
        .filter(|&p| {
            exec.machines[p].is_some()
                || exec.status[p]
                    .iter()
                    .any(|s| matches!(s, OpStatus::NotInvoked))
        })
        .collect();
    if enabled.is_empty() {
        *count += 1;
        assert!(*count <= limit, "history enumeration exceeded {limit}");
        f(history);
        return;
    }
    for p in enabled {
        let mut child = exec.clone();
        let mut events = 0usize;
        if child.machines[p].is_none() {
            let index = child.status[p]
                .iter()
                .position(|s| matches!(s, OpStatus::NotInvoked))
                .expect("op remains");
            let op = scenario.ops[p][index].clone();
            child.status[p][index] = OpStatus::Active;
            child.machines[p] = Some(alg.machine(p, &op));
            history.invoke(OpKey { process: p, index }.id(), p, op);
            events += 1;
        }
        let index = child.status[p]
            .iter()
            .position(|s| matches!(s, OpStatus::Active))
            .expect("active op");
        let mut machine = child.machines[p].take().expect("active machine");
        match machine.step(&mut child.mem) {
            Step::Pending => child.machines[p] = Some(machine),
            Step::Ready(resp) => {
                child.status[p][index] = OpStatus::Done(resp.clone());
                history.ret(OpKey { process: p, index }.id(), resp);
                events += 1;
            }
        }
        recurse(alg, scenario, &child, history, count, limit, f);
        for _ in 0..events {
            history.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lin::is_linearizable;
    use crate::mem::{Cell, Loc};
    use sl2_spec::counters::{CounterOp, CounterResp, CounterSpec};
    use sl2_spec::max_register::{MaxOp, MaxRegisterSpec, MaxResp};

    /// Max register whose ops are single atomic steps — trivially SL.
    #[derive(Debug, Clone)]
    struct AtomicMax {
        loc: Loc,
    }

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum AtomicMaxMachine {
        Write(Loc, u64),
        Read(Loc),
    }

    impl OpMachine for AtomicMaxMachine {
        type Resp = MaxResp;
        fn step(&mut self, mem: &mut SimMemory) -> Step<MaxResp> {
            match *self {
                AtomicMaxMachine::Write(loc, v) => {
                    mem.max_write(loc, v);
                    Step::Ready(MaxResp::Ok)
                }
                AtomicMaxMachine::Read(loc) => Step::Ready(MaxResp::Value(mem.max_read(loc))),
            }
        }
    }

    impl Algorithm for AtomicMax {
        type Spec = MaxRegisterSpec;
        type Machine = AtomicMaxMachine;
        fn spec(&self) -> MaxRegisterSpec {
            MaxRegisterSpec
        }
        fn machine(&self, _p: usize, op: &MaxOp) -> AtomicMaxMachine {
            match op {
                MaxOp::Write(v) => AtomicMaxMachine::Write(self.loc, *v),
                MaxOp::Read => AtomicMaxMachine::Read(self.loc),
            }
        }
    }

    /// Non-atomic counter increment (read; write) — not even
    /// linearizable, a fortiori not strongly linearizable.
    #[derive(Debug, Clone)]
    struct RacyCounter {
        loc: Loc,
    }

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum RacyMachine {
        IncRead(Loc),
        IncWrite(Loc, u64),
        Read(Loc),
    }

    impl OpMachine for RacyMachine {
        type Resp = CounterResp;
        fn step(&mut self, mem: &mut SimMemory) -> Step<CounterResp> {
            match *self {
                RacyMachine::IncRead(loc) => {
                    let v = mem.read(loc);
                    *self = RacyMachine::IncWrite(loc, v);
                    Step::Pending
                }
                RacyMachine::IncWrite(loc, v) => {
                    mem.write(loc, v + 1);
                    Step::Ready(CounterResp::Ok)
                }
                RacyMachine::Read(loc) => Step::Ready(CounterResp::Value(mem.read(loc))),
            }
        }
    }

    impl Algorithm for RacyCounter {
        type Spec = CounterSpec;
        type Machine = RacyMachine;
        fn spec(&self) -> CounterSpec {
            CounterSpec
        }
        fn machine(&self, _p: usize, op: &CounterOp) -> RacyMachine {
            match op {
                CounterOp::Inc => RacyMachine::IncRead(self.loc),
                CounterOp::Read => RacyMachine::Read(self.loc),
            }
        }
    }

    #[test]
    fn atomic_max_register_is_strongly_linearizable() {
        let mut mem = SimMemory::new();
        let alg = AtomicMax {
            loc: mem.alloc(Cell::AMaxReg(0)),
        };
        let scenario = Scenario::new(vec![
            vec![MaxOp::Write(2), MaxOp::Read],
            vec![MaxOp::Write(5)],
            vec![MaxOp::Read],
        ]);
        let report = check_strong(&alg, mem, &scenario, 2_000_000);
        assert!(report.strongly_linearizable, "{:?}", report.witness);
        assert!(report.nodes > 0);
    }

    #[test]
    fn racy_counter_is_rejected() {
        let mut mem = SimMemory::new();
        let alg = RacyCounter {
            loc: mem.alloc(Cell::Reg(0)),
        };
        let scenario = Scenario::new(vec![
            vec![CounterOp::Inc],
            vec![CounterOp::Inc],
            vec![CounterOp::Read],
        ]);
        let report = check_strong(&alg, mem, &scenario, 2_000_000);
        assert!(!report.strongly_linearizable);
        let w = report.witness.expect("witness on failure");
        assert!(!w.path.is_empty());
    }

    #[test]
    fn racy_counter_has_a_non_linearizable_history() {
        let mut mem = SimMemory::new();
        let alg = RacyCounter {
            loc: mem.alloc(Cell::Reg(0)),
        };
        let scenario = Scenario::new(vec![
            vec![CounterOp::Inc, CounterOp::Read],
            vec![CounterOp::Inc],
        ]);
        let mut bad = 0usize;
        let mut total = 0usize;
        for_each_history(&alg, mem, &scenario, 1_000_000, &mut |h| {
            total += 1;
            if !is_linearizable(&CounterSpec, h) {
                bad += 1;
            }
        });
        assert!(total > 0);
        assert!(bad > 0, "the lost update must surface in some history");
    }

    #[test]
    fn atomic_max_register_histories_all_linearizable() {
        let mut mem = SimMemory::new();
        let alg = AtomicMax {
            loc: mem.alloc(Cell::AMaxReg(0)),
        };
        let scenario = Scenario::new(vec![
            vec![MaxOp::Write(3), MaxOp::Read],
            vec![MaxOp::Write(1), MaxOp::Read],
        ]);
        for_each_history(&alg, mem, &scenario, 1_000_000, &mut |h| {
            assert!(is_linearizable(&MaxRegisterSpec, h));
        });
    }

    #[test]
    fn memoization_ablation_agrees_and_saves_states() {
        // Same verdicts with and without the state-hashing DAG; the
        // tree mode re-explores joins, so it visits at least as many
        // states (strictly more on racy scenarios).
        let mut mem = SimMemory::new();
        let alg = AtomicMax {
            loc: mem.alloc(Cell::AMaxReg(0)),
        };
        let scenario = Scenario::new(vec![
            vec![MaxOp::Write(2), MaxOp::Read],
            vec![MaxOp::Write(5)],
            vec![MaxOp::Read],
        ]);
        let dag = check_strong_with(
            &alg,
            mem.clone(),
            &scenario,
            StrongOptions {
                node_limit: 4_000_000,
                memoize: true,
            },
        );
        let tree = check_strong_with(
            &alg,
            mem,
            &scenario,
            StrongOptions {
                node_limit: 4_000_000,
                memoize: false,
            },
        );
        assert!(dag.strongly_linearizable && tree.strongly_linearizable);
        assert!(
            tree.nodes > dag.nodes,
            "tree {} vs dag {}",
            tree.nodes,
            dag.nodes
        );

        let mut mem = SimMemory::new();
        let alg = RacyCounter {
            loc: mem.alloc(Cell::Reg(0)),
        };
        let scenario = Scenario::new(vec![
            vec![CounterOp::Inc],
            vec![CounterOp::Inc],
            vec![CounterOp::Read],
        ]);
        let dag = check_strong_with(
            &alg,
            mem.clone(),
            &scenario,
            StrongOptions {
                node_limit: 4_000_000,
                memoize: true,
            },
        );
        let tree = check_strong_with(
            &alg,
            mem,
            &scenario,
            StrongOptions {
                node_limit: 4_000_000,
                memoize: false,
            },
        );
        assert!(!dag.strongly_linearizable && !tree.strongly_linearizable);
    }
}
