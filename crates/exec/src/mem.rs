//! [`SimMemory`]: simulated shared memory of typed base-object cells.
//!
//! This is the executable form of the paper's system model (Section 2):
//! a configuration contains the states of all shared base objects; a
//! step applies one atomic operation to one base object. Every cell
//! operation below is one such step.
//!
//! Cell kinds mirror the base objects the paper uses. Primitive cells
//! (`Reg`, `Faa`, `Wide`, `Tas`, `Swap`, `Cas`) correspond to hardware
//! primitives; *atomic composite* cells (`AMaxReg`, `ASnap`, `ARTas`,
//! `ARFai`) let constructions that the paper builds **on top of other
//! implemented objects** (Theorem 6 on readable test&set + max register,
//! Theorem 10 on readable fetch&inc, ...) be checked modularly, exactly
//! as the paper's proofs do via composability of strong linearizability
//! [9, Theorem 10].
//!
//! Every cell supports `read` — the paper's Section 5 works with
//! *readable* base objects, and Lemma 16 shows readability never
//! invalidates strong linearizability. [`SimMemory`] is `Clone + Hash`:
//! cloning gives Algorithm B (Lemma 12) its collect-and-simulate-locally
//! step, and hashing powers checker memoization.

use sl2_bignum::BigNat;

/// Machine word stored in primitive cells.
pub type Word = u64;

/// One shared base object.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Cell {
    /// Read/write register (consensus number 1).
    Reg(Word),
    /// Fetch&add register (consensus number 2).
    Faa(Word),
    /// Wide (unbounded) fetch&add register (consensus number 2).
    Wide(BigNat),
    /// One-shot test&set bit (consensus number 2).
    Tas(bool),
    /// Swap register (consensus number 2).
    Swap(Word),
    /// Compare&swap register (consensus number ∞).
    Cas(Word),
    /// Atomic max register (composite base object).
    AMaxReg(Word),
    /// Atomic single-writer snapshot (composite base object).
    ASnap(Vec<Word>),
    /// Atomic readable test&set (composite base object).
    ARTas(bool),
    /// Atomic readable fetch&increment, initial value 1 (composite).
    ARFai(Word),
    /// Atomic queue with a last-dequeued marker (composite base
    /// object; the marker supports the multiplicity relaxation's
    /// duplicate-outcome in checker positive controls).
    AQueue {
        /// Queued items, front first.
        items: std::collections::VecDeque<Word>,
        /// Item returned by the immediately preceding dequeue.
        last: Option<Word>,
    },
}

impl Cell {
    /// A coarse numeric view of the cell used by `read` (collects in
    /// Algorithm B read base objects one by one; for `ASnap` use
    /// [`SimMemory::snap_scan`]).
    fn as_word(&self) -> Word {
        match self {
            Cell::Reg(v) | Cell::Faa(v) | Cell::Swap(v) | Cell::Cas(v) => *v,
            Cell::Wide(b) => b.to_u64().unwrap_or(u64::MAX),
            Cell::Tas(b) | Cell::ARTas(b) => *b as Word,
            Cell::AMaxReg(v) | Cell::ARFai(v) => *v,
            Cell::ASnap(_) => panic!("read a snapshot cell with snap_scan"),
            Cell::AQueue { .. } => panic!("read a queue cell with queue_deq/queue_enq"),
        }
    }
}

/// Handle to a standalone cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loc(pub(crate) usize);

/// Handle to a growable ("infinite") array of cells of one kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayLoc(pub(crate) usize);

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ArrayCells {
    template: Cell,
    cells: Vec<Cell>,
}

/// Simulated shared memory: the base-object part of a configuration.
///
/// # Examples
///
/// ```
/// use sl2_exec::mem::{Cell, SimMemory};
///
/// let mut mem = SimMemory::new();
/// let ts = mem.alloc(Cell::Tas(false));
/// assert_eq!(mem.tas(ts), 0); // first caller wins
/// assert_eq!(mem.tas(ts), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct SimMemory {
    cells: Vec<Cell>,
    arrays: Vec<ArrayCells>,
    steps: u64,
}

impl SimMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        SimMemory::default()
    }

    /// Allocates a standalone cell.
    pub fn alloc(&mut self, cell: Cell) -> Loc {
        self.cells.push(cell);
        Loc(self.cells.len() - 1)
    }

    /// Allocates an infinite array whose cells materialize (as copies of
    /// `template`) on first access. Observationally identical to the
    /// paper's infinite arrays: untouched cells hold the initial value.
    pub fn alloc_array(&mut self, template: Cell) -> ArrayLoc {
        self.arrays.push(ArrayCells {
            template,
            cells: Vec::new(),
        });
        ArrayLoc(self.arrays.len() - 1)
    }

    /// Total base-object operations performed (the paper's step count).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    fn cell(&mut self, loc: Loc) -> &mut Cell {
        &mut self.cells[loc.0]
    }

    fn array_cell(&mut self, a: ArrayLoc, i: usize) -> &mut Cell {
        let arr = &mut self.arrays[a.0];
        if arr.cells.len() <= i {
            arr.cells.resize(i + 1, arr.template.clone());
        }
        &mut arr.cells[i]
    }

    // -- primitive operations (each is one atomic step) ---------------

    /// Reads any cell as a word. Every base object is readable (Lemma
    /// 16); `ASnap` cells must use [`SimMemory::snap_scan`].
    pub fn read(&mut self, loc: Loc) -> Word {
        self.steps += 1;
        self.cells[loc.0].as_word()
    }

    /// Reads an array cell as a word.
    pub fn read_at(&mut self, a: ArrayLoc, i: usize) -> Word {
        self.steps += 1;
        self.array_cell(a, i).as_word()
    }

    /// Writes a `Reg` cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell is not a read/write register: the consensus
    /// hierarchy discipline is enforced at runtime.
    pub fn write(&mut self, loc: Loc, v: Word) {
        self.steps += 1;
        match self.cell(loc) {
            Cell::Reg(cur) => *cur = v,
            other => panic!("write on non-register cell {other:?}"),
        }
    }

    /// Writes a `Reg` cell inside an array.
    pub fn write_at(&mut self, a: ArrayLoc, i: usize, v: Word) {
        self.steps += 1;
        match self.array_cell(a, i) {
            Cell::Reg(cur) => *cur = v,
            other => panic!("write on non-register cell {other:?}"),
        }
    }

    /// Fetch&add on a `Faa` cell; returns the previous value.
    pub fn faa(&mut self, loc: Loc, delta: Word) -> Word {
        self.steps += 1;
        match self.cell(loc) {
            Cell::Faa(cur) => {
                let old = *cur;
                *cur = cur.wrapping_add(delta);
                old
            }
            other => panic!("faa on non-fetch&add cell {other:?}"),
        }
    }

    /// Wide fetch&add: applies `+pos − neg` to a `Wide` cell in one
    /// step, returning the previous value (§3's signed adjustment).
    pub fn wide_adjust(&mut self, loc: Loc, pos: &BigNat, neg: &BigNat) -> BigNat {
        self.steps += 1;
        match self.cell(loc) {
            Cell::Wide(cur) => {
                // One clone for the returned snapshot; the adjustment
                // itself mutates in place (allocation-free while the
                // cell stays inline — which every checker scenario does).
                let old = cur.clone();
                cur.adjust_in_place(pos, neg);
                old
            }
            other => panic!("wide_adjust on non-wide cell {other:?}"),
        }
    }

    /// Reads a `Wide` cell (= `fetch&add(R, 0)`).
    pub fn wide_read(&mut self, loc: Loc) -> BigNat {
        self.steps += 1;
        match &self.cells[loc.0] {
            Cell::Wide(cur) => cur.clone(),
            other => panic!("wide_read on non-wide cell {other:?}"),
        }
    }

    /// Test&set on a `Tas` or `ARTas` cell; returns the previous bit.
    pub fn tas(&mut self, loc: Loc) -> u8 {
        self.steps += 1;
        match self.cell(loc) {
            Cell::Tas(bit) | Cell::ARTas(bit) => {
                let old = *bit as u8;
                *bit = true;
                old
            }
            other => panic!("tas on non-test&set cell {other:?}"),
        }
    }

    /// Test&set on an array cell.
    pub fn tas_at(&mut self, a: ArrayLoc, i: usize) -> u8 {
        self.steps += 1;
        match self.array_cell(a, i) {
            Cell::Tas(bit) | Cell::ARTas(bit) => {
                let old = *bit as u8;
                *bit = true;
                old
            }
            other => panic!("tas on non-test&set cell {other:?}"),
        }
    }

    /// Swap on a `Swap` cell; returns the previous value.
    pub fn swap(&mut self, loc: Loc, v: Word) -> Word {
        self.steps += 1;
        match self.cell(loc) {
            Cell::Swap(cur) => std::mem::replace(cur, v),
            other => panic!("swap on non-swap cell {other:?}"),
        }
    }

    /// Swap on an array cell.
    pub fn swap_at(&mut self, a: ArrayLoc, i: usize, v: Word) -> Word {
        self.steps += 1;
        match self.array_cell(a, i) {
            Cell::Swap(cur) => std::mem::replace(cur, v),
            other => panic!("swap on non-swap cell {other:?}"),
        }
    }

    /// Compare&swap on a `Cas` cell; returns the observed value (equal
    /// to `expect` iff the CAS succeeded).
    pub fn cas(&mut self, loc: Loc, expect: Word, new: Word) -> Word {
        self.steps += 1;
        match self.cell(loc) {
            Cell::Cas(cur) => {
                let old = *cur;
                if old == expect {
                    *cur = new;
                }
                old
            }
            other => panic!("cas on non-cas cell {other:?}"),
        }
    }

    /// Compare&swap on an array cell.
    pub fn cas_at(&mut self, a: ArrayLoc, i: usize, expect: Word, new: Word) -> Word {
        self.steps += 1;
        match self.array_cell(a, i) {
            Cell::Cas(cur) => {
                let old = *cur;
                if old == expect {
                    *cur = new;
                }
                old
            }
            other => panic!("cas on non-cas cell {other:?}"),
        }
    }

    // -- atomic composite operations -----------------------------------

    /// `WriteMax` on an `AMaxReg` cell.
    pub fn max_write(&mut self, loc: Loc, v: Word) {
        self.steps += 1;
        match self.cell(loc) {
            Cell::AMaxReg(cur) => *cur = (*cur).max(v),
            other => panic!("max_write on non-max-register cell {other:?}"),
        }
    }

    /// `ReadMax` on an `AMaxReg` cell.
    pub fn max_read(&mut self, loc: Loc) -> Word {
        self.steps += 1;
        match &self.cells[loc.0] {
            Cell::AMaxReg(cur) => *cur,
            other => panic!("max_read on non-max-register cell {other:?}"),
        }
    }

    /// `update` of component `i` on an `ASnap` cell.
    pub fn snap_update(&mut self, loc: Loc, i: usize, v: Word) {
        self.steps += 1;
        match self.cell(loc) {
            Cell::ASnap(view) => view[i] = v,
            other => panic!("snap_update on non-snapshot cell {other:?}"),
        }
    }

    /// `scan` on an `ASnap` cell.
    pub fn snap_scan(&mut self, loc: Loc) -> Vec<Word> {
        self.steps += 1;
        match &self.cells[loc.0] {
            Cell::ASnap(view) => view.clone(),
            other => panic!("snap_scan on non-snapshot cell {other:?}"),
        }
    }

    /// `fetch&increment` on an `ARFai` cell; returns the pre-increment
    /// value.
    pub fn fai(&mut self, loc: Loc) -> Word {
        self.steps += 1;
        match self.cell(loc) {
            Cell::ARFai(cur) => {
                let old = *cur;
                *cur += 1;
                old
            }
            other => panic!("fai on non-fetch&inc cell {other:?}"),
        }
    }

    /// `enq` on an `AQueue` cell.
    pub fn queue_enq(&mut self, loc: Loc, v: Word) {
        self.steps += 1;
        match self.cell(loc) {
            Cell::AQueue { items, last } => {
                items.push_back(v);
                *last = None;
            }
            other => panic!("queue_enq on non-queue cell {other:?}"),
        }
    }

    /// Exact `deq` on an `AQueue` cell; `None` means empty.
    pub fn queue_deq(&mut self, loc: Loc) -> Option<Word> {
        self.steps += 1;
        match self.cell(loc) {
            Cell::AQueue { items, last } => {
                let v = items.pop_front();
                *last = v;
                v
            }
            other => panic!("queue_deq on non-queue cell {other:?}"),
        }
    }

    /// Out-of-order `deq` on an `AQueue` cell: removes and returns one
    /// of the `k` oldest items, chosen deterministically from the cell
    /// state and `salt` (so distinct callers can pick distinct items —
    /// the k-out-of-order relaxation's genuinely multi-valued choice).
    /// `None` means empty.
    pub fn queue_deq_within(&mut self, loc: Loc, k: usize, salt: u64) -> Option<Word> {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        self.steps += 1;
        match self.cell(loc) {
            Cell::AQueue { items, last } => {
                if items.is_empty() {
                    *last = None;
                    return None;
                }
                let window = k.max(1).min(items.len());
                let mut h = DefaultHasher::new();
                items.hash(&mut h);
                salt.hash(&mut h);
                let idx = (h.finish() as usize) % window;
                let v = items.remove(idx);
                *last = v;
                v
            }
            other => panic!("queue_deq_within on non-queue cell {other:?}"),
        }
    }

    /// Duplicating `deq` on an `AQueue` cell: returns the previous
    /// dequeue's item when one exists (leaving the queue unchanged),
    /// otherwise behaves like [`SimMemory::queue_deq`]. This is the
    /// multiplicity relaxation's second outcome, taken greedily.
    pub fn queue_deq_dup(&mut self, loc: Loc) -> Option<Word> {
        self.steps += 1;
        match self.cell(loc) {
            Cell::AQueue { items, last } => match *last {
                Some(d) => Some(d),
                None => {
                    let v = items.pop_front();
                    *last = v;
                    v
                }
            },
            other => panic!("queue_deq_dup on non-queue cell {other:?}"),
        }
    }

    /// Readable test&set array: read cell `i`.
    pub fn rtas_read_at(&mut self, a: ArrayLoc, i: usize) -> u8 {
        self.steps += 1;
        match self.array_cell(a, i) {
            Cell::Tas(bit) | Cell::ARTas(bit) => *bit as u8,
            other => panic!("rtas_read on non-test&set cell {other:?}"),
        }
    }

    // -- whole-memory access (Algorithm B's collect / local simulation) --

    /// Number of standalone cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// A copy of the memory with the step counter reset — the "states of
    /// base objects in `r`" that Algorithm B's local simulation starts
    /// from. Cloning is legitimate *only after a successful double
    /// collect*; the collect itself must go through per-cell reads.
    pub fn snapshot_state(&self) -> SimMemory {
        let mut copy = self.clone();
        copy.steps = 0;
        copy
    }

    /// Reads one cell by flat index, for Algorithm B's `collect(R)`
    /// which reads base objects "one by one, in any arbitrary order".
    /// Flat indices `0..flat_len()` cover standalone cells then array
    /// cells in allocation order.
    pub fn collect_read(&mut self, flat: usize) -> Cell {
        self.steps += 1;
        self.flat_get(flat)
    }

    /// Number of flat-indexable cells currently materialized.
    pub fn flat_len(&self) -> usize {
        self.cells.len() + self.arrays.iter().map(|a| a.cells.len()).sum::<usize>()
    }

    fn flat_get(&self, flat: usize) -> Cell {
        if flat < self.cells.len() {
            return self.cells[flat].clone();
        }
        let mut rest = flat - self.cells.len();
        for a in &self.arrays {
            if rest < a.cells.len() {
                return a.cells[rest].clone();
            }
            rest -= a.cells.len();
        }
        panic!("flat index {flat} out of range");
    }

    /// Rebuilds a memory image from collected cell values, preserving
    /// this memory's layout (standalone cells then arrays). This is the
    /// start state of Algorithm B's local simulation.
    pub fn rebuild_from_collect(&self, collected: &[Cell]) -> SimMemory {
        assert_eq!(collected.len(), self.flat_len(), "collect size mismatch");
        let mut copy = self.clone();
        copy.steps = 0;
        let mut it = collected.iter().cloned();
        for c in &mut copy.cells {
            *c = it.next().expect("sized above");
        }
        for a in &mut copy.arrays {
            for c in &mut a.cells {
                *c = it.next().expect("sized above");
            }
        }
        copy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_basic_ops() {
        let mut mem = SimMemory::new();
        let r = mem.alloc(Cell::Reg(0));
        let f = mem.alloc(Cell::Faa(10));
        mem.write(r, 9);
        assert_eq!(mem.read(r), 9);
        assert_eq!(mem.faa(f, 5), 10);
        assert_eq!(mem.read(f), 15);
        assert_eq!(mem.steps(), 4);
    }

    #[test]
    fn tas_first_wins_then_sticks() {
        let mut mem = SimMemory::new();
        let t = mem.alloc(Cell::Tas(false));
        assert_eq!(mem.tas(t), 0);
        assert_eq!(mem.tas(t), 1);
        assert_eq!(mem.read(t), 1);
    }

    #[test]
    fn swap_and_cas() {
        let mut mem = SimMemory::new();
        let s = mem.alloc(Cell::Swap(1));
        let c = mem.alloc(Cell::Cas(0));
        assert_eq!(mem.swap(s, 7), 1);
        assert_eq!(mem.cas(c, 0, 3), 0);
        assert_eq!(mem.cas(c, 0, 5), 3);
        assert_eq!(mem.read(c), 3);
    }

    #[test]
    fn wide_adjust_round_trips() {
        use sl2_bignum::BigNat;
        let mut mem = SimMemory::new();
        let w = mem.alloc(Cell::Wide(BigNat::zero()));
        let old = mem.wide_adjust(w, &BigNat::pow2(100), &BigNat::zero());
        assert!(old.is_zero());
        assert_eq!(mem.wide_read(w), BigNat::pow2(100));
    }

    #[test]
    fn arrays_materialize_on_demand() {
        let mut mem = SimMemory::new();
        let a = mem.alloc_array(Cell::Tas(false));
        assert_eq!(mem.flat_len(), 0);
        assert_eq!(mem.tas_at(a, 5), 0);
        assert_eq!(mem.tas_at(a, 5), 1);
        assert_eq!(mem.rtas_read_at(a, 2), 0); // untouched = initial
        assert_eq!(mem.flat_len(), 6);
    }

    #[test]
    fn composite_cells_behave_atomically() {
        let mut mem = SimMemory::new();
        let m = mem.alloc(Cell::AMaxReg(0));
        mem.max_write(m, 5);
        mem.max_write(m, 3);
        assert_eq!(mem.max_read(m), 5);

        let s = mem.alloc(Cell::ASnap(vec![0, 0, 0]));
        mem.snap_update(s, 1, 9);
        assert_eq!(mem.snap_scan(s), vec![0, 9, 0]);

        let f = mem.alloc(Cell::ARFai(1));
        assert_eq!(mem.fai(f), 1);
        assert_eq!(mem.fai(f), 2);
        assert_eq!(mem.read(f), 3);
    }

    #[test]
    fn collect_and_rebuild_reconstruct_memory() {
        let mut mem = SimMemory::new();
        let r = mem.alloc(Cell::Reg(0));
        let a = mem.alloc_array(Cell::Tas(false));
        mem.write(r, 42);
        mem.tas_at(a, 1);
        let collected: Vec<Cell> = (0..mem.flat_len()).map(|i| mem.collect_read(i)).collect();
        let mut rebuilt = mem.rebuild_from_collect(&collected);
        assert_eq!(rebuilt.read(r), 42);
        assert_eq!(rebuilt.rtas_read_at(a, 1), 1);
        assert_eq!(rebuilt.rtas_read_at(a, 0), 0);
    }

    #[test]
    fn clone_is_a_deep_snapshot() {
        let mut mem = SimMemory::new();
        let r = mem.alloc(Cell::Reg(1));
        let snap = mem.snapshot_state();
        mem.write(r, 2);
        let mut snap = snap;
        assert_eq!(snap.read(r), 1);
        assert_eq!(mem.read(r), 2);
    }

    #[test]
    fn queue_cell_exact_and_duplicating_deq() {
        use std::collections::VecDeque;
        let mut mem = SimMemory::new();
        let q = mem.alloc(Cell::AQueue {
            items: VecDeque::new(),
            last: None,
        });
        assert_eq!(mem.queue_deq(q), None);
        mem.queue_enq(q, 7);
        mem.queue_enq(q, 8);
        assert_eq!(mem.queue_deq(q), Some(7));
        // Duplicating deq repeats the last item without removing.
        assert_eq!(mem.queue_deq_dup(q), Some(7));
        assert_eq!(mem.queue_deq_dup(q), Some(7));
        // An enqueue closes the duplication window.
        mem.queue_enq(q, 9);
        assert_eq!(mem.queue_deq_dup(q), Some(8));
        assert_eq!(mem.queue_deq(q), Some(9));
        assert_eq!(mem.queue_deq(q), None);
    }

    #[test]
    fn queue_cell_out_of_order_deq_stays_in_window() {
        use std::collections::VecDeque;
        let mut mem = SimMemory::new();
        let q = mem.alloc(Cell::AQueue {
            items: VecDeque::new(),
            last: None,
        });
        for v in 0..6 {
            mem.queue_enq(q, v);
        }
        // Window of 3: each removal must come from the current 3 oldest.
        let mut remaining: Vec<Word> = (0..6).collect();
        for salt in 0..6u64 {
            let v = mem.queue_deq_within(q, 3, salt).expect("non-empty");
            let window: Vec<Word> = remaining.iter().take(3).copied().collect();
            assert!(window.contains(&v), "{v} outside window {window:?}");
            remaining.retain(|&x| x != v);
        }
        assert_eq!(mem.queue_deq_within(q, 3, 0), None);
    }

    #[test]
    fn queue_cell_out_of_order_choice_is_deterministic() {
        use std::collections::VecDeque;
        let build = || {
            let mut mem = SimMemory::new();
            let q = mem.alloc(Cell::AQueue {
                items: VecDeque::new(),
                last: None,
            });
            for v in 0..5 {
                mem.queue_enq(q, v);
            }
            (mem, q)
        };
        let (mut m1, q1) = build();
        let (mut m2, q2) = build();
        assert_eq!(
            m1.queue_deq_within(q1, 4, 9),
            m2.queue_deq_within(q2, 4, 9),
            "same state + salt ⇒ same choice"
        );
    }

    #[test]
    #[should_panic(expected = "non-register")]
    fn kind_discipline_is_enforced() {
        let mut mem = SimMemory::new();
        let t = mem.alloc(Cell::Tas(false));
        mem.write(t, 1);
    }
}
