//! Step machines: the executable encoding of the paper's per-process
//! algorithm automata.
//!
//! Section 2 of the paper models an implementation as one local state
//! machine per process whose *steps* are base-object operations. An
//! [`OpMachine`] is exactly that for a single high-level operation: each
//! call to [`OpMachine::step`] performs **exactly one** shared-memory
//! operation (plus any local computation, which is free in the model)
//! and either stays [`Step::Pending`] or returns [`Step::Ready`] with
//! the operation's response.
//!
//! An [`Algorithm`] ties machines to a sequential specification and
//! knows how to instantiate the machine for any `(process, operation)`
//! pair. Checkers, schedulers, and Algorithm B all drive
//! implementations exclusively through these two traits.

use std::fmt::Debug;
use std::hash::Hash;

use sl2_spec::Spec;

use crate::mem::SimMemory;

/// Result of one machine step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Step<R> {
    /// The operation needs more steps.
    Pending,
    /// The operation completed with this response.
    Ready(R),
}

impl<R> Step<R> {
    /// Returns the response if ready.
    pub fn ready(self) -> Option<R> {
        match self {
            Step::Pending => None,
            Step::Ready(r) => Some(r),
        }
    }
}

/// A single high-level operation in execution: a local state machine
/// performing one shared-memory operation per step.
///
/// `Clone + Eq + Hash` let checkers snapshot, restore and memoize
/// process-local states (the paper's "local state of `p` in `C`").
pub trait OpMachine: Clone + Debug + Eq + Hash {
    /// Response type of the operation.
    type Resp: Clone + Debug + Eq + Hash;

    /// Performs the next step. Must apply exactly one operation to
    /// `mem`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if stepped again after returning
    /// [`Step::Ready`].
    fn step(&mut self, mem: &mut SimMemory) -> Step<Self::Resp>;
}

/// An implementation of an object type: a factory of [`OpMachine`]s,
/// one per invoked operation, tied to a sequential specification.
///
/// Construction convention: implementations provide
/// `fn new(mem: &mut SimMemory, n: usize, ...) -> Self`, allocating
/// their base objects in `mem` and remembering the [`crate::mem::Loc`]
/// handles.
pub trait Algorithm: Clone + Debug {
    /// The sequential specification this algorithm implements.
    type Spec: Spec;
    /// The per-operation step machine.
    type Machine: OpMachine<Resp = <Self::Spec as Spec>::Resp>;

    /// The specification instance (used by checkers).
    fn spec(&self) -> Self::Spec;

    /// Instantiates the machine executing `op` on behalf of `process`.
    fn machine(&self, process: usize, op: &<Self::Spec as Spec>::Op) -> Self::Machine;
}

/// Drives a machine to completion, alone, and returns its response and
/// the number of steps taken — the paper's solo execution. Useful in
/// tests and in Algorithm B's local simulation of the decision
/// sequence.
pub fn run_solo<M: OpMachine>(machine: &mut M, mem: &mut SimMemory) -> (M::Resp, u64) {
    let mut steps = 0;
    loop {
        steps += 1;
        assert!(
            steps < 1_000_000,
            "solo run exceeded 1e6 steps: machine is not making progress"
        );
        if let Step::Ready(resp) = machine.step(mem) {
            return (resp, steps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{Cell, Loc};

    /// A two-step machine: reads a register, then writes it + 1.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct IncMachine {
        loc: Loc,
        seen: Option<u64>,
    }

    impl OpMachine for IncMachine {
        type Resp = u64;

        fn step(&mut self, mem: &mut SimMemory) -> Step<u64> {
            match self.seen {
                None => {
                    self.seen = Some(mem.read(self.loc));
                    Step::Pending
                }
                Some(v) => {
                    mem.write(self.loc, v + 1);
                    Step::Ready(v)
                }
            }
        }
    }

    #[test]
    fn run_solo_counts_steps() {
        let mut mem = SimMemory::new();
        let loc = mem.alloc(Cell::Reg(5));
        let mut m = IncMachine { loc, seen: None };
        let (resp, steps) = run_solo(&mut m, &mut mem);
        assert_eq!(resp, 5);
        assert_eq!(steps, 2);
        assert_eq!(mem.read(loc), 6);
    }

    #[test]
    fn interleaving_two_machines_exhibits_the_race() {
        // The classic lost update: both read 0, both write 1.
        let mut mem = SimMemory::new();
        let loc = mem.alloc(Cell::Reg(0));
        let mut a = IncMachine { loc, seen: None };
        let mut b = IncMachine { loc, seen: None };
        assert_eq!(a.step(&mut mem), Step::Pending);
        assert_eq!(b.step(&mut mem), Step::Pending);
        assert_eq!(a.step(&mut mem), Step::Ready(0));
        assert_eq!(b.step(&mut mem), Step::Ready(0));
        assert_eq!(mem.read(loc), 1, "lost update observed, as expected");
    }
}
