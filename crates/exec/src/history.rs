//! Histories: the invocation/response traces of concurrent executions.
//!
//! A [`History`] is the subsequence of an execution consisting of
//! high-level invocation and response events — what linearizability and
//! strong linearizability are defined over.

use std::collections::HashMap;
use std::fmt::Debug;

use sl2_spec::Spec;

/// Identifier of an operation instance within one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

/// One event of a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<S: Spec> {
    /// Operation `id` invoked by `process` with descriptor `op`.
    Invoke {
        /// Operation instance.
        id: OpId,
        /// Invoking process.
        process: usize,
        /// Operation descriptor.
        op: S::Op,
    },
    /// Operation `id` returned `resp`.
    Return {
        /// Operation instance.
        id: OpId,
        /// The response.
        resp: S::Resp,
    },
}

/// An operation's lifecycle within a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord<S: Spec> {
    /// Operation instance id.
    pub id: OpId,
    /// Invoking process.
    pub process: usize,
    /// Operation descriptor.
    pub op: S::Op,
    /// Index of the invocation event.
    pub invoked_at: usize,
    /// Completion: response and index of the return event.
    pub returned: Option<(S::Resp, usize)>,
}

/// A finite history of invocation/response events.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct History<S: Spec> {
    events: Vec<Event<S>>,
}

impl<S: Spec> History<S> {
    /// Creates an empty history.
    pub fn new() -> Self {
        History { events: Vec::new() }
    }

    /// Appends an invocation event.
    pub fn invoke(&mut self, id: OpId, process: usize, op: S::Op) {
        self.events.push(Event::Invoke { id, process, op });
    }

    /// Appends a return event.
    pub fn ret(&mut self, id: OpId, resp: S::Resp) {
        self.events.push(Event::Return { id, resp });
    }

    /// The raw event sequence.
    pub fn events(&self) -> &[Event<S>] {
        &self.events
    }

    /// The same history under a different specification with identical
    /// operation and response types — e.g. the exact counter vs its
    /// k-lagging window. One recorded run judged against both is the
    /// recorder's differential adjudication (`tests/recorder.rs`).
    pub fn retyped<S2>(&self) -> History<S2>
    where
        S2: Spec<Op = S::Op, Resp = S::Resp>,
    {
        let mut out = History::new();
        for ev in &self.events {
            match ev {
                Event::Invoke { id, process, op } => out.invoke(*id, *process, op.clone()),
                Event::Return { id, resp } => out.ret(*id, resp.clone()),
            }
        }
        out
    }

    /// Removes the most recent event (used by backtracking explorers).
    pub fn pop(&mut self) -> Option<Event<S>> {
        self.events.pop()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Per-operation records, in invocation order.
    pub fn ops(&self) -> Vec<OpRecord<S>> {
        let mut recs: Vec<OpRecord<S>> = Vec::new();
        let mut index: HashMap<OpId, usize> = HashMap::new();
        for (i, ev) in self.events.iter().enumerate() {
            match ev {
                Event::Invoke { id, process, op } => {
                    index.insert(*id, recs.len());
                    recs.push(OpRecord {
                        id: *id,
                        process: *process,
                        op: op.clone(),
                        invoked_at: i,
                        returned: None,
                    });
                }
                Event::Return { id, resp } => {
                    let at = index[id];
                    recs[at].returned = Some((resp.clone(), i));
                }
            }
        }
        recs
    }

    /// Operations with both invocation and response.
    pub fn complete_ops(&self) -> Vec<OpRecord<S>> {
        self.ops()
            .into_iter()
            .filter(|r| r.returned.is_some())
            .collect()
    }

    /// Operations with only an invocation.
    pub fn pending_ops(&self) -> Vec<OpRecord<S>> {
        self.ops()
            .into_iter()
            .filter(|r| r.returned.is_none())
            .collect()
    }

    /// Real-time precedence: does `a` precede `b` (a's return before
    /// b's invocation)?
    pub fn precedes(&self, a: &OpRecord<S>, b: &OpRecord<S>) -> bool {
        match &a.returned {
            Some((_, ret_at)) => *ret_at < b.invoked_at,
            None => false,
        }
    }

    /// Restriction of the history to one process (the paper's `α|i`).
    pub fn per_process(&self, process: usize) -> Vec<Event<S>> {
        let owned: std::collections::HashSet<OpId> = self
            .ops()
            .into_iter()
            .filter(|r| r.process == process)
            .map(|r| r.id)
            .collect();
        self.events
            .iter()
            .filter(|ev| match ev {
                Event::Invoke { id, .. } | Event::Return { id, .. } => owned.contains(id),
            })
            .cloned()
            .collect()
    }

    /// Checks well-formedness: each process has at most one operation
    /// pending at a time, returns match prior invocations, no duplicate
    /// ids.
    pub fn is_well_formed(&self) -> bool {
        let mut active: HashMap<usize, OpId> = HashMap::new();
        let mut owner: HashMap<OpId, usize> = HashMap::new();
        for ev in &self.events {
            match ev {
                Event::Invoke { id, process, .. } => {
                    if owner.contains_key(id) || active.contains_key(process) {
                        return false;
                    }
                    owner.insert(*id, *process);
                    active.insert(*process, *id);
                }
                Event::Return { id, .. } => match owner.get(id) {
                    Some(p) if active.get(p) == Some(id) => {
                        active.remove(p);
                    }
                    _ => return false,
                },
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl2_spec::max_register::{MaxOp, MaxRegisterSpec, MaxResp};

    fn sample() -> History<MaxRegisterSpec> {
        let mut h = History::new();
        h.invoke(OpId(0), 0, MaxOp::Write(5));
        h.invoke(OpId(1), 1, MaxOp::Read);
        h.ret(OpId(0), MaxResp::Ok);
        h.invoke(OpId(2), 0, MaxOp::Read);
        h.ret(OpId(2), MaxResp::Value(5));
        h
    }

    #[test]
    fn ops_classify_complete_and_pending() {
        let h = sample();
        assert_eq!(h.complete_ops().len(), 2);
        assert_eq!(h.pending_ops().len(), 1);
        assert_eq!(h.pending_ops()[0].id, OpId(1));
    }

    #[test]
    fn precedence_follows_real_time() {
        let h = sample();
        let ops = h.ops();
        let w = &ops[0]; // Write(5), completed at index 2
        let r1 = &ops[1]; // pending Read by p1, invoked at 1
        let r2 = &ops[2]; // Read by p0, invoked at 3
        assert!(h.precedes(w, r2));
        assert!(!h.precedes(w, r1)); // overlapping
        assert!(!h.precedes(r1, r2)); // pending never precedes
    }

    #[test]
    fn per_process_projects_events() {
        let h = sample();
        assert_eq!(h.per_process(0).len(), 4);
        assert_eq!(h.per_process(1).len(), 1);
    }

    #[test]
    fn well_formedness_accepts_sample() {
        assert!(sample().is_well_formed());
    }

    #[test]
    fn well_formedness_rejects_double_invocation() {
        let mut h: History<MaxRegisterSpec> = History::new();
        h.invoke(OpId(0), 0, MaxOp::Read);
        h.invoke(OpId(1), 0, MaxOp::Read); // same process, still pending
        assert!(!h.is_well_formed());
    }

    #[test]
    fn well_formedness_rejects_orphan_return() {
        let mut h: History<MaxRegisterSpec> = History::new();
        h.ret(OpId(7), MaxResp::Ok);
        assert!(!h.is_well_formed());
    }
}
