//! Schedulers and the execution runner.
//!
//! The paper's adversary is the scheduler: it decides which process
//! takes the next step and may crash processes at any time. A
//! [`Scheduler`] picks among enabled processes; [`run`] drives an
//! [`Algorithm`] over a [`Scenario`] under a scheduler and produces the
//! resulting [`History`] plus progress metrics (per-operation step
//! counts, used by the wait-freedom/lock-freedom experiments).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sl2_spec::Spec;

use crate::history::{History, OpId};
use crate::machine::{Algorithm, OpMachine, Step};
use crate::mem::SimMemory;

/// Per-process operation lists: process `i` executes `ops[i]` in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario<S: Spec> {
    /// One operation list per process.
    pub ops: Vec<Vec<S::Op>>,
}

impl<S: Spec> Scenario<S> {
    /// Creates a scenario from per-process operation lists.
    pub fn new(ops: Vec<Vec<S::Op>>) -> Self {
        Scenario { ops }
    }

    /// Number of processes.
    pub fn processes(&self) -> usize {
        self.ops.len()
    }

    /// Total number of operations.
    pub fn total_ops(&self) -> usize {
        self.ops.iter().map(Vec::len).sum()
    }
}

/// Picks which enabled process steps next.
pub trait Scheduler {
    /// Chooses one element of `enabled` (indices of processes that can
    /// take a step). `enabled` is never empty.
    fn pick(&mut self, enabled: &[usize]) -> usize;
}

/// Cycles through processes in index order.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    last: Option<usize>,
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, enabled: &[usize]) -> usize {
        let next = match self.last {
            None => enabled[0],
            Some(last) => *enabled.iter().find(|&&p| p > last).unwrap_or(&enabled[0]),
        };
        self.last = Some(next);
        next
    }
}

/// Uniformly random scheduling — the strong adversary's coin-flipping
/// counterpart used by the randomized differential tests.
#[derive(Debug, Clone)]
pub struct RandomSched {
    rng: StdRng,
}

impl RandomSched {
    /// Creates a random scheduler from a seed (deterministic replay).
    pub fn seeded(seed: u64) -> Self {
        RandomSched {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomSched {
    fn pick(&mut self, enabled: &[usize]) -> usize {
        enabled[self.rng.gen_range(0..enabled.len())]
    }
}

/// Adversarial scheduler that runs one process for a random burst
/// before switching: the "stall one process, sprint another" pattern
/// that exposes future-dependent linearizations (e.g. the AGM stack's
/// agreement violations in experiment E10). Uniform step-level
/// randomness almost never produces such schedules; bursts make them
/// common.
#[derive(Debug, Clone)]
pub struct BurstSched {
    rng: StdRng,
    current: Option<usize>,
    remaining: u32,
    max_burst: u32,
}

impl BurstSched {
    /// Creates a burst scheduler with bursts of 1..=`max_burst` steps.
    pub fn seeded(seed: u64, max_burst: u32) -> Self {
        BurstSched {
            rng: StdRng::seed_from_u64(seed),
            current: None,
            remaining: 0,
            max_burst: max_burst.max(1),
        }
    }
}

impl Scheduler for BurstSched {
    fn pick(&mut self, enabled: &[usize]) -> usize {
        if self.remaining > 0 {
            if let Some(p) = self.current {
                if enabled.contains(&p) {
                    self.remaining -= 1;
                    return p;
                }
            }
        }
        let p = enabled[self.rng.gen_range(0..enabled.len())];
        self.current = Some(p);
        self.remaining = self.rng.gen_range(0..self.max_burst);
        p
    }
}

/// Replays an explicit process sequence (e.g. a checker witness). When
/// the scripted process is not enabled (or the script is exhausted),
/// falls back to the lowest enabled index.
#[derive(Debug, Clone)]
pub struct FixedSchedule {
    script: Vec<usize>,
    at: usize,
}

impl FixedSchedule {
    /// Creates a scheduler replaying `script`.
    pub fn new(script: Vec<usize>) -> Self {
        FixedSchedule { script, at: 0 }
    }
}

impl Scheduler for FixedSchedule {
    fn pick(&mut self, enabled: &[usize]) -> usize {
        while self.at < self.script.len() {
            let p = self.script[self.at];
            self.at += 1;
            if enabled.contains(&p) {
                return p;
            }
        }
        enabled[0]
    }
}

/// Crash plan: process `i` halts permanently after `limits[i]` steps
/// (`None` = never crashes). Models the paper's crash failures.
#[derive(Debug, Clone, Default)]
pub struct CrashPlan {
    limits: Vec<Option<u64>>,
}

impl CrashPlan {
    /// No crashes.
    pub fn none(n: usize) -> Self {
        CrashPlan {
            limits: vec![None; n],
        }
    }

    /// Crashes process `p` after it has taken `steps` steps.
    pub fn crash_after(mut self, p: usize, steps: u64) -> Self {
        self.limits[p] = Some(steps);
        self
    }

    fn alive(&self, p: usize, taken: u64) -> bool {
        match self.limits.get(p).copied().flatten() {
            None => true,
            Some(limit) => taken < limit,
        }
    }
}

/// Outcome of running a scenario: the history, final memory, and
/// per-operation step counts.
#[derive(Debug, Clone)]
pub struct Execution<S: Spec> {
    /// The invocation/response history.
    pub history: History<S>,
    /// Final shared memory.
    pub mem: SimMemory,
    /// `(op id, steps it took)` for every completed operation.
    pub op_steps: Vec<(OpId, u64)>,
    /// Steps taken by each process.
    pub proc_steps: Vec<u64>,
}

impl<S: Spec> Execution<S> {
    /// Maximum steps any completed operation took (wait-freedom bound).
    pub fn max_op_steps(&self) -> u64 {
        self.op_steps.iter().map(|&(_, s)| s).max().unwrap_or(0)
    }
}

/// Runs `alg` over `scenario` on `mem`, scheduling with `sched` and
/// crashing per `crashes`. Returns when no live process can take a
/// step (all ops done, or the only owners of remaining ops crashed).
pub fn run<A: Algorithm>(
    alg: &A,
    mut mem: SimMemory,
    scenario: &Scenario<A::Spec>,
    sched: &mut dyn Scheduler,
    crashes: &CrashPlan,
) -> Execution<A::Spec> {
    let n = scenario.processes();
    let mut history = History::new();
    let mut next_op_idx = vec![0usize; n];
    let mut active: Vec<Option<(OpId, A::Machine, u64)>> = (0..n).map(|_| None).collect();
    let mut proc_steps = vec![0u64; n];
    let mut op_steps = Vec::new();
    let mut next_id = 0usize;

    loop {
        let enabled: Vec<usize> = (0..n)
            .filter(|&p| {
                crashes.alive(p, proc_steps[p])
                    && (active[p].is_some() || next_op_idx[p] < scenario.ops[p].len())
            })
            .collect();
        if enabled.is_empty() {
            break;
        }
        let p = sched.pick(&enabled);
        assert!(enabled.contains(&p), "scheduler picked a disabled process");

        if active[p].is_none() {
            let op = scenario.ops[p][next_op_idx[p]].clone();
            next_op_idx[p] += 1;
            let id = OpId(next_id);
            next_id += 1;
            history.invoke(id, p, op.clone());
            active[p] = Some((id, alg.machine(p, &op), 0));
        }
        let (id, mut machine, taken) = active[p].take().expect("just ensured active");
        proc_steps[p] += 1;
        match machine.step(&mut mem) {
            Step::Pending => active[p] = Some((id, machine, taken + 1)),
            Step::Ready(resp) => {
                history.ret(id, resp);
                op_steps.push((id, taken + 1));
            }
        }
    }

    Execution {
        history,
        mem,
        op_steps,
        proc_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::Event;
    use crate::machine::Step;
    use crate::mem::{Cell, Loc};
    use sl2_spec::counters::{CounterOp, CounterResp, CounterSpec};

    /// A deliberately racy counter: read then write (not atomic).
    #[derive(Debug, Clone)]
    struct RacyCounter {
        loc: Loc,
    }

    impl RacyCounter {
        fn new(mem: &mut SimMemory) -> Self {
            RacyCounter {
                loc: mem.alloc(Cell::Reg(0)),
            }
        }
    }

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum RacyMachine {
        IncRead(Loc),
        IncWrite(Loc, u64),
        Read(Loc),
    }

    impl OpMachine for RacyMachine {
        type Resp = CounterResp;

        fn step(&mut self, mem: &mut SimMemory) -> Step<CounterResp> {
            match *self {
                RacyMachine::IncRead(loc) => {
                    let v = mem.read(loc);
                    *self = RacyMachine::IncWrite(loc, v);
                    Step::Pending
                }
                RacyMachine::IncWrite(loc, v) => {
                    mem.write(loc, v + 1);
                    Step::Ready(CounterResp::Ok)
                }
                RacyMachine::Read(loc) => Step::Ready(CounterResp::Value(mem.read(loc))),
            }
        }
    }

    impl Algorithm for RacyCounter {
        type Spec = CounterSpec;
        type Machine = RacyMachine;

        fn spec(&self) -> CounterSpec {
            CounterSpec
        }

        fn machine(&self, _process: usize, op: &CounterOp) -> RacyMachine {
            match op {
                CounterOp::Inc => RacyMachine::IncRead(self.loc),
                CounterOp::Read => RacyMachine::Read(self.loc),
            }
        }
    }

    fn scenario() -> Scenario<CounterSpec> {
        Scenario::new(vec![
            vec![CounterOp::Inc, CounterOp::Read],
            vec![CounterOp::Inc],
        ])
    }

    #[test]
    fn round_robin_completes_all_ops() {
        let mut mem = SimMemory::new();
        let alg = RacyCounter::new(&mut mem);
        let exec = run(
            &alg,
            mem,
            &scenario(),
            &mut RoundRobin::default(),
            &CrashPlan::none(2),
        );
        assert_eq!(exec.history.complete_ops().len(), 3);
        assert!(exec.history.is_well_formed());
        // Round-robin interleaves the two incs: the race loses one update.
        let reads: Vec<_> = exec
            .history
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Return {
                    resp: CounterResp::Value(v),
                    ..
                } => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(reads, vec![1], "lost update under round-robin");
    }

    #[test]
    fn random_schedules_are_reproducible() {
        let run_once = |seed| {
            let mut mem = SimMemory::new();
            let alg = RacyCounter::new(&mut mem);
            run(
                &alg,
                mem,
                &scenario(),
                &mut RandomSched::seeded(seed),
                &CrashPlan::none(2),
            )
            .history
        };
        assert_eq!(run_once(42), run_once(42));
    }

    #[test]
    fn crash_leaves_operation_pending() {
        let mut mem = SimMemory::new();
        let alg = RacyCounter::new(&mut mem);
        // p1 crashes after its first step (mid-Inc).
        let exec = run(
            &alg,
            mem,
            &scenario(),
            &mut RoundRobin::default(),
            &CrashPlan::none(2).crash_after(1, 1),
        );
        assert_eq!(exec.history.pending_ops().len(), 1);
        assert_eq!(exec.history.pending_ops()[0].process, 1);
        assert_eq!(exec.history.complete_ops().len(), 2);
    }

    #[test]
    fn fixed_schedule_replays_exactly() {
        let mut mem = SimMemory::new();
        let alg = RacyCounter::new(&mut mem);
        // p0 runs its Inc fully, then p1, then p0's read: sequential.
        let exec = run(
            &alg,
            mem,
            &scenario(),
            &mut FixedSchedule::new(vec![0, 0, 1, 1, 0]),
            &CrashPlan::none(2),
        );
        let reads: Vec<_> = exec
            .history
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Return {
                    resp: CounterResp::Value(v),
                    ..
                } => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(reads, vec![2], "sequential schedule sees both increments");
    }

    #[test]
    fn step_counts_are_recorded() {
        let mut mem = SimMemory::new();
        let alg = RacyCounter::new(&mut mem);
        let exec = run(
            &alg,
            mem,
            &scenario(),
            &mut RoundRobin::default(),
            &CrashPlan::none(2),
        );
        assert_eq!(exec.max_op_steps(), 2); // Inc takes 2 steps
        assert_eq!(exec.proc_steps.iter().sum::<u64>(), 5);
    }
}
