//! Batch corpus driver for the strong-linearizability checker.
//!
//! The per-module tests certify or refute one hand-picked scenario at
//! a time; the ROADMAP's "batch `check_strong` tree exploration across
//! scenarios" direction is this module: a [`ScenarioCorpus`] enumerates
//! whole scenario *families* (symmetric races, fan-ins, towers),
//! deduplicates isomorphic members by canonical form, and runs the
//! checker across the lot under one shared node budget, producing a
//! machine-readable [`CorpusReport`] — the artifact the E23
//! re-certification test and the E25 checker-throughput bench consume.
//!
//! A corpus is typed by the specification its scenarios target, so one
//! report can accumulate runs over many object families
//! ([`ScenarioCorpus::run_into`] appends to a shared report): that is
//! how `tests/corpus.rs` re-runs every certificate and refutation the
//! repo has shipped (E1–E22) under the PR-4 engine in one pass.
//!
//! Budgets are cooperative: each scenario gets at most
//! [`CorpusOptions::per_scenario_limit`] search states *and* no more
//! than what is left of the report's global budget; a scenario that
//! runs out is recorded as [`CorpusVerdict::Bounded`] — never a panic,
//! never a silent skip.

use std::collections::HashSet;

use sl2_spec::Spec;

use crate::machine::Algorithm;
use crate::mem::SimMemory;
use crate::scenarios::{fan_in, symmetric, tower};
use crate::sched::Scenario;
use crate::strong::{check_strong_outcome, MemoMode, Outcome, SearchStats, StrongOptions};

/// Tuning knobs for a corpus run.
#[derive(Debug, Clone, Copy)]
pub struct CorpusOptions {
    /// Node cap per scenario (further capped by the report's remaining
    /// global budget).
    pub per_scenario_limit: usize,
    /// Memoization mode handed to every check (see
    /// [`MemoMode`]; the differential tests run the same corpus at
    /// `Canonical` and `Off` and assert identical verdicts).
    pub memo: MemoMode,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        CorpusOptions {
            per_scenario_limit: 8_000_000,
            memo: MemoMode::Canonical,
        }
    }
}

/// Per-scenario verdict in a corpus run (the serializable summary of
/// [`Outcome`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusVerdict {
    /// A prefix-closed linearization function exists.
    Certified,
    /// Refuted with a witness.
    Refuted,
    /// Budget ran out before a verdict.
    Bounded,
}

impl CorpusVerdict {
    /// Lower-case wire form used in the JSON report.
    pub fn as_str(&self) -> &'static str {
        match self {
            CorpusVerdict::Certified => "certified",
            CorpusVerdict::Refuted => "refuted",
            CorpusVerdict::Bounded => "bounded",
        }
    }
}

/// One scenario's row in a [`CorpusReport`].
#[derive(Debug, Clone)]
pub struct CorpusRecord {
    /// Scenario name (`family/member` by convention).
    pub name: String,
    /// Number of processes.
    pub processes: usize,
    /// Total operations across processes.
    pub total_ops: usize,
    /// The verdict.
    pub verdict: CorpusVerdict,
    /// Search states the check explored.
    pub nodes: usize,
    /// Steps in the refutation witness (0 unless refuted).
    pub witness_steps: usize,
    /// Search-shape counters from the check (memo hits/misses, max
    /// explicit-stack depth) — zeroed for rows that never entered the
    /// engine (e.g. budget exhausted before the run).
    pub stats: SearchStats,
}

impl CorpusRecord {
    /// Fraction of feasible entries the check answered from its memo
    /// table (see [`SearchStats::memo_hit_rate`]).
    pub fn memo_hit_rate(&self) -> f64 {
        self.stats.memo_hit_rate()
    }
}

/// Machine-readable result of one or more corpus runs sharing a node
/// budget. Serialized as JSON lines by [`CorpusReport::to_json_lines`]
/// (CI uploads it as the corpus-smoke artifact; `BENCH_PR4.json`
/// commits a snapshot).
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// Global node budget shared by every scenario run into this
    /// report.
    pub node_budget: usize,
    /// Nodes spent so far across all runs.
    pub nodes_spent: usize,
    /// Isomorphic scenarios dropped by corpus dedup (summed over the
    /// corpora run into this report).
    pub deduped: usize,
    /// One record per scenario, in run order.
    pub records: Vec<CorpusRecord>,
}

impl CorpusReport {
    /// An empty report with the given global node budget.
    pub fn new(node_budget: usize) -> Self {
        CorpusReport {
            node_budget,
            nodes_spent: 0,
            deduped: 0,
            records: Vec::new(),
        }
    }

    /// Budget still available to scenarios run into this report.
    pub fn remaining(&self) -> usize {
        self.node_budget.saturating_sub(self.nodes_spent)
    }

    /// Number of records with the given verdict.
    pub fn count(&self, verdict: CorpusVerdict) -> usize {
        self.records.iter().filter(|r| r.verdict == verdict).count()
    }

    /// Looks a record up by name.
    pub fn get(&self, name: &str) -> Option<&CorpusRecord> {
        self.records.iter().find(|r| r.name == name)
    }

    /// Serializes the report as JSON lines: one object per scenario
    /// plus a trailing summary object.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!(
                "{{\"corpus\":\"scenario\",\"name\":\"{}\",\"processes\":{},\
                 \"total_ops\":{},\"verdict\":\"{}\",\"nodes\":{},\
                 \"witness_steps\":{},\"memo_hits\":{},\"memo_misses\":{},\
                 \"memo_hit_rate\":{:.4},\"max_depth\":{}}}\n",
                json_escape(&r.name),
                r.processes,
                r.total_ops,
                r.verdict.as_str(),
                r.nodes,
                r.witness_steps,
                r.stats.memo_hits,
                r.stats.memo_misses,
                r.memo_hit_rate(),
                r.stats.max_depth,
            ));
        }
        out.push_str(&format!(
            "{{\"corpus\":\"summary\",\"scenarios\":{},\"certified\":{},\
             \"refuted\":{},\"bounded\":{},\"nodes_spent\":{},\
             \"node_budget\":{},\"deduped\":{}}}\n",
            self.records.len(),
            self.count(CorpusVerdict::Certified),
            self.count(CorpusVerdict::Refuted),
            self.count(CorpusVerdict::Bounded),
            self.nodes_spent,
            self.node_budget,
            self.deduped,
        ));
        out
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// A named, deduplicated batch of scenarios over one specification.
///
/// Dedup treats scenarios as equal up to process renaming (the
/// canonical form sorts the per-process operation lists), which is
/// sound exactly when the algorithm under check is process-symmetric —
/// every §3 construction is, since lanes are assigned *by* process
/// index and rename with it. For process-*asymmetric* algorithms
/// (e.g. the sharded counter, where which processes share a home
/// shard depends on their indices; or the single-writer snapshot,
/// where `Update{i}` must run on process `i`), build the corpus with
/// [`ScenarioCorpus::without_dedup`].
#[derive(Debug, Clone)]
pub struct ScenarioCorpus<S: Spec> {
    entries: Vec<(String, Scenario<S>)>,
    seen: HashSet<String>,
    dedup: bool,
    deduped: usize,
}

impl<S: Spec> Default for ScenarioCorpus<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Spec> ScenarioCorpus<S> {
    /// An empty corpus with canonical-form dedup on.
    pub fn new() -> Self {
        ScenarioCorpus {
            entries: Vec::new(),
            seen: HashSet::new(),
            dedup: true,
            deduped: 0,
        }
    }

    /// An empty corpus that keeps process-permuted duplicates (for
    /// process-asymmetric algorithms — see the type docs).
    pub fn without_dedup() -> Self {
        ScenarioCorpus {
            dedup: false,
            ..Self::new()
        }
    }

    /// Number of (distinct) scenarios in the corpus.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Isomorphic scenarios dropped so far.
    pub fn deduped(&self) -> usize {
        self.deduped
    }

    /// The scenarios, in insertion order.
    pub fn entries(&self) -> &[(String, Scenario<S>)] {
        &self.entries
    }

    /// Adds one scenario; returns `false` (and drops it) when dedup
    /// recognizes an isomorphic member already present.
    pub fn push(&mut self, name: impl Into<String>, scenario: Scenario<S>) -> bool {
        if self.dedup && !self.seen.insert(canonical_form(&scenario)) {
            self.deduped += 1;
            return false;
        }
        self.entries.push((name.into(), scenario));
        true
    }

    /// Family: `n`-process symmetric races for every `n` in
    /// `processes` and every length-`ops_per_process` operation list
    /// over `alphabet` (all processes run the same list). Returns how
    /// many distinct scenarios were added.
    pub fn symmetric_family(
        &mut self,
        prefix: &str,
        processes: &[usize],
        alphabet: &[S::Op],
        ops_per_process: usize,
    ) -> usize {
        let mut added = 0;
        for (i, list) in tuples(alphabet, ops_per_process).into_iter().enumerate() {
            for &n in processes {
                if self.push(
                    format!("{prefix}/sym_n{n}_{i}"),
                    symmetric::<S>(n, list.clone()),
                ) {
                    added += 1;
                }
            }
        }
        added
    }

    /// Family: fan-ins of `writers` single-op processes (every tuple
    /// over `writer_alphabet`) racing one reader process running
    /// `reader_ops`. Returns how many distinct scenarios were added.
    pub fn fan_in_family(
        &mut self,
        prefix: &str,
        writer_alphabet: &[S::Op],
        writers: usize,
        reader_ops: &[S::Op],
    ) -> usize {
        let mut added = 0;
        for (i, tuple) in tuples(writer_alphabet, writers).into_iter().enumerate() {
            if self.push(
                format!("{prefix}/fan_in_{i}"),
                fan_in::<S>(tuple, reader_ops.to_vec()),
            ) {
                added += 1;
            }
        }
        added
    }

    /// Family: towers — process 0 runs `block` cycled out to each
    /// height in `heights`, racing the fixed `rivals` processes. Deep
    /// towers are what the explicit-stack engine exists for (and, past
    /// 1024 operations, what the widened [`crate::OpId`] packing
    /// exists for). Returns how many distinct scenarios were added.
    pub fn tower_family(
        &mut self,
        prefix: &str,
        block: &[S::Op],
        heights: &[usize],
        rivals: &[Vec<S::Op>],
    ) -> usize {
        let mut added = 0;
        for &h in heights {
            if self.push(format!("{prefix}/tower_h{h}"), tower::<S>(block, h, rivals)) {
                added += 1;
            }
        }
        added
    }

    /// Runs the whole corpus against `make`'s algorithm (fresh memory
    /// per scenario), appending one record per scenario to `report`
    /// and drawing on its shared node budget.
    pub fn run_into<A, F>(&self, make: F, options: &CorpusOptions, report: &mut CorpusReport)
    where
        A: Algorithm<Spec = S>,
        F: Fn(&mut SimMemory) -> A,
    {
        for (name, scenario) in &self.entries {
            let limit = options.per_scenario_limit.min(report.remaining());
            let (verdict, nodes, witness_steps, stats) = if limit == 0 {
                (CorpusVerdict::Bounded, 0, 0, SearchStats::default())
            } else {
                let mut mem = SimMemory::new();
                let alg = make(&mut mem);
                let out = check_strong_outcome(
                    &alg,
                    mem,
                    scenario,
                    StrongOptions {
                        node_limit: limit,
                        memo: options.memo,
                    },
                );
                match out.outcome {
                    Outcome::Certified => (CorpusVerdict::Certified, out.nodes, 0, out.stats),
                    Outcome::Refuted(w) => {
                        (CorpusVerdict::Refuted, out.nodes, w.path.len(), out.stats)
                    }
                    Outcome::Bounded => (CorpusVerdict::Bounded, out.nodes, 0, out.stats),
                }
            };
            report.nodes_spent += nodes;
            report.records.push(CorpusRecord {
                name: name.clone(),
                processes: scenario.processes(),
                total_ops: scenario.total_ops(),
                verdict,
                nodes,
                witness_steps,
                stats,
            });
        }
        report.deduped += self.deduped;
    }

    /// [`ScenarioCorpus::run_into`] with a fresh report of its own.
    pub fn run<A, F>(&self, make: F, options: &CorpusOptions, node_budget: usize) -> CorpusReport
    where
        A: Algorithm<Spec = S>,
        F: Fn(&mut SimMemory) -> A,
    {
        let mut report = CorpusReport::new(node_budget);
        self.run_into(make, options, &mut report);
        report
    }

    /// Parallel [`ScenarioCorpus::run_into`]: corpus records are
    /// independent (each check builds its own algorithm in its own
    /// fresh memory), so they split over `threads` OS workers. The
    /// report keeps **entry order** regardless of completion order,
    /// and the global node budget is enforced by **reservation**: a
    /// worker atomically withdraws `per_scenario_limit.min(remaining)`
    /// tokens before its check, runs under that limit, and refunds
    /// what the check did not use — so concurrent workers can never
    /// collectively overdraw the budget (the serial driver's
    /// invariant, preserved up to the engine's existing +1-node
    /// overshoot on `Bounded` outcomes).
    ///
    /// Determinism: reservations can transiently hold up to
    /// `threads × per_scenario_limit` of the budget, so give the
    /// report at least that much headroom — then every scenario
    /// decides within its own limit, verdicts are independent of
    /// worker scheduling, and the report equals the serial driver's
    /// record for record (the shipped corpora size their budgets this
    /// way and E23 asserts zero `Bounded` records). Under genuine
    /// budget starvation, *which* scenarios land `Bounded` depends on
    /// reservation order, which worker scheduling controls — only
    /// those starved records may differ from the serial driver's.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_parallel_into<A, F>(
        &self,
        make: F,
        options: &CorpusOptions,
        threads: usize,
        report: &mut CorpusReport,
    ) where
        A: Algorithm<Spec = S>,
        F: Fn(&mut SimMemory) -> A + Sync,
        S::Op: Sync,
    {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        assert!(threads > 0, "the parallel driver needs at least one worker");
        let next = AtomicUsize::new(0);
        let remaining = AtomicUsize::new(report.remaining());
        let slots: Vec<Mutex<Option<CorpusRecord>>> =
            (0..self.entries.len()).map(|_| Mutex::new(None)).collect();
        let make = &make;
        let workers = threads.min(self.entries.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    let Some((name, scenario)) = self.entries.get(i) else {
                        break;
                    };
                    // Reserve the scenario's node allowance up front
                    // (atomic withdraw), refund the unused part after.
                    let mut limit = 0usize;
                    let _ = remaining.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| {
                        limit = options.per_scenario_limit.min(r);
                        Some(r - limit)
                    });
                    let (verdict, nodes, witness_steps, stats) = if limit == 0 {
                        (CorpusVerdict::Bounded, 0, 0, SearchStats::default())
                    } else {
                        let mut mem = SimMemory::new();
                        let alg = make(&mut mem);
                        let out = check_strong_outcome(
                            &alg,
                            mem,
                            scenario,
                            StrongOptions {
                                node_limit: limit,
                                memo: options.memo,
                            },
                        );
                        match out.outcome {
                            Outcome::Certified => {
                                (CorpusVerdict::Certified, out.nodes, 0, out.stats)
                            }
                            Outcome::Refuted(w) => {
                                (CorpusVerdict::Refuted, out.nodes, w.path.len(), out.stats)
                            }
                            Outcome::Bounded => (CorpusVerdict::Bounded, out.nodes, 0, out.stats),
                        }
                    };
                    remaining.fetch_add(limit.saturating_sub(nodes), Ordering::SeqCst);
                    *slots[i].lock().expect("record slot never poisoned") = Some(CorpusRecord {
                        name: name.clone(),
                        processes: scenario.processes(),
                        total_ops: scenario.total_ops(),
                        verdict,
                        nodes,
                        witness_steps,
                        stats,
                    });
                });
            }
        });
        for slot in slots {
            let rec = slot
                .into_inner()
                .expect("record slot never poisoned")
                .expect("every claimed entry writes its record");
            report.nodes_spent += rec.nodes;
            report.records.push(rec);
        }
        report.deduped += self.deduped;
    }

    /// [`ScenarioCorpus::run_parallel_into`] with a fresh report of
    /// its own.
    pub fn run_parallel<A, F>(
        &self,
        make: F,
        options: &CorpusOptions,
        threads: usize,
        node_budget: usize,
    ) -> CorpusReport
    where
        A: Algorithm<Spec = S>,
        F: Fn(&mut SimMemory) -> A + Sync,
        S::Op: Sync,
    {
        let mut report = CorpusReport::new(node_budget);
        self.run_parallel_into(make, options, threads, &mut report);
        report
    }
}

/// Process-renaming-invariant canonical form: the sorted per-process
/// operation lists, rendered.
fn canonical_form<S: Spec>(scenario: &Scenario<S>) -> String {
    let mut lists: Vec<String> = scenario.ops.iter().map(|l| format!("{l:?}")).collect();
    lists.sort();
    lists.join(" | ")
}

/// Every length-`len` tuple over `alphabet`, in lexicographic order.
fn tuples<T: Clone>(alphabet: &[T], len: usize) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = vec![Vec::new()];
    for _ in 0..len {
        out = out
            .into_iter()
            .flat_map(|prefix| {
                alphabet.iter().map(move |a| {
                    let mut next = prefix.clone();
                    next.push(a.clone());
                    next
                })
            })
            .collect();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{OpMachine, Step};
    use crate::mem::Cell;
    use sl2_spec::max_register::{MaxOp, MaxRegisterSpec, MaxResp};

    #[derive(Debug, Clone)]
    struct AtomicMax {
        loc: crate::mem::Loc,
    }

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum AtomicMaxMachine {
        Write(crate::mem::Loc, u64),
        Read(crate::mem::Loc),
    }

    impl OpMachine for AtomicMaxMachine {
        type Resp = MaxResp;
        fn step(&mut self, mem: &mut SimMemory) -> Step<MaxResp> {
            match *self {
                AtomicMaxMachine::Write(loc, v) => {
                    mem.max_write(loc, v);
                    Step::Ready(MaxResp::Ok)
                }
                AtomicMaxMachine::Read(loc) => Step::Ready(MaxResp::Value(mem.max_read(loc))),
            }
        }
    }

    impl Algorithm for AtomicMax {
        type Spec = MaxRegisterSpec;
        type Machine = AtomicMaxMachine;
        fn spec(&self) -> MaxRegisterSpec {
            MaxRegisterSpec
        }
        fn machine(&self, _p: usize, op: &MaxOp) -> AtomicMaxMachine {
            match op {
                MaxOp::Write(v) => AtomicMaxMachine::Write(self.loc, *v),
                MaxOp::Read => AtomicMaxMachine::Read(self.loc),
            }
        }
    }

    fn make(mem: &mut SimMemory) -> AtomicMax {
        AtomicMax {
            loc: mem.alloc(Cell::AMaxReg(0)),
        }
    }

    #[test]
    fn dedup_drops_process_permutations() {
        let mut corpus = ScenarioCorpus::<MaxRegisterSpec>::new();
        assert!(corpus.push(
            "a",
            Scenario::new(vec![vec![MaxOp::Write(1)], vec![MaxOp::Read]])
        ));
        // The same scenario with the processes swapped is isomorphic.
        assert!(!corpus.push(
            "b",
            Scenario::new(vec![vec![MaxOp::Read], vec![MaxOp::Write(1)]])
        ));
        assert_eq!(corpus.len(), 1);
        assert_eq!(corpus.deduped(), 1);

        let mut keep_all = ScenarioCorpus::<MaxRegisterSpec>::without_dedup();
        keep_all.push(
            "a",
            Scenario::new(vec![vec![MaxOp::Write(1)], vec![MaxOp::Read]]),
        );
        keep_all.push(
            "b",
            Scenario::new(vec![vec![MaxOp::Read], vec![MaxOp::Write(1)]]),
        );
        assert_eq!(keep_all.len(), 2);
    }

    #[test]
    fn families_enumerate_and_name_members() {
        let mut corpus = ScenarioCorpus::<MaxRegisterSpec>::new();
        let alphabet = [MaxOp::Write(1), MaxOp::Read];
        let added = corpus.symmetric_family("max", &[2], &alphabet, 2);
        assert_eq!(added, 4, "2^2 lists over a 2-op alphabet");
        corpus.fan_in_family("max", &alphabet, 2, &[MaxOp::Read]);
        corpus.tower_family("max", &alphabet, &[4, 8], &[vec![MaxOp::Read]]);
        assert!(corpus
            .entries()
            .iter()
            .any(|(name, _)| name == "max/tower_h8"));
        // fan_in over {Write(1), Read} × 2 writers: 4 tuples, but
        // (Write,Read) and (Read,Write) are process-permutations.
        assert_eq!(corpus.deduped(), 1);
    }

    #[test]
    fn run_reports_verdicts_and_respects_the_budget() {
        let mut corpus = ScenarioCorpus::<MaxRegisterSpec>::new();
        corpus.symmetric_family("max", &[2], &[MaxOp::Write(1), MaxOp::Read], 2);
        let report = corpus.run(make, &CorpusOptions::default(), 1_000_000);
        assert_eq!(report.records.len(), corpus.len());
        assert_eq!(report.count(CorpusVerdict::Certified), corpus.len());
        assert!(report.nodes_spent > 0 && report.nodes_spent <= report.node_budget);

        // A starved budget yields Bounded records, not panics.
        let starved = corpus.run(make, &CorpusOptions::default(), 1);
        assert!(starved.count(CorpusVerdict::Bounded) >= corpus.len() - 1);
    }

    #[test]
    fn parallel_driver_matches_serial_record_for_record() {
        let mut corpus = ScenarioCorpus::<MaxRegisterSpec>::new();
        corpus.symmetric_family("max", &[2, 3], &[MaxOp::Write(1), MaxOp::Read], 2);
        corpus.fan_in_family("max", &[MaxOp::Write(1), MaxOp::Read], 2, &[MaxOp::Read]);
        // Budget ≥ threads × per_scenario_limit: reservations never
        // starve a concurrent worker, so parallel ≡ serial exactly.
        let budget = 4 * CorpusOptions::default().per_scenario_limit;
        let serial = corpus.run(make, &CorpusOptions::default(), budget);
        for threads in [1usize, 2, 4] {
            let parallel = corpus.run_parallel(make, &CorpusOptions::default(), threads, budget);
            assert_eq!(parallel.records.len(), serial.records.len());
            for (a, b) in parallel.records.iter().zip(&serial.records) {
                assert_eq!(a.name, b.name, "entry order must be preserved");
                assert_eq!(a.verdict, b.verdict, "{}: parallel vs serial", a.name);
                assert_eq!(
                    a.nodes, b.nodes,
                    "{}: node counts are deterministic",
                    a.name
                );
            }
            assert_eq!(parallel.nodes_spent, serial.nodes_spent);
            assert_eq!(parallel.deduped, serial.deduped);
        }
    }

    #[test]
    fn parallel_driver_respects_a_starved_budget() {
        let mut corpus = ScenarioCorpus::<MaxRegisterSpec>::new();
        corpus.symmetric_family("max", &[2], &[MaxOp::Write(1), MaxOp::Read], 2);
        let report = corpus.run_parallel(make, &CorpusOptions::default(), 4, 1);
        assert_eq!(report.records.len(), corpus.len());
        // Reservation-based budgeting: exactly one worker can withdraw
        // the single node; everyone else reserves zero and lands
        // Bounded without spending anything.
        assert!(
            report.count(CorpusVerdict::Bounded) >= corpus.len() - 1,
            "a one-node budget must bound nearly everything: {:?}",
            report.records
        );
        assert!(
            report.nodes_spent <= 2,
            "workers must not collectively overdraw the budget \
             (engine overshoot on a Bounded run is at most one node): {}",
            report.nodes_spent
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn parallel_driver_rejects_zero_workers() {
        let corpus = ScenarioCorpus::<MaxRegisterSpec>::new();
        let _ = corpus.run_parallel(make, &CorpusOptions::default(), 0, 1_000);
    }

    #[test]
    fn json_lines_carry_every_record_and_a_summary() {
        let mut corpus = ScenarioCorpus::<MaxRegisterSpec>::new();
        corpus.push(
            "max/solo",
            Scenario::new(vec![vec![MaxOp::Write(1), MaxOp::Read]]),
        );
        let report = corpus.run(make, &CorpusOptions::default(), 100_000);
        let json = report.to_json_lines();
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"max/solo\""));
        assert!(lines[0].contains("\"verdict\":\"certified\""));
        assert!(lines[1].contains("\"corpus\":\"summary\""));
        assert!(lines[1].contains("\"certified\":1"));
    }
}
