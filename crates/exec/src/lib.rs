//! Deterministic interleaving substrate for the PODC 2024 reproduction
//! *Strong Linearizability using Primitives with Consensus Number 2*.
//!
//! This crate is the executable form of the paper's system model
//! (Section 2) and of its correctness conditions:
//!
//! * [`mem::SimMemory`] — simulated shared memory of typed base-object
//!   cells; every cell operation is one atomic step. Clonable (that is
//!   what lets Algorithm B of Lemma 12 collect base-object states and
//!   simulate locally) and hashable (checker memoization).
//! * [`machine`] — [`machine::OpMachine`] step machines (one shared
//!   memory operation per step) and the [`machine::Algorithm`] factory
//!   trait implemented by every construction in `sl2-core`.
//! * [`sched`] — schedulers (round-robin, seeded-random, scripted,
//!   crash plans) and the execution [`sched::run`]ner producing
//!   [`history::History`]s.
//! * [`lin`] — a linearizability checker supporting nondeterministic
//!   specifications (needed for the relaxed queues/stacks of §5).
//! * [`strong`] — the strong-linearizability checker: an AND/OR search
//!   for a prefix-closed linearization function over the execution tree
//!   of a bounded scenario, with sound (equality-checked) memoization,
//!   reporting a replayable counterexample branch on failure.
//! * [`corpus`] — the batch driver: scenario-family enumeration with
//!   isomorphism dedup, shared node budgets, and machine-readable
//!   [`corpus::CorpusReport`]s (the E23 re-certification artifact).
//! * [`record`] — the threaded-history recorder: invoke/response logs
//!   from real threaded runs of the *production* objects (including
//!   chaos-faulted runs), merged on a global stamp and adjudicated by
//!   [`lin`] — crashed operations stay pending forever.
//!
//! # Example: checking an atomic cell is strongly linearizable
//!
//! ```
//! use sl2_exec::mem::{Cell, SimMemory};
//!
//! let mut mem = SimMemory::new();
//! let ts = mem.alloc(Cell::Tas(false));
//! assert_eq!(mem.tas(ts), 0);
//! assert_eq!(mem.tas(ts), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corpus;
pub mod history;
pub mod lin;
pub mod machine;
pub mod mem;
pub mod record;
pub mod scenarios;
pub mod sched;
pub mod strong;

pub use corpus::{CorpusOptions, CorpusRecord, CorpusReport, CorpusVerdict, ScenarioCorpus};
pub use history::{History, OpId};
pub use lin::{is_linearizable, linearize};
pub use machine::{Algorithm, OpMachine, Step};
pub use mem::{ArrayLoc, Cell, Loc, SimMemory, Word};
pub use record::{history_from_spans, RecordReport, RecordRun, Recorder};
pub use scenarios::{fan_in, symmetric, tower};
pub use sched::{BurstSched, CrashPlan, Execution, RandomSched, RoundRobin, Scenario, Scheduler};
pub use strong::{
    check_strong, check_strong_outcome, check_strong_with, for_each_history, validate_witness,
    MemoMode, Outcome, SearchStats, StrongOptions, StrongOutcome, StrongReport, Witness,
};
