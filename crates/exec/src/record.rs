//! Threaded-history recorder: invoke/response logs from *real*
//! threaded runs of the production objects, merged on a global order
//! stamp into a checkable [`History`] — the lincheck-shaped bridge
//! between the simulated step machines (which `check_strong` explores
//! exhaustively) and the code that actually ships.
//!
//! The division of labour with [`crate::strong`] is deliberate. The
//! checker adjudicates *all* interleavings of a bounded scenario, but
//! only of the checkable twins; the recorder observes *one*
//! interleaving per run, but of the production object itself, under
//! real threads, real contention, and (with the `sl2_chaos` hooks
//! armed) real injected faults. A recorded history that fails
//! [`crate::lin::is_linearizable`] against a spec the twins certify is
//! a twin-fidelity bug; a recorded history that *passes* a spec the
//! twins refute is expected (one run cannot witness every race) — the
//! differential tests in `tests/recorder.rs` pin both directions.
//!
//! # Crash-stop and the pending-forever convention
//!
//! [`Recorder::run_op`] logs the invocation *before* running the
//! operation body. If the body never returns — a chaos crash-stop
//! parks the thread and later unwinds it past the closure — the
//! response is never logged and the merged history carries the
//! operation as *pending*: the linearizability checker then decides
//! whether to take its effect or discard it, exactly the freedom the
//! crash-stop model grants the adversary. Survivor threads' completed
//! operations must still linearize around the hole.
//!
//! # Order stamps
//!
//! Every log entry takes one ticket from a global atomic clock —
//! invocations immediately before the body runs, responses immediately
//! after it returns. The merged event sequence is therefore consistent
//! with real-time order: if op A's response ticket precedes op B's
//! invocation ticket, A really returned before B was invoked. (The
//! converse slack — a ticket taken but logged late — only ever
//! *shrinks* recorded precedence, which is the sound direction: the
//! checker sees fewer order constraints than real time imposed, never
//! more.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sl2_spec::Spec;
use sl2_trace::bridge::SpanRecord;

use crate::corpus::json_escape;
use crate::history::{History, OpId};
use crate::lin::is_linearizable;

/// Per-process operation-id stride: the `k`-th operation recorded by
/// process `p` gets [`OpId`]`(p * OP_STRIDE + k)`. The linearizability
/// checker caps histories at 128 operations, far below the stride.
const OP_STRIDE: usize = 1 << 20;

/// One logged event, before the merge.
#[derive(Debug)]
enum Rec<S: Spec> {
    Invoke(S::Op),
    Return(S::Resp),
}

/// One process's stamped event log.
type ProcessLog<S> = Mutex<Vec<(u64, Rec<S>)>>;

/// Records invoke/response events from concurrent threads exercising
/// a production object, then merges them into a [`History`] for the
/// linearizability checker.
///
/// ```
/// use sl2_exec::record::Recorder;
/// use sl2_spec::counters::{CounterOp, CounterResp, CounterSpec};
/// use sl2_exec::is_linearizable;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let counter = AtomicU64::new(0);
/// let rec = Recorder::<CounterSpec>::new(2);
/// std::thread::scope(|s| {
///     s.spawn(|| {
///         rec.run_op(0, CounterOp::Inc, || {
///             counter.fetch_add(1, Ordering::Relaxed);
///             CounterResp::Ok
///         });
///     });
///     s.spawn(|| {
///         rec.run_op(1, CounterOp::Read, || {
///             CounterResp::Value(counter.load(Ordering::Relaxed))
///         });
///     });
/// });
/// let history = rec.into_history();
/// assert!(is_linearizable(&CounterSpec, &history));
/// ```
#[derive(Debug)]
pub struct Recorder<S: Spec> {
    clock: AtomicU64,
    logs: Vec<ProcessLog<S>>,
}

impl<S: Spec> Recorder<S> {
    /// A recorder for `processes` threads (one log per process; each
    /// process must run its operations sequentially, the usual
    /// single-thread-per-process discipline).
    pub fn new(processes: usize) -> Self {
        Recorder {
            clock: AtomicU64::new(0),
            logs: (0..processes).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Number of per-process logs.
    pub fn processes(&self) -> usize {
        self.logs.len()
    }

    fn log(&self, process: usize, rec: Rec<S>) {
        let stamp = self.clock.fetch_add(1, Ordering::AcqRel);
        self.logs[process]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((stamp, rec));
    }

    /// Runs `body` as operation `op` of `process`, logging the
    /// invocation before and the response after. If `body` unwinds
    /// (an injected panic, or a chaos crash-stop resumed past the
    /// closure), the operation stays **pending** in the merged
    /// history — the crash-stop convention.
    pub fn run_op(&self, process: usize, op: S::Op, body: impl FnOnce() -> S::Resp) -> S::Resp {
        self.log(process, Rec::Invoke(op));
        let resp = body();
        self.log(process, Rec::Return(resp.clone()));
        resp
    }

    /// Merges the per-process logs into one [`History`], ordered by
    /// the global stamps. Responses pair with their process's oldest
    /// unanswered invocation (per-process operations are sequential);
    /// unanswered invocations come out as pending operations.
    pub fn into_history(self) -> History<S> {
        let mut events: Vec<(u64, Option<Event<S>>)> = Vec::new();
        for (p, log) in self.logs.into_iter().enumerate() {
            let log = log.into_inner().unwrap_or_else(|e| e.into_inner());
            let mut next = 0usize;
            let mut open: Option<OpId> = None;
            for (stamp, rec) in log {
                match rec {
                    Rec::Invoke(op) => {
                        assert!(open.is_none(), "process {p}: overlapping own operations");
                        assert!(next < OP_STRIDE, "process {p}: too many operations");
                        let id = OpId(p * OP_STRIDE + next);
                        next += 1;
                        open = Some(id);
                        events.push((stamp, Some(Event::Invoke { id, process: p, op })));
                    }
                    Rec::Return(resp) => {
                        let id = open.take().expect("response without an invocation");
                        events.push((stamp, Some(Event::Return { id, resp })));
                    }
                }
            }
        }
        events.sort_by_key(|(stamp, _)| *stamp);
        let mut history = History::new();
        for (_, ev) in &mut events {
            match ev.take().expect("event taken twice") {
                Event::Invoke { id, process, op } => history.invoke(id, process, op),
                Event::Return { id, resp } => history.ret(id, resp),
            }
        }
        history
    }
}

/// Local twin of [`crate::history::Event`] used only while merging
/// (the history's own event type is append-only behind its API).
#[derive(Debug)]
enum Event<S: Spec> {
    Invoke { id: OpId, process: usize, op: S::Op },
    Return { id: OpId, resp: S::Resp },
}

/// Builds a [`History`] from bridged trace spans
/// (`sl2_trace::bridge::request_spans`): each span becomes one
/// operation of its dense process — invoked at its begin stamp,
/// returned at its end stamp, or **pending forever** if the span
/// never completed (the crash-stop convention, exactly as
/// [`Recorder::run_op`] treats an unwound body).
///
/// `decode_op` translates a span's encoded operation word into the
/// spec's op (return `None` to skip spans outside the spec's
/// vocabulary); `decode_resp` translates the response word (`None`
/// demotes the span to pending — dropping a response only removes
/// constraints, which is the sound direction).
///
/// Soundness (DESIGN.md §13): span Begin is emitted *before* the
/// request is published and End *after* its response is observed, so
/// every bridged interval contains the real one. Stamp slack
/// therefore only shrinks recorded precedence: a refutation of the
/// bridged history refutes the real run, while a certification is
/// exact only modulo that slack.
pub fn history_from_spans<S, FO, FR>(
    spans: &[SpanRecord],
    mut decode_op: FO,
    mut decode_resp: FR,
) -> History<S>
where
    S: Spec,
    FO: FnMut(&SpanRecord) -> Option<S::Op>,
    FR: FnMut(&SpanRecord, u64) -> Option<S::Resp>,
{
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    ordered.sort_by_key(|s| s.invoke_stamp);
    let mut next: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut events: Vec<(u64, Option<Event<S>>)> = Vec::new();
    for s in ordered {
        let Some(op) = decode_op(s) else { continue };
        let k = next.entry(s.process).or_insert(0);
        assert!(*k < OP_STRIDE, "process {}: too many operations", s.process);
        let id = OpId(s.process * OP_STRIDE + *k);
        *k += 1;
        events.push((
            s.invoke_stamp,
            Some(Event::Invoke {
                id,
                process: s.process,
                op,
            }),
        ));
        if let Some((stamp, word)) = s.response {
            if let Some(resp) = decode_resp(s, word) {
                events.push((stamp, Some(Event::Return { id, resp })));
            }
        }
    }
    events.sort_by_key(|(stamp, _)| *stamp);
    let mut history = History::new();
    for (_, ev) in &mut events {
        match ev.take().expect("event taken twice") {
            Event::Invoke { id, process, op } => history.invoke(id, process, op),
            Event::Return { id, resp } => history.ret(id, resp),
        }
    }
    history
}

/// One adjudicated recorded run in a [`RecordReport`].
#[derive(Debug, Clone)]
pub struct RecordRun {
    /// Run name (`object/scenario` by convention).
    pub name: String,
    /// Specification label the history was checked against.
    pub spec: String,
    /// Completed operations in the recorded history.
    pub complete_ops: usize,
    /// Pending (crashed or unfinished) operations.
    pub pending_ops: usize,
    /// Whether the history linearizes against the spec.
    pub linearizable: bool,
}

/// Machine-readable result of a batch of recorded runs, serialized as
/// JSON lines next to the corpus report (CI uploads it as the
/// recorder artifact; `SL2_RECORDER_JSON` names the path).
#[derive(Debug, Clone, Default)]
pub struct RecordReport {
    /// One row per adjudicated run, in run order.
    pub runs: Vec<RecordRun>,
}

impl RecordReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks `history` against `spec`, records the verdict under
    /// `name`, and returns it (true = linearizable).
    pub fn adjudicate<S: Spec>(
        &mut self,
        name: &str,
        spec_label: &str,
        spec: &S,
        history: &History<S>,
    ) -> bool {
        let linearizable = is_linearizable(spec, history);
        self.runs.push(RecordRun {
            name: name.to_string(),
            spec: spec_label.to_string(),
            complete_ops: history.complete_ops().len(),
            pending_ops: history.pending_ops().len(),
            linearizable,
        });
        linearizable
    }

    /// Number of runs that linearized.
    pub fn passed(&self) -> usize {
        self.runs.iter().filter(|r| r.linearizable).count()
    }

    /// Serializes the report as JSON lines: one object per run plus a
    /// trailing summary object.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.runs {
            out.push_str(&format!(
                "{{\"recorder\":\"run\",\"name\":\"{}\",\"spec\":\"{}\",\
                 \"complete_ops\":{},\"pending_ops\":{},\"linearizable\":{}}}\n",
                json_escape(&r.name),
                json_escape(&r.spec),
                r.complete_ops,
                r.pending_ops,
                r.linearizable,
            ));
        }
        out.push_str(&format!(
            "{{\"recorder\":\"summary\",\"runs\":{},\"linearizable\":{},\
             \"violations\":{}}}\n",
            self.runs.len(),
            self.passed(),
            self.runs.len() - self.passed(),
        ));
        out
    }

    /// Writes the JSON-lines report to the path named by the
    /// `SL2_RECORDER_JSON` environment variable, if set (the CI
    /// artifact hook, mirroring `SL2_CORPUS_JSON`).
    pub fn write_env(&self) {
        if let Ok(path) = std::env::var("SL2_RECORDER_JSON") {
            std::fs::write(&path, self.to_json_lines())
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl2_spec::counters::{CounterOp, CounterResp, CounterSpec};

    #[test]
    fn sequential_runs_merge_into_a_well_formed_history() {
        let rec = Recorder::<CounterSpec>::new(2);
        rec.run_op(0, CounterOp::Inc, || CounterResp::Ok);
        rec.run_op(1, CounterOp::Inc, || CounterResp::Ok);
        rec.run_op(0, CounterOp::Read, || CounterResp::Value(2));
        let h = rec.into_history();
        assert!(h.is_well_formed());
        assert_eq!(h.complete_ops().len(), 3);
        assert_eq!(h.pending_ops().len(), 0);
        assert!(is_linearizable(&CounterSpec, &h));
    }

    #[test]
    fn stamps_preserve_real_time_precedence() {
        // Sequential ops on different processes: the merge must keep
        // their order (a read of 0 after an inc completed is a
        // violation, and the history must expose it as one).
        let rec = Recorder::<CounterSpec>::new(2);
        rec.run_op(0, CounterOp::Inc, || CounterResp::Ok);
        rec.run_op(1, CounterOp::Read, || CounterResp::Value(0));
        let h = rec.into_history();
        assert!(h.is_well_formed());
        assert!(
            !is_linearizable(&CounterSpec, &h),
            "stale read after a completed inc must refute"
        );
    }

    #[test]
    fn an_unwound_body_leaves_the_op_pending_forever() {
        let rec = Recorder::<CounterSpec>::new(2);
        rec.run_op(0, CounterOp::Inc, || CounterResp::Ok);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rec.run_op(1, CounterOp::Inc, || panic!("injected"));
        }));
        // The crashed inc is pending: the checker may take its effect
        // or discard it, so reads of both 1 and 2 linearize.
        let rec2 = Recorder::<CounterSpec>::new(2);
        rec2.run_op(0, CounterOp::Inc, || CounterResp::Ok);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rec2.run_op(1, CounterOp::Inc, || panic!("injected"));
        }));
        rec2.run_op(0, CounterOp::Read, || CounterResp::Value(2));
        let h = rec.into_history();
        assert!(h.is_well_formed());
        assert_eq!(h.complete_ops().len(), 1);
        assert_eq!(h.pending_ops().len(), 1);
        assert!(is_linearizable(&CounterSpec, &h));
        let h2 = rec2.into_history();
        assert_eq!(h2.pending_ops().len(), 1);
        assert!(
            is_linearizable(&CounterSpec, &h2),
            "a read of 2 forces the checker to take the pending inc"
        );
    }

    #[test]
    fn report_serializes_runs_and_summary() {
        let rec = Recorder::<CounterSpec>::new(1);
        rec.run_op(0, CounterOp::Inc, || CounterResp::Ok);
        let h = rec.into_history();
        let mut report = RecordReport::new();
        assert!(report.adjudicate("counter/solo", "exact", &CounterSpec, &h));
        let json = report.to_json_lines();
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"counter/solo\""));
        assert!(lines[0].contains("\"linearizable\":true"));
        assert!(lines[1].contains("\"recorder\":\"summary\""));
        assert!(lines[1].contains("\"violations\":0"));
    }
}
