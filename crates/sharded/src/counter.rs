//! Process-striped counters over per-shard wide fetch&add registers,
//! production form: the exact [`ShardedFetchInc`] and the
//! [`RelaxedShardedCounter`] whose read meets only the §5-style
//! [`sl2_spec::relaxed::LaggingCounterSpec`].
//!
//! Increments are the cheap, wait-free part of sharding a counter:
//! process `p` sets the next unary bit of its own lane in shard
//! `p mod S` with one fetch&add — a fixed linearization point, no
//! cross-shard coordination, and (with padding) no shared cache line
//! between stripes. What sharding *gives up* is the read:
//!
//! * the **exact** read collects per-shard counts until two
//!   consecutive collects agree — exact and linearizable (stable
//!   collects pin every monotone shard over a common instant), but
//!   lock-free rather than wait-free;
//! * the **naive one-pass sum** is wait-free and can miss an increment
//!   that completed *before* another increment it counts. Each single
//!   sum is still linearizable (the landed count passes through the
//!   returned value somewhere inside the sweep), but the object is
//!   **not strongly linearizable** against the exact counter — no
//!   linearization choice survives every future, and the checker
//!   produces the `Witness` in `tests/non_sl_witnesses.rs`. The
//!   specification it meets *strongly* is the k-lagging counter.
//!
//! Global dense tickets are likewise exactly what striping gives up:
//! [`ShardedFetchInc::inc`] returns a [`ShardTicket`] — unique and
//! per-shard-dense, but not globally ordered. A globally dense
//! fetch&increment needs the single-register [`WideFetchInc`] route
//! (or Theorem 9's test&set array).
//!
//! [`WideFetchInc`]: sl2_core::algos::fetch_inc::WideFetchInc

use sl2_bignum::BigNat;
use sl2_bignum::Layout;
use sl2_bignum::WideFaa;
use sl2_primitives::{CachePadded, Sharding};

/// A unique increment receipt: shard-dense, not globally ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardTicket {
    /// Shard the increment landed in.
    pub shard: usize,
    /// 1-based position among that shard's increments.
    pub seq: u64,
}

/// Exact sharded counter: per-process-striped unary increments with a
/// stable-collect exact read.
///
/// # Examples
///
/// ```
/// use sl2_sharded::ShardedFetchInc;
///
/// let c = ShardedFetchInc::new(4, 2);
/// let t0 = c.inc(0); // shard 0
/// let t1 = c.inc(1); // shard 1
/// assert_ne!(t0, t1);
/// assert_eq!(c.read(), 2);
/// ```
#[derive(Debug)]
pub struct ShardedFetchInc {
    shards: Box<[CachePadded<WideFaa>]>,
    layout: Layout,
    sharding: Sharding,
}

impl ShardedFetchInc {
    /// Creates a counter shared by `n` processes over `shards` stripes,
    /// with value 0 (unlike the 1-based §4.2 fetch&increment: this is a
    /// counter, not a ticket dispenser).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `shards == 0`, or `shards` exceeds
    /// [`sl2_primitives::MAX_SHARDS`].
    pub fn new(n: usize, shards: usize) -> Self {
        let sharding = Sharding::new(shards);
        ShardedFetchInc {
            shards: (0..shards)
                .map(|_| CachePadded::new(WideFaa::new()))
                .collect(),
            layout: Layout::new(n),
            sharding,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.sharding.shards()
    }

    /// Number of processes sharing the counter.
    pub fn processes(&self) -> usize {
        self.layout.processes()
    }

    /// Increments by one on behalf of `process`; returns the unique
    /// receipt. Wait-free: one own-lane probe plus one fetch&add on the
    /// home shard (only `process` writes that lane, so the probed
    /// length is stable across the two steps).
    pub fn inc(&self, process: usize) -> ShardTicket {
        let shard = self.sharding.of_process(process);
        sl2_obs::count(crate::probes::shard_ops(shard));
        let reg = &self.shards[shard];
        let mine = reg.probe_unary(&self.layout, process);
        // Chaos: the probe-then-adjust window. A crash-stop between
        // the own-lane probe and the landing fetch&add leaves the op
        // pending forever — legal for survivors' linearizability (the
        // increment never landed), exercised by the recorder suite.
        sl2_chaos::point("sharded.inc.pre_add");
        let delta = BigNat::pow2(self.layout.bit(process, mine as usize));
        let seq = reg.fetch_add_with(&delta, |old| old.count_ones() as u64 + 1);
        ShardTicket { shard, seq }
    }

    /// Count of increments landed in one shard (a single probe —
    /// atomic at shard granularity).
    pub fn shard_count_of(&self, shard: usize) -> u64 {
        self.shards[shard].read_with(|v| v.count_ones() as u64)
    }

    /// Exact read: collects the per-shard counts until two consecutive
    /// collects agree (see `Sharding::stable_collect`), then sums.
    /// Lock-free; a retry implies a concurrent increment landed.
    pub fn read(&self) -> u64 {
        let stable = self.sharding.stable_collect(|i| self.shard_count_of(i));
        stable[..self.sharding.shards()].iter().sum()
    }

    /// One-pass sum with no stability check — the wait-free but only
    /// k-lagging read ([`RelaxedShardedCounter`] wraps this).
    pub fn read_relaxed(&self) -> u64 {
        (0..self.sharding.shards())
            .map(|i| self.shard_count_of(i))
            .sum()
    }

    /// Total width of the backing registers in bits (experiment E12's
    /// growth measure, summed over shards).
    pub fn register_bits(&self) -> usize {
        self.shards.iter().map(|s| s.bit_len()).sum()
    }
}

/// The relaxed face of [`ShardedFetchInc`]: same wait-free striped
/// increments, but its only read is the one-pass sum, so the object as
/// a whole is specified against
/// [`sl2_spec::relaxed::LaggingCounterSpec`] — a read may lag the exact
/// count by up to the number of increments concurrent with its sweep.
///
/// # Examples
///
/// ```
/// use sl2_sharded::RelaxedShardedCounter;
///
/// let c = RelaxedShardedCounter::new(2, 2);
/// c.inc(0);
/// c.inc(1);
/// // Single-threaded, the sweep cannot race anything: exact.
/// assert_eq!(c.read(), 2);
/// ```
#[derive(Debug)]
pub struct RelaxedShardedCounter {
    inner: ShardedFetchInc,
}

impl RelaxedShardedCounter {
    /// Creates a relaxed counter shared by `n` processes over `shards`
    /// stripes.
    ///
    /// # Panics
    ///
    /// As [`ShardedFetchInc::new`].
    pub fn new(n: usize, shards: usize) -> Self {
        RelaxedShardedCounter {
            inner: ShardedFetchInc::new(n, shards),
        }
    }

    /// Increments by one on behalf of `process` (wait-free, exact).
    pub fn inc(&self, process: usize) {
        self.inner.inc(process);
    }

    /// Wait-free one-pass read; lags the exact count by at most the
    /// number of increments concurrent with the sweep, and never runs
    /// ahead of it.
    pub fn read(&self) -> u64 {
        self.inner.read_relaxed()
    }

    /// The exact (lock-free) read, for harness assertions that want
    /// ground truth after quiescence.
    pub fn read_exact(&self) -> u64 {
        self.inner.read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    #[test]
    fn sequential_counting_is_exact() {
        let c = ShardedFetchInc::new(3, 2);
        assert_eq!(c.read(), 0);
        for i in 1..=9u64 {
            c.inc((i % 3) as usize);
            assert_eq!(c.read(), i);
            assert_eq!(c.read_relaxed(), i, "no concurrency, no lag");
        }
    }

    #[test]
    fn tickets_are_unique_and_shard_dense() {
        let n = 4;
        let per_thread = 200;
        let c = Arc::new(ShardedFetchInc::new(n, 2));
        let mut tickets: Vec<ShardTicket> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|p| {
                    let c = Arc::clone(&c);
                    s.spawn(move || (0..per_thread).map(|_| c.inc(p)).collect::<Vec<_>>())
                })
                .collect();
            for h in handles {
                tickets.extend(h.join().expect("no panics"));
            }
        });
        let unique: BTreeSet<ShardTicket> = tickets.iter().copied().collect();
        assert_eq!(unique.len(), tickets.len(), "tickets must be unique");
        for shard in 0..2 {
            let mut seqs: Vec<u64> = tickets
                .iter()
                .filter(|t| t.shard == shard)
                .map(|t| t.seq)
                .collect();
            seqs.sort_unstable();
            let expect: Vec<u64> = (1..=seqs.len() as u64).collect();
            assert_eq!(seqs, expect, "shard {shard} sequence must be dense");
        }
        assert_eq!(c.read(), (n * per_thread) as u64);
    }

    #[test]
    fn exact_reads_are_monotone_under_contention() {
        let c = Arc::new(ShardedFetchInc::new(4, 4));
        std::thread::scope(|s| {
            for p in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..300 {
                        c.inc(p);
                    }
                });
            }
            let c2 = Arc::clone(&c);
            s.spawn(move || {
                let mut last = 0;
                for _ in 0..200 {
                    let v = c2.read();
                    assert!(v >= last, "exact read regressed {last} -> {v}");
                    last = v;
                }
            });
        });
        assert_eq!(c.read(), 1200);
        assert_eq!(c.read_relaxed(), 1200, "quiescent relaxed read is exact");
    }

    #[test]
    fn relaxed_reads_never_run_ahead() {
        let c = Arc::new(RelaxedShardedCounter::new(2, 2));
        let issued = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for p in 0..2 {
                let c = Arc::clone(&c);
                let issued = Arc::clone(&issued);
                s.spawn(move || {
                    for _ in 0..400 {
                        // Count the increment before it lands: `issued`
                        // is then always ≥ the landed count, so any
                        // read ≤ landed ≤ issued.
                        issued.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        c.inc(p);
                    }
                });
            }
            let c2 = Arc::clone(&c);
            let issued2 = Arc::clone(&issued);
            s.spawn(move || {
                for _ in 0..300 {
                    let v = c2.read();
                    let cap = issued2.load(std::sync::atomic::Ordering::SeqCst);
                    assert!(v <= cap, "relaxed read {v} ran ahead of {cap} issued");
                }
            });
        });
        assert_eq!(c.read_exact(), 800);
    }

    #[test]
    fn one_shard_relaxed_read_is_exact() {
        // S = 1: the sweep is a single probe, so relaxed == exact.
        let c = ShardedFetchInc::new(3, 1);
        for p in [0, 1, 2, 0] {
            c.inc(p);
        }
        assert_eq!(c.read_relaxed(), c.read());
    }
}
