//! Lane-group-sharded snapshot: components partitioned into groups,
//! one Theorem-2 register per group, production form.
//!
//! With `n` components and group width `g`, group `k` owns components
//! `k·g .. min((k+1)·g, n)` in one [`WideFaa`] with its own
//! [`Layout`]. `update` runs the exact §3.2 algorithm against the
//! owning group — wait-free, 1–2 steps, fixed linearization point —
//! and updaters in different groups never touch the same cache line.
//!
//! Three scan granularities, with three different guarantees:
//!
//! * [`ShardedSnapshot::scan_group`] — one `fetch&add(R, 0)` on one
//!   group: **atomic**, so the per-group view keeps Theorem 2's strong
//!   linearizability verbatim (it *is* a Theorem 2 snapshot of the
//!   group).
//! * [`ShardedSnapshot::scan`] — whole-object view, collecting group
//!   views until two consecutive collects agree: exact and
//!   linearizable (a stable collect pins every group over a common
//!   interval), lock-free, and strongly linearizable only on the
//!   scenario families of DESIGN.md §6.
//! * [`ShardedSnapshot::scan_relaxed`] — one pass, no stability check:
//!   wait-free, but the view is only a *per-group-consistent* cut; it
//!   can pair an old value in one group with a newer value in another
//!   (the sharded-counter witness of `tests/non_sl_witnesses.rs` is
//!   this effect on a 1-bit-per-shard object).

use sl2_bignum::WideFaa;
use sl2_bignum::{BigNat, Layout};
use sl2_core::algos::Snapshot;
use sl2_primitives::{CachePadded, Sharding};

/// A snapshot whose components are partitioned into lane groups, one
/// Theorem-2 register per group.
///
/// # Examples
///
/// ```
/// use sl2_sharded::ShardedSnapshot;
/// use sl2_core::algos::Snapshot;
///
/// let s = ShardedSnapshot::new(5, 2); // groups {0,1} {2,3} {4}
/// s.update(0, 7);
/// s.update(4, 9);
/// assert_eq!(s.scan(), vec![7, 0, 0, 0, 9]);
/// assert_eq!(s.scan_group(2), vec![9]);
/// ```
#[derive(Debug)]
pub struct ShardedSnapshot {
    groups: Box<[CachePadded<WideFaa>]>,
    layouts: Vec<Layout>,
    n: usize,
    group_width: usize,
}

impl ShardedSnapshot {
    /// Creates an `n`-component snapshot with `group_width` components
    /// per lane group (the last group may be narrower).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `group_width == 0`, or the resulting group
    /// count exceeds [`sl2_primitives::MAX_SHARDS`].
    pub fn new(n: usize, group_width: usize) -> Self {
        assert!(n > 0, "snapshot needs at least one component");
        assert!(group_width > 0, "groups need at least one component");
        let group_count = n.div_ceil(group_width);
        // Validates the group count against the shard cap.
        let _ = Sharding::new(group_count);
        let layouts: Vec<Layout> = (0..group_count)
            .map(|k| {
                let width = group_width.min(n - k * group_width);
                Layout::new(width)
            })
            .collect();
        ShardedSnapshot {
            groups: (0..group_count)
                .map(|_| CachePadded::new(WideFaa::new()))
                .collect(),
            layouts,
            n,
            group_width,
        }
    }

    /// Number of lane groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The group owning component `i`.
    pub fn group_of(&self, i: usize) -> usize {
        assert!(i < self.n, "component {i} out of range (n={})", self.n);
        i / self.group_width
    }

    /// Atomic scan of one lane group: a single `fetch&add(R, 0)` on the
    /// group's register, exactly Theorem 2 at group granularity.
    pub fn scan_group(&self, k: usize) -> Vec<u64> {
        self.groups[k]
            .read_with(|image| self.layouts[k].decode_all_u64(image))
            .expect("component fits u64")
    }

    /// Whole-object view with no stability check: one pass over the
    /// groups. Each group's slice is an atomic cut, but slices of
    /// different groups may come from different instants.
    pub fn scan_relaxed(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.n);
        for k in 0..self.groups.len() {
            out.extend(self.scan_group(k));
        }
        out
    }

    /// Total width of the backing registers in bits (experiment E12's
    /// growth measure, summed over groups).
    pub fn register_bits(&self) -> usize {
        self.groups.iter().map(|g| g.bit_len()).sum()
    }
}

impl Snapshot for ShardedSnapshot {
    fn components(&self) -> usize {
        self.n
    }

    fn update(&self, i: usize, v: u64) {
        let k = self.group_of(i);
        let local = i - k * self.group_width;
        let group = &self.groups[k];
        let layout = &self.layouts[k];
        // §3.2 against the owning group: probe the own lane, then one
        // signed fetch&add rewriting exactly that lane.
        let prev = group.read_with(|image| layout.decode(local, image));
        let new = BigNat::from(v);
        if prev == new {
            return; // linearized at the probing fetch&add
        }
        let (pos, neg) = layout.adjustments(local, &prev, &new);
        group.adjust(&pos, &neg);
    }

    fn scan(&self) -> Vec<u64> {
        // Collect the group views until two consecutive collects agree:
        // every group is then pinned to its observed slice over a
        // common interval, so the concatenation is an exact cut.
        let mut prev: Option<Vec<u64>> = None;
        loop {
            let cur = self.scan_relaxed();
            if prev.as_ref() == Some(&cur) {
                return cur;
            }
            prev = Some(cur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_semantics_match_spec() {
        let s = ShardedSnapshot::new(5, 2);
        assert_eq!(s.scan(), vec![0; 5]);
        s.update(1, 42);
        s.update(1, 17); // overwrite smaller (bits cleared)
        s.update(0, 5);
        s.update(4, 3);
        assert_eq!(s.scan(), vec![5, 17, 0, 0, 3]);
        s.update(1, 17); // same value: probe only
        assert_eq!(s.scan(), vec![5, 17, 0, 0, 3]);
        assert_eq!(s.scan_relaxed(), vec![5, 17, 0, 0, 3]);
    }

    #[test]
    fn group_partition_covers_all_components() {
        let s = ShardedSnapshot::new(7, 3); // groups of 3, 3, 1
        assert_eq!(s.group_count(), 3);
        assert_eq!(s.group_of(0), 0);
        assert_eq!(s.group_of(5), 1);
        assert_eq!(s.group_of(6), 2);
        for i in 0..7 {
            s.update(i, i as u64 + 1);
        }
        assert_eq!(s.scan(), vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(s.scan_group(1), vec![4, 5, 6]);
        assert_eq!(s.scan_group(2), vec![7]);
    }

    #[test]
    fn one_group_degenerates_to_the_global_snapshot() {
        let sharded = ShardedSnapshot::new(3, 3);
        let global = sl2_core::algos::snapshot::SlSnapshot::new(3);
        for (i, v) in [(0, 4u64), (2, 9), (0, 2), (1, 6)] {
            sharded.update(i, v);
            global.update(i, v);
            assert_eq!(sharded.scan(), global.scan());
        }
        assert_eq!(sharded.group_count(), 1);
    }

    #[test]
    fn concurrent_updates_land_exactly() {
        let n = 6;
        let s = Arc::new(ShardedSnapshot::new(n, 2));
        std::thread::scope(|sc| {
            for i in 0..n {
                let s = Arc::clone(&s);
                sc.spawn(move || {
                    for v in 1..=100u64 {
                        s.update(i, v * 3);
                    }
                });
            }
        });
        assert_eq!(s.scan(), vec![300; n]);
    }

    #[test]
    fn group_scans_are_consistent_cuts_under_contention() {
        // One writer keeps components 0 and 1 (same group) equal; a
        // group scan must never observe them apart. The whole-object
        // relaxed scan does NOT enjoy this across groups — that is the
        // point of the stable scan.
        let s = Arc::new(ShardedSnapshot::new(4, 2));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|sc| {
            let s1 = Arc::clone(&s);
            let stop1 = Arc::clone(&stop);
            sc.spawn(move || {
                for v in 1..=300u64 {
                    s1.update(0, v);
                    s1.update(1, v);
                }
                stop1.store(true, std::sync::atomic::Ordering::SeqCst);
            });
            let s2 = Arc::clone(&s);
            sc.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    let view = s2.scan_group(0);
                    assert!(
                        view[0] == view[1] || view[0] == view[1] + 1,
                        "group cut torn: {view:?}"
                    );
                }
            });
        });
    }
}
